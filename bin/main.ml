(* accals: command-line front end for the AccALS library. *)

open Accals_network
open Cmdliner
module Engine = Accals.Engine
module Config = Accals.Config
module Trace = Accals.Trace
module Metric = Accals_metrics.Metric
module Bench_suite = Accals_circuits.Bench_suite
module Blif = Accals_io.Blif
module Checkpoint = Accals_resilience.Checkpoint
module Incident = Accals_audit.Incident
module Ladder = Accals_audit.Ladder
module Certify = Accals_audit.Certify
module Telemetry = Accals_telemetry.Telemetry
module Tracer = Accals_telemetry.Tracer
module Progress = Accals_telemetry.Progress
module Metrics = Accals_telemetry.Metrics
module Json = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock
module Trace_context = Accals_telemetry.Trace_context
module Profiler = Accals_telemetry.Profiler
module Build_info = Accals_telemetry.Build_info
module Report_json = Accals.Report_json
module Server = Accals_server.Server
module Client = Accals_server.Client
module Sproto = Accals_server.Protocol
module Graceful = Accals_server.Graceful
module Backoff = Accals_server.Backoff

(* Exit codes (also listed in `accals --help`):
     0   success
     1   run failure — runtime fault exhausted its retries, invariant
         violation, corrupt checkpoint
     2   usage error — bad command line, unknown circuit, unreadable or
         malformed input file
     125 unexpected internal error *)
let usage_exit = 2
let failure_exit = 1
let internal_exit = 125

let user_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "accals: %s\n" msg;
      exit usage_exit)
    fmt

let load_circuit spec =
  (* A registered benchmark name, or a path to a BLIF / AIGER file. *)
  if Sys.file_exists spec then begin
    if Filename.check_suffix spec ".aag" then
      Accals_aig.Aig.to_network (Accals_aig.Aiger.parse_file spec)
    else Blif.parse_file spec
  end
  else
    try Bench_suite.load spec
    with Not_found ->
      user_error "unknown circuit %s (not a file, not a registered benchmark)"
        spec

let print_stats net =
  Printf.printf "%-10s %6d PIs %4d POs %6d AIG nodes  area %10.1f  delay %8.1f\n"
    (Network.name net)
    (Array.length (Network.inputs net))
    (Array.length (Network.outputs net))
    (Cost.aig_node_count net) (Cost.area net) (Cost.delay net)

(* --- list --- *)

let list_cmd =
  let doc = "List the registered benchmark circuits." in
  let run () =
    List.iter
      (fun (name, cat) ->
        Printf.printf "%-10s %s\n" name (Bench_suite.category_to_string cat))
      Bench_suite.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- stats --- *)

let circuit_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CIRCUIT" ~doc:"Benchmark name or BLIF file path.")

let stats_cmd =
  let doc = "Print size/area/delay statistics of a circuit." in
  let run spec = print_stats (load_circuit spec) in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ circuit_arg)

(* --- synth --- *)

let metric_arg =
  let parse s =
    match Metric.kind_of_string s with
    | Some k -> `Ok k
    | None -> `Error (Printf.sprintf "unknown metric %s" s)
  in
  let print fmt k = Format.pp_print_string fmt (Metric.kind_to_string k) in
  let metric_conv = (parse, print) in
  Arg.(
    value
    & opt metric_conv Metric.Error_rate
    & info [ "m"; "metric" ] ~docv:"METRIC" ~doc:"Error metric: ER, NMED or MRED.")

let bound_arg =
  Arg.(
    required
    & opt (some float) None
    & info [ "b"; "bound" ] ~docv:"BOUND" ~doc:"Error bound, e.g. 0.05 for 5%.")

let method_arg =
  Arg.(
    value
    & opt (enum [ ("accals", `Accals); ("seals", `Seals); ("amosa", `Amosa) ]) `Accals
    & info [ "method" ] ~docv:"METHOD" ~doc:"Synthesis flow: accals, seals or amosa.")

let samples_arg =
  Arg.(
    value
    & opt int 2048
    & info [ "samples" ] ~docv:"N" ~doc:"Random simulation patterns.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the parallel runtime. 0 (the default) \
           auto-detects the machine's recommended domain count, clamped \
           to [1, 64], and logs the choice to stderr. Results are \
           bit-identical for every value; 1 runs the reference sequential \
           path.")

(* --jobs 0 auto-detection, shared by synth/verify/sweep (the daemon does
   the same resolution in [Server.create]). *)
let resolve_jobs jobs =
  if jobs > 0 then jobs
  else
    let detected = Domain.recommended_domain_count () in
    let clamped = max 1 (min 64 detected) in
    Printf.eprintf "accals: jobs auto-detected: %d domain(s)%s\n%!" detected
      (if clamped <> detected then Printf.sprintf " (clamped to %d)" clamped
       else "");
    clamped

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the result as BLIF.")

let verilog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "verilog" ] ~docv:"FILE" ~doc:"Write the result as Verilog.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-round trace.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write the per-round trace as CSV.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Save the engine state to $(docv)/$(i,CIRCUIT).ckpt after every \
           round (atomic write-then-rename). Combine with $(b,--resume) to \
           continue a killed run.")

let resume_arg =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the checkpoint in $(b,--checkpoint) $(i,DIR). The \
           continued run is bit-identical to the uninterrupted one for any \
           $(b,--jobs) value; metric, bound and seed are taken from the \
           checkpoint. Starts fresh when no checkpoint exists yet.")

let run_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "run-deadline" ] ~docv:"SECS"
        ~doc:
          "Whole-run budget in seconds; on expiry the best circuit found so \
           far is reported with degraded = true.")

let max_memory_arg =
  Arg.(
    value
    & opt int 0
    & info [ "max-memory-mb" ] ~docv:"MB"
        ~doc:
          "Memory budget for the run, enforced at round boundaries: under \
           pressure the engine first drops its caches and buffer pools, \
           then falls back to the rebuild backend, and only as a last \
           resort checkpoints and sheds the run (degraded = true, never \
           the OOM killer). Results stay bit-identical until the shed \
           rung. 0 = unlimited.")

let round_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "round-deadline" ] ~docv:"SECS"
        ~doc:
          "Per-round budget in seconds; an overrunning round falls back \
           from multi-LAC to single-LAC selection.")

let validate_arg =
  Arg.(
    value
    & flag
    & info [ "validate" ]
        ~doc:
          "Check the network invariants (acyclicity, arity, fanin ranges) \
           at every round boundary, not only before checkpoints.")

let no_incremental_arg =
  Arg.(
    value
    & flag
    & info [ "no-incremental" ]
        ~doc:
          "Disable the incremental signature engine and rebuild the \
           per-round state (signatures, criticality, error masks) from \
           scratch every round. Results are bit-identical either way; the \
           rebuild path exists as the reference for differential testing.")

let audit_every_arg =
  Arg.(
    value
    & opt int 0
    & info [ "audit-every" ] ~docv:"N"
        ~doc:
          "Shadow-audit cadence: every $(docv) rounds, re-derive the \
           round's signatures and error from scratch and compare them with \
           the incremental engine's state. A divergence is logged as an \
           incident and permanently degrades the run to the rebuild \
           backend. 0 (default) disables scheduled audits.")

let certify_arg =
  Arg.(
    value
    & flag
    & info [ "certify" ]
        ~doc:
          "Re-measure the final circuit's error with an independent PRNG \
           stream (exhaustively when the input width permits) and stamp \
           the report certified. If the independent measurement violates \
           the bound, roll back to an earlier constraint-satisfying \
           circuit instead of emitting a violating result.")

let ckpt_keep_arg =
  Arg.(
    value
    & opt int 1
    & info [ "ckpt-keep" ] ~docv:"K"
        ~doc:
          "Keep the last $(docv) checkpoint generations \
           ($(i,NAME).ckpt, $(i,NAME).ckpt.1, ...). $(b,--resume) scans \
           newest-to-oldest and skips corrupt files, so a bit-flipped \
           latest snapshot falls back to its predecessor.")

let incident_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incident-log" ] ~docv:"FILE"
        ~doc:
          "Append structured incident records (JSONL: audit divergences, \
           corrupt checkpoints skipped on resume, certification \
           violations, watchdog expiries) to $(docv). Defaults to \
           $(i,DIR)/incidents.jsonl when $(b,--checkpoint) $(i,DIR) is \
           given.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run's span tree \
           (run, rounds, engine phases, pool batches; workers on their own \
           lanes). Open in Perfetto (ui.perfetto.dev) or chrome://tracing. \
           Purely observational: synthesis outputs are bit-identical with \
           or without it.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry (counters, gauges, histograms: \
           candidates, estimator cache hits, resimulation work, checkpoint \
           bytes, GC samples, per-phase seconds) in Prometheus text \
           exposition format.")

let events_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events-out" ] ~docv:"FILE"
        ~doc:
          "Stream structured run events (run_start, one object per round, \
           ladder transitions, run_end) to $(docv) as JSONL, flushed per \
           line — tail it to watch a long run.")

let progress_arg =
  Arg.(
    value
    & flag
    & info [ "progress" ]
        ~doc:
          "Render a live heartbeat (round, error, area, elapsed, ETA) to \
           stderr. Never touches stdout.")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Run the sampling profiler for the whole synthesis and write \
           flamegraph-compatible folded stacks to $(docv) (plus a JSON \
           summary to $(docv).json). Like every telemetry sink, purely \
           observational: results are bit-identical with or without it.")

let profile_hz_arg =
  Arg.(
    value
    & opt int 97
    & info [ "profile-hz" ] ~docv:"HZ"
        ~doc:
          "Profiler sampling rate (default 97 — prime, so samples do not \
           phase-lock with periodic work).")

let profile_mode_arg =
  let parse s =
    match Profiler.mode_of_string s with
    | Some m -> `Ok m
    | None -> `Error (Printf.sprintf "unknown profile mode %s (cpu or wall)" s)
  in
  let print fmt m = Format.pp_print_string fmt (Profiler.mode_name m) in
  let mode_conv = (parse, print) in
  Arg.(
    value
    & opt mode_conv Profiler.Cpu
    & info [ "profile-mode" ] ~docv:"MODE"
        ~doc:
          "What a profiler tick means: $(b,cpu) samples while the process \
           burns CPU time (ITIMER_PROF), $(b,wall) in real time even when \
           blocked (ITIMER_REAL).")

let json_arg =
  Arg.(
    value
    & flag
    & info [ "json" ]
        ~doc:
          "Emit the report as JSON on stdout instead of the text block \
           (with $(b,--verbose): inline the per-round trace). Notices that \
           normally print to stdout (resume, checkpoint scan) move to \
           stderr so stdout stays a single JSON document.")

let ckpt_tag = "accals-engine"

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let synth_cmd =
  let doc = "Synthesize an approximate circuit under an error bound." in
  let run spec metric bound method_ samples seed jobs out verilog verbose trace
      ckpt_dir resume run_deadline round_deadline max_memory_mb validate
      no_incremental audit_every certify ckpt_keep incident_log trace_out
      metrics_out events_out progress profile_out profile_hz profile_mode json =
    if resume && ckpt_dir = None then
      user_error "--resume requires --checkpoint DIR";
    if resume && method_ <> `Accals then
      user_error "--resume is only supported with --method accals";
    if audit_every < 0 then user_error "--audit-every must be >= 0";
    if ckpt_keep < 1 then user_error "--ckpt-keep must be >= 1";
    if max_memory_mb < 0 then user_error "--max-memory-mb must be >= 0";
    let jobs = resolve_jobs jobs in
    Graceful.install ();
    let net = load_circuit spec in
    let config =
      let base =
        {
          Config.default with
          samples;
          seed;
          jobs;
          run_deadline;
          round_deadline;
          max_memory_mb;
          validate_rounds = validate;
          incremental = not no_incremental;
          audit_every;
          certify;
        }
      in
      Config.for_network ~base net
    in
    let ckpt_path =
      Option.map
        (fun dir ->
          ensure_dir dir;
          Filename.concat dir (Network.name net ^ ".ckpt"))
        ckpt_dir
    in
    (* The hook is always installed: saving the snapshot (when --checkpoint
       was given) comes first, then [Graceful.check] — so on SIGINT/SIGTERM
       the just-written snapshot is the final checkpoint and the run unwinds
       at the next round boundary with the documented 130/143 exit code. *)
    let checkpoint snap =
      Option.iter
        (fun path -> Checkpoint.save ~keep:ckpt_keep ~path ~tag:ckpt_tag snap)
        ckpt_path;
      Graceful.check ()
    in
    (* Telemetry is installed before anything runs so spans, metrics and
       events from the engine, pool workers and checkpoint writer all land
       on the same handle. Stays on the disabled no-op handle unless one of
       the telemetry flags was given. *)
    let tracer = if trace_out = None then None else Some (Tracer.create ()) in
    let progress_h = if progress then Some (Progress.create ()) else None in
    let events_oc = Option.map open_out events_out in
    if
      Option.is_some tracer || Option.is_some progress_h
      || Option.is_some events_oc || Option.is_some metrics_out
    then
      Telemetry.install
        (Telemetry.make ?tracer ?progress:progress_h ?events:events_oc ());
    let profiler =
      Option.map
        (fun _ -> Profiler.start ~hz:profile_hz ~mode:profile_mode ())
        profile_out
    in
    let write_profile () =
      match (profile_out, profiler) with
      | Some path, Some p ->
        Profiler.stop p;
        Profiler.write_folded p path;
        Json.write_file (path ^ ".json") (Profiler.summary p)
      | _ -> ()
    in
    let incident_log_path =
      match incident_log with
      | Some _ -> incident_log
      | None -> Option.map (fun dir -> Filename.concat dir "incidents.jsonl") ckpt_dir
    in
    (* Flush hooks for the graceful-shutdown path: run (newest-first) by
       the top-level [Interrupted] handler so partial telemetry survives an
       interrupt. The normal completion path below writes these itself. *)
    Graceful.on_shutdown "telemetry" (fun () -> Telemetry.reset ());
    Graceful.on_shutdown "events" (fun () -> Option.iter close_out events_oc);
    Graceful.on_shutdown "tracer" (fun () ->
        match (trace_out, tracer) with
        | Some path, Some t -> Tracer.write t path
        | _ -> ());
    Graceful.on_shutdown "profiler" (fun () -> write_profile ());
    (* In --json mode stdout is a single JSON document, so the resume /
       checkpoint-scan notices move to stderr. Plain mode keeps them on
       stdout (CI greps for them there). *)
    let notice fmt =
      Printf.ksprintf
        (fun s ->
          if json then (output_string stderr s; flush stderr)
          else print_string s)
        fmt
    in
    (* Incidents observed before the engine runs (corrupt checkpoints skipped
       during the resume scan), newest first. *)
    let resume_incidents = ref [] in
    let report =
      match method_ with
      | `Accals -> begin
        let snapshot =
          if resume then
            Option.bind ckpt_path (fun path ->
                Option.map fst
                  (Checkpoint.load_rotated ~path ~tag:ckpt_tag ~keep:ckpt_keep
                     ~on_corrupt:(fun ~path detail ->
                       notice "checkpoint   : skipping corrupt %s (%s)\n"
                         path detail;
                       resume_incidents :=
                         Incident.make ~round:0
                           (Incident.Checkpoint_corrupt { path; detail })
                         :: !resume_incidents)
                     ()))
          else None
        in
        match snapshot with
        | Some snap ->
          notice "resumed      : %s at round %d\n"
            (Engine.snapshot_circuit snap)
            (Engine.snapshot_round snap);
          Engine.resume ~jobs ~checkpoint snap
        | None ->
          if resume then
            notice "resumed      : no checkpoint yet, starting fresh\n";
          Engine.run ~config ~checkpoint net ~metric ~error_bound:bound
      end
      | `Seals -> Accals_baselines.Seals.run ~config net ~metric ~error_bound:bound
      | `Amosa ->
        (Accals_baselines.Amosa.run ~config net ~metric ~error_bound:bound)
          .Accals_baselines.Amosa.report
    in
    if json then
      (* Merge the pre-run resume incidents into the serialized report so
         the JSON document carries the same incident set the text block
         counts. *)
      print_string
        (Report_json.to_string ~rounds:verbose
           (match !resume_incidents with
            | [] -> report
            | pre ->
              {
                report with
                Engine.incidents = List.rev pre @ report.Engine.incidents;
              }))
    else begin
    Printf.printf "circuit      : %s\n" (Network.name net);
    Printf.printf "metric       : %s <= %g\n"
      (Metric.kind_to_string report.Engine.metric)
      report.Engine.error_bound;
    Printf.printf "error        : %.6f\n" report.Engine.error;
    Printf.printf "area ratio   : %.4f\n" report.Engine.area_ratio;
    Printf.printf "delay ratio  : %.4f\n" report.Engine.delay_ratio;
    Printf.printf "adp ratio    : %.4f\n" report.Engine.adp_ratio;
    Printf.printf "rounds       : %d\n" (List.length report.Engine.rounds);
    Printf.printf "runtime      : %.2fs\n" report.Engine.runtime_seconds;
    Printf.printf "evaluations  : %d\n" report.Engine.exact_evaluations;
    Printf.printf "degraded     : %b\n" report.Engine.degraded;
    Printf.printf "reason       : %s\n"
      (match report.Engine.degraded_reason with
       | Some r -> Ladder.reason_to_string r
       | None -> "-");
    Printf.printf "ladder       : %s\n" report.Engine.ladder_summary;
    Printf.printf "audits       : %d\n" report.Engine.audits;
    Printf.printf "incidents    : %d\n"
      (List.length !resume_incidents + List.length report.Engine.incidents);
    (match report.Engine.certification with
     | None -> ()
     | Some o ->
       Printf.printf "certified    : %s (%s %.6f %s %g via %s%s)\n"
         (if o.Certify.certified then "yes" else "NO")
         (Metric.kind_to_string report.Engine.metric)
         o.Certify.measured
         (if o.Certify.certified then "<=" else ">")
         o.Certify.bound
         (Certify.method_to_string o.Certify.method_)
         (if o.Certify.rollback_steps > 0 then
            Printf.sprintf ", rollback %d" o.Certify.rollback_steps
          else ""));
    Printf.printf "trace        : %s\n" (Trace.summary report.Engine.rounds);
    Printf.printf "resim        : %s\n" (Trace.resim_summary report.Engine.rounds);
    Printf.printf "runtime pool : %s\n" (Trace.stats_summary report.Engine.stats);
    Printf.printf "phases       : %s\n" (Trace.phases_summary report.Engine.stats);
    if verbose then
      List.iter
        (fun r ->
          Printf.printf
            "  round %3d %s top=%d sol=%d indp=%d rand=%d applied=%d e %.5f -> %.5f (est %.5f)%s\n"
            r.Trace.index
            (match r.Trace.mode with Trace.Multi -> "multi " | Trace.Single -> "single")
            r.Trace.top_count r.Trace.sol_count r.Trace.indp_count
            r.Trace.rand_count r.Trace.applied r.Trace.error_before
            r.Trace.error_after r.Trace.estimated_error
            (if r.Trace.reverted then " [reverted]" else ""))
        report.Engine.rounds
    end;
    Option.iter (fun path -> Blif.write_file report.Engine.approximate path) out;
    Option.iter
      (fun path -> Accals_io.Verilog_writer.write_file report.Engine.approximate path)
      verilog;
    Option.iter (fun path -> Trace.write_csv report.Engine.rounds path) trace;
    Option.iter
      (fun path ->
        Incident.append_jsonl ~path
          (List.rev !resume_incidents @ report.Engine.incidents))
      incident_log_path;
    (match (trace_out, tracer) with
     | Some path, Some t -> Tracer.write t path
     | _ -> ());
    Option.iter
      (fun path ->
        let oc = open_out path in
        (try output_string oc (Metrics.to_prometheus report.Engine.metrics)
         with e -> close_out oc; raise e);
        close_out oc)
      metrics_out;
    Option.iter close_out events_oc;
    write_profile ();
    Telemetry.reset ();
    List.iter Graceful.remove_hook [ "telemetry"; "events"; "tracer"; "profiler" ]
  in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const run $ circuit_arg $ metric_arg $ bound_arg $ method_arg $ samples_arg
      $ seed_arg $ jobs_arg $ out_arg $ verilog_arg $ verbose_arg $ trace_arg
      $ checkpoint_arg $ resume_arg $ run_deadline_arg $ round_deadline_arg
      $ max_memory_arg $ validate_arg $ no_incremental_arg $ audit_every_arg
      $ certify_arg
      $ ckpt_keep_arg $ incident_log_arg $ trace_out_arg $ metrics_out_arg
      $ events_out_arg $ progress_arg $ profile_out_arg $ profile_hz_arg
      $ profile_mode_arg $ json_arg)

(* --- convert --- *)

let convert_cmd =
  let doc = "Convert a circuit to BLIF / Verilog / DOT / AIGER." in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write Graphviz DOT.")
  in
  let aiger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "aiger" ] ~docv:"FILE" ~doc:"Write ASCII AIGER (aag).")
  in
  let run spec out verilog dot aiger =
    let net = load_circuit spec in
    print_stats net;
    Option.iter (fun path -> Blif.write_file net path) out;
    Option.iter (fun path -> Accals_io.Verilog_writer.write_file net path) verilog;
    Option.iter (fun path -> Accals_io.Dot.write_file net path) dot;
    Option.iter
      (fun path ->
        Accals_aig.Aiger.write_file (Accals_aig.Aig.of_network net) path)
      aiger
  in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(const run $ circuit_arg $ out_arg $ verilog_arg $ dot_arg $ aiger_arg)

(* --- verify --- *)

let verify_cmd =
  let doc =
    "Exactly compare an approximate circuit against its golden reference \
     (exhaustive simulation, up to 24 inputs)."
  in
  let approx_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"APPROX" ~doc:"Approximate circuit (name or file).")
  in
  let run golden_spec approx_spec jobs json =
    let jobs = resolve_jobs jobs in
    let golden = load_circuit golden_spec in
    let approx = load_circuit approx_spec in
    let report =
      if jobs > 1 then
        Accals_runtime.Pool.with_pool ~jobs (fun pool ->
            Accals_analysis.Exhaustive.compare_networks_with ~pool ~golden
              ~approx)
      else Accals_analysis.Exhaustive.compare_networks ~golden ~approx
    in
    if json then
      print_string
        (Json.to_string ~pretty:true
           (Json.Obj
              [
                ("golden", Json.String (Network.name golden));
                ("approx", Json.String (Network.name approx));
                ("vectors", Json.Int report.Accals_analysis.Exhaustive.vectors);
                ( "error_rate",
                  Json.Float report.Accals_analysis.Exhaustive.error_rate );
                ( "mean_error_distance",
                  Json.Float
                    report.Accals_analysis.Exhaustive.mean_error_distance );
                ( "normalized_mean_error_distance",
                  Json.Float
                    report.Accals_analysis.Exhaustive
                      .normalized_mean_error_distance );
                ( "mean_relative_error_distance",
                  Json.Float
                    report.Accals_analysis.Exhaustive
                      .mean_relative_error_distance );
                ( "worst_case_error",
                  Json.Float report.Accals_analysis.Exhaustive.worst_case_error
                );
              ])
         ^ "\n")
    else begin
      Printf.printf "vectors      : %d (exhaustive)\n"
        report.Accals_analysis.Exhaustive.vectors;
      Printf.printf "ER           : %.8f\n"
        report.Accals_analysis.Exhaustive.error_rate;
      Printf.printf "MED          : %.6f\n"
        report.Accals_analysis.Exhaustive.mean_error_distance;
      Printf.printf "NMED         : %.8f\n"
        report.Accals_analysis.Exhaustive.normalized_mean_error_distance;
      Printf.printf "MRED         : %.8f\n"
        report.Accals_analysis.Exhaustive.mean_relative_error_distance;
      Printf.printf "WCE          : %.1f\n"
        report.Accals_analysis.Exhaustive.worst_case_error
    end
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ circuit_arg $ approx_arg $ jobs_arg $ json_arg)

(* --- sweep --- *)

let sweep_cmd =
  let doc = "Sweep error bounds and print the quality/error trade-off." in
  let bounds_arg =
    Arg.(
      value
      & opt (list float) [ 0.001; 0.005; 0.02; 0.05 ]
      & info [ "bounds" ] ~docv:"B1,B2,.." ~doc:"Error bounds to sweep.")
  in
  let run spec metric bounds jobs =
    let net = load_circuit spec in
    let config =
      Config.for_network
        ~base:{ Config.default with jobs = resolve_jobs jobs }
        net
    in
    let results = Accals.Pareto.sweep ~config net ~metric ~bounds in
    Printf.printf "%-12s %12s %12s %12s %8s\n" "bound" "error" "area ratio"
      "delay ratio" "rounds";
    List.iter
      (fun (bound, r) ->
        Printf.printf "%-12g %12.6f %12.4f %12.4f %8d\n" bound
          r.Engine.error r.Engine.area_ratio r.Engine.delay_ratio
          (List.length r.Engine.rounds))
      results
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ circuit_arg $ metric_arg $ bounds_arg $ jobs_arg)

(* --- serve / client --- *)

let socket_arg =
  Arg.(
    value
    & opt string "accals.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on (or is reached at).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Also listen on (or connect to) TCP. $(docv) may be a bare port; \
           the host defaults to 127.0.0.1. Port 0 binds an ephemeral port \
           (the daemon logs the choice).")

let parse_hostport s =
  let split =
    match String.rindex_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> ("", int_of_string_opt s)
  in
  match split with
  | host, Some port when port >= 0 && port < 65536 ->
    ((if host = "" then "127.0.0.1" else host), port)
  | _ -> user_error "bad --tcp %S (expected HOST:PORT or PORT)" s

let serve_cmd =
  let doc =
    "Run the synthesis daemon: a job scheduler with a content-addressed \
     result cache behind a newline-delimited JSON protocol."
  in
  let max_concurrent_arg =
    Arg.(
      value
      & opt int 2
      & info [ "max-concurrent" ] ~docv:"N"
          ~doc:
            "Jobs running simultaneously; the $(b,--jobs) domain budget is \
             split evenly across them.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist finished results content-addressed by circuit digest \
             and request parameters; identical submissions (across \
             restarts too) are answered from $(docv) without re-running \
             the engine.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Crash/shutdown state: the queue checkpoint re-admitted on \
             restart, plus final metrics, per-job event logs and Chrome \
             traces written during shutdown.")
  in
  let tcp_token_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp-token" ] ~docv:"SECRET"
          ~doc:
            "Shared secret TCP clients must present (as a \"token\" \
             request field, or $(b,client --token)) for privileged \
             requests: result, cancel, trace, events, shutdown. Without \
             it those are refused over TCP; the Unix socket is always \
             fully trusted.")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Queued-jobs bound; past it new submissions are rejected with \
             code \"overloaded\" and a retry_after_ms hint. 0 = unlimited.")
  in
  let tenant_max_queued_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.tenant_max_queued
      & info [ "tenant-max-queued" ] ~docv:"N"
          ~doc:
            "Per-tenant queued-jobs quota (shed past it). 0 = unlimited.")
  in
  let tenant_max_running_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.tenant_max_running
      & info [ "tenant-max-running" ] ~docv:"N"
          ~doc:
            "Per-tenant running-slots cap; over-quota jobs wait queued \
             while other tenants run. 0 = unlimited.")
  in
  let deadline_grace_arg =
    Arg.(
      value
      & opt float Server.default_config.Server.deadline_grace
      & info [ "deadline-grace" ] ~docv:"SECS"
          ~doc:
            "How long past a job's deadline its worker may keep running \
             before the daemon abandons it and reuses the slot.")
  in
  let quarantine_threshold_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.quarantine_threshold
      & info [ "quarantine-threshold" ] ~docv:"N"
          ~doc:
            "Abnormal worker deaths for one job fingerprint before its \
             resubmissions are refused. 0 disables quarantine.")
  in
  let quarantine_cooldown_arg =
    Arg.(
      value
      & opt float Server.default_config.Server.quarantine_cooldown
      & info [ "quarantine-cooldown" ] ~docv:"SECS"
          ~doc:"How long a quarantined fingerprint is refused admission.")
  in
  let cache_max_mb_arg =
    Arg.(
      value
      & opt int 0
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Evict the on-disk result cache (corrupt entries first, then \
             least recently used) past this size. 0 = unlimited.")
  in
  let statedir_headroom_arg =
    Arg.(
      value
      & opt int 0
      & info [ "statedir-headroom-mb" ] ~docv:"MB"
          ~doc:
            "Free-space floor for the filesystem backing $(b,--state-dir) \
             and $(b,--cache-dir): under it the result cache is evicted \
             before anything new is stored. The reactive ENOSPC responses \
             (evict-and-retry on cache stores, evict-cache-then-retry on \
             the shutdown queue checkpoint) run regardless. 0 disables \
             the proactive check.")
  in
  let fd_reserve_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.fd_reserve
      & info [ "fd-reserve" ] ~docv:"N"
          ~doc:
            "File descriptors kept free for the daemon's own files: new \
             connections are refused with code \"resource_exhausted\" \
             (and a retry_after_ms hint) once accepting one more would \
             leave less than $(docv) under the soft RLIMIT_NOFILE.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No chatter on stderr.")
  in
  let slo_target_arg =
    Arg.(
      value
      & opt float Server.default_config.Server.slo_target_ms
      & info [ "slo-target-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end latency a job must beat to count as good in the \
             per-tenant SLO accounting (the \"slo\" request and the \
             accals_slo_* metrics).")
  in
  let slo_objective_arg =
    Arg.(
      value
      & opt float Server.default_config.Server.slo_objective
      & info [ "slo-objective" ] ~docv:"FRACTION"
          ~doc:
            "Target good fraction in (0, 1), e.g. 0.99; the rolling \
             burn rate is the observed bad fraction over the allowed one.")
  in
  let profile_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-dir" ] ~docv:"DIR"
          ~doc:
            "Run the sampling profiler (CPU mode) for the daemon's \
             lifetime and write server.folded (flamegraph-compatible) \
             plus server.profile.json to $(docv) at shutdown.")
  in
  let serve_profile_hz_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.profile_hz
      & info [ "profile-hz" ] ~docv:"HZ" ~doc:"Profiler sampling rate.")
  in
  let run socket tcp tcp_token jobs max_concurrent max_queue tenant_max_queued
      tenant_max_running deadline_grace quarantine_threshold
      quarantine_cooldown cache_dir cache_max_mb state_dir samples
      max_memory_mb statedir_headroom_mb fd_reserve slo_target_ms
      slo_objective profile_dir profile_hz quiet =
    if max_concurrent < 1 then user_error "--max-concurrent must be >= 1";
    if deadline_grace < 0.0 then user_error "--deadline-grace must be >= 0";
    if cache_max_mb < 0 then user_error "--cache-max-mb must be >= 0";
    if max_memory_mb < 0 then user_error "--max-memory-mb must be >= 0";
    if statedir_headroom_mb < 0 then
      user_error "--statedir-headroom-mb must be >= 0";
    if fd_reserve < 0 then user_error "--fd-reserve must be >= 0";
    if slo_target_ms <= 0.0 then user_error "--slo-target-ms must be > 0";
    if not (slo_objective > 0.0 && slo_objective < 1.0) then
      user_error "--slo-objective must be in (0, 1)";
    if profile_hz < 1 then user_error "--profile-hz must be >= 1";
    let server =
      Server.create
        {
          Server.socket;
          tcp = Option.map parse_hostport tcp;
          tcp_token;
          jobs;
          max_concurrent;
          max_queue;
          tenant_max_queued;
          tenant_max_running;
          deadline_grace;
          quarantine_threshold;
          quarantine_cooldown;
          cache_dir;
          cache_max_bytes = cache_max_mb * 1024 * 1024;
          state_dir;
          default_samples = samples;
          max_memory_mb;
          statedir_headroom_mb;
          fd_reserve;
          slo_target_ms;
          slo_objective;
          profile_dir;
          profile_hz;
          log = not quiet;
        }
    in
    (* SIGTERM/SIGINT: the handler only flips flags and wakes the select
       loop; [Server.run] then drains (checkpointing the queue, joining
       workers) and returns, and the process exits 130/143. *)
    Graceful.install ~on_signal:(fun _ -> Server.stop server) ();
    Server.run server;
    Graceful.run_hooks ();
    match Graceful.stop_requested () with
    | Some signal -> exit (Graceful.exit_code signal)
    | None -> ()
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ tcp_token_arg $ jobs_arg
      $ max_concurrent_arg $ max_queue_arg $ tenant_max_queued_arg
      $ tenant_max_running_arg $ deadline_grace_arg
      $ quarantine_threshold_arg $ quarantine_cooldown_arg $ cache_dir_arg
      $ cache_max_mb_arg $ state_dir_arg $ samples_arg $ max_memory_arg
      $ statedir_headroom_arg $ fd_reserve_arg $ slo_target_arg
      $ slo_objective_arg $ profile_dir_arg $ serve_profile_hz_arg
      $ quiet_arg)

let client_cmd =
  let doc = "Talk to a running daemon (submit jobs, poll them, scrape metrics)." in
  let req_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQ"
          ~doc:
            "One of: submit, status, result, cancel, list, metrics, health, \
             slo, trace, events, ping, shutdown.")
  in
  let operand_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:"Circuit (for submit) or job id (status/result/cancel/trace/events).")
  in
  let client_bound_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "b"; "bound" ] ~docv:"BOUND" ~doc:"Error bound (submit).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECS"
          ~doc:"Per-job run budget; an over-budget job returns its best \
                circuit so far marked degraded (and is never cached).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock deadline from submission; past it the job is \
             failed as deadline_exceeded (a hard fault, unlike --budget's \
             graceful degradation).")
  in
  let retry_flag =
    Arg.(
      value
      & flag
      & info [ "retry" ]
          ~doc:
            "Retry \"overloaded\"/\"quarantined\" rejections with jittered \
             exponential backoff, honoring the daemon's retry_after_ms \
             hint (bounded total wait).")
  in
  let priority_arg =
    Arg.(
      value
      & opt int 0
      & info [ "priority" ] ~docv:"P" ~doc:"Higher runs first (submit).")
  in
  let tenant_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Fair-share scheduling group (submit).")
  in
  let client_samples_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N"
          ~doc:"Simulation patterns; defaults to the daemon's setting.")
  in
  let wait_flag =
    Arg.(
      value
      & flag
      & info [ "wait" ]
          ~doc:"After submit, poll until the job finishes and print the \
                result response too.")
  in
  let token_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token" ] ~docv:"SECRET"
          ~doc:
            "Shared secret sent with every request; required for \
             privileged requests over $(b,--tcp) when the daemon runs \
             with $(b,--tcp-token).")
  in
  let trace_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "Trace-context id for submit (16 hex digits). Every span the \
             daemon records for the job is tagged with it, and the \
             $(b,trace) request returns one merged Chrome trace under it. \
             Minted automatically when omitted; the effective id is in \
             the submit response.")
  in
  let run socket tcp token req operand metric bound budget deadline priority
      tenant samples seed trace_id_opt wait_ retry =
    let need_operand what =
      match operand with
      | Some a -> a
      | None -> user_error "%s needs a %s operand" req what
    in
    let request =
      match req with
      | "submit" ->
        let spec = need_operand "circuit" in
        let bound =
          match bound with
          | Some b -> b
          | None -> user_error "submit requires --bound"
        in
        (* Every submission is traceable: honor --trace-id (validated
           here, so a typo fails before touching the daemon) or mint
           one. [client_ts] shares the daemon's monotonic epoch on the
           same machine, giving the merged trace a client-submit span. *)
        let trace_id =
          match trace_id_opt with
          | None -> Some (Trace_context.mint ())
          | Some raw -> (
            match Trace_context.normalize raw with
            | Some id -> Some id
            | None ->
              user_error "--trace-id must be %d hex digits, got %S"
                Trace_context.length raw)
        in
        let source =
          (* A registered name travels as a name; anything else is loaded
             locally (so errors surface here) and shipped as BLIF text. *)
          if Sys.file_exists spec then
            Sproto.Blif_text (Blif.to_string (load_circuit spec))
          else if List.mem_assoc spec Bench_suite.all then Sproto.Named spec
          else
            user_error
              "unknown circuit %s (not a file, not a registered benchmark)"
              spec
        in
        Sproto.Submit
          {
            Sproto.source;
            metric;
            bound;
            budget;
            deadline;
            priority;
            tenant;
            samples;
            seed;
            trace_id;
            client_ts = Some (Clock.now ());
          }
      | "status" -> Sproto.Status (need_operand "job id")
      | "result" -> Sproto.Result (need_operand "job id")
      | "cancel" -> Sproto.Cancel (need_operand "job id")
      | "trace" -> Sproto.Trace (need_operand "job id")
      | "events" -> Sproto.Events (need_operand "job id")
      | "list" -> Sproto.List
      | "metrics" -> Sproto.Metrics
      | "health" -> Sproto.Health
      | "slo" -> Sproto.Slo
      | "ping" -> Sproto.Ping
      | "shutdown" -> Sproto.Shutdown
      | other ->
        user_error
          "unknown request %s (expected submit, status, result, cancel, \
           list, metrics, health, slo, trace, events, ping or shutdown)"
          other
    in
    let c =
      try
        match tcp with
        | Some hp ->
          let host, port = parse_hostport hp in
          Client.connect_tcp ?token host port
        | None -> Client.connect_unix ?token socket
      with Unix.Unix_error (e, _, _) ->
        user_error "cannot connect to the daemon: %s" (Unix.error_message e)
    in
    let print_response resp =
      (* `metrics` prints the raw Prometheus exposition so the output can
         be scraped/diffed directly; everything else pretty-prints JSON. *)
      match (req, Option.bind (Json.member "metrics" resp) Json.string_opt) with
      | "metrics", Some text -> print_string text
      | _ -> print_string (Json.to_string ~pretty:true resp ^ "\n")
    in
    let fail_rpc msg =
      Printf.eprintf "accals: %s\n" msg;
      exit failure_exit
    in
    (* With --retry, shed responses are retried under the shared backoff
       policy; the daemon's retry_after_ms hint floors each delay.  Safe
       for submit because submissions are content-addressed (a retry
       coalesces or hits the cache, never duplicating work). *)
    let rpc_retrying request =
      if not retry then Client.rpc c request
      else
        let schedule = Backoff.start Backoff.default in
        let rec go () =
          match Client.rpc c request with
          | Ok resp
            when (not (Client.ok resp))
                 && List.mem (Client.error_code resp)
                      [
                        Some "overloaded"; Some "quarantined";
                        Some "resource_exhausted";
                      ] -> (
            match
              Backoff.next_with_floor schedule
                ~floor:(Option.value (Client.retry_after resp) ~default:0.0)
            with
            | None -> Ok resp
            | Some d ->
              Unix.sleepf d;
              go ())
          | r -> r
        in
        go ()
    in
    (match rpc_retrying request with
     | Error msg -> fail_rpc msg
     | Ok resp ->
       print_response resp;
       if not (Client.ok resp) then exit failure_exit;
       if wait_ && req = "submit" then
         match Option.bind (Json.member "job" resp) Json.string_opt with
         | None -> fail_rpc "submit response missing job id"
         | Some job -> (
           match Client.wait c job with
           | Error msg -> fail_rpc msg
           | Ok r ->
             print_string (Json.to_string ~pretty:true r ^ "\n");
             if not (Client.ok r) then exit failure_exit));
    Client.close c
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ token_arg $ req_arg $ operand_arg
      $ metric_arg $ client_bound_arg $ budget_arg $ deadline_arg
      $ priority_arg $ tenant_arg $ client_samples_arg $ seed_arg
      $ trace_id_arg $ wait_flag $ retry_flag)

(* --- top --- *)

let top_cmd =
  let doc =
    "Live terminal dashboard over a running daemon: queue and slot \
     occupancy, per-tenant SLO burn, resource gauges and recent jobs."
  in
  let interval_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh period.")
  in
  let once_flag =
    Arg.(
      value
      & flag
      & info [ "once" ] ~doc:"Render a single snapshot and exit (no screen \
                              clearing) — for scripts and CI.")
  in
  let top_json_flag =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--once): emit the raw snapshot (health + slo + jobs) \
             as one JSON object on stdout instead of the rendered board.")
  in
  let token_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token" ] ~docv:"SECRET" ~doc:"Shared secret for TCP daemons.")
  in
  (* Tolerant readers: a field the daemon does not send renders as a
     dash, never a crash — top must work against older daemons too. *)
  let jint resp key =
    match Option.bind (Json.member key resp) Json.int_opt with
    | Some v -> string_of_int v
    | None -> "-"
  in
  let jnum resp key = Option.bind (Json.member key resp) Json.number_opt in
  let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0) in
  let render health slo jobs =
    let b = Buffer.create 2048 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let build =
      match Json.member "build" health with
      | Some bj ->
        let f k =
          Option.value
            (Option.bind (Json.member k bj) Json.string_opt)
            ~default:"?"
        in
        Printf.sprintf "%s (%s)" (f "version") (f "commit")
      | None -> "-"
    in
    line "accals top — up %.0fs — build %s — protocol v%s"
      (Option.value (jnum health "uptime_seconds") ~default:0.0)
      build
      (jint health "protocol_version");
    line "queue %s   running %s/%s (free %s)   conns %s   zombies %s"
      (jint health "queue_depth") (jint health "running")
      (jint health "slots") (jint health "slots_free")
      (jint health "connections") (jint health "zombies");
    (let gauge k =
       match Option.bind (Json.member k health) Json.int_opt with
       | Some v -> Printf.sprintf "%.1f MiB" (mib v)
       | None -> "-"
     in
     line "mem %s   statedir %s   cache %s entries   fds %s/%s"
       (gauge "memory_bytes") (gauge "statedir_bytes")
       (jint health "cache_entries") (jint health "open_fds")
       (jint health "fd_limit"));
    line "shed %s   deadline %s   quarantined %s   resource %s"
      (jint health "shed_total")
      (jint health "deadline_exceeded_total")
      (jint health "quarantined_total")
      (jint health "resource_exhausted_total");
    (match (jnum slo "target_ms", jnum slo "objective") with
     | Some target, Some obj ->
       line "tenants (SLO: %.0fms at %.3g):" target obj
     | _ -> line "tenants:");
    (match Json.member "tenants" slo with
     | Some (Json.List tenants) when tenants <> [] ->
       List.iter
         (fun tn ->
           let s k =
             Option.value
               (Option.bind (Json.member k tn) Json.string_opt)
               ~default:"?"
           in
           let latency phase =
             match Json.member "latency" tn with
             | Some lat -> (
               match Json.member phase lat with
               | Some p -> (
                 match Option.bind (Json.member "p99_ms" p) Json.number_opt with
                 | Some ms -> Printf.sprintf "%.0fms" ms
                 | None -> "-")
               | None -> "-")
             | None -> "-"
           in
           line "  %-12s good %-5s violated %-4s burn %-6.2f p99 wait %s run %s e2e %s"
             (s "tenant") (jint tn "good") (jint tn "violated")
             (Option.value (jnum tn "burn_rate") ~default:0.0)
             (latency "queue_wait") (latency "run") (latency "end_to_end"))
         tenants
     | _ -> line "  (no traffic yet)");
    (match Json.member "jobs" jobs with
     | Some (Json.List all) ->
       let n = List.length all in
       let recent =
         (* Last 8, newest last (list is submission-ordered). *)
         let rec drop k = function
           | l when k <= 0 -> l
           | _ :: tl -> drop (k - 1) tl
           | [] -> []
         in
         drop (max 0 (n - 8)) all
       in
       line "jobs (%d total, showing %d):" n (List.length recent);
       List.iter
         (fun j ->
           let s k =
             Option.value
               (Option.bind (Json.member k j) Json.string_opt)
               ~default:"-"
           in
           line "  %-24s %-9s %-10s tenant %-10s run %ss"
             (s "job") (s "state") (s "circuit") (s "tenant")
             (match jnum j "run_s" with
              | Some r -> Printf.sprintf "%.2f" r
              | None -> "-"))
         recent
     | _ -> ());
    Buffer.contents b
  in
  let run socket tcp token interval once json =
    if interval <= 0.0 then user_error "--interval must be > 0";
    if json && not once then user_error "--json requires --once";
    let c =
      try
        match tcp with
        | Some hp ->
          let host, port = parse_hostport hp in
          Client.connect_tcp ?token host port
        | None -> Client.connect_unix ?token socket
      with Unix.Unix_error (e, _, _) ->
        user_error "cannot connect to the daemon: %s" (Unix.error_message e)
    in
    Graceful.install ();
    let fail msg =
      Printf.eprintf "accals: %s\n" msg;
      exit failure_exit
    in
    let snapshot () =
      match (Client.health c, Client.slo c, Client.rpc c Sproto.List) with
      | Ok health, Ok slo, Ok jobs -> (health, slo, jobs)
      | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> fail msg
    in
    let tick () =
      let health, slo, jobs = snapshot () in
      if json then
        print_string
          (Json.to_string ~pretty:true
             (Json.Obj
                [
                  ("health", health); ("slo", slo); ("jobs", jobs);
                  ("build", Build_info.to_json ());
                ])
           ^ "\n")
      else begin
        if not once then
          (* Clear screen + home, like top(1); never emitted in --once
             mode so piped output stays clean. *)
          print_string "\x1b[2J\x1b[H";
        print_string (render health slo jobs)
      end;
      flush stdout
    in
    tick ();
    if not once then begin
      let stop = ref false in
      while not !stop do
        Unix.sleepf interval;
        (match Graceful.stop_requested () with
         | Some _ -> stop := true
         | None -> tick ());
      done
    end;
    Client.close c;
    Graceful.run_hooks ();
    match Graceful.stop_requested () with
    | Some signal -> exit (Graceful.exit_code signal)
    | None -> ()
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ token_arg $ interval_arg $ once_flag
      $ top_json_flag)

let () =
  let doc = "Approximate logic synthesis with multi-LAC selection (AccALS)." in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info failure_exit
        ~doc:
          "on run failure: a runtime fault exhausted its retries, a network \
           invariant was violated, or a checkpoint was corrupt.";
      Cmd.Exit.info usage_exit
        ~doc:
          "on usage errors: bad command line, unknown circuit, unreadable \
           or malformed input file.";
      Cmd.Exit.info internal_exit ~doc:"on unexpected internal errors.";
      Cmd.Exit.info 130
        ~doc:
          "when interrupted by SIGINT: telemetry sinks are flushed, the \
           final round checkpoint is kept (synth) or the job queue is \
           checkpointed (serve) before exiting.";
      Cmd.Exit.info 143 ~doc:"likewise for SIGTERM.";
    ]
  in
  let info = Cmd.info "accals" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        list_cmd; stats_cmd; synth_cmd; convert_cmd; verify_cmd; sweep_cmd;
        serve_cmd; client_cmd; top_cmd;
      ]
  in
  let fail code fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "accals: %s\n" msg;
        code)
      fmt
  in
  exit
    (match Cmd.eval_value ~catch:false group with
    | Ok (`Ok ()) -> 0
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> usage_exit
    | Error `Exn -> internal_exit (* unreachable with ~catch:false *)
    | exception Blif.Parse_error msg -> fail usage_exit "%s" msg
    | exception Accals_aig.Aiger.Parse_error msg -> fail usage_exit "%s" msg
    | exception Sys_error msg -> fail usage_exit "%s" msg
    | exception (Accals_runtime.Fan_out.Runtime_failure _ as e) ->
      fail failure_exit "%s" (Printexc.to_string e)
    | exception (Network.Invariant_violation _ as e) ->
      fail failure_exit "%s" (Printexc.to_string e)
    | exception Checkpoint.Corrupt msg ->
      fail failure_exit "corrupt checkpoint: %s" msg
    | exception Graceful.Interrupted signal ->
      Graceful.run_hooks ();
      fail (Graceful.exit_code signal) "interrupted, shut down gracefully"
    | exception Unix.Unix_error (err, fn, arg) ->
      fail failure_exit "%s: %s (%s)" fn (Unix.error_message err) arg
    | exception e ->
      Printf.eprintf "accals: internal error: %s\n%s" (Printexc.to_string e)
        (Printexc.get_backtrace ());
      internal_exit)
