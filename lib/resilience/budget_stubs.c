/* Resource probes OCaml's Unix module does not expose.
 *
 * statvfs gives the free bytes on the filesystem backing --state-dir (the
 * disk governor's headroom check must see the same number the kernel will
 * enforce with ENOSPC, not a du(1)-style walk of one directory), and
 * getrlimit(RLIMIT_NOFILE) gives the fd ceiling the accept loop must stay
 * under. Both return -1 on platforms or paths where the probe fails; the
 * governors treat that as "unknown" and stand down rather than guess. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <stdint.h>

#ifdef _WIN32

CAMLprim value accals_statvfs_free_bytes(value path)
{
  CAMLparam1(path);
  CAMLreturn(caml_copy_int64(-1));
}

CAMLprim value accals_fd_soft_limit(value unit)
{
  (void)unit;
  return caml_copy_int64(-1);
}

#else

#include <sys/statvfs.h>
#include <sys/resource.h>

CAMLprim value accals_statvfs_free_bytes(value path)
{
  CAMLparam1(path);
  struct statvfs st;
  int64_t free_bytes = -1;
  if (statvfs(String_val(path), &st) == 0)
    free_bytes = (int64_t)st.f_bavail * (int64_t)st.f_frsize;
  CAMLreturn(caml_copy_int64(free_bytes));
}

CAMLprim value accals_fd_soft_limit(value unit)
{
  (void)unit;
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0 || rl.rlim_cur == RLIM_INFINITY)
    return caml_copy_int64(-1);
  return caml_copy_int64((int64_t)rl.rlim_cur);
}

#endif
