type mode = Raise | Stall of float

type spec = { seed : int; every : int; attempts : int; mode : mode }

exception Injected of { batch : int; index : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { batch; index; attempt } ->
      Some
        (Printf.sprintf "Fault.Injected (batch %d, task %d, attempt %d)" batch
           index attempt)
    | _ -> None)

let default ~seed = { seed; every = 4; attempts = 1; mode = Raise }

let parse s =
  let parse_field spec field =
    match String.index_opt field ':' with
    | None -> Error (Printf.sprintf "expected key:value, got %S" field)
    | Some i ->
      let key = String.sub field 0 i in
      let value = String.sub field (i + 1) (String.length field - i - 1) in
      let int_of v =
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "%s expects an integer, got %S" key v)
      in
      (match key with
       | "seed" -> Result.map (fun seed -> { spec with seed }) (int_of value)
       | "every" ->
         Result.bind (int_of value) (fun every ->
             if every < 1 then Error "every must be at least 1"
             else Ok { spec with every })
       | "attempts" ->
         Result.bind (int_of value) (fun attempts ->
             if attempts < 1 then Error "attempts must be at least 1"
             else Ok { spec with attempts })
       | "stall" -> (
         match float_of_string_opt value with
         | Some f when f >= 0.0 -> Ok { spec with mode = Stall f }
         | _ -> Error (Printf.sprintf "stall expects seconds, got %S" value))
       | "mode" -> (
         match value with
         | "raise" -> Ok { spec with mode = Raise }
         | _ -> Error (Printf.sprintf "unknown mode %S" value))
       | _ -> Error (Printf.sprintf "unknown key %S" key))
  in
  let fields = String.split_on_char ',' (String.trim s) in
  let has_seed =
    List.exists
      (fun f -> String.length f >= 5 && String.sub f 0 5 = "seed:")
      fields
  in
  if not has_seed then Error "missing required seed:N field"
  else
    List.fold_left
      (fun acc field -> Result.bind acc (fun spec -> parse_field spec field))
      (Ok (default ~seed:0))
      fields

let state : spec option Atomic.t =
  let initial =
    match Sys.getenv_opt "ACCALS_FAULTS" with
    | None | Some "" -> None
    | Some s -> (
      match parse s with
      | Ok spec -> Some spec
      | Error msg ->
        (* A typo'd fault spec silently running fault-free would defeat the
           chaos test it was meant to arm: fail loudly at startup instead. *)
        Printf.eprintf "accals: invalid ACCALS_FAULTS %S: %s\n%!" s msg;
        exit 2)
  in
  Atomic.make initial

let arm spec = Atomic.set state (Some spec)
let disarm () = Atomic.set state None
let current () = Atomic.get state

let batch_counter = Atomic.make 0
let fresh_batch () = Atomic.fetch_and_add batch_counter 1

let injections = Atomic.make 0
let injected_count () = Atomic.get injections

(* splitmix64 finalizer: decisions depend only on (seed, batch, index). *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let selects spec ~batch ~index =
  spec.every <= 1
  ||
  let key =
    Int64.add
      (Int64.mul (Int64.of_int spec.seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int batch) 0xD1B54A32D192ED03L)
         (Int64.of_int index))
  in
  Int64.rem (Int64.shift_right_logical (mix64 key) 1) (Int64.of_int spec.every)
  = 0L

let check ~batch ~index ~attempt =
  match Atomic.get state with
  | None -> ()
  | Some spec ->
    if attempt < spec.attempts && selects spec ~batch ~index then begin
      Atomic.incr injections;
      match spec.mode with
      | Raise -> raise (Injected { batch; index; attempt })
      | Stall seconds -> if seconds > 0.0 then Unix.sleepf seconds
    end
