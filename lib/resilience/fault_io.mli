(** Deterministic syscall-level fault injection for durable-write paths.

    Where {!Fault} injects failures into pool {e tasks}, this module injects
    them into the individual I/O operations that persistence code performs:
    opening a file, writing bytes, fsyncing, renaming. Checkpoint saves,
    cache stores and artifact writers route their I/O through the wrappers
    below so a chaos run can make precisely the Nth write observe [ENOSPC],
    the Nth open observe [EMFILE], or a write land only a prefix of its
    bytes (a torn write) — and prove the recovery paths, instead of hoping
    for them.

    The spec comes from the [ACCALS_SYSCALL_FAULTS] environment variable:
    comma-separated clauses of the form

    {v
      seed:N               seed for probabilistic (%) clauses
      write:enospc@3       the 3rd governed write raises ENOSPC
      open:emfile@1..4     governed opens 1 through 4 raise EMFILE
      write:short@2        the 2nd write lands a prefix, then raises ENOSPC
      rename:enospc%8      each rename fails 1-in-8, keyed on (seed, count)
    v}

    Occurrence counts are 1-based and per-site (all governed writes share
    one counter, all governed opens another, ...). Probabilistic clauses
    are deterministic: the decision for occurrence [n] depends only on
    [(seed, site, n)], so a failing chaos run replays exactly. A malformed
    spec aborts the process at startup with exit code 2 — a typo'd spec
    silently running fault-free would defeat the test it was meant to arm. *)

type site = Open | Write | Rename | Fsync
type kind = Enospc | Emfile | Short

type clause = {
  site : site;
  kind : kind;
  sel : [ `At of int * int  (** inclusive 1-based occurrence range *)
        | `Every of int  (** 1-in-K, keyed on (seed, site, occurrence) *) ];
}

type spec = { seed : int; clauses : clause list }

val parse : string -> (spec, string) result
(** Parse an [ACCALS_SYSCALL_FAULTS] spec. *)

val arm : spec -> unit
(** Arm [spec] and reset the per-site occurrence counters, so tests get a
    fresh count regardless of earlier governed I/O. *)

val disarm : unit -> unit
val current : unit -> spec option

val injected_count : unit -> int
(** Total faults injected since the last {!arm} (or process start). *)

val site_name : site -> string
val kind_name : kind -> string

(** {2 Governed operations}

    Drop-in replacements for the stdlib/Unix calls on durable-write paths.
    With no spec armed they delegate directly. Injected failures surface as
    [Unix.Unix_error (ENOSPC | EMFILE, ...)], exactly as the real syscall
    would; a [Short] write first lands a prefix of the payload (torn file)
    and then raises [ENOSPC]. *)

val open_out_bin : string -> out_channel
val output_string : out_channel -> string -> unit
val output_bytes : out_channel -> bytes -> unit
val fsync : Unix.file_descr -> unit
val rename : string -> string -> unit
