(** CRC-32 (IEEE 802.3), used to seal checkpoint payloads and to
    fingerprint signature sets during shadow audits.

    The streaming interface is [init] → [add_*]* → [finish]; the digest of
    ["123456789"] is [0xCBF43926] (the standard check value). All values are
    plain non-negative [int]s masked to 32 bits. *)

val init : int
(** Initial accumulator state. *)

val add_byte : int -> int -> int
(** [add_byte crc b] folds the low 8 bits of [b] into [crc]. *)

val add_int : int -> int -> int
(** [add_int crc x] folds [x] as 8 little-endian bytes into [crc]. *)

val add_bytes : int -> bytes -> int
val add_subbytes : int -> bytes -> int -> int -> int
val add_string : int -> string -> int

val finish : int -> int
(** Final xor; the 32-bit digest. *)

val digest_bytes : bytes -> int
val digest_string : string -> int

val to_hex : int -> string
(** Eight lowercase hex digits. *)
