type t = { started : float; budget : float option }

let start budget = { started = Unix.gettimeofday (); budget }

let unlimited = { started = 0.0; budget = None }

let elapsed t = Unix.gettimeofday () -. t.started

let expired t =
  match t.budget with None -> false | Some b -> elapsed t >= b

let remaining t =
  match t.budget with
  | None -> None
  | Some b -> Some (Float.max 0.0 (b -. elapsed t))
