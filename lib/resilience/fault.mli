(** Deterministic fault injection for the parallel runtime.

    A fault [spec] selects work units by a pure hash of [(seed, batch,
    index)] — never by wall clock, scheduling order or domain identity — so
    the set of injected faults is reproducible from the seed alone.  The
    runtime's fan-out layer consults {!check} once per task attempt; a
    selected unit either raises {!Injected} (simulating a crashed worker) or
    stalls for a fixed duration (simulating a hung one).

    Injection is disabled unless a spec is armed, either programmatically
    ({!arm}) or through the [ACCALS_FAULTS] environment variable read at
    program start.  The environment syntax is a comma-separated key:value
    list, e.g. [ACCALS_FAULTS=seed:42,every:4,attempts:1] or
    [ACCALS_FAULTS=seed:7,every:2,stall:0.002]. *)

type mode =
  | Raise  (** the selected task attempt raises {!Injected} *)
  | Stall of float  (** the selected task attempt sleeps this many seconds *)

type spec = {
  seed : int;  (** hash seed; equal seeds give equal fault sets *)
  every : int;  (** inject into ~1/[every] of the units; [<= 1] means all *)
  attempts : int;
      (** inject only into attempt numbers [< attempts]; with the default 1
          a retry of the same unit succeeds, with a large value the unit
          fails persistently and retries exhaust *)
  mode : mode;
}

exception Injected of { batch : int; index : int; attempt : int }
(** The simulated worker crash. Carries the logical batch serial, the task
    index within the batch and the attempt number (0 = first try). *)

val default : seed:int -> spec
(** [every = 4], [attempts = 1], [mode = Raise]. *)

val parse : string -> (spec, string) result
(** Parse the [ACCALS_FAULTS] syntax. [seed:N] is required; [every:N],
    [attempts:N] and [stall:SECONDS] are optional. *)

val arm : spec -> unit
(** Enable injection process-wide (all pools, all domains). *)

val disarm : unit -> unit

val current : unit -> spec option
(** The armed spec, if any. At program start this is the parsed
    [ACCALS_FAULTS] value. A malformed value (e.g. [seed:], [foo], a
    negative count) is a configuration error: the process prints a one-line
    diagnostic to stderr and exits with code 2 rather than silently running
    without the requested fault injection. *)

val fresh_batch : unit -> int
(** Next logical batch serial. The fan-out layer draws one serial per
    logical submission and reuses it for every retry attempt of that
    submission, keeping the fault decision independent of retries. *)

val check : batch:int -> index:int -> attempt:int -> unit
(** Consulted once per task attempt. No-op when disarmed; otherwise raises
    {!Injected} or stalls when the unit is selected by the armed spec. *)

val injected_count : unit -> int
(** Total injections (raises and stalls) since the process started. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer behind fault selection, exposed so sibling
    injectors ({!Fault_io}) key their deterministic decisions off the same
    hash. *)
