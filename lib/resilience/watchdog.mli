(** Wall-clock deadlines for graceful degradation.

    A watchdog is started with an optional time budget in seconds; [None]
    never expires. Callers poll {!expired} at safe points (round boundaries,
    between phases) — there is no asynchronous interruption, so a deadline
    can only change *which* deterministic path runs, never leave shared
    state half-mutated. *)

type t

val start : float option -> t
(** [start (Some budget)] expires [budget] seconds from now;
    [start None] never expires. *)

val unlimited : t
(** A watchdog that never expires. *)

val expired : t -> bool

val elapsed : t -> float
(** Seconds since [start]. *)

val remaining : t -> float option
(** Seconds until expiry ([Some 0.] once expired); [None] when unlimited. *)
