external statvfs_free_bytes : string -> int64 = "accals_statvfs_free_bytes"
external fd_soft_limit : unit -> int64 = "accals_fd_soft_limit"

module Memory = struct
  type t = {
    limit_bytes : int;
    mutable sources : (string * (unit -> int)) list;
    lock : Mutex.t;
  }

  let create ~limit_bytes = { limit_bytes; sources = []; lock = Mutex.create () }
  let limit_bytes t = t.limit_bytes

  let register_source t ~name f =
    Mutex.lock t.lock;
    t.sources <- (name, f) :: List.remove_assoc name t.sources;
    Mutex.unlock t.lock

  let sample t =
    let heap_bytes =
      (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8)
    in
    Mutex.lock t.lock;
    let sources = t.sources in
    Mutex.unlock t.lock;
    List.fold_left
      (fun acc (_, f) -> acc + (try max 0 (f ()) with _ -> 0))
      heap_bytes sources

  type pressure = Nominal | Soft | Hard

  (* Soft pressure at 85% leaves enough slack for one more round of growth
     while the cheap relief (cache drops, Gc.compact) takes effect. *)
  let soft_fraction = 0.85

  let classify t ~bytes =
    if t.limit_bytes <= 0 then Nominal
    else if bytes >= t.limit_bytes then Hard
    else if float_of_int bytes >= soft_fraction *. float_of_int t.limit_bytes
    then Soft
    else Nominal

  let pressure t = classify t ~bytes:(sample t)
end

module Disk = struct
  let free_bytes path =
    match statvfs_free_bytes path with
    | n when n < 0L -> None
    | n when n > Int64.of_int max_int -> Some max_int
    | n -> Some (Int64.to_int n)

  let rec usage_bytes path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.fold_left
        (fun acc entry -> acc + usage_bytes (Filename.concat path entry))
        0
        (try Sys.readdir path with Sys_error _ -> [||])
    | _ -> 0
    | exception Unix.Unix_error (_, _, _) -> 0

  let has_headroom ~dir ~headroom_bytes =
    headroom_bytes <= 0
    ||
    match free_bytes dir with
    | None -> true
    | Some free -> free >= headroom_bytes
end

module Fd = struct
  let open_fds () =
    match Sys.readdir "/proc/self/fd" with
    (* The readdir itself holds one fd open; don't count it. *)
    | entries -> Some (max 0 (Array.length entries - 1))
    | exception Sys_error _ -> None

  let limit () =
    match fd_soft_limit () with
    | n when n <= 0L -> None
    | n when n > Int64.of_int max_int -> None
    | n -> Some (Int64.to_int n)

  let should_accept ~reserve =
    match (open_fds (), limit ()) with
    (* [lim - reserve] rather than [used + 1 + reserve]: the subtraction
       cannot overflow for any CLI-supplied reserve. *)
    | Some used, Some lim -> used + 1 <= lim - max 0 reserve
    | _ -> true
end
