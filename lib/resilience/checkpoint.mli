(** Versioned, atomically-replaced checkpoint files.

    A checkpoint is a one-line header ([ACCALS-CKPT <version> <tag>])
    followed by a marshalled OCaml value.  {!save} writes to a temporary
    file in the same directory and renames it over the target, so a reader
    (or a resumed run) only ever sees either the previous complete
    checkpoint or the new complete one — never a torn write, even if the
    writer is SIGKILLed mid-save.

    The [tag] names the payload type (e.g. ["engine"]); {!load} refuses a
    file whose version or tag does not match, raising {!Corrupt} instead of
    letting [Marshal] segfault on a foreign payload.  As with any use of
    [Marshal], a checkpoint is only portable between binaries built from the
    same sources. *)

val version : int

exception Corrupt of string
(** Raised by {!load} on a bad magic line, version/tag mismatch, or a
    truncated/unreadable payload. *)

val save : path:string -> tag:string -> 'a -> unit
(** [save ~path ~tag v] atomically replaces [path] with a checkpoint
    holding [v]. The parent directory must exist. *)

val load : path:string -> tag:string -> 'a option
(** [load ~path ~tag] is [None] when [path] does not exist, the decoded
    value when it holds a matching checkpoint, and raises {!Corrupt}
    otherwise. The caller must ascribe the expected type; the [tag] is the
    guard against mixing payload types. *)
