(** Versioned, CRC-sealed, atomically-replaced checkpoint files with
    snapshot rotation.

    A checkpoint is a one-line header
    ([ACCALS-CKPT <version> <tag> crc=<hex> len=<bytes>]) followed by a
    marshalled OCaml value. {!save} writes to a temporary file in the same
    directory and renames it over the target, so a reader (or a resumed
    run) only ever sees either the previous complete checkpoint or the new
    complete one — never a torn write, even if the writer is SIGKILLed
    mid-save.

    The header carries the payload length and CRC-32, so any truncation or
    bit corruption of the payload is detected {e before} the bytes reach
    [Marshal] and surfaces as {!Corrupt}. With [~keep:k > 1], {!save}
    rotates the previous snapshot to [path.1], [path.1] to [path.2], and
    so on, keeping the last [k] generations; {!load_rotated} scans
    newest-to-oldest and resumes from the newest intact one, reporting each
    corrupt file it skips.

    The [tag] names the payload type (e.g. ["engine"]); {!load} refuses a
    file whose version or tag does not match. As with any use of [Marshal],
    a checkpoint is only portable between binaries built from the same
    sources. *)

val version : int

exception Corrupt of string
(** Raised on a bad magic line, version/tag mismatch, payload
    length/CRC mismatch, or an undecodable payload. *)

val rotated : string -> int -> string
(** [rotated path i] is the on-disk name of generation [i]: [path] itself
    for [i = 0] (the newest), [path.i] otherwise. *)

val save : ?keep:int -> path:string -> tag:string -> 'a -> unit
(** [save ?keep ~path ~tag v] atomically replaces [path] with a checkpoint
    holding [v], first rotating existing generations when [keep > 1]
    (default [1]: no rotation, previous snapshot overwritten). The parent
    directory must exist. *)

val load : path:string -> tag:string -> 'a option
(** [load ~path ~tag] is [None] when [path] does not exist, the decoded
    value when it holds a matching intact checkpoint, and raises {!Corrupt}
    otherwise. The caller must ascribe the expected type; the [tag] is the
    guard against mixing payload types. *)

val load_rotated :
  ?on_corrupt:(path:string -> string -> unit) ->
  path:string ->
  tag:string ->
  keep:int ->
  unit ->
  ('a * string) option
(** [load_rotated ~path ~tag ~keep ()] scans generations newest-to-oldest
    ([path], [path.1], ...) and returns the first intact checkpoint
    together with the file it came from. Corrupt generations are skipped
    after calling [on_corrupt ~path msg]. [None] when no checkpoint file
    exists at all; raises {!Corrupt} when files exist but none is intact. *)
