(** Memory, disk and file-descriptor budgets for long-lived processes.

    Each governor is a cheap observation layer: it tells callers how close
    the process is to a configured ceiling, and the callers (engine round
    loop, server accept loop, cache store path) decide what to shed or
    degrade. Nothing here takes corrective action on its own — policy lives
    with the state it must protect.

    All probes degrade gracefully on platforms where the underlying
    facility is missing: they report "unknown" and the governors built on
    them stand down rather than enforce a limit against a guessed value. *)

(** Heap accounting for the [--max-memory-mb] watchdog. The base sample is
    the GC's major-heap size; registered sources add bytes the GC cannot
    see proportionally (Bigarray-backed sigdb arenas, pooled signature
    buffers). *)
module Memory : sig
  type t

  val create : limit_bytes:int -> t
  (** [limit_bytes <= 0] disables enforcement; sampling still works. *)

  val limit_bytes : t -> int

  val register_source : t -> name:string -> (unit -> int) -> unit
  (** Register a live byte counter (called at every {!sample}). Sources are
      process-wide per governor; registering under an existing name
      replaces the old source. *)

  val sample : t -> int
  (** Current footprint estimate in bytes: GC major heap words times word
      size, plus every registered source. *)

  (** Escalation level for the sampled footprint against the limit.
      [Soft] (>= 85% of the limit) asks for cheap relief — dropping caches
      and pools that only cost time to rebuild. [Hard] (>= 100%) demands a
      structural response: degrade the backend, then checkpoint and shed. *)
  type pressure = Nominal | Soft | Hard

  val classify : t -> bytes:int -> pressure
  (** Classify an externally taken sample against the limit. Always
      [Nominal] when the limit is off. *)

  val pressure : t -> pressure
  (** [classify t ~bytes:(sample t)]. *)
end

(** Free-space accounting for the shared [--state-dir]. *)
module Disk : sig
  val free_bytes : string -> int option
  (** Free bytes on the filesystem backing [path] (statvfs [f_bavail]
      — what an unprivileged write can actually use). [None] when the
      probe fails. *)

  val usage_bytes : string -> int
  (** Recursive byte total of the files under [path]; 0 when the directory
      is missing. Symlinks are not followed. *)

  val has_headroom : dir:string -> headroom_bytes:int -> bool
  (** Whether the filesystem backing [dir] has at least [headroom_bytes]
      free. [true] when the probe fails or the reservation is [<= 0] —
      an unknown filesystem must not refuse work. *)
end

(** File-descriptor accounting for the accept loop. *)
module Fd : sig
  val open_fds : unit -> int option
  (** Count of open descriptors (via [/proc/self/fd]); [None] where that
      interface is missing. *)

  val limit : unit -> int option
  (** The soft [RLIMIT_NOFILE] ceiling; [None] when unlimited or the probe
      fails. *)

  val should_accept : reserve:int -> bool
  (** Whether accepting one more connection still leaves [reserve]
      descriptors of slack under the soft limit. [true] when either probe
      is unavailable — shedding must only happen on evidence. *)
end
