let version = 1

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Checkpoint.Corrupt %S" msg)
    | _ -> None)

let header tag = Printf.sprintf "ACCALS-CKPT %d %s" version tag

let save ~path ~tag v =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (header tag);
     output_char oc '\n';
     Marshal.to_channel oc v [];
     flush oc;
     (* Land the bytes before the rename makes them the checkpoint. *)
     Unix.fsync (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let load ~path ~tag =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let line =
      try input_line ic
      with End_of_file -> raise (Corrupt (path ^ ": empty checkpoint"))
    in
    if line <> header tag then
      raise
        (Corrupt
           (Printf.sprintf "%s: bad checkpoint header %S (want %S)" path line
              (header tag)));
    match Marshal.from_channel ic with
    | v -> Some v
    | exception (End_of_file | Failure _) ->
      raise (Corrupt (path ^ ": truncated or unreadable payload"))
  end
