let version = 2

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Checkpoint.Corrupt %S" msg)
    | _ -> None)

let header ~tag ~crc ~length =
  Printf.sprintf "ACCALS-CKPT %d %s crc=%s len=%d" version tag
    (Crc32.to_hex crc) length

let rotated path i = if i = 0 then path else Printf.sprintf "%s.%d" path i

(* Shift [path] -> [path.1] -> ... -> [path.(keep-1)], dropping the oldest.
   Renames are atomic, and a crash mid-shift at worst duplicates one
   generation — it never produces a torn file. *)
let rotate ~path ~keep =
  if keep > 1 && Sys.file_exists path then
    for i = keep - 2 downto 0 do
      let src = rotated path i in
      if Sys.file_exists src then Sys.rename src (rotated path (i + 1))
    done

(* All durable I/O goes through Fault_io so chaos runs can make precisely
   the Nth open/write/fsync/rename observe ENOSPC, EMFILE or a torn write.
   With no spec armed these are the plain stdlib calls. *)
let save ?(keep = 1) ~path ~tag v =
  let payload = Marshal.to_bytes v [] in
  let crc = Crc32.digest_bytes payload in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = Fault_io.open_out_bin tmp in
  (try
     Fault_io.output_string oc (header ~tag ~crc ~length:(Bytes.length payload));
     output_char oc '\n';
     Fault_io.output_bytes oc payload;
     flush oc;
     (* Land the bytes before the rename makes them the checkpoint. *)
     Fault_io.fsync (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  rotate ~path ~keep;
  (try Fault_io.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  let module T = Accals_telemetry.Telemetry in
  T.count "accals_checkpoint_saves_total"
    ~help:"Checkpoints written (including rotations)" 1;
  T.count "accals_checkpoint_bytes_total"
    ~help:"Marshalled checkpoint payload bytes written"
    (Bytes.length payload);
  T.instant ~cat:"checkpoint"
    ~args:
      [
        ("tag", Accals_telemetry.Json.String tag);
        ("bytes", Accals_telemetry.Json.Int (Bytes.length payload));
      ]
    "checkpoint.save"

let parse_header path line =
  match String.split_on_char ' ' line with
  | [ "ACCALS-CKPT"; v; tag; crc; len ] ->
    let v =
      match int_of_string_opt v with
      | Some v -> v
      | None -> raise (Corrupt (path ^ ": malformed header version"))
    in
    let crc =
      match
        if String.length crc > 4 && String.sub crc 0 4 = "crc=" then
          int_of_string_opt ("0x" ^ String.sub crc 4 (String.length crc - 4))
        else None
      with
      | Some c -> c
      | None -> raise (Corrupt (path ^ ": malformed header crc"))
    in
    let len =
      match
        if String.length len > 4 && String.sub len 0 4 = "len=" then
          int_of_string_opt (String.sub len 4 (String.length len - 4))
        else None
      with
      | Some l when l >= 0 -> l
      | _ -> raise (Corrupt (path ^ ": malformed header length"))
    in
    (v, tag, crc, len)
  | _ ->
    raise (Corrupt (Printf.sprintf "%s: bad checkpoint header %S" path line))

let load ~path ~tag =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let line =
      try input_line ic
      with End_of_file -> raise (Corrupt (path ^ ": empty checkpoint"))
    in
    let file_version, file_tag, crc, length = parse_header path line in
    if file_version <> version then
      raise
        (Corrupt
           (Printf.sprintf "%s: checkpoint version %d (want %d)" path
              file_version version));
    if file_tag <> tag then
      raise
        (Corrupt
           (Printf.sprintf "%s: checkpoint tag %S (want %S)" path file_tag tag));
    let total = in_channel_length ic in
    if total - pos_in ic <> length then
      raise
        (Corrupt
           (Printf.sprintf "%s: payload is %d bytes, header says %d" path
              (total - pos_in ic) length));
    let payload = Bytes.create length in
    (try really_input ic payload 0 length
     with End_of_file -> raise (Corrupt (path ^ ": truncated payload")));
    let actual = Crc32.digest_bytes payload in
    if actual <> crc then
      raise
        (Corrupt
           (Printf.sprintf "%s: payload crc %s, header says %s" path
              (Crc32.to_hex actual) (Crc32.to_hex crc)));
    (* The CRC matched, so Marshal sees exactly the bytes that were written;
       a decode failure past this point still surfaces as Corrupt. *)
    match Marshal.from_bytes payload 0 with
    | v -> Some v
    | exception (Failure _ | Invalid_argument _ | End_of_file) ->
      raise (Corrupt (path ^ ": undecodable payload"))
  end

(* Scan well past [keep] so that lowering --ckpt-keep between runs still
   finds older generations left on disk. *)
let max_scan = 64

let load_rotated ?(on_corrupt = fun ~path:_ _ -> ()) ~path ~tag ~keep () =
  let limit = max keep 1 in
  let rec scan i candidates =
    if i >= max_scan then (None, candidates)
    else begin
      let p = rotated path i in
      if not (Sys.file_exists p) then
        if i < limit then scan (i + 1) candidates else (None, candidates)
      else
        match load ~path:p ~tag with
        | Some v -> (Some (v, p), candidates + 1)
        | None -> scan (i + 1) candidates
        | exception Corrupt msg ->
          on_corrupt ~path:p msg;
          scan (i + 1) (candidates + 1)
    end
  in
  match scan 0 0 with
  | Some found, _ -> Some found
  | None, 0 -> None
  | None, n ->
    raise
      (Corrupt
         (Printf.sprintf "%s: no intact checkpoint among %d candidate file%s"
            path n
            (if n = 1 then "" else "s")))
