type site = Open | Write | Rename | Fsync
type kind = Enospc | Emfile | Short

type clause = {
  site : site;
  kind : kind;
  sel : [ `At of int * int | `Every of int ];
}

type spec = { seed : int; clauses : clause list }

let site_name = function
  | Open -> "open"
  | Write -> "write"
  | Rename -> "rename"
  | Fsync -> "fsync"

let kind_name = function
  | Enospc -> "enospc"
  | Emfile -> "emfile"
  | Short -> "short"

let site_of_string = function
  | "open" -> Some Open
  | "write" -> Some Write
  | "rename" -> Some Rename
  | "fsync" -> Some Fsync
  | _ -> None

let kind_of_string = function
  | "enospc" -> Some Enospc
  | "emfile" -> Some Emfile
  | "short" -> Some Short
  | _ -> None

(* A clause is [site:kind@N], [site:kind@N..M] or [site:kind%K]; the spec
   also carries at most one [seed:N] field (required iff a % clause is
   present, since the 1-in-K decision is keyed on the seed). *)
let parse_clause field =
  match String.index_opt field ':' with
  | None -> Error (Printf.sprintf "expected site:kind@N or seed:N, got %S" field)
  | Some i ->
    let site_s = String.sub field 0 i in
    let rest = String.sub field (i + 1) (String.length field - i - 1) in
    (match site_of_string site_s with
     | None -> Error (Printf.sprintf "unknown fault site %S" site_s)
     | Some site ->
       let split_once c s =
         match String.index_opt s c with
         | None -> None
         | Some j ->
           Some (String.sub s 0 j, String.sub s (j + 1) (String.length s - j - 1))
       in
       let with_kind kind_s k =
         match kind_of_string kind_s with
         | None -> Error (Printf.sprintf "unknown fault kind %S" kind_s)
         | Some kind -> k kind
       in
       (match split_once '@' rest with
        | Some (kind_s, occ) ->
          with_kind kind_s (fun kind ->
              match split_once '.' occ with
              | Some (lo, hi_dotted)
                when String.length hi_dotted > 0 && hi_dotted.[0] = '.' ->
                let hi = String.sub hi_dotted 1 (String.length hi_dotted - 1) in
                (match (int_of_string_opt lo, int_of_string_opt hi) with
                 | Some lo, Some hi when lo >= 1 && hi >= lo ->
                   Ok { site; kind; sel = `At (lo, hi) }
                 | _ ->
                   Error
                     (Printf.sprintf "bad occurrence range %S (want N..M, 1-based)"
                        occ))
              | _ -> (
                match int_of_string_opt occ with
                | Some n when n >= 1 -> Ok { site; kind; sel = `At (n, n) }
                | _ ->
                  Error
                    (Printf.sprintf "bad occurrence %S (want a 1-based count)" occ)))
        | None -> (
          match split_once '%' rest with
          | Some (kind_s, k) ->
            with_kind kind_s (fun kind ->
                match int_of_string_opt k with
                | Some k when k >= 1 -> Ok { site; kind; sel = `Every k }
                | _ -> Error (Printf.sprintf "bad period %S (want K >= 1)" k))
          | None ->
            Error
              (Printf.sprintf "clause %S needs @N, @N..M or %%K after the kind"
                 field))))

let parse s =
  let fields =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  if fields = [] then Error "empty spec"
  else
    let rec go seed clauses = function
      | [] ->
        let clauses = List.rev clauses in
        if clauses = [] then Error "spec has no fault clauses"
        else if
          seed = None
          && List.exists (fun c -> match c.sel with `Every _ -> true | _ -> false)
               clauses
        then Error "%K clauses require a seed:N field"
        else Ok { seed = Option.value seed ~default:0; clauses }
      | f :: rest ->
        if String.length f >= 5 && String.sub f 0 5 = "seed:" then
          match int_of_string_opt (String.sub f 5 (String.length f - 5)) with
          | Some n -> go (Some n) clauses rest
          | None -> Error (Printf.sprintf "seed expects an integer, got %S" f)
        else
          (match parse_clause f with
           | Ok c -> go seed (c :: clauses) rest
           | Error _ as e -> e)
    in
    go None [] fields

let state : spec option Atomic.t =
  let initial =
    match Sys.getenv_opt "ACCALS_SYSCALL_FAULTS" with
    | None | Some "" -> None
    | Some s -> (
      match parse s with
      | Ok spec -> Some spec
      | Error msg ->
        Printf.eprintf "accals: invalid ACCALS_SYSCALL_FAULTS %S: %s\n%!" s msg;
        exit 2)
  in
  Atomic.make initial

(* Per-site occurrence counters; 1-based at the point of decision. *)
let counters = [| Atomic.make 0; Atomic.make 0; Atomic.make 0; Atomic.make 0 |]

let site_index = function Open -> 0 | Write -> 1 | Rename -> 2 | Fsync -> 3

let reset_counters () = Array.iter (fun c -> Atomic.set c 0) counters

let injections = Atomic.make 0
let injected_count () = Atomic.get injections

let arm spec =
  reset_counters ();
  Atomic.set injections 0;
  Atomic.set state (Some spec)

let disarm () = Atomic.set state None
let current () = Atomic.get state

let selects spec clause ~occurrence =
  match clause.sel with
  | `At (lo, hi) -> occurrence >= lo && occurrence <= hi
  | `Every k ->
    k <= 1
    ||
    let key =
      Int64.add
        (Int64.mul (Int64.of_int spec.seed) 0x9E3779B97F4A7C15L)
        (Int64.add
           (Int64.mul (Int64.of_int (site_index clause.site)) 0xD1B54A32D192ED03L)
           (Int64.of_int occurrence))
    in
    Int64.rem (Int64.shift_right_logical (Fault.mix64 key) 1) (Int64.of_int k)
    = 0L

(* Returns the kind to inject at this call site, if any, bumping the site's
   occurrence counter exactly once per governed call. *)
let check site =
  match Atomic.get state with
  | None -> None
  | Some spec ->
    let occurrence = 1 + Atomic.fetch_and_add counters.(site_index site) 1 in
    let hit =
      List.find_opt
        (fun c -> c.site = site && selects spec c ~occurrence)
        spec.clauses
    in
    (match hit with
     | Some c ->
       Atomic.incr injections;
       Some c.kind
     | None -> None)

let unix_error kind ~syscall ~arg =
  let err = match kind with
    | Emfile -> Unix.EMFILE
    | Enospc | Short -> Unix.ENOSPC
  in
  raise (Unix.Unix_error (err, syscall, arg))

let open_out_bin path =
  match check Open with
  | Some kind -> unix_error kind ~syscall:"open" ~arg:path
  | None -> open_out_bin path

let write_faulted kind oc ~emit_prefix =
  (match kind with Short -> emit_prefix () | Enospc | Emfile -> ());
  (* Land the torn prefix before raising, so the file on disk really is
     short — that is the state the recovery path must survive. *)
  (try flush oc with Sys_error _ -> ());
  unix_error kind ~syscall:"write" ~arg:""

let output_string oc s =
  match check Write with
  | None -> output_string oc s
  | Some kind ->
    write_faulted kind oc ~emit_prefix:(fun () ->
        output_substring oc s 0 (String.length s / 2))

let output_bytes oc b =
  match check Write with
  | None -> output_bytes oc b
  | Some kind ->
    write_faulted kind oc ~emit_prefix:(fun () ->
        output oc b 0 (Bytes.length b / 2))

let fsync fd =
  match check Fsync with
  | Some kind -> unix_error kind ~syscall:"fsync" ~arg:""
  | None -> Unix.fsync fd

let rename src dst =
  match check Rename with
  | Some kind -> unix_error kind ~syscall:"rename" ~arg:dst
  | None -> Sys.rename src dst
