(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Implemented over plain OCaml [int]s masked to 32 bits so it works
   identically on every 64-bit platform without Int32 boxing. *)

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c land mask))

let init = mask

let add_byte crc b =
  let table = Lazy.force table in
  table.((crc lxor (b land 0xFF)) land 0xFF) lxor (crc lsr 8) land mask

let add_int crc x =
  (* Feed a 63-bit OCaml int as 8 little-endian bytes; the top byte carries
     the sign bit so negative ints hash distinctly too. *)
  let crc = ref crc in
  for shift = 0 to 7 do
    crc := add_byte !crc ((x asr (shift * 8)) land 0xFF)
  done;
  !crc

let add_subbytes crc b pos len =
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := add_byte !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc

let add_bytes crc b = add_subbytes crc b 0 (Bytes.length b)
let add_string crc s = add_bytes crc (Bytes.unsafe_of_string s)
let finish crc = crc lxor mask land mask
let digest_bytes b = finish (add_bytes init b)
let digest_string s = finish (add_string init s)
let to_hex crc = Printf.sprintf "%08x" (crc land mask)
