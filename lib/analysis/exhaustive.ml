open Accals_network
module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric

let max_inputs = 24

let chunk_bits = 13

type report = {
  error_rate : float;
  mean_error_distance : float;
  normalized_mean_error_distance : float;
  mean_relative_error_distance : float;
  worst_case_error : float;
  vectors : int;
}

(* Patterns for the input-vector range [base, base + 2^chunk_bits). *)
let chunk_patterns k base =
  let count = 1 lsl min k chunk_bits in
  let by_input =
    Array.init k (fun i ->
        let bv = Bitvec.create count in
        for p = 0 to count - 1 do
          if (base + p) lsr i land 1 = 1 then Bitvec.set bv p true
        done;
        bv)
  in
  { Sim.count; by_input }

(* Per-chunk error tallies; chunks are independent, so they fan out over a
   pool and merge in chunk order. *)
type partial = {
  p_wrong : int;
  p_distance : float;
  p_relative : float;
  p_worst : int;
}

let compare_gen pool ~golden ~approx =
  let k = Array.length (Network.inputs golden) in
  if k > max_inputs then invalid_arg "Exhaustive: too many inputs";
  if Array.length (Network.inputs approx) <> k then
    invalid_arg "Exhaustive: input interface mismatch";
  let m = Array.length (Network.outputs golden) in
  if Array.length (Network.outputs approx) <> m then
    invalid_arg "Exhaustive: output interface mismatch";
  if m > 60 then invalid_arg "Exhaustive: more than 60 outputs";
  let golden_order = Structure.topo_order golden in
  let approx_order = Structure.topo_order approx in
  let total = 1 lsl k in
  let per_chunk = 1 lsl min k chunk_bits in
  let chunks = total / per_chunk in
  (* The chunk layout depends only on the input count, never on the pool
     size, so the merged result is identical for every [jobs]. *)
  let tally c =
    let patterns = chunk_patterns k (c * per_chunk) in
    let gs = Sim.run golden patterns ~order:golden_order in
    let asigs = Sim.run approx patterns ~order:approx_order in
    let gout = Array.map (fun id -> gs.(id)) (Network.outputs golden) in
    let aout = Array.map (fun id -> asigs.(id)) (Network.outputs approx) in
    let wrong = ref 0 in
    let distance_sum = ref 0.0 in
    let relative_sum = ref 0.0 in
    let worst = ref 0 in
    for p = 0 to per_chunk - 1 do
      let gv = Metric.output_value gout ~pattern:p in
      let av = Metric.output_value aout ~pattern:p in
      if gv <> av then begin
        incr wrong;
        let d = abs (av - gv) in
        distance_sum := !distance_sum +. float_of_int d;
        relative_sum := !relative_sum +. (float_of_int d /. float_of_int (max 1 gv));
        if d > !worst then worst := d
      end
    done;
    {
      p_wrong = !wrong;
      p_distance = !distance_sum;
      p_relative = !relative_sum;
      p_worst = !worst;
    }
  in
  let merge a b =
    {
      p_wrong = a.p_wrong + b.p_wrong;
      p_distance = a.p_distance +. b.p_distance;
      p_relative = a.p_relative +. b.p_relative;
      p_worst = max a.p_worst b.p_worst;
    }
  in
  let zero = { p_wrong = 0; p_distance = 0.0; p_relative = 0.0; p_worst = 0 } in
  let totals =
    match pool with
    | Some pool ->
      Accals_runtime.Fan_out.map_reduce ~label:"exhaustive" pool ~n:chunks
        ~map:tally ~merge ~init:zero
    | None ->
      let acc = ref zero in
      for c = 0 to chunks - 1 do
        acc := merge !acc (tally c)
      done;
      !acc
  in
  let wrong = ref totals.p_wrong in
  let distance_sum = ref totals.p_distance in
  let relative_sum = ref totals.p_relative in
  let worst = ref totals.p_worst in
  let n = float_of_int total in
  let max_value = float_of_int ((1 lsl m) - 1) in
  {
    error_rate = float_of_int !wrong /. n;
    mean_error_distance = !distance_sum /. n;
    normalized_mean_error_distance = !distance_sum /. n /. max_value;
    mean_relative_error_distance = !relative_sum /. n;
    worst_case_error = float_of_int !worst;
    vectors = total;
  }

let value r = function
  | Metric.Error_rate -> r.error_rate
  | Metric.Med -> r.mean_error_distance
  | Metric.Nmed -> r.normalized_mean_error_distance
  | Metric.Mred -> r.mean_relative_error_distance
  | Metric.Wce -> r.worst_case_error

let compare_networks ~golden ~approx = compare_gen None ~golden ~approx

let compare_networks_with ~pool ~golden ~approx =
  compare_gen (Some pool) ~golden ~approx
