(** Exact error measurement by chunked exhaustive simulation.

    Sampled metrics (what the synthesis loop uses) are estimates; this
    module walks the entire input space in bit-parallel chunks and returns
    the exact value, feasible up to {!max_inputs} primary inputs. Used to
    certify final circuits and to quantify the sampling error of the
    estimates. *)

open Accals_network
module Metric := Accals_metrics.Metric

val max_inputs : int
(** 24 by default-chunk arithmetic: 2^24 vectors, simulated in 2^11 chunks
    of 2^13 patterns. *)

type report = {
  error_rate : float;
  mean_error_distance : float;
  normalized_mean_error_distance : float;
  mean_relative_error_distance : float;
  worst_case_error : float;
  vectors : int;  (** number of input vectors examined *)
}

val compare_networks : golden:Network.t -> approx:Network.t -> report
(** Both networks must have identical input and output interfaces. Raises
    [Invalid_argument] when interfaces differ or the input count exceeds
    {!max_inputs}. *)

val compare_networks_with :
  pool:Accals_runtime.Pool.t -> golden:Network.t -> approx:Network.t -> report
(** Like {!compare_networks}, with the simulation chunks fanned out across
    the pool's domains. The chunk layout and merge order are fixed, so the
    report is identical to {!compare_networks} for every pool size. *)

val value : report -> Metric.kind -> float
