(** Backward observability (criticality) analysis.

    For every node, computes the mask of simulation patterns on which a
    value flip at the node is expected to propagate to at least one primary
    output. Propagation is approximated edge-by-edge in one reverse
    topological pass (the classical testability approximation: reconvergence
    is ignored), which is the sensitivity ingredient of SEALS [12]. The
    result is a ranking heuristic, not a bound. *)

open Accals_lac
open Accals_bitvec

val masks : Round_ctx.t -> Bitvec.t array
(** [masks ctx].(id) is the criticality mask of node [id]; dead nodes get a
    zero-length dummy. Primary-output drivers are fully critical. *)

val edge_sensitivity :
  Accals_network.Network.t -> Bitvec.t array -> int -> int -> dst:Bitvec.t -> unit
(** [edge_sensitivity net sigs id which ~dst] writes the mask of patterns
    on which the output of node [id] flips when its fanin at position
    [which] flips, all other fanins held at their values in [sigs]. This
    is the per-edge ingredient of {!masks}, exposed so the estimator's
    incremental refresh can recompute individual pull terms. *)
