open Accals_network
module Metric = Accals_metrics.Metric

let output_signatures net patterns =
  let live = Structure.live_set net in
  let order = Structure.topo_order ~live net in
  let sigs = Sim.run ~live net patterns ~order in
  Array.map (fun id -> sigs.(id)) (Network.outputs net)

let actual_error net patterns ~golden metric =
  let approx = output_signatures net patterns in
  Metric.measure metric ~golden ~approx
