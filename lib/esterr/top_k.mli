(** Bounded k-smallest selection. *)

val smallest : k:int -> compare:('a -> 'a -> int) -> 'a list -> 'a list
(** [smallest ~k ~compare items] is the [k] smallest elements of [items]
    under [compare], sorted ascending — equal to
    [List.sort compare items] truncated to [k], in O(n log k) time and
    O(k) space. [compare] must be a total order (break ties down to a
    unique key such as the original index) for the result to be
    deterministic. *)
