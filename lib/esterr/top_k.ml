(* Bounded selection: the k smallest elements under a total order, returned
   sorted ascending. A size-k binary max-heap makes this O(n log k) instead
   of the O(n log n) sort-then-take it replaces in [Estimator.score]; with a
   total order (callers break ties down to the original index) the result
   is exactly [List.sort compare items |> take k]. *)

let smallest ~k ~compare items =
  if k <= 0 then []
  else
    match items with
    | [] -> []
    | first :: _ ->
      let cap = min k (List.length items) in
      let heap = Array.make cap first in
      let size = ref 0 in
      let swap i j =
        let t = heap.(i) in
        heap.(i) <- heap.(j);
        heap.(j) <- t
      in
      let rec sift_up i =
        if i > 0 then begin
          let p = (i - 1) / 2 in
          if compare heap.(p) heap.(i) < 0 then begin
            swap p i;
            sift_up p
          end
        end
      in
      let rec sift_down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = ref i in
        if l < !size && compare heap.(l) heap.(!m) > 0 then m := l;
        if r < !size && compare heap.(r) heap.(!m) > 0 then m := r;
        if !m <> i then begin
          swap i !m;
          sift_down !m
        end
      in
      List.iter
        (fun x ->
          if !size < cap then begin
            heap.(!size) <- x;
            incr size;
            sift_up (!size - 1)
          end
          else if compare x heap.(0) < 0 then begin
            heap.(0) <- x;
            sift_down 0
          end)
        items;
      let result = Array.sub heap 0 !size in
      Array.sort compare result;
      Array.to_list result
