open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric
module Pool = Accals_runtime.Pool
module Fan_out = Accals_runtime.Fan_out
module Arena = Accals_sigdb.Arena

(* Resimulation scratch. Every domain participating in a parallel shortlist
   pass owns a private, persistent [scratch] (an {!Arena} instance that
   lives as long as the estimator); the estimator's own one serves the
   sequential entry points. All buffers are write-before-read, so a fresh
   scratch produces bit-identical results to a reused one — which is what
   makes per-domain reuse sound, and what stops signature-buffer
   allocations from bouncing between domains on every chunk. *)
type scratch = {
  overlay : Bitvec.t array;  (* per-node substituted signatures *)
  have : bool array;  (* overlay validity *)
  mutable pool : Bitvec.t list;  (* recycled signature buffers *)
  tmp : Bitvec.t;
}

(* The estimator is persistent across rounds when driven through [refresh]:
   the expensive state (criticality masks, cone cache) is invalidated
   selectively from a change delta instead of being rebuilt. [create]
   followed by per-round [refresh] is value-identical to a fresh [create]
   per round. *)
type t = {
  mutable ctx : Round_ctx.t;
  golden : Bitvec.t array;
  prepared : Metric.prepared;
  metric : Metric.kind;
  mutable base_error : float;
  mutable crit : Bitvec.t array;
  err_mask : Bitvec.t;  (* samples where the current circuit is wrong *)
  err_free : Bitvec.t;  (* complement of [err_mask] *)
  cone_cache : (int, int array) Hashtbl.t;
  mutable scratch : scratch;
  arena : scratch ref Arena.t;  (* per-worker-domain scratches *)
  evaluations : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
}

let samples t = t.ctx.Round_ctx.patterns.Sim.count

let compute_err_mask ctx golden =
  let out = Round_ctx.output_sigs ctx in
  let n = ctx.Round_ctx.patterns.Sim.count in
  let err = Bitvec.create n in
  let tmp = Bitvec.create n in
  Array.iteri
    (fun i g ->
      Bitvec.logxor_into g out.(i) ~dst:tmp;
      Bitvec.logor_into err tmp ~dst:err)
    golden;
  err

let make_scratch nodes samples =
  let dummy = Bitvec.create 0 in
  {
    overlay = Array.make nodes dummy;
    have = Array.make nodes false;
    pool = [];
    tmp = Bitvec.create samples;
  }

(* This domain's persistent scratch, grown (never shrunk) to the current
   node count. Buffer pool and tmp survive a grow, like [refresh]'s
   resize of the sequential scratch. *)
let domain_scratch t =
  let cell = Arena.local t.arena in
  let s = !cell in
  let n = Network.num_nodes t.ctx.Round_ctx.net in
  if Array.length s.overlay < n then begin
    let grown =
      {
        overlay = Array.make n (Bitvec.create 0);
        have = Array.make n false;
        pool = s.pool;
        tmp = s.tmp;
      }
    in
    cell := grown;
    grown
  end
  else s

let create ctx ~golden ~metric =
  let approx = Round_ctx.output_sigs ctx in
  let base_error = Metric.measure metric ~golden ~approx in
  let n = Network.num_nodes ctx.Round_ctx.net in
  let err_mask = compute_err_mask ctx golden in
  {
    ctx;
    golden;
    prepared = Metric.prepare metric ~golden;
    metric;
    base_error;
    crit = Criticality.masks ctx;
    err_mask;
    err_free = Bitvec.lognot err_mask;
    cone_cache = Hashtbl.create 64;
    scratch = make_scratch n ctx.Round_ctx.patterns.Sim.count;
    arena =
      (let samples = ctx.Round_ctx.patterns.Sim.count in
       Arena.create (fun () -> ref (make_scratch 0 samples)));
    evaluations = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
  }

let base_error t = t.base_error

(* Selective criticality update. A node's mask is the OR, over its live
   consumers [c] and every fanin position [which] of [c] holding the node,
   of [edge_sensitivity c which & crit c], plus all-ones when the node
   drives a primary output — the pull form of the push accumulation in
   [Criticality.masks]; OR-ing the same terms in either direction is
   bit-identical. Only nodes whose terms may have changed (seeds) or with
   a consumer whose mask changed are recomputed, and recomputation stops
   propagating wherever the recomputed mask is bit-equal to the stored
   one. *)
let refresh_crit t ~sig_changed ~struct_dirty =
  let ctx = t.ctx in
  let net = ctx.Round_ctx.net in
  let n = Network.num_nodes net in
  let samples = ctx.Round_ctx.patterns.Sim.count in
  let dummy = Bitvec.create 0 in
  if Array.length t.crit < n then begin
    let crit = Array.make n dummy in
    Array.blit t.crit 0 crit 0 (Array.length t.crit);
    t.crit <- crit
  end;
  let seed = Array.make n false in
  let mark id = seed.(id) <- true in
  (* Structurally touched nodes: their own pull set changed (definition,
     fanouts, liveness or output-driver status), and their fanins see
     changed edge sensitivities. *)
  Array.iteri
    (fun id dirty ->
      if dirty then begin
        mark id;
        Array.iter mark (Network.fanins net id)
      end)
    struct_dirty;
  (* A changed signature changes the edge sensitivities of every sibling
     fanin position at each live consumer (including the node itself when
     it appears in several positions). *)
  List.iter
    (fun s ->
      Array.iter
        (fun c -> Array.iter mark (Network.fanins net c))
        ctx.Round_ctx.fanouts.(s))
    sig_changed;
  let drives = Array.make n false in
  Array.iter (fun id -> drives.(id) <- true) (Network.outputs net);
  let changed = Array.make n false in
  let sens = Bitvec.create samples in
  let acc = Bitvec.create samples in
  let order = ctx.Round_ctx.order in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    let needs =
      seed.(id) || Array.exists (fun c -> changed.(c)) ctx.Round_ctx.fanouts.(id)
    in
    if needs then begin
      Bitvec.fill acc drives.(id);
      Array.iter
        (fun c ->
          let fis = Network.fanins net c in
          Array.iteri
            (fun which f ->
              if f = id then begin
                Criticality.edge_sensitivity net ctx.Round_ctx.sigs c which
                  ~dst:sens;
                Bitvec.logand_into sens t.crit.(c) ~dst:sens;
                Bitvec.logor_into acc sens ~dst:acc
              end)
            fis)
        ctx.Round_ctx.fanouts.(id);
      let old = t.crit.(id) in
      if Bitvec.length old > 0 && Bitvec.equal acc old then ()
      else begin
        let buf = if Bitvec.length old > 0 then old else Bitvec.create samples in
        Bitvec.blit ~src:acc ~dst:buf;
        t.crit.(id) <- buf;
        changed.(id) <- true
      end
    end
  done;
  (* Dead nodes drop to the shared dummy, as in a fresh [Criticality.masks]. *)
  for id = 0 to n - 1 do
    if (not ctx.Round_ctx.live.(id)) && Bitvec.length t.crit.(id) > 0 then
      t.crit.(id) <- dummy
  done

let refresh t ctx ~sig_changed ~struct_dirty =
  t.ctx <- ctx;
  let n = Network.num_nodes ctx.Round_ctx.net in
  (* Cone cache: a cached transitive-fanout list stays valid as long as
     neither the target nor any member was structurally touched (a new
     member can only attach through an edge or liveness change at an
     existing member or at the target). Stale topological *order* within a
     surviving cone is harmless: the cone's internal edges are untouched,
     so the old relative order is still a valid schedule. *)
  Hashtbl.filter_map_inplace
    (fun target cone ->
      if
        struct_dirty.(target)
        || Array.exists (fun m -> struct_dirty.(m)) cone
      then None
      else Some cone)
    t.cone_cache;
  refresh_crit t ~sig_changed ~struct_dirty;
  let out = Round_ctx.output_sigs ctx in
  Bitvec.fill t.err_mask false;
  Array.iteri
    (fun i g ->
      Bitvec.logxor_into g out.(i) ~dst:t.scratch.tmp;
      Bitvec.logor_into t.err_mask t.scratch.tmp ~dst:t.err_mask)
    t.golden;
  Bitvec.lognot_into t.err_mask ~dst:t.err_free;
  t.base_error <- Metric.measure t.metric ~golden:t.golden ~approx:out;
  if Array.length t.scratch.overlay < n then
    t.scratch <-
      {
        overlay = Array.make n (Bitvec.create 0);
        have = Array.make n false;
        pool = t.scratch.pool;
        tmp = t.scratch.tmp;
      }

let take_buf t s =
  match s.pool with
  | b :: rest ->
    s.pool <- rest;
    b
  | [] -> Bitvec.create (samples t)

let give_buf s b = s.pool <- b :: s.pool

let candidate_signature_in t s lac =
  let sigs = t.ctx.Round_ctx.sigs in
  let dst = take_buf t s in
  (match lac.Lac.kind with
   | Lac.Const0 -> Bitvec.fill dst false
   | Lac.Const1 -> Bitvec.fill dst true
   | Lac.Wire v -> Bitvec.blit ~src:sigs.(v) ~dst
   | Lac.Inv_wire v -> Bitvec.lognot_into sigs.(v) ~dst
   | Lac.Gate2 (op, a, b) ->
     (match op with
      | Gate.And -> Bitvec.logand_into sigs.(a) sigs.(b) ~dst
      | Gate.Or -> Bitvec.logor_into sigs.(a) sigs.(b) ~dst
      | Gate.Xor -> Bitvec.logxor_into sigs.(a) sigs.(b) ~dst
      | Gate.Nand ->
        Bitvec.logand_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Nor ->
        Bitvec.logor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Xnor ->
        Bitvec.logxor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux ->
        invalid_arg "Estimator: unsupported Gate2 op")
   | Lac.Gate3 (op, a, b, c) ->
     (match op with
      | Gate.And ->
        Bitvec.logand_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logand_into dst sigs.(c) ~dst
      | Gate.Or ->
        Bitvec.logor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logor_into dst sigs.(c) ~dst
      | Gate.Xor ->
        Bitvec.logxor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logxor_into dst sigs.(c) ~dst
      | Gate.Mux -> Bitvec.mux_into ~sel:sigs.(a) sigs.(b) sigs.(c) ~dst
      | Gate.Nand | Gate.Nor | Gate.Xnor | Gate.Const _ | Gate.Input
      | Gate.Buf | Gate.Not ->
        invalid_arg "Estimator: unsupported Gate3 op")
   | Lac.Sop { leaves; cubes } ->
     let product = take_buf t s in
     let negated = take_buf t s in
     Bitvec.fill dst false;
     List.iter
       (fun cube ->
         Bitvec.fill product true;
         Array.iteri
           (fun i leaf ->
             if cube.Accals_twolevel.Qm.mask lsr i land 1 = 1 then
               if cube.Accals_twolevel.Qm.value lsr i land 1 = 1 then
                 Bitvec.logand_into product sigs.(leaf) ~dst:product
               else begin
                 Bitvec.lognot_into sigs.(leaf) ~dst:negated;
                 Bitvec.logand_into product negated ~dst:product
               end)
           leaves;
         Bitvec.logor_into dst product ~dst)
       cubes;
     give_buf s product;
     give_buf s negated);
  dst

let candidate_signature t lac = candidate_signature_in t t.scratch lac

let rank_score_in t s lac =
  let target = lac.Lac.target in
  let cand = candidate_signature_in t s lac in
  Bitvec.logxor_into cand t.ctx.Round_ctx.sigs.(target) ~dst:s.tmp;
  Bitvec.logand_into s.tmp t.crit.(target) ~dst:s.tmp;
  give_buf s cand;
  (* Potential fresh errors: observable changes on currently-correct
     samples. Changes landing on already-wrong samples are free (they may
     even fix the error), so they do not count against the LAC. *)
  Bitvec.logand_into s.tmp t.err_free ~dst:s.tmp;
  float_of_int (Bitvec.popcount s.tmp) /. float_of_int (samples t)

let rank_score t lac = rank_score_in t t.scratch lac

let cone t target =
  match Hashtbl.find_opt t.cone_cache target with
  | Some c ->
    Atomic.incr t.cache_hits;
    c
  | None ->
    Atomic.incr t.cache_misses;
    let c =
      Structure.tfo_list t.ctx.Round_ctx.net ~fanouts:t.ctx.Round_ctx.fanouts
        ~topo_pos:t.ctx.Round_ctx.topo_pos target
    in
    Hashtbl.add t.cone_cache target c;
    c

let exact_delta_in t s lac =
  let ctx = t.ctx in
  let net = ctx.Round_ctx.net in
  let sigs = ctx.Round_ctx.sigs in
  let target = lac.Lac.target in
  let cand = candidate_signature_in t s lac in
  if Bitvec.equal cand sigs.(target) then begin
    give_buf s cand;
    0.0
  end
  else begin
    Atomic.incr t.evaluations;
    let touched = ref [ target ] in
    s.overlay.(target) <- cand;
    s.have.(target) <- true;
    let lookup id = if s.have.(id) then s.overlay.(id) else sigs.(id) in
    Array.iter
      (fun id ->
        let fis = Network.fanins net id in
        let dirty = Array.exists (fun f -> s.have.(f)) fis in
        if dirty then begin
          let dst = take_buf t s in
          Sim.eval_node_into net ~lookup id ~dst;
          if Bitvec.equal dst sigs.(id) then give_buf s dst
          else begin
            s.overlay.(id) <- dst;
            s.have.(id) <- true;
            touched := id :: !touched
          end
        end)
      (cone t target);
    let approx = Array.map lookup (Network.outputs net) in
    let e_new = Metric.measure_prepared t.prepared ~approx in
    List.iter
      (fun id ->
        give_buf s s.overlay.(id);
        s.have.(id) <- false)
      !touched;
    e_new -. t.base_error
  end

let exact_delta t lac = exact_delta_in t t.scratch lac

type mode = Exact | Approximate

let score ?(mode = Exact) ?pool t ~shortlist lacs =
  (* Bounded selection of the shortlist instead of sorting all candidates:
     the order is total (rank, then larger area gain, then original
     position), so this equals the former stable sort + take. *)
  let compare_ranked (ra, ia, la) (rb, ib, lb) =
    match compare ra rb with
    | 0 -> (
      match compare lb.Lac.area_gain la.Lac.area_gain with
      | 0 -> compare ia ib
      | c -> c)
    | c -> c
  in
  let ranked = List.mapi (fun i lac -> (rank_score t lac, i, lac)) lacs in
  let chosen =
    List.map
      (fun (_, _, lac) -> lac)
      (Top_k.smallest ~k:shortlist ~compare:compare_ranked ranked)
  in
  let scored =
    match (mode, pool) with
    | Exact, Some pool when Pool.jobs pool > 1 ->
      (* Exact-on-samples cone resimulation is the estimator-bound phase:
         fan the shortlist out over the pool. Cones are prefetched here so
         workers only ever read the cache; each chunk of candidates gets a
         private resimulation scratch. *)
      List.iter (fun lac -> ignore (cone t lac.Lac.target)) chosen;
      Fan_out.map_list_with ~label:"estimate" pool
        ~state:(fun () -> domain_scratch t)
        ~f:(fun s lac -> Lac.with_delta lac (exact_delta_in t s lac))
        chosen
    | Exact, _ ->
      List.map (fun lac -> Lac.with_delta lac (exact_delta t lac)) chosen
    | Approximate, _ ->
      List.map (fun lac -> Lac.with_delta lac (rank_score t lac)) chosen
  in
  List.sort
    (fun a b ->
      match compare a.Lac.delta_error b.Lac.delta_error with
      | 0 -> compare b.Lac.area_gain a.Lac.area_gain
      | c -> c)
    scored

let evaluations t = Atomic.get t.evaluations

let cache_stats t = (Atomic.get t.cache_hits, Atomic.get t.cache_misses)

let cone_cache_bytes t =
  let word = Sys.word_size / 8 in
  Hashtbl.fold
    (fun _ cone acc -> acc + ((Array.length cone + 3) * word))
    t.cone_cache 0

(* Memory-pressure relief. Cones are derived data, recomputed on demand
   from the same per-round views, so dropping them costs time but cannot
   change scores. Only call between rounds: during a parallel [score] the
   workers read the cache concurrently. *)
let drop_cone_cache t =
  let n = Hashtbl.length t.cone_cache in
  Hashtbl.reset t.cone_cache;
  n
