(** SEALS-style batch error-increase estimation [12].

    Two levels, as in the paper's sensitivity-driven flow:

    + a cheap criticality ranking over all candidates (one mask intersection
      per candidate), and
    + exact-on-samples evaluation by bit-parallel resimulation of the
      target's transitive-fanout cone with the candidate signature
      substituted, for a shortlist of the best-ranked candidates.

    The exact pass gives ΔE(ψ) = e_est_new − e where e_est_new is the exact
    metric value of the modified circuit on the shared sample set. *)

open Accals_lac
open Accals_bitvec
module Metric := Accals_metrics.Metric

type t

val create : Round_ctx.t -> golden:Bitvec.t array -> metric:Metric.kind -> t
(** [golden] must be the output signatures of the *original* circuit on the
    same pattern set as [ctx]. *)

val base_error : t -> float
(** Error of the current circuit against the golden outputs. *)

val refresh : t -> Round_ctx.t -> sig_changed:int list -> struct_dirty:bool array -> unit
(** Re-point the estimator at the next round's context, updating the
    persistent state selectively instead of rebuilding it: criticality
    masks are recomputed only inside the region implied by the delta
    (with early convergence stopping), the cone cache drops only entries
    whose target or members were structurally touched, and the error
    mask/base error are refreshed from the new output signatures.

    [sig_changed] lists nodes whose signature changed and [struct_dirty]
    flags nodes whose definition, fanout set, liveness or output-driver
    status changed since the context the estimator last saw (e.g. from
    {!Accals_sigdb.Sigdb.refresh} — both arguments match its [delta]
    fields). [create] followed by a sequence of mutate/[refresh] steps is
    value-identical to a fresh [create] on each successive network. *)

val candidate_signature : t -> Lac.t -> Bitvec.t
(** The target's new signature under the LAC (freshly allocated). *)

val rank_score : t -> Lac.t -> float
(** Cheap ranking heuristic: fraction of samples on which the LAC changes
    the target's value, the change is deemed observable, and the sample is
    currently error-free. Smaller is more promising. *)

val exact_delta : t -> Lac.t -> float
(** ΔE(ψ): exact-on-samples error increase (can be negative). *)

type mode = Exact | Approximate

val score :
  ?mode:mode ->
  ?pool:Accals_runtime.Pool.t ->
  t ->
  shortlist:int ->
  Lac.t list ->
  Lac.t list
(** Rank all candidates, evaluate the best [shortlist] of them, and return
    those with [delta_error] filled, sorted by ascending ΔE (ties: larger
    area gain first). [Exact] (default) resimulates each shortlisted
    candidate's fanout cone; [Approximate] takes the criticality estimate as
    ΔE without resimulation — the cheap end of the VECBEE [11]
    accuracy/effort trade-off, exposed for the ablation study.

    When [pool] is a multi-domain pool and the mode is [Exact], the
    shortlist resimulations fan out across the pool's domains, each domain
    resimulating on private scratch buffers; results are merged in
    candidate order, so the outcome is bit-identical to the sequential
    pass. *)

val evaluations : t -> int
(** Number of exact cone resimulations performed so far (for the bench
    harness's work accounting). [Atomic.t]-backed, so the count stays exact
    when [score] fans out over a pool. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the transitive-fanout cone cache since [create].
    [Atomic.t]-backed like {!evaluations}; pure observation (the telemetry
    registry reports the deltas per round). *)

val cone_cache_bytes : t -> int
(** Estimated bytes held by the cone cache (for the memory governor). *)

val drop_cone_cache : t -> int
(** Memory-pressure relief: empty the cone cache and return how many
    entries were dropped. Cones are derived data recomputed on demand, so
    scores — and therefore results — cannot change; only the time to
    rebuild the cache is lost. Must not be called while a parallel
    {!score} is in flight (workers read the cache concurrently). *)
