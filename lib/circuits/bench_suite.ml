open Accals_network

type category = Iscas_small | Epfl | Lgsynt91 | Extras | Synthetic

let category_to_string = function
  | Iscas_small -> "ISCAS & small arithmetic"
  | Epfl -> "EPFL arithmetic"
  | Lgsynt91 -> "LGSynt91"
  | Extras -> "Extras"
  | Synthetic -> "Synthetic (scaling)"

let registry : (string * (category * (unit -> Network.t))) list =
  [
    ("alu4", (Iscas_small, fun () -> Alu.make ~width:4 ~name:"alu4" ()));
    ("c1908", (Iscas_small, fun () -> Ecc.secded_decoder ~data_bits:16));
    ("c3540", (Iscas_small, fun () -> Alu.make ~rich:true ~width:8 ~name:"c3540" ()));
    ("c880", (Iscas_small, fun () -> Alu.make ~width:8 ~name:"c880" ()));
    ("cla32", (Iscas_small, fun () -> Adders.carry_lookahead ~width:32));
    ("ksa32", (Iscas_small, fun () -> Adders.kogge_stone ~width:32));
    ("mtp8", (Iscas_small, fun () -> Multipliers.array_multiplier ~width:8));
    ("rca32", (Iscas_small, fun () -> Adders.ripple_carry ~width:32));
    ("wal8", (Iscas_small, fun () -> Multipliers.wallace ~width:8));
    ("div", (Epfl, fun () -> Divider.restoring ~dividend_width:24 ~divisor_width:12));
    ("log2", (Epfl, fun () -> Unary_fns.log2 ~width:32 ~fraction_bits:8));
    ("sin", (Epfl, fun () -> Unary_fns.sin_parabola ~width:10));
    ("sqrt", (Epfl, fun () -> Unary_fns.sqrt_restoring ~width:24));
    ("square", (Epfl, fun () -> Multipliers.square ~width:12));
    ("alu2", (Lgsynt91, fun () -> Alu.make ~width:4 ~ops:4 ~name:"alu2" ()));
    ( "apex6",
      (Lgsynt91, fun () ->
        Random_logic.make ~name:"apex6" ~inputs:60 ~outputs:40 ~gates:520 ~seed:6001) );
    ( "frg2",
      (Lgsynt91, fun () ->
        Random_logic.make ~name:"frg2" ~inputs:60 ~outputs:60 ~gates:600 ~seed:6002) );
    ( "term1",
      (Lgsynt91, fun () ->
        Random_logic.pla ~name:"term1" ~inputs:34 ~outputs:10 ~terms:56 ~seed:6003) );
    ("dadda8", (Extras, fun () -> Multipliers.dadda ~width:8));
    ("csel32", (Extras, fun () -> Adders.carry_select ~width:32 ()));
    ("cskip32", (Extras, fun () -> Adders.carry_skip ~width:32 ()));
    ("popcnt16", (Extras, fun () -> Datapath.popcount ~width:16));
    ("bshift16", (Extras, fun () -> Datapath.barrel_shifter ~width:16));
    ("mac6", (Extras, fun () -> Datapath.multiply_accumulate ~width:6));
    ("satadd16", (Extras, fun () -> Datapath.saturating_adder ~width:16));
    ( "fir5",
      (Extras, fun () -> Dsp.fir_filter ~coefficients:[ 1; 4; 6; 4; 1 ] ~width:8) );
    ("fadd8", (Extras, fun () -> Dsp.float_adder ~exp_bits:5 ~mantissa_bits:8));
    ("sobel6", (Extras, fun () -> Image.sobel_magnitude ~pixel_bits:6));
    ("gray12", (Extras, fun () -> Image.rgb_to_gray ~pixel_bits:12));
    (* EPFL-class scale points for parallel-speedup and streaming-reader
       experiments; far beyond what the quality benchmarks need, so they
       get a light cleanup pipeline in [load]. *)
    ( "synth10k",
      (Synthetic, fun () ->
        Random_logic.make ~name:"synth10k" ~inputs:192 ~outputs:96
          ~gates:14_000 ~seed:9010) );
    ( "synth30k",
      (Synthetic, fun () ->
        Random_logic.make ~name:"synth30k" ~inputs:256 ~outputs:128
          ~gates:42_000 ~seed:9030) );
    ( "synth100k",
      (Synthetic, fun () ->
        Random_logic.make ~name:"synth100k" ~inputs:384 ~outputs:192
          ~gates:140_000 ~seed:9100) );
  ]

let all = List.map (fun (name, (cat, _)) -> (name, cat)) registry

let category_circuits cat =
  List.filter_map
    (fun (name, (c, _)) -> if c = cat then Some name else None)
    registry

let small_arithmetic = [ "cla32"; "ksa32"; "mtp8"; "rca32"; "wal8" ]

let build name =
  match List.assoc_opt name registry with
  | Some (_, gen) -> gen ()
  | None -> raise Not_found

let load name =
  let t = build name in
  let category =
    match List.assoc_opt name registry with
    | Some (c, _) -> c
    | None -> Extras
  in
  (match category with
  | Synthetic ->
    (* Scale points skip the exact-SOP refactor (quadratic-ish in cone
       count, minutes at 100k nodes); light cleanup keeps them honest
       netlists while load time stays linear. *)
    Cleanup.sweep t;
    Cleanup.strash t;
    Cleanup.sweep t
  | Iscas_small | Epfl | Lgsynt91 | Extras ->
    (* Stand-in for the paper's ABC optimization script
       (strash; resyn2; amap): simplify, share structure, rewrite small
       cones exactly, simplify again, and renumber densely. *)
    Cleanup.sweep t;
    Cleanup.strash t;
    Cleanup.sweep t;
    ignore (Accals_twolevel.Refactor.run t);
    Cleanup.sweep t;
    Cleanup.strash t;
    Cleanup.sweep t);
  let t = Cleanup.compact t in
  Network.set_name t name;
  t
