(** Registry of the paper's benchmark circuits (Table I).

    ISCAS-85 / LGSynt91 / full-size EPFL netlists are not redistributable
    inside this repository, so each name maps to a generated functional
    stand-in at a comparable (EPFL: reduced) scale; see DESIGN.md section 3
    for the substitution rationale. *)

open Accals_network

type category =
  | Iscas_small
  | Epfl
  | Lgsynt91
  | Extras
      (** additional approximate-computing workloads (not in the paper's
          Table I): datapath, DSP and image-processing circuits *)
  | Synthetic
      (** generated EPFL-class scale points (10k-100k nodes) for
          parallel-speedup and streaming-reader experiments; [load]
          gives these a light cleanup pipeline (no exact-SOP refactor)
          so loading stays linear in circuit size *)

val category_to_string : category -> string

val all : (string * category) list
(** Registered circuit names with their Table I column group. *)

val category_circuits : category -> string list

val small_arithmetic : string list
(** The five small arithmetic circuits used for Fig. 4 and Fig. 6(b,c):
    cla32, ksa32, mtp8, rca32, wal8. *)

val build : string -> Network.t
(** Construct the raw generated network. Raises [Not_found] for unknown
    names. *)

val load : string -> Network.t
(** [build] followed by constant propagation, buffer sweeping and
    compaction — the stand-in for the paper's ABC optimization script.
    {!Synthetic} circuits get a light pipeline (no exact-SOP refactor). *)
