open Accals_network
module B = Builder
module Prng = Accals_bitvec.Prng

(* Geometric-ish locality: prefer recently created signals so the DAG gets
   deep rather than flat. A quarter of the picks are uniform over the whole
   pool (inputs included), which keeps deep regions from collapsing into an
   all-constant absorbing state. *)
let pick_local rng pool_size =
  if Prng.float rng < 0.25 then Prng.int rng pool_size
  else begin
    let rec back acc = if acc > 0 && Prng.float rng < 0.6 then back (acc - 1) else acc in
    let hop = back (min 24 (pool_size - 1)) in
    let offset = Prng.int rng (hop + 1) in
    pool_size - 1 - offset
  end

let make ~name ~inputs ~outputs ~gates ~seed =
  if inputs < 2 || outputs < 1 || gates < outputs then
    invalid_arg "Random_logic.make: degenerate shape";
  let rng = Prng.create seed in
  let t = Network.create ~name () in
  let ins = B.bus t "x" inputs in
  (* Growable pool in insertion order (inputs first, then every created
     gate); rebuilding it per gate from a list would make generation
     quadratic in [gates]. *)
  let pool = ref (Array.make (inputs + gates + 8) 0) in
  let pool_len = ref 0 in
  let pool_add id =
    if !pool_len = Array.length !pool then begin
      let bigger = Array.make (2 * !pool_len) 0 in
      Array.blit !pool 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- id;
    incr pool_len
  in
  (* Historical quirk kept for reproducibility: the pool has always held
     the inputs in reverse declaration order (an artifact of the original
     list-push construction); every registered seed's circuit depends on
     it. *)
  for i = inputs - 1 downto 0 do
    pool_add ins.(i)
  done;
  (* Seed phase: combine consecutive inputs so each input is used. *)
  let seeded = ref 0 in
  for i = 0 to inputs - 2 do
    let op = match Prng.int rng 4 with
      | 0 -> Gate.And | 1 -> Gate.Or | 2 -> Gate.Nand | _ -> Gate.Xor
    in
    let id = Network.add_node t op [| ins.(i); ins.(i + 1) |] in
    pool_add id;
    incr seeded
  done;
  let remaining = max 0 (gates - !seeded) in
  for _ = 1 to remaining do
    let arr = !pool in
    let size = !pool_len in
    let f1 = arr.(pick_local rng size) in
    let f2 = arr.(pick_local rng size) in
    (* Balance-preserving operators (XOR/XNOR/MUX) keep deep signals from
       drifting to constants, as real control logic does through its
       reconvergence; AND/OR-family gates provide the covering structure. *)
    let id =
      match Prng.int rng 12 with
      | 0 | 1 -> Network.add_node t Gate.And [| f1; f2 |]
      | 2 | 3 -> Network.add_node t Gate.Or [| f1; f2 |]
      | 4 -> Network.add_node t Gate.Nand [| f1; f2 |]
      | 5 -> Network.add_node t Gate.Nor [| f1; f2 |]
      | 6 | 7 -> Network.add_node t Gate.Xor [| f1; f2 |]
      | 8 -> Network.add_node t Gate.Xnor [| f1; f2 |]
      | 9 -> Network.add_node t Gate.Not [| f1 |]
      | _ ->
        let f3 = arr.(pick_local rng size) in
        Network.add_node t Gate.Mux [| f1; f2; f3 |]
    in
    pool_add id
  done;
  (* Outputs: prefer deep signals whose sampled activity is balanced, so the
     circuit is not trivially approximable by constants (control-dominated
     LGSynt91 circuits have busy outputs). *)
  let arr = Array.sub !pool 0 !pool_len in
  let size = Array.length arr in
  let probe = Array.init size (fun i -> ("y" ^ string_of_int i, arr.(i))) in
  Network.set_outputs t probe;
  let patterns = Sim.random ~seed:(seed + 101) ~count:512 inputs in
  let order = Structure.topo_order t in
  let sigs = Sim.run t patterns ~order in
  let levels = Structure.levels t in
  (* Only deep signals qualify (so the surviving cones are substantial);
     among them prefer balanced activity. *)
  let max_level = Array.fold_left max 0 levels in
  let depth_floor = max 1 (max_level / 3) in
  let deep = Array.of_list (List.filter (fun id -> levels.(id) >= depth_floor)
                              (Array.to_list arr)) in
  let candidates = if Array.length deep >= outputs then deep else arr in
  let score id =
    let ones = Accals_bitvec.Bitvec.popcount sigs.(id) in
    let balance = abs_float (float_of_int ones /. 512.0 -. 0.5) in
    balance -. (0.001 *. float_of_int levels.(id))
  in
  let ranked = Array.copy candidates in
  Array.sort (fun a b -> compare (score a) (score b)) ranked;
  let chosen = Array.sub ranked 0 outputs in
  Array.sort compare chosen;
  Network.set_outputs t
    (Array.mapi (fun i id -> ("y" ^ string_of_int i, id)) chosen);
  t

let pla ~name ~inputs ~outputs ~terms ~seed =
  if inputs < 2 || outputs < 1 || terms < 1 then invalid_arg "Random_logic.pla";
  let rng = Prng.create seed in
  let t = Network.create ~name () in
  let ins = B.bus t "x" inputs in
  let literal () =
    let v = ins.(Prng.int rng inputs) in
    if Prng.bool rng then v else B.not_ t v
  in
  let term_ids =
    Array.init terms (fun _ ->
        let k = 2 + Prng.int rng (min 4 (inputs - 1)) in
        let lits = Array.init k (fun _ -> literal ()) in
        B.andn t lits)
  in
  let outs =
    Array.init outputs (fun i ->
        let k = 2 + Prng.int rng (max 2 (terms / 2)) in
        let chosen = Array.init k (fun _ -> term_ids.(Prng.int rng terms)) in
        ("y" ^ string_of_int i, B.orn t chosen))
  in
  Network.set_outputs t outs;
  t
