(** AIGER interchange format (ASCII "aag" variant, combinational subset).

    The standard exchange format of the AIG world (ABC, model checkers, the
    EPFL suite distribution). Latches are not supported. *)

exception Parse_error of string

val to_string : Aig.t -> string
(** Serialize the reachable part of the AIG, inputs first, ANDs in
    topological order, with a symbol table. *)

val parse_string : string -> Aig.t
(** Parse an "aag" document. The AIG is rebuilt through the hashed
    constructors, so structurally redundant input files come back
    simplified (function preserved). *)

val write_file : Aig.t -> string -> unit

val parse_file : string -> Aig.t
(** Stream-parse an "aag" file without buffering it whole; linear time
    and memory in the file size. *)

val parse_channel : in_channel -> Aig.t
(** Stream-parse from an open channel (the channel is not closed). *)
