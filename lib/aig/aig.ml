open Accals_network

type lit = int

(* Node 0 is the constant; nodes 1..n_inputs are PIs; others are ANDs. *)
type node = Const_node | Input_node of string | And_node of lit * lit

type t = {
  mutable nodes : node array;
  mutable used : int;
  mutable input_lits : (string * lit) array;
  mutable output_lits : (string * lit) array;
  strash : (lit * lit, lit) Hashtbl.t;
}

let false_ = 0
let true_ = 1

let lit_of_node idx = 2 * idx
let node_of_lit l = l / 2
let complemented l = l land 1 = 1
let lnot_ l = l lxor 1

let create () =
  {
    nodes = Array.make 64 Const_node;
    used = 1;
    input_lits = [||];
    output_lits = [||];
    strash = Hashtbl.create 256;
  }

let grow t =
  if t.used = Array.length t.nodes then begin
    let nodes = Array.make (2 * Array.length t.nodes) Const_node in
    Array.blit t.nodes 0 nodes 0 t.used;
    t.nodes <- nodes
  end

let alloc t node =
  grow t;
  let idx = t.used in
  t.nodes.(idx) <- node;
  t.used <- t.used + 1;
  idx

let add_input t name =
  let idx = alloc t (Input_node name) in
  let l = lit_of_node idx in
  t.input_lits <- Array.append t.input_lits [| (name, l) |];
  l

let add_inputs t names =
  (* Bulk variant of [add_input]: one table append for the batch (k single
     appends would cost O(k^2) — see Network.add_inputs). *)
  let lits =
    Array.map (fun nm -> lit_of_node (alloc t (Input_node nm))) names
  in
  t.input_lits <-
    Array.append t.input_lits
      (Array.map2 (fun nm l -> (nm, l)) names lits);
  lits

let rename_input t k name =
  if k < 0 || k >= Array.length t.input_lits then
    invalid_arg "Aig.rename_input: no such input";
  let _, l = t.input_lits.(k) in
  t.input_lits.(k) <- (name, l);
  t.nodes.(node_of_lit l) <- Input_node name

let land_ t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_ then false_
  else if a = true_ then b
  else if a = b then a
  else if a = lnot_ b then false_
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some l -> l
    | None ->
      let idx = alloc t (And_node (a, b)) in
      let l = lit_of_node idx in
      Hashtbl.add t.strash (a, b) l;
      l

let lor_ t a b = lnot_ (land_ t (lnot_ a) (lnot_ b))

let lxor_ t a b =
  (* a xor b = (a and ~b) or (~a and b) *)
  lor_ t (land_ t a (lnot_ b)) (land_ t (lnot_ a) b)

let mux t ~sel a b = lor_ t (land_ t sel a) (land_ t (lnot_ sel) b)

let set_outputs t outs = t.output_lits <- outs

let inputs t = t.input_lits
let outputs t = t.output_lits
let input_count t = Array.length t.input_lits
let output_count t = Array.length t.output_lits

let is_and t idx =
  idx >= 0 && idx < t.used
  && (match t.nodes.(idx) with And_node _ -> true | Const_node | Input_node _ -> false)

let is_input t idx =
  idx >= 0 && idx < t.used
  && (match t.nodes.(idx) with Input_node _ -> true | Const_node | And_node _ -> false)

let fanins t idx =
  match t.nodes.(idx) with
  | And_node (a, b) -> (a, b)
  | Const_node | Input_node _ -> invalid_arg "Aig.fanins: not an AND node"

let total_ands t =
  let count = ref 0 in
  for i = 0 to t.used - 1 do
    match t.nodes.(i) with
    | And_node _ -> incr count
    | Const_node | Input_node _ -> ()
  done;
  !count

let reachable t =
  let seen = Array.make t.used false in
  let rec walk idx =
    if not seen.(idx) then begin
      seen.(idx) <- true;
      match t.nodes.(idx) with
      | And_node (a, b) ->
        walk (node_of_lit a);
        walk (node_of_lit b)
      | Const_node | Input_node _ -> ()
    end
  in
  Array.iter (fun (_, l) -> walk (node_of_lit l)) t.output_lits;
  seen

let node_count t =
  let seen = reachable t in
  let count = ref 0 in
  for i = 0 to t.used - 1 do
    if seen.(i) then
      match t.nodes.(i) with
      | And_node _ -> incr count
      | Const_node | Input_node _ -> ()
  done;
  !count

let depth t =
  let level = Array.make t.used 0 in
  (* Nodes are created fanins-first, so index order is topological. *)
  for i = 0 to t.used - 1 do
    match t.nodes.(i) with
    | And_node (a, b) ->
      level.(i) <- 1 + max level.(node_of_lit a) level.(node_of_lit b)
    | Const_node | Input_node _ -> ()
  done;
  Array.fold_left
    (fun acc (_, l) -> max acc level.(node_of_lit l))
    0 t.output_lits

let eval t input_values =
  if Array.length input_values <> input_count t then
    invalid_arg "Aig.eval: wrong input count";
  let value = Array.make t.used false in
  let input_rank = Hashtbl.create 16 in
  Array.iteri (fun i (_, l) -> Hashtbl.replace input_rank (node_of_lit l) i) t.input_lits;
  let lit_value l =
    let v = value.(node_of_lit l) in
    if complemented l then not v else v
  in
  for i = 0 to t.used - 1 do
    match t.nodes.(i) with
    | Const_node -> value.(i) <- false
    | Input_node _ -> value.(i) <- input_values.(Hashtbl.find input_rank i)
    | And_node (a, b) -> value.(i) <- lit_value a && lit_value b
  done;
  (* Constant node literal 1 = true: lit 0 is node 0 with value false. *)
  Array.map (fun (_, l) -> lit_value l) t.output_lits

let of_network net =
  let t = create () in
  let lits = Array.make (Network.num_nodes net) false_ in
  Array.iteri
    (fun i id -> lits.(id) <- add_input t (Network.input_names net).(i))
    (Network.inputs net);
  let order = Structure.topo_order net in
  let reduce f init arr = Array.fold_left f init arr in
  Array.iter
    (fun id ->
      if not (Network.is_input net id) then begin
        let fi = Array.map (fun f -> lits.(f)) (Network.fanins net id) in
        let l =
          match Network.op net id with
          | Gate.Input -> assert false
          | Gate.Const b -> if b then true_ else false_
          | Gate.Buf -> fi.(0)
          | Gate.Not -> lnot_ fi.(0)
          | Gate.And -> reduce (land_ t) true_ fi
          | Gate.Nand -> lnot_ (reduce (land_ t) true_ fi)
          | Gate.Or -> reduce (lor_ t) false_ fi
          | Gate.Nor -> lnot_ (reduce (lor_ t) false_ fi)
          | Gate.Xor -> reduce (lxor_ t) false_ fi
          | Gate.Xnor -> lnot_ (reduce (lxor_ t) false_ fi)
          | Gate.Mux -> mux t ~sel:fi.(0) fi.(1) fi.(2)
        in
        lits.(id) <- l
      end)
    order;
  set_outputs t
    (Array.map2
       (fun nm id -> (nm, lits.(id)))
       (Network.output_names net) (Network.outputs net));
  t

let to_network t =
  let net = Network.create ~name:"aig" () in
  let node_ids = Array.make t.used (-1) in
  let const0 = ref (-1) in
  let get_const0 () =
    if !const0 < 0 then const0 := Network.add_node net (Gate.Const false) [||];
    !const0
  in
  (* Map a literal to a network node computing it; inverters are created on
     demand and cached. *)
  let inv_cache = Hashtbl.create 64 in
  let rec node_of idx =
    if node_ids.(idx) >= 0 then node_ids.(idx)
    else begin
      let id =
        match t.nodes.(idx) with
        | Const_node -> get_const0 ()
        | Input_node name -> Network.add_input net name
        | And_node (a, b) ->
          let fa = lit_node a and fb = lit_node b in
          Network.add_node net Gate.And [| fa; fb |]
      in
      node_ids.(idx) <- id;
      id
    end
  and lit_node l =
    let base = node_of (node_of_lit l) in
    if complemented l then begin
      match Hashtbl.find_opt inv_cache base with
      | Some id -> id
      | None ->
        let id = Network.add_node net Gate.Not [| base |] in
        Hashtbl.add inv_cache base id;
        id
    end
    else base
  in
  (* Create inputs first, in declaration order. *)
  Array.iter (fun (_, l) -> ignore (node_of (node_of_lit l))) t.input_lits;
  let outs = Array.map (fun (nm, l) -> (nm, lit_node l)) t.output_lits in
  Network.set_outputs net outs;
  net
