(** And-inverter graphs.

    The canonical representation of ALS tools (ABC, and the paper's "#Nd"
    node counts): two-input AND nodes with complementable edges, built with
    structural hashing and constant folding so equivalent structure is
    shared on construction.

    A signal is a {!lit}: node index times two, plus one when complemented
    (AIGER convention). Literal 0 is constant false, literal 1 constant
    true. *)

type t

type lit = int

val false_ : lit
val true_ : lit

val create : unit -> t

val add_input : t -> string -> lit

val add_inputs : t -> string array -> lit array
(** Batch {!add_input}: one input-table append for the whole batch, so k
    inputs cost O(k) instead of O(k^2). *)

val rename_input : t -> int -> string -> unit
(** [rename_input t k name] renames the [k]-th input (declaration
    order). O(1); lets a streaming reader create inputs with placeholder
    names and patch them when the symbol table arrives at the end of the
    file. Raises [Invalid_argument] if there is no such input. *)

val land_ : t -> lit -> lit -> lit
(** Hashed, folded AND: returns an existing node when possible, applies
    the constant/idempotence/complement rules. *)

val lor_ : t -> lit -> lit -> lit
val lxor_ : t -> lit -> lit -> lit
val lnot_ : lit -> lit
val mux : t -> sel:lit -> lit -> lit -> lit

val set_outputs : t -> (string * lit) array -> unit

val input_count : t -> int
val output_count : t -> int

val node_count : t -> int
(** Number of AND nodes reachable from the outputs (the paper's #Nd). *)

val total_ands : t -> int
(** All constructed AND nodes, including ones no output reaches. *)

val depth : t -> int
(** Maximum number of AND nodes on any output-to-input path. *)

val eval : t -> bool array -> bool array
(** Evaluate outputs for one input vector (inputs in declaration order). *)

val inputs : t -> (string * lit) array
val outputs : t -> (string * lit) array

val fanins : t -> int -> lit * lit
(** Fanin literals of an AND node (by node index). Raises
    [Invalid_argument] for inputs/constant. *)

val is_and : t -> int -> bool
val is_input : t -> int -> bool

(** {1 Conversions} *)

val of_network : Accals_network.Network.t -> t
(** Structural conversion; n-ary gates become balanced AND trees, XORs and
    muxes the usual 3-AND structures. *)

val to_network : t -> Accals_network.Network.t
(** Back to the gate-level network (AND2/NOT gates). *)
