module Bitvec = Accals_bitvec.Bitvec

let live_set t =
  let n = Network.num_nodes t in
  let live = Array.make n false in
  let stack = ref [] in
  Array.iter
    (fun id ->
      if not live.(id) then begin
        live.(id) <- true;
        stack := id :: !stack
      end)
    (Network.outputs t);
  let rec walk () =
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      Array.iter
        (fun f ->
          if not live.(f) then begin
            live.(f) <- true;
            stack := f :: !stack
          end)
        (Network.fanins t id);
      walk ()
  in
  walk ();
  live

(* Kahn's algorithm over the relevant node set. *)
let topo_order ?live ?(live_only = true) t =
  let n = Network.num_nodes t in
  let keep =
    match live with
    | Some l -> l
    | None -> if live_only then live_set t else Array.make n true
  in
  let indeg = Array.make n 0 in
  let fanout_lists = Array.make n [] in
  for id = 0 to n - 1 do
    if keep.(id) then begin
      let seen_fanin = Hashtbl.create 4 in
      Array.iter
        (fun f ->
          if keep.(f) && not (Hashtbl.mem seen_fanin f) then begin
            Hashtbl.add seen_fanin f ();
            indeg.(id) <- indeg.(id) + 1;
            fanout_lists.(f) <- id :: fanout_lists.(f)
          end)
        (Network.fanins t id)
    end
  done;
  let order = Array.make n 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  for id = 0 to n - 1 do
    if keep.(id) && indeg.(id) = 0 then Queue.add id queue
  done;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!count) <- id;
    incr count;
    List.iter
      (fun g ->
        indeg.(g) <- indeg.(g) - 1;
        if indeg.(g) = 0 then Queue.add g queue)
      fanout_lists.(id)
  done;
  Array.sub order 0 !count

let fanouts ?(live_only = true) t =
  let n = Network.num_nodes t in
  let keep = if live_only then live_set t else Array.make n true in
  let lists = Array.make n [] in
  for id = 0 to n - 1 do
    if keep.(id) then begin
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun f ->
          if not (Hashtbl.mem seen f) then begin
            Hashtbl.add seen f ();
            lists.(f) <- id :: lists.(f)
          end)
        (Network.fanins t id)
    end
  done;
  Array.map Array.of_list lists

let levels t =
  let n = Network.num_nodes t in
  let lvl = Array.make n 0 in
  let order = topo_order t in
  Array.iter
    (fun id ->
      let fis = Network.fanins t id in
      let m = Array.fold_left (fun acc f -> max acc lvl.(f)) (-1) fis in
      lvl.(id) <- (if Array.length fis = 0 then 0 else m + 1))
    order;
  lvl

let tfo_set t ~fanouts id =
  let n = Network.num_nodes t in
  let bv = Bitvec.create n in
  let stack = ref [ id ] in
  Bitvec.set bv id true;
  let rec walk () =
    match !stack with
    | [] -> ()
    | x :: rest ->
      stack := rest;
      Array.iter
        (fun g ->
          if not (Bitvec.get bv g) then begin
            Bitvec.set bv g true;
            stack := g :: !stack
          end)
        fanouts.(x);
      walk ()
  in
  walk ();
  bv

let tfo_list t ~fanouts ~topo_pos id =
  let bv = tfo_set t ~fanouts id in
  let nodes = ref [] in
  Bitvec.iter_set bv (fun x -> if x <> id then nodes := x :: !nodes);
  let arr = Array.of_list !nodes in
  Array.sort (fun a b -> compare topo_pos.(a) topo_pos.(b)) arr;
  arr

let shortest_path_bounded t ~fanouts ~src ~dst ~limit =
  ignore t;
  if src = dst then Some 0
  else begin
    let dist = Hashtbl.create 64 in
    Hashtbl.add dist src 0;
    let queue = Queue.create () in
    Queue.add src queue;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         let x = Queue.pop queue in
         let d = Hashtbl.find dist x in
         if d < limit then
           Array.iter
             (fun g ->
               if not (Hashtbl.mem dist g) then begin
                 if g = dst then begin
                   result := Some (d + 1);
                   raise Exit
                 end;
                 Hashtbl.add dist g (d + 1);
                 Queue.add g queue
               end)
             fanouts.(x)
       done
     with Exit -> ());
    !result
  end

let fanout_counts t ~live =
  let n = Network.num_nodes t in
  let counts = Array.make n 0 in
  for id = 0 to n - 1 do
    if live.(id) then begin
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun f ->
          if not (Hashtbl.mem seen f) then begin
            Hashtbl.add seen f ();
            counts.(f) <- counts.(f) + 1
          end)
        (Network.fanins t id)
    end
  done;
  Array.iter (fun id -> counts.(id) <- counts.(id) + 1) (Network.outputs t);
  counts

let mffc t ~fanout_counts ~live id =
  let counts = Array.copy fanout_counts in
  let acc = ref [ id ] in
  (* Decrement once per distinct fanin, mirroring how fanout_counts counts. *)
  let rec deref x =
    let seen = Hashtbl.create 4 in
    Array.iter
      (fun f ->
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          counts.(f) <- counts.(f) - 1;
          if counts.(f) = 0 && live.(f) && not (Network.is_input t f) then begin
            acc := f :: !acc;
            deref f
          end
        end)
      (Network.fanins t x)
  in
  deref id;
  !acc
