(** Structural analyses over a {!Network.t}.

    All functions treat the network as it currently stands; after a
    {!Network.replace} the analyses must be recomputed. The AccALS engine
    recomputes them once per round. *)

val live_set : Network.t -> bool array
(** [live_set t].(id) is true when node [id] is reachable from some primary
    output through fanin edges (primary outputs themselves included). *)

val topo_order : ?live:bool array -> ?live_only:bool -> Network.t -> int array
(** Topological order (fanins before fanouts). With [live_only] (default
    true) only live nodes appear. Passing [live] (a precomputed
    {!live_set}) avoids recomputing the liveness walk. *)

val fanouts : ?live_only:bool -> Network.t -> int array array
(** [fanouts t].(id) lists the nodes that use [id] as a fanin (each fanout
    listed once even if it uses [id] several times). *)

val levels : Network.t -> int array
(** Unit-delay level of every live node (inputs and constants at level 0);
    dead nodes get level 0. *)

val tfo_set : Network.t -> fanouts:int array array -> int -> Accals_bitvec.Bitvec.t
(** Transitive fanout of a node as a bitset over node ids (the node itself
    included). *)

val tfo_list : Network.t -> fanouts:int array array -> topo_pos:int array -> int -> int array
(** Transitive fanout of a node (the node excluded), sorted in topological
    order using [topo_pos] (node id -> position). Used for cone
    resimulation. *)

val shortest_path_bounded :
  Network.t -> fanouts:int array array -> src:int -> dst:int -> limit:int -> int option
(** Length (in edges) of the shortest directed path from [src] to [dst]
    following fanout edges, or [None] if it exceeds [limit] or there is no
    path. [Some 0] iff [src = dst]. *)

val mffc : Network.t -> fanout_counts:int array -> live:bool array -> int -> int list
(** Maximum fanout-free cone of a node: the node plus every live non-input
    node that only feeds the cone (and drives no primary output). These are
    the nodes that die when the node's definition stops using them.
    [fanout_counts].(id) must give the number of distinct live fanouts of
    [id]; the array is not modified. *)

val fanout_counts : Network.t -> live:bool array -> int array
(** Number of distinct live fanout nodes per node, plus 1 for each primary
    output the node drives. *)
