(** Bit-parallel logic simulation.

    A {!patterns} value fixes the input stimuli: one signature per primary
    input, one bit per pattern. {!run} then computes the signature of every
    live node. Exhaustive patterns enumerate all input combinations (small
    circuits); random patterns sample uniformly with a deterministic seed,
    matching the paper's uniform input distribution. *)

type patterns = {
  count : int;  (** number of simulation vectors *)
  by_input : Accals_bitvec.Bitvec.t array;  (** one signature per PI *)
}

val exhaustive : int -> patterns
(** [exhaustive k] enumerates all [2^k] vectors over [k] inputs. [k] must be
    at most 20. Bit [p] of input [i]'s signature is bit [i] of pattern
    index [p]. *)

val random : seed:int -> count:int -> int -> patterns
(** [random ~seed ~count k] draws [count] uniform vectors over [k] inputs. *)

val for_network : ?seed:int -> ?count:int -> ?exhaustive_limit:int -> Network.t -> patterns
(** Exhaustive when the network has at most [exhaustive_limit] (default 14)
    inputs, otherwise random with [count] (default 2048) vectors. *)

val run :
  ?live:bool array ->
  Network.t ->
  patterns ->
  order:int array ->
  Accals_bitvec.Bitvec.t array
(** [run t pats ~order] simulates the nodes listed in [order] (a topological
    order, e.g. from {!Structure.topo_order}) and returns signatures indexed
    by node id. Entries for nodes outside [order] are a shared zero-length
    dummy and must not be used. When [live] (e.g. {!Structure.live_set}) is
    given, dead nodes in [order] are skipped too — they stay on the shared
    dummy instead of costing an allocation and an evaluation each. *)

val eval_node_into :
  Network.t ->
  lookup:(int -> Accals_bitvec.Bitvec.t) ->
  int ->
  dst:Accals_bitvec.Bitvec.t ->
  unit
(** Recompute one node's signature from fanin signatures provided by
    [lookup]. Used for cone resimulation in the error estimator. [dst] must
    not alias any fanin signature. *)

val output_values : Network.t -> Accals_bitvec.Bitvec.t array -> pattern:int -> bool array
(** Extract the primary-output vector of one pattern from node signatures. *)
