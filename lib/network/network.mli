(** Mutable combinational Boolean network.

    Nodes are identified by dense integer ids. A node is created once and
    its definition (operator + fanins) may later be replaced in place — this
    is how LACs are applied. Nodes are never deallocated; nodes that become
    unreachable from the primary outputs are simply excluded by the live-set
    analysis ({!Structure.live_set}) and by the cost model. {!Cleanup.compact}
    rebuilds a dense copy.

    The network must stay acyclic; {!replace} enforces this. *)

type t

type change =
  | Replaced of { id : int; old_op : Gate.op; old_fanins : int array }
      (** Node [id]'s definition changed; the event carries the previous
          definition (the new one is readable from the network). Only fired
          for real changes: a {!replace} that re-installs the identical
          definition is skipped. *)
  | Added of int  (** A node with this id was just allocated. *)
  | Outputs_changed of { old_ids : int array; old_names : string array }
      (** {!set_outputs} installed a different output table. *)

exception Cycle of int
(** Raised by {!replace} when the new definition would close a combinational
    cycle through the given node. *)

val create : ?name:string -> unit -> t

val name : t -> string

val set_name : t -> string -> unit

val add_input : t -> string -> int
(** Append a primary input; returns its node id. *)

val add_inputs : t -> string array -> int array
(** Append a batch of primary inputs in order; returns their node ids.
    Equivalent to mapping {!add_input}, but costs one input-table append
    for the whole batch — use it when creating many inputs (streaming
    readers), where repeated single appends would be quadratic. *)

val add_node : t -> Gate.op -> int array -> int
(** [add_node t op fanins] appends a gate. All fanins must be existing node
    ids. Raises [Invalid_argument] on arity violation or unknown fanin. *)

val set_outputs : t -> (string * int) array -> unit
(** Declare the primary outputs as (name, driver id) pairs, replacing any
    previous declaration. *)

val num_nodes : t -> int
(** Number of allocated node ids (including dead nodes). *)

val op : t -> int -> Gate.op

val fanins : t -> int -> int array
(** The fanin ids of a node. The returned array must not be mutated. *)

val inputs : t -> int array
(** Primary input ids, in declaration order. Do not mutate. *)

val outputs : t -> int array
(** Primary output driver ids, in declaration order. Do not mutate. *)

val output_names : t -> string array

val input_names : t -> string array

val is_input : t -> int -> bool

val replace : ?check_cycle:bool -> t -> int -> Gate.op -> int array -> unit
(** [replace t id op fanins] redefines node [id]. Raises {!Cycle} if the new
    fanin cone reaches [id] (checked unless [check_cycle:false]), and
    [Invalid_argument] on arity violations, on unknown fanins, or when [id]
    is a primary input. *)

val reaches : t -> src:int -> dst:int -> bool
(** True when there is a directed path of fanin edges from [dst] back to
    [src]; i.e. [src] is in the transitive fanin of [dst]. *)

val unsafe_set_def : t -> int -> Gate.op -> int array -> unit
(** Test hook: overwrite a node's operator and fanins with {e no} checks
    and {e no} change events — the supported way to inject precisely one
    invariant violation when property-testing {!validate}. Never use it in
    synthesis code; it can corrupt the network arbitrarily. *)

val eval : t -> bool array -> bool array
(** [eval t input_values] evaluates every primary output on one input
    vector (ordered as {!inputs}/{!outputs}). Reference semantics used as a
    test oracle for the bit-parallel simulator. *)

val copy : t -> t
(** Deep copy; node ids are preserved. The copy has no change tracker
    attached (and is therefore always safe to marshal). *)

val set_tracker : t -> (change -> unit) option -> unit
(** Attach (or with [None] detach) the single change listener. The listener
    fires after each mutation, with enough information to reconstruct the
    previous state; it is how [lib/sigdb] keeps its incremental structures
    in sync. Raises [Invalid_argument] when attaching over an existing
    listener. A network with a tracker attached must not be marshaled —
    checkpoint a {!copy} instead. *)

val has_tracker : t -> bool

val truncate : t -> int -> unit
(** [truncate t n] forgets every node with id >= [n] (undo support for
    speculatively added nodes). The caller must guarantee that no surviving
    node and no primary output references the removed ids. Does not fire
    change events. *)

val digest : t -> string
(** Canonical structural digest: the SHA-256 of a canonical encoding,
    as 64 lowercase hex digits.

    The digest is computed over a canonical renumbering (pre-order DFS
    from the outputs in declaration order, fanins in order), so it is
    invariant under node-id renumbering of isomorphic builds and under
    dead nodes, the circuit name, and PI/PO {e names} — but sensitive to
    any change in the live logic: a single gate operator or fanin edit,
    a swapped pair of primary-input wires, or a reordered output list all
    produce a different digest.  Primary inputs hash as their declaration
    index (evaluation binds input values by position).

    This is the content address used by the result cache of the
    synthesis service ([lib/server]): two submissions whose networks
    digest equally are guaranteed to synthesize identically under equal
    (metric, bound, samples, seed).  The cache is shared across tenants
    and persisted across restarts, so the digest is cryptographic
    ({!Sha256}) — a constructed collision, not just an accidental one,
    would let one tenant poison another's cached result. *)

type violation = { node : int option; reason : string }
(** A broken structural invariant: the offending node (when one can be
    named) and a human-readable reason. *)

exception Invariant_violation of violation

val validate : t -> unit
(** Check structural invariants — per-node arity, fanin ranges, no
    self-loops, acyclicity, live PO drivers, and name-table consistency
    (PI/PO id and name tables pair up, Input operators and the input table
    agree in both directions). Raises {!Invariant_violation} naming the
    offending node on the first violation found. Run by the engine at round
    boundaries (when [Config.validate_rounds] is set) and always before a
    state is checkpointed. *)
