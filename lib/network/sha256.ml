(* FIPS 180-4 SHA-256, dependency-free.

   The result cache behind [Network.digest] is shared across tenants and
   survives restarts, so the digest must be collision-resistant against
   an adversary, not just against chance: a 64-bit non-cryptographic hash
   (FNV, CRC) admits constructed collisions that would let one tenant
   poison another's cache entry.  Words are plain OCaml [int]s masked to
   32 bits — no boxing, no Int32 churn. *)

type t = {
  h : int array;  (* 8 words of chaining state *)
  block : Bytes.t;  (* 64-byte input block being filled *)
  w : int array;  (* 64-word message schedule, reused per block *)
  mutable fill : int;  (* bytes currently in [block] *)
  mutable total : int64;  (* message length so far, in bytes *)
}

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let create () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    w = Array.make 64 0;
    fill = 0;
    total = 0L;
  }

let mask = 0xffffffff
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress t =
  let w = t.w in
  let b = t.block in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get b (4 * i)) lsl 24)
      lor (Char.code (Bytes.get b ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get b ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get b ((4 * i) + 3))
  done;
  for i = 16 to 63 do
    let x = w.(i - 15) and y = w.(i - 2) in
    let s0 = rotr x 7 lxor rotr x 18 lxor (x lsr 3) in
    let s1 = rotr y 17 lxor rotr y 19 lxor (y lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref t.h.(0) and b' = ref t.h.(1) and c = ref t.h.(2) in
  let d = ref t.h.(3) and e = ref t.h.(4) and f = ref t.h.(5) in
  let g = ref t.h.(6) and h = ref t.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land mask land !g) in
    let t1 = (!h + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b' lxor (!a land !c) lxor (!b' land !c) in
    let t2 = (s0 + maj) land mask in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b';
    b' := !a;
    a := (t1 + t2) land mask
  done;
  t.h.(0) <- (t.h.(0) + !a) land mask;
  t.h.(1) <- (t.h.(1) + !b') land mask;
  t.h.(2) <- (t.h.(2) + !c) land mask;
  t.h.(3) <- (t.h.(3) + !d) land mask;
  t.h.(4) <- (t.h.(4) + !e) land mask;
  t.h.(5) <- (t.h.(5) + !f) land mask;
  t.h.(6) <- (t.h.(6) + !g) land mask;
  t.h.(7) <- (t.h.(7) + !h) land mask

let feed_byte t c =
  Bytes.set t.block t.fill (Char.unsafe_chr (c land 0xff));
  t.fill <- t.fill + 1;
  t.total <- Int64.add t.total 1L;
  if t.fill = 64 then begin
    compress t;
    t.fill <- 0
  end

let feed_string t s = String.iter (fun c -> feed_byte t (Char.code c)) s

(* 8-byte big-endian two's-complement, so any OCaml int feeds losslessly
   and unambiguously (fixed width: no length-extension-style framing
   ambiguity between adjacent values). *)
let feed_int64_be t x64 =
  for i = 0 to 7 do
    feed_byte t
      (Int64.to_int (Int64.shift_right_logical x64 (56 - (8 * i))) land 0xff)
  done

let feed_int t x = feed_int64_be t (Int64.of_int x)

let hex t =
  let bits = Int64.mul t.total 8L in
  feed_byte t 0x80;
  while t.fill <> 56 do
    feed_byte t 0
  done;
  feed_int64_be t bits;
  assert (t.fill = 0);
  let buf = Buffer.create 64 in
  Array.iter (fun w -> Buffer.add_string buf (Printf.sprintf "%08x" w)) t.h;
  Buffer.contents buf

let hex_of_string s =
  let t = create () in
  feed_string t s;
  hex t
