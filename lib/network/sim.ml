module Bitvec = Accals_bitvec.Bitvec
module Prng = Accals_bitvec.Prng

type patterns = { count : int; by_input : Bitvec.t array }

let exhaustive k =
  if k < 0 || k > 20 then invalid_arg "Sim.exhaustive: input count out of range";
  let count = 1 lsl k in
  let by_input =
    Array.init k (fun i ->
        let bv = Bitvec.create count in
        for p = 0 to count - 1 do
          if p lsr i land 1 = 1 then Bitvec.set bv p true
        done;
        bv)
  in
  { count; by_input }

let random ~seed ~count k =
  if count <= 0 then invalid_arg "Sim.random: count must be positive";
  let rng = Prng.create seed in
  let by_input =
    Array.init k (fun _ ->
        let bv = Bitvec.create count in
        Bitvec.randomize rng bv;
        bv)
  in
  { count; by_input }

let for_network ?(seed = 1) ?(count = 2048) ?(exhaustive_limit = 14) t =
  let k = Array.length (Network.inputs t) in
  if k <= exhaustive_limit then exhaustive k else random ~seed ~count k

let dummy = Bitvec.create 0

let eval_node_into t ~lookup id ~dst =
  let fis = Network.fanins t id in
  match Network.op t id with
  | Gate.Input -> invalid_arg "Sim.eval_node_into: primary input"
  | Gate.Const b -> Bitvec.fill dst b
  | Gate.Buf -> Bitvec.blit ~src:(lookup fis.(0)) ~dst
  | Gate.Not -> Bitvec.lognot_into (lookup fis.(0)) ~dst
  | Gate.And | Gate.Nand ->
    Bitvec.blit ~src:(lookup fis.(0)) ~dst;
    for i = 1 to Array.length fis - 1 do
      Bitvec.logand_into dst (lookup fis.(i)) ~dst
    done;
    if Network.op t id = Gate.Nand then Bitvec.lognot_into dst ~dst
  | Gate.Or | Gate.Nor ->
    Bitvec.blit ~src:(lookup fis.(0)) ~dst;
    for i = 1 to Array.length fis - 1 do
      Bitvec.logor_into dst (lookup fis.(i)) ~dst
    done;
    if Network.op t id = Gate.Nor then Bitvec.lognot_into dst ~dst
  | Gate.Xor | Gate.Xnor ->
    Bitvec.blit ~src:(lookup fis.(0)) ~dst;
    for i = 1 to Array.length fis - 1 do
      Bitvec.logxor_into dst (lookup fis.(i)) ~dst
    done;
    if Network.op t id = Gate.Xnor then Bitvec.lognot_into dst ~dst
  | Gate.Mux ->
    Bitvec.mux_into ~sel:(lookup fis.(0)) (lookup fis.(1)) (lookup fis.(2)) ~dst

let run ?live t pats ~order =
  let n = Network.num_nodes t in
  let sigs = Array.make n dummy in
  let input_ids = Network.inputs t in
  if Array.length input_ids <> Array.length pats.by_input then
    invalid_arg "Sim.run: pattern/input mismatch";
  Array.iteri (fun i id -> sigs.(id) <- pats.by_input.(i)) input_ids;
  let lookup id = sigs.(id) in
  let dead id = match live with Some l -> not l.(id) | None -> false in
  Array.iter
    (fun id ->
      (* Dead nodes stay on the shared dummy: no allocation, no eval. *)
      if not (Network.is_input t id) && not (dead id) then begin
        let dst = Bitvec.create pats.count in
        eval_node_into t ~lookup id ~dst;
        sigs.(id) <- dst
      end)
    order;
  sigs

let output_values t sigs ~pattern =
  Array.map (fun id -> Bitvec.get sigs.(id) pattern) (Network.outputs t)
