type change =
  | Replaced of { id : int; old_op : Gate.op; old_fanins : int array }
  | Added of int
  | Outputs_changed of { old_ids : int array; old_names : string array }

type t = {
  mutable name : string;
  mutable ops : Gate.op array;
  mutable fanin_arrays : int array array;
  mutable used : int;
  mutable input_ids : int array;
  mutable input_name_list : string array;
  mutable output_ids : int array;
  mutable output_name_array : string array;
  (* Change tracker: at most one listener (the signature database). Never
     checkpointed — [copy] drops it, so copies stay marshal-safe. *)
  mutable tracker : (change -> unit) option;
}

exception Cycle of int

let create ?(name = "net") () =
  {
    name;
    ops = Array.make 64 (Gate.Const false);
    fanin_arrays = Array.make 64 [||];
    used = 0;
    input_ids = [||];
    input_name_list = [||];
    output_ids = [||];
    output_name_array = [||];
    tracker = None;
  }

let set_tracker t f =
  (match (t.tracker, f) with
   | Some _, Some _ -> invalid_arg "Network.set_tracker: tracker already attached"
   | _ -> ());
  t.tracker <- f

let has_tracker t = t.tracker <> None

let notify t change =
  match t.tracker with None -> () | Some f -> f change

let name t = t.name
let set_name t s = t.name <- s

let grow t =
  let cap = Array.length t.ops in
  if t.used = cap then begin
    let ops = Array.make (2 * cap) (Gate.Const false) in
    let fis = Array.make (2 * cap) [||] in
    Array.blit t.ops 0 ops 0 cap;
    Array.blit t.fanin_arrays 0 fis 0 cap;
    t.ops <- ops;
    t.fanin_arrays <- fis
  end

let alloc t op fanins =
  grow t;
  let id = t.used in
  t.ops.(id) <- op;
  t.fanin_arrays.(id) <- fanins;
  t.used <- t.used + 1;
  notify t (Added id);
  id

let truncate t n =
  if n < 0 || n > t.used then invalid_arg "Network.truncate: bad watermark";
  (* Undo-journal support: forget the nodes allocated past [n]. The caller
     guarantees nothing at ids < n (nor the output table) references them. *)
  t.used <- n

let add_input t nm =
  let id = alloc t Gate.Input [||] in
  t.input_ids <- Array.append t.input_ids [| id |];
  t.input_name_list <- Array.append t.input_name_list [| nm |];
  id

let add_inputs t names =
  (* Bulk variant: one table append for the whole batch, so creating k
     inputs costs O(existing + k) instead of the O(k^2) that k single
     appends would — the difference between linear and quadratic parsing
     for input-heavy netlists. *)
  let ids = Array.map (fun _ -> alloc t Gate.Input [||]) names in
  t.input_ids <- Array.append t.input_ids ids;
  t.input_name_list <- Array.append t.input_name_list names;
  ids

let check_def t op fanins =
  if not (Gate.arity_ok op (Array.length fanins)) then
    invalid_arg "Network: arity violation";
  Array.iter
    (fun f ->
      if f < 0 || f >= t.used then invalid_arg "Network: unknown fanin id")
    fanins

let add_node t op fanins =
  if op = Gate.Input then invalid_arg "Network.add_node: use add_input";
  check_def t op fanins;
  alloc t op fanins

let set_outputs t pairs =
  Array.iter
    (fun (_, id) ->
      if id < 0 || id >= t.used then invalid_arg "Network: unknown output id")
    pairs;
  let old_ids = t.output_ids and old_names = t.output_name_array in
  t.output_ids <- Array.map snd pairs;
  t.output_name_array <- Array.map fst pairs;
  if old_ids <> t.output_ids || old_names <> t.output_name_array then
    notify t (Outputs_changed { old_ids; old_names })

let num_nodes t = t.used
let op t id = t.ops.(id)
let fanins t id = t.fanin_arrays.(id)
let inputs t = t.input_ids
let outputs t = t.output_ids
let output_names t = t.output_name_array
let input_names t = t.input_name_list
let is_input t id = t.ops.(id) = Gate.Input

(* Is [src] in the transitive fanin of [dst]? Iterative DFS over fanins. *)
let reaches t ~src ~dst =
  if src = dst then true
  else begin
    let seen = Array.make t.used false in
    let stack = ref [ dst ] in
    let found = ref false in
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        if not seen.(id) then begin
          seen.(id) <- true;
          let fis = t.fanin_arrays.(id) in
          for i = 0 to Array.length fis - 1 do
            let f = fis.(i) in
            if f = src then found := true else if not seen.(f) then stack := f :: !stack
          done
        end
    done;
    !found
  end

let replace ?(check_cycle = true) t id op fanins =
  if id < 0 || id >= t.used then invalid_arg "Network.replace: unknown id";
  if t.ops.(id) = Gate.Input then invalid_arg "Network.replace: primary input";
  if op = Gate.Input then invalid_arg "Network.replace: cannot become input";
  check_def t op fanins;
  if check_cycle then
    Array.iter
      (fun f -> if f = id || reaches t ~src:id ~dst:f then raise (Cycle id))
      fanins;
  (* Skip definition-preserving rewrites (common during [Cleanup.sweep]):
     they carry no information for change listeners, and the assignment
     would be a no-op anyway. *)
  if not (t.ops.(id) = op && t.fanin_arrays.(id) = fanins) then begin
    let old_op = t.ops.(id) and old_fanins = t.fanin_arrays.(id) in
    t.ops.(id) <- op;
    t.fanin_arrays.(id) <- fanins;
    notify t (Replaced { id; old_op; old_fanins })
  end

let unsafe_set_def t id op fanins =
  t.ops.(id) <- op;
  t.fanin_arrays.(id) <- fanins

let eval t input_values =
  if Array.length input_values <> Array.length t.input_ids then
    invalid_arg "Network.eval: wrong input count";
  let value = Array.make t.used false in
  let computed = Array.make t.used false in
  Array.iteri
    (fun i id ->
      value.(id) <- input_values.(i);
      computed.(id) <- true)
    t.input_ids;
  (* Evaluate on demand with an explicit stack (the network can be deep). *)
  let rec force id =
    if not computed.(id) then begin
      let fis = t.fanin_arrays.(id) in
      Array.iter force fis;
      let vs = Array.map (fun f -> value.(f)) fis in
      value.(id) <- Gate.eval t.ops.(id) vs;
      computed.(id) <- true
    end
  in
  Array.map
    (fun id ->
      force id;
      value.(id))
    t.output_ids

let copy t =
  {
    name = t.name;
    ops = Array.copy t.ops;
    fanin_arrays = Array.map Array.copy (Array.sub t.fanin_arrays 0 (Array.length t.fanin_arrays));
    used = t.used;
    input_ids = Array.copy t.input_ids;
    input_name_list = Array.copy t.input_name_list;
    output_ids = Array.copy t.output_ids;
    output_name_array = Array.copy t.output_name_array;
    (* Trackers are tied to one concrete network instance (and would make
       the copy unmarshalable); copies start untracked. *)
    tracker = None;
  }

(* ------------------------------------------------------------------ *)
(* Canonical digest *)

(* The digest keys a result cache shared across tenants and persisted
   across restarts, so it must be collision-resistant against an
   adversary: a non-cryptographic hash (CRC-32, FNV) admits deliberately
   constructed collisions with which one tenant could poison another's
   cache entry.  SHA-256 (lib/network/sha256.ml, dependency-free) over
   the canonical encoding closes that off. *)

let op_tag = function
  | Gate.Const false -> 0
  | Gate.Const true -> 1
  | Gate.Input -> 2
  | Gate.Buf -> 3
  | Gate.Not -> 4
  | Gate.And -> 5
  | Gate.Or -> 6
  | Gate.Nand -> 7
  | Gate.Nor -> 8
  | Gate.Xor -> 9
  | Gate.Xnor -> 10
  | Gate.Mux -> 11

let digest t =
  (* Canonical ids: pre-order DFS from the outputs in declaration order,
     fanins in order.  The numbering depends only on the reachable graph
     shape, never on allocation order, so isomorphic builds that allocated
     their nodes differently digest identically.  Dead nodes are skipped:
     the digest covers exactly the logic a reader of the BLIF would see. *)
  let n = max 1 t.used in
  let canon = Array.make n (-1) in
  let count = ref 0 in
  let visit root =
    if canon.(root) < 0 then begin
      let stack = ref [ root ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | id :: rest ->
          stack := rest;
          if canon.(id) < 0 then begin
            canon.(id) <- !count;
            incr count;
            let fis = t.fanin_arrays.(id) in
            (* Reverse push so fanin 0 is explored first. *)
            for k = Array.length fis - 1 downto 0 do
              let f = fis.(k) in
              if canon.(f) < 0 then stack := f :: !stack
            done
          end
      done
    end
  in
  Array.iter visit t.output_ids;
  let by_canon = Array.make (max 1 !count) 0 in
  for id = 0 to t.used - 1 do
    if canon.(id) >= 0 then by_canon.(canon.(id)) <- id
  done;
  (* Primary inputs hash as their declaration index: eval binds input
     values by position, so swapping two PI wires must change the digest
     even when the graph shapes are isomorphic. *)
  let input_pos = Array.make n (-1) in
  Array.iteri (fun i id -> input_pos.(id) <- i) t.input_ids;
  let ctx = Sha256.create () in
  let add x = Sha256.feed_int ctx x in
  add (Array.length t.input_ids);
  add !count;
  for c = 0 to !count - 1 do
    let id = by_canon.(c) in
    let op = t.ops.(id) in
    add (op_tag op);
    if op = Gate.Input then add input_pos.(id)
    else begin
      let fis = t.fanin_arrays.(id) in
      add (Array.length fis);
      Array.iter (fun f -> add canon.(f)) fis
    end
  done;
  add (Array.length t.output_ids);
  Array.iter (fun id -> add canon.(id)) t.output_ids;
  Sha256.hex ctx

type violation = { node : int option; reason : string }

exception Invariant_violation of violation

let () =
  Printexc.register_printer (function
    | Invariant_violation { node; reason } ->
      Some
        (match node with
         | Some id -> Printf.sprintf "Invariant_violation (node %d: %s)" id reason
         | None -> Printf.sprintf "Invariant_violation (%s)" reason)
    | _ -> None)

let violated ?node fmt =
  Printf.ksprintf (fun reason -> raise (Invariant_violation { node; reason })) fmt

let validate t =
  (* Name-table consistency: ids and names must pair up, and the PI tables
     must agree with the node operators in both directions. *)
  if Array.length t.input_ids <> Array.length t.input_name_list then
    violated "input table: %d ids but %d names" (Array.length t.input_ids)
      (Array.length t.input_name_list);
  if Array.length t.output_ids <> Array.length t.output_name_array then
    violated "output table: %d ids but %d names" (Array.length t.output_ids)
      (Array.length t.output_name_array);
  let is_registered_input = Array.make (max 1 t.used) false in
  Array.iter
    (fun id ->
      if id < 0 || id >= t.used then violated "input id %d out of range" id;
      if is_registered_input.(id) then
        violated ~node:id "node registered as primary input twice";
      is_registered_input.(id) <- true;
      if t.ops.(id) <> Gate.Input then
        violated ~node:id "input-table entry is not an Input node")
    t.input_ids;
  (* Local structure: arity, fanin ranges, no self-loops, and every Input
     operator accounted for in the input table. *)
  for id = 0 to t.used - 1 do
    let fis = t.fanin_arrays.(id) in
    if not (Gate.arity_ok t.ops.(id) (Array.length fis)) then
      violated ~node:id "%s with %d fanins (arity violation)"
        (Gate.to_string t.ops.(id))
        (Array.length fis);
    Array.iter
      (fun f ->
        if f < 0 || f >= t.used then
          violated ~node:id "fanin %d out of range [0, %d)" f t.used;
        if f = id then violated ~node:id "self-loop")
      fis;
    if t.ops.(id) = Gate.Input && not is_registered_input.(id) then
      violated ~node:id "Input node missing from the input table"
  done;
  (* Acyclicity via iterative DFS coloring (the explicit stack keeps
     adversarial deep inputs — e.g. fuzzed BLIF — from overflowing). *)
  let color = Array.make (max 1 t.used) 0 in
  let visit root =
    if color.(root) = 0 then begin
      let stack = ref [ (root, 0) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (id, next_fanin) :: rest ->
          if next_fanin = 0 then color.(id) <- 1;
          let fis = t.fanin_arrays.(id) in
          if next_fanin >= Array.length fis then begin
            color.(id) <- 2;
            stack := rest
          end
          else begin
            stack := (id, next_fanin + 1) :: rest;
            let f = fis.(next_fanin) in
            if color.(f) = 1 then violated ~node:f "combinational cycle";
            if color.(f) = 0 then stack := (f, 0) :: !stack
          end
      done
    end
  in
  for id = 0 to t.used - 1 do
    visit id
  done;
  (* Primary outputs must have live drivers. *)
  Array.iteri
    (fun i id ->
      if id < 0 || id >= t.used then
        violated "output %s: driver id %d out of range"
          (if i < Array.length t.output_name_array then t.output_name_array.(i)
           else string_of_int i)
          id)
    t.output_ids
