(** FIPS 180-4 SHA-256, dependency-free.

    Backs {!Network.digest}: the daemon's result cache is shared across
    tenants and persisted across restarts, so cache keys must resist
    {e constructed} collisions, not merely accidental ones. *)

type t
(** Incremental hashing state.  Single-use: {!hex} finalizes in place. *)

val create : unit -> t

val feed_byte : t -> int -> unit
(** Absorb the low 8 bits of the argument. *)

val feed_string : t -> string -> unit

val feed_int : t -> int -> unit
(** Absorb an OCaml [int] as 8 big-endian two's-complement bytes; the
    fixed width keeps adjacent values unambiguous in the stream. *)

val hex : t -> string
(** Finalize and return the digest as 64 lowercase hex digits.  The
    state must not be fed again afterwards. *)

val hex_of_string : string -> string
(** [hex_of_string s] is the SHA-256 of [s], as 64 lowercase hex digits. *)
