open Accals_network

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ----- writing ----- *)

let cover_of_gate op k =
  (* Rows of (input-pattern, output-bit) covering the ON-set. *)
  let dashes = String.make k '-' in
  let row_with i c = String.mapi (fun j d -> if j = i then c else d) dashes in
  match op with
  | Gate.Const false -> []
  | Gate.Const true -> [ ("", '1') ]
  | Gate.Buf -> [ ("1", '1') ]
  | Gate.Not -> [ ("0", '1') ]
  | Gate.And -> [ (String.make k '1', '1') ]
  | Gate.Nor -> [ (String.make k '0', '1') ]
  | Gate.Nand -> List.init k (fun i -> (row_with i '0', '1'))
  | Gate.Or -> List.init k (fun i -> (row_with i '1', '1'))
  | Gate.Xor | Gate.Xnor ->
    if k > 10 then fail "BLIF writer: xor arity %d too large" k;
    let want_odd = op = Gate.Xor in
    let rows = ref [] in
    for v = 0 to (1 lsl k) - 1 do
      let ones = ref 0 in
      for b = 0 to k - 1 do
        if v lsr b land 1 = 1 then incr ones
      done;
      if !ones mod 2 = (if want_odd then 1 else 0) then begin
        let row = String.init k (fun b -> if v lsr b land 1 = 1 then '1' else '0') in
        rows := (row, '1') :: !rows
      end
    done;
    List.rev !rows
  | Gate.Mux -> [ ("11-", '1'); ("0-1", '1') ]
  | Gate.Input -> fail "BLIF writer: input has no cover"

let to_string t =
  let buf = Buffer.create 4096 in
  let live = Structure.live_set t in
  let node_name = Array.make (Network.num_nodes t) "" in
  Array.iteri
    (fun i id -> node_name.(id) <- (Network.input_names t).(i))
    (Network.inputs t);
  for id = 0 to Network.num_nodes t - 1 do
    if node_name.(id) = "" then node_name.(id) <- Printf.sprintf "n%d" id
  done;
  (* A PO may be driven by a PI or shared driver; emit alias .names then. *)
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Network.name t));
  Buffer.add_string buf ".inputs";
  Array.iter (fun nm -> Buffer.add_string buf (" " ^ nm)) (Network.input_names t);
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun nm -> Buffer.add_string buf (" " ^ nm)) (Network.output_names t);
  Buffer.add_string buf "\n";
  let order = Structure.topo_order t in
  Array.iter
    (fun id ->
      if live.(id) && not (Network.is_input t id) then begin
        let fis = Network.fanins t id in
        Buffer.add_string buf ".names";
        Array.iter (fun f -> Buffer.add_string buf (" " ^ node_name.(f))) fis;
        Buffer.add_string buf (" " ^ node_name.(id) ^ "\n");
        List.iter
          (fun (row, out) ->
            if row = "" then Buffer.add_string buf (Printf.sprintf "%c\n" out)
            else Buffer.add_string buf (Printf.sprintf "%s %c\n" row out))
          (cover_of_gate (Network.op t id) (Array.length fis))
      end)
    order;
  (* Output aliases where the PO name differs from the driver's name. *)
  Array.iteri
    (fun i id ->
      let po = (Network.output_names t).(i) in
      if node_name.(id) <> po then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" node_name.(id) po))
    (Network.outputs t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  (try output_string oc (to_string t) with e -> close_out oc; raise e);
  close_out oc

(* ----- parsing ----- *)

(* Every diagnostic carries the 1-based source line it was detected on, and
   [parse_string] guarantees that the only exception escaping on any byte
   string whatsoever is [Parse_error]. *)

let fail_at line fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

type raw_names = {
  decl_line : int;  (* line of the .names directive *)
  fanin_names : string list;
  target : string;
  rows : (int * string * char) list;  (* (line, pattern, output) *)
}

(* ----- logical-line streaming -----

   The reader pulls one physical line at a time from a producer, strips
   comments, normalizes whitespace, joins continuation lines and
   tokenizes — one pass, with token-list accumulation instead of string
   re-concatenation, so a continuation chain (EPFL-style circuits
   declare tens of thousands of inputs across continued [.inputs]
   lines) costs linear time, and a multi-megabyte file is never held in
   memory as a whole. *)

(* Comment-strip, normalize, trim; flag a trailing continuation '\\'. *)
let clean_physical line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line =
    String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line
  in
  let line = String.trim line in
  if String.length line > 0 && line.[String.length line - 1] = '\\' then
    (true, String.sub line 0 (String.length line - 1))
  else (false, line)

let split_tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* Next non-empty logical line as [(first_line_number, tokens)]. *)
let rec next_logical next_line lineno =
  match next_line () with
  | None -> None
  | Some raw ->
    incr lineno;
    let start = !lineno in
    let rec go chunks raw =
      let continued, text = clean_physical raw in
      let chunks = split_tokens text :: chunks in
      if not continued then List.concat (List.rev chunks)
      else
        match next_line () with
        | None -> fail_at start "dangling line continuation"
        | Some raw' ->
          incr lineno;
          go chunks raw'
    in
    (match go [] raw with
     | [] -> next_logical next_line lineno
     | tokens -> Some (start, tokens))

let parse_lines next_line =
  let guarded body =
    (* Anything other than [Parse_error] leaking from here is a parser bug;
       convert it rather than crash callers feeding untrusted bytes. *)
    try body () with
    | Parse_error _ as e -> raise e
    | Network.Invariant_violation { node; reason } ->
      raise
        (Parse_error
           (match node with
            | Some id -> Printf.sprintf "invalid network: node %d: %s" id reason
            | None -> Printf.sprintf "invalid network: %s" reason))
    | Failure m -> raise (Parse_error ("internal failure: " ^ m))
    | Invalid_argument m -> raise (Parse_error ("internal error: " ^ m))
    | Stack_overflow -> raise (Parse_error "input too deeply nested")
  in
  guarded @@ fun () ->
  let lineno = ref 0 in
  let model = ref "blif" in
  (* All accumulators are built in reverse and reversed once at the end:
     appending per directive would be quadratic in the directive count. *)
  let rev_inputs : (string * int) list ref = ref [] in
  let rev_outputs : (string * int) list ref = ref [] in
  let rev_names : raw_names list ref = ref [] in
  let current : raw_names option ref = ref None in
  let saw_end = ref false in
  let flush () =
    match !current with
    | Some r ->
      rev_names := { r with rows = List.rev r.rows } :: !rev_names;
      current := None
    | None -> ()
  in
  let handle ln tokens =
    match tokens with
    | ".model" :: rest ->
      flush ();
      (match rest with
       | [ m ] -> model := m
       | [] -> fail_at ln ".model expects a name"
       | _ -> fail_at ln ".model expects a single name")
    | ".inputs" :: rest ->
      flush ();
      List.iter (fun nm -> rev_inputs := (nm, ln) :: !rev_inputs) rest
    | ".outputs" :: rest ->
      flush ();
      List.iter (fun nm -> rev_outputs := (nm, ln) :: !rev_outputs) rest
    | ".names" :: rest ->
      flush ();
      (match List.rev rest with
       | target :: rev_fanins ->
         current :=
           Some
             {
               decl_line = ln;
               fanin_names = List.rev rev_fanins;
               target;
               rows = [];
             }
       | [] -> fail_at ln ".names with no signals")
    | ".end" :: _ ->
      flush ();
      saw_end := true
    | ".latch" :: _ -> fail_at ln "latches are not supported"
    | ".subckt" :: _ -> fail_at ln "subcircuits are not supported"
    | directive :: _ when String.length directive > 0 && directive.[0] = '.' ->
      flush () (* ignore unknown directives such as .default_input_arrival *)
    | row_tokens -> begin
      match !current with
      | None ->
        fail_at ln "cover row outside .names: %s" (String.concat " " row_tokens)
      | Some r ->
        let pattern, out =
          match row_tokens with
          | [ out ] when r.fanin_names = [] -> ("", out)
          | [ pattern; out ] -> (pattern, out)
          | _ -> fail_at ln "malformed cover row"
        in
        let out_char =
          if out = "1" then '1'
          else if out = "0" then '0'
          else fail_at ln "cover output must be 0 or 1, got %s" out
        in
        if String.length pattern <> List.length r.fanin_names then
          fail_at ln "cover row width %d does not match the %d inputs of %s"
            (String.length pattern)
            (List.length r.fanin_names)
            r.target;
        String.iter
          (fun c ->
            match c with
            | '0' | '1' | '-' -> ()
            | c -> fail_at ln "bad cover character %c" c)
          pattern;
        current := Some { r with rows = (ln, pattern, out_char) :: r.rows }
    end
  in
  let rec pump () =
    if not !saw_end then
      match next_logical next_line lineno with
      | None -> ()
      | Some (ln, tokens) ->
        handle ln tokens;
        pump ()
  in
  pump ();
  if not !saw_end then raise (Parse_error "missing .end");
  let names = List.rev !rev_names in
  let inputs = List.rev !rev_inputs in
  let outputs = List.rev !rev_outputs in
  let net = Network.create ~name:!model () in
  let by_name : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let input_names : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (nm, ln) ->
      match Hashtbl.find_opt input_names nm with
      | Some first ->
        fail_at ln "duplicate input %s (first declared at line %d)" nm first
      | None -> Hashtbl.add input_names nm ln)
    inputs;
  let input_name_arr = Array.of_list (List.map fst inputs) in
  let input_ids = Network.add_inputs net input_name_arr in
  Array.iteri (fun k nm -> Hashtbl.add by_name nm input_ids.(k)) input_name_arr;
  (* Create placeholder nodes for every defined signal, then fill in
     definitions; BLIF permits use-before-definition. *)
  let defined : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      (match Hashtbl.find_opt defined r.target with
       | Some first ->
         fail_at r.decl_line
           "duplicate .names output %s (first defined at line %d)" r.target
           first
       | None -> Hashtbl.add defined r.target r.decl_line);
      if Hashtbl.mem input_names r.target then
        fail_at r.decl_line ".names output %s redefines a primary input"
          r.target;
      if not (Hashtbl.mem by_name r.target) then
        Hashtbl.add by_name r.target (Network.add_node net (Gate.Const false) [||]))
    names;
  let lookup ~line nm =
    match Hashtbl.find_opt by_name nm with
    | Some id -> id
    | None -> fail_at line "undefined signal %s" nm
  in
  let build_product fanin_ids pattern =
    (* AND of literals selected by the row pattern; None when all dashes. *)
    let lits = ref [] in
    String.iteri
      (fun i c ->
        let id = fanin_ids.(i) in
        match c with
        | '1' -> lits := id :: !lits
        | '0' -> lits := Network.add_node net Gate.Not [| id |] :: !lits
        | _ -> ())
      pattern;
    match !lits with
    | [] -> None
    | [ x ] -> Some x
    | xs -> Some (Network.add_node net Gate.And (Array.of_list (List.rev xs)))
  in
  List.iter
    (fun r ->
      let target = lookup ~line:r.decl_line r.target in
      let fanin_ids =
        Array.of_list (List.map (lookup ~line:r.decl_line) r.fanin_names)
      in
      let out_values = List.map (fun (_, _, v) -> v) r.rows in
      (match out_values with
       | [] -> Network.replace ~check_cycle:false net target (Gate.Const false) [||]
       | v :: rest ->
         (match List.find_opt (fun v' -> v' <> v) rest with
          | Some _ ->
            let mixed_line =
              match r.rows with (ln, _, _) :: _ -> ln | [] -> r.decl_line
            in
            fail_at mixed_line "mixed ON/OFF cover for %s" r.target
          | None -> ());
         let products =
           List.map (fun (_, p, _) -> build_product fanin_ids p) r.rows
         in
         let tautology = List.exists (fun p -> p = None) products in
         let sum =
           if tautology then None
           else begin
             let ids = List.filter_map (fun p -> p) products in
             match ids with
             | [] -> None
             | [ x ] -> Some x
             | xs -> Some (Network.add_node net Gate.Or (Array.of_list xs))
           end
         in
         match sum, v with
         | None, '1' -> Network.replace ~check_cycle:false net target (Gate.Const true) [||]
         | None, _ -> Network.replace ~check_cycle:false net target (Gate.Const false) [||]
         | Some s, '1' -> Network.replace ~check_cycle:false net target Gate.Buf [| s |]
         | Some s, _ -> Network.replace ~check_cycle:false net target Gate.Not [| s |]))
    names;
  Network.set_outputs net
    (Array.of_list (List.map (fun (nm, ln) -> (nm, lookup ~line:ln nm)) outputs));
  Network.validate net;
  net

(* Producer over an in-memory string, matching [String.split_on_char]
   line semantics (so diagnostics agree with the old whole-text path). *)
let string_lines text =
  let n = String.length text in
  let pos = ref 0 in
  let exhausted = ref false in
  fun () ->
    if !exhausted then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
        let l = String.sub text !pos (i - !pos) in
        pos := i + 1;
        Some l
      | None ->
        exhausted := true;
        Some (String.sub text !pos (n - !pos))

let channel_lines ic () = match input_line ic with
  | line -> Some line
  | exception End_of_file -> None

let parse_string text = parse_lines (string_lines text)

let parse_channel ic = parse_lines (channel_lines ic)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)
