open Accals_network

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ----- writing ----- *)

let cover_of_gate op k =
  (* Rows of (input-pattern, output-bit) covering the ON-set. *)
  let dashes = String.make k '-' in
  let row_with i c = String.mapi (fun j d -> if j = i then c else d) dashes in
  match op with
  | Gate.Const false -> []
  | Gate.Const true -> [ ("", '1') ]
  | Gate.Buf -> [ ("1", '1') ]
  | Gate.Not -> [ ("0", '1') ]
  | Gate.And -> [ (String.make k '1', '1') ]
  | Gate.Nor -> [ (String.make k '0', '1') ]
  | Gate.Nand -> List.init k (fun i -> (row_with i '0', '1'))
  | Gate.Or -> List.init k (fun i -> (row_with i '1', '1'))
  | Gate.Xor | Gate.Xnor ->
    if k > 10 then fail "BLIF writer: xor arity %d too large" k;
    let want_odd = op = Gate.Xor in
    let rows = ref [] in
    for v = 0 to (1 lsl k) - 1 do
      let ones = ref 0 in
      for b = 0 to k - 1 do
        if v lsr b land 1 = 1 then incr ones
      done;
      if !ones mod 2 = (if want_odd then 1 else 0) then begin
        let row = String.init k (fun b -> if v lsr b land 1 = 1 then '1' else '0') in
        rows := (row, '1') :: !rows
      end
    done;
    List.rev !rows
  | Gate.Mux -> [ ("11-", '1'); ("0-1", '1') ]
  | Gate.Input -> fail "BLIF writer: input has no cover"

let to_string t =
  let buf = Buffer.create 4096 in
  let live = Structure.live_set t in
  let node_name = Array.make (Network.num_nodes t) "" in
  Array.iteri
    (fun i id -> node_name.(id) <- (Network.input_names t).(i))
    (Network.inputs t);
  for id = 0 to Network.num_nodes t - 1 do
    if node_name.(id) = "" then node_name.(id) <- Printf.sprintf "n%d" id
  done;
  (* A PO may be driven by a PI or shared driver; emit alias .names then. *)
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Network.name t));
  Buffer.add_string buf ".inputs";
  Array.iter (fun nm -> Buffer.add_string buf (" " ^ nm)) (Network.input_names t);
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun nm -> Buffer.add_string buf (" " ^ nm)) (Network.output_names t);
  Buffer.add_string buf "\n";
  let order = Structure.topo_order t in
  Array.iter
    (fun id ->
      if live.(id) && not (Network.is_input t id) then begin
        let fis = Network.fanins t id in
        Buffer.add_string buf ".names";
        Array.iter (fun f -> Buffer.add_string buf (" " ^ node_name.(f))) fis;
        Buffer.add_string buf (" " ^ node_name.(id) ^ "\n");
        List.iter
          (fun (row, out) ->
            if row = "" then Buffer.add_string buf (Printf.sprintf "%c\n" out)
            else Buffer.add_string buf (Printf.sprintf "%s %c\n" row out))
          (cover_of_gate (Network.op t id) (Array.length fis))
      end)
    order;
  (* Output aliases where the PO name differs from the driver's name. *)
  Array.iteri
    (fun i id ->
      let po = (Network.output_names t).(i) in
      if node_name.(id) <> po then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" node_name.(id) po))
    (Network.outputs t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  (try output_string oc (to_string t) with e -> close_out oc; raise e);
  close_out oc

(* ----- parsing ----- *)

(* Every diagnostic carries the 1-based source line it was detected on, and
   [parse_string] guarantees that the only exception escaping on any byte
   string whatsoever is [Parse_error]. *)

let fail_at line fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

type raw_names = {
  decl_line : int;  (* line of the .names directive *)
  fanin_names : string list;
  target : string;
  rows : (int * string * char) list;  (* (line, pattern, output) *)
}

let tokenize_lines text =
  (* Join continuation lines (trailing backslash), drop comments, keep the
     1-based line number of each logical line. *)
  let lines = List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text) in
  let rec join acc = function
    | [] -> List.rev acc
    | (n, line) :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line =
        String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line
      in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        match rest with
        | (_, next) :: rest' ->
          join acc
            ((n, String.sub line 0 (String.length line - 1) ^ " " ^ next)
             :: rest')
        | [] -> fail_at n "dangling line continuation"
      else join ((n, line) :: acc) rest
  in
  join [] lines
  |> List.filter (fun (_, l) -> l <> "")
  |> List.map (fun (n, l) ->
         (n, String.split_on_char ' ' l |> List.filter (fun s -> s <> "")))

let parse_string text =
  let guarded body =
    (* Anything other than [Parse_error] leaking from here is a parser bug;
       convert it rather than crash callers feeding untrusted bytes. *)
    try body () with
    | Parse_error _ as e -> raise e
    | Network.Invariant_violation { node; reason } ->
      raise
        (Parse_error
           (match node with
            | Some id -> Printf.sprintf "invalid network: node %d: %s" id reason
            | None -> Printf.sprintf "invalid network: %s" reason))
    | Failure m -> raise (Parse_error ("internal failure: " ^ m))
    | Invalid_argument m -> raise (Parse_error ("internal error: " ^ m))
    | Stack_overflow -> raise (Parse_error "input too deeply nested")
  in
  guarded @@ fun () ->
  let groups = tokenize_lines text in
  let model = ref "blif" in
  let inputs : (string * int) list ref = ref [] in
  let outputs : (string * int) list ref = ref [] in
  let names : raw_names list ref = ref [] in
  let current : raw_names option ref = ref None in
  let saw_end = ref false in
  let flush () =
    match !current with
    | Some r -> names := { r with rows = List.rev r.rows } :: !names; current := None
    | None -> ()
  in
  List.iter
    (fun (ln, tokens) ->
      if not !saw_end then
        match tokens with
        | ".model" :: rest ->
          flush ();
          (match rest with
           | [ m ] -> model := m
           | [] -> fail_at ln ".model expects a name"
           | _ -> fail_at ln ".model expects a single name")
        | ".inputs" :: rest ->
          flush ();
          inputs := !inputs @ List.map (fun nm -> (nm, ln)) rest
        | ".outputs" :: rest ->
          flush ();
          outputs := !outputs @ List.map (fun nm -> (nm, ln)) rest
        | ".names" :: rest ->
          flush ();
          (match List.rev rest with
           | target :: rev_fanins ->
             current :=
               Some
                 {
                   decl_line = ln;
                   fanin_names = List.rev rev_fanins;
                   target;
                   rows = [];
                 }
           | [] -> fail_at ln ".names with no signals")
        | ".end" :: _ ->
          flush ();
          saw_end := true
        | ".latch" :: _ -> fail_at ln "latches are not supported"
        | ".subckt" :: _ -> fail_at ln "subcircuits are not supported"
        | directive :: _ when String.length directive > 0 && directive.[0] = '.'
          ->
          flush () (* ignore unknown directives such as .default_input_arrival *)
        | row_tokens -> begin
          match !current with
          | None ->
            fail_at ln "cover row outside .names: %s"
              (String.concat " " row_tokens)
          | Some r ->
            let pattern, out =
              match row_tokens with
              | [ out ] when r.fanin_names = [] -> ("", out)
              | [ pattern; out ] -> (pattern, out)
              | _ -> fail_at ln "malformed cover row"
            in
            let out_char =
              if out = "1" then '1'
              else if out = "0" then '0'
              else fail_at ln "cover output must be 0 or 1, got %s" out
            in
            if String.length pattern <> List.length r.fanin_names then
              fail_at ln "cover row width %d does not match the %d inputs of %s"
                (String.length pattern)
                (List.length r.fanin_names)
                r.target;
            String.iter
              (fun c ->
                match c with
                | '0' | '1' | '-' -> ()
                | c -> fail_at ln "bad cover character %c" c)
              pattern;
            current := Some { r with rows = (ln, pattern, out_char) :: r.rows }
        end)
    groups;
  if not !saw_end then raise (Parse_error "missing .end");
  let names = List.rev !names in
  let net = Network.create ~name:!model () in
  let by_name : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let input_names : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (nm, ln) ->
      (match Hashtbl.find_opt input_names nm with
       | Some first ->
         fail_at ln "duplicate input %s (first declared at line %d)" nm first
       | None -> Hashtbl.add input_names nm ln);
      Hashtbl.add by_name nm (Network.add_input net nm))
    !inputs;
  (* Create placeholder nodes for every defined signal, then fill in
     definitions; BLIF permits use-before-definition. *)
  let defined : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      (match Hashtbl.find_opt defined r.target with
       | Some first ->
         fail_at r.decl_line
           "duplicate .names output %s (first defined at line %d)" r.target
           first
       | None -> Hashtbl.add defined r.target r.decl_line);
      if Hashtbl.mem input_names r.target then
        fail_at r.decl_line ".names output %s redefines a primary input"
          r.target;
      if not (Hashtbl.mem by_name r.target) then
        Hashtbl.add by_name r.target (Network.add_node net (Gate.Const false) [||]))
    names;
  let lookup ~line nm =
    match Hashtbl.find_opt by_name nm with
    | Some id -> id
    | None -> fail_at line "undefined signal %s" nm
  in
  let build_product fanin_ids pattern =
    (* AND of literals selected by the row pattern; None when all dashes. *)
    let lits = ref [] in
    String.iteri
      (fun i c ->
        let id = fanin_ids.(i) in
        match c with
        | '1' -> lits := id :: !lits
        | '0' -> lits := Network.add_node net Gate.Not [| id |] :: !lits
        | _ -> ())
      pattern;
    match !lits with
    | [] -> None
    | [ x ] -> Some x
    | xs -> Some (Network.add_node net Gate.And (Array.of_list (List.rev xs)))
  in
  List.iter
    (fun r ->
      let target = lookup ~line:r.decl_line r.target in
      let fanin_ids =
        Array.of_list (List.map (lookup ~line:r.decl_line) r.fanin_names)
      in
      let out_values = List.map (fun (_, _, v) -> v) r.rows in
      (match out_values with
       | [] -> Network.replace ~check_cycle:false net target (Gate.Const false) [||]
       | v :: rest ->
         (match List.find_opt (fun v' -> v' <> v) rest with
          | Some _ ->
            let mixed_line =
              match r.rows with (ln, _, _) :: _ -> ln | [] -> r.decl_line
            in
            fail_at mixed_line "mixed ON/OFF cover for %s" r.target
          | None -> ());
         let products =
           List.map (fun (_, p, _) -> build_product fanin_ids p) r.rows
         in
         let tautology = List.exists (fun p -> p = None) products in
         let sum =
           if tautology then None
           else begin
             let ids = List.filter_map (fun p -> p) products in
             match ids with
             | [] -> None
             | [ x ] -> Some x
             | xs -> Some (Network.add_node net Gate.Or (Array.of_list xs))
           end
         in
         match sum, v with
         | None, '1' -> Network.replace ~check_cycle:false net target (Gate.Const true) [||]
         | None, _ -> Network.replace ~check_cycle:false net target (Gate.Const false) [||]
         | Some s, '1' -> Network.replace ~check_cycle:false net target Gate.Buf [| s |]
         | Some s, _ -> Network.replace ~check_cycle:false net target Gate.Not [| s |]))
    names;
  Network.set_outputs net
    (Array.of_list (List.map (fun (nm, ln) -> (nm, lookup ~line:ln nm)) !outputs));
  Network.validate net;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
