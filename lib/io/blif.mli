(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Only the combinational subset is supported: [.model], [.inputs],
    [.outputs], [.names] with single-output covers, and [.end]. Latches and
    subcircuits raise {!Parse_error}. The reader accepts covers whose rows
    are in any order and signals defined after use. *)

open Accals_network

exception Parse_error of string
(** The diagnostic names the offending 1-based source line
    (["line 12: ..."]) whenever one can be identified. *)

val parse_string : string -> Network.t
(** Parse a BLIF document. Raises {!Parse_error} with a line-numbered
    diagnostic on malformed input — malformed covers, duplicate [.names]
    outputs, redefined primary inputs, undeclared signals, missing [.end],
    cyclic definitions. [Parse_error] is the only exception this function
    raises, on any byte string. *)

val parse_file : string -> Network.t
(** Stream-parse a BLIF file without buffering it whole; time and peak
    memory are linear in the file size. [Sys_error] escapes on I/O
    failure; parse failures raise {!Parse_error} as for
    {!parse_string}. *)

val parse_channel : in_channel -> Network.t
(** Stream-parse from an open channel (reads to [.end] or EOF; the
    channel is not closed). *)

val to_string : Network.t -> string
(** Serialize the live part of a network as BLIF. N-ary XOR/XNOR gates with
    more than 10 fanins are decomposed before writing. *)

val write_file : Network.t -> string -> unit
