module Json = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock

type t = { ic : in_channel; oc : out_channel; token : string option }

let of_fd ?token fd =
  (* A daemon that dies mid-response must not take the client down with
     a SIGPIPE on the next flush; EPIPE surfaces as an error instead. *)
  Graceful.ignore_sigpipe ();
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; token }

let connect_unix ?token path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  of_fd ?token fd

let connect_unix_retry ?(policy = Backoff.default) ?token path =
  let schedule = Backoff.start policy in
  let rec go () =
    match connect_unix ?token path with
    | t -> t
    | exception e -> (
      match Backoff.next schedule with
      | None -> raise e
      | Some d ->
        Unix.sleepf d;
        go ())
  in
  go ()

let connect_tcp ?token host port =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "cannot resolve %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  of_fd ?token fd

let close t =
  (* The channels share one fd; close the output side (flushes and closes
     the fd), then only discard the input buffer. *)
  close_out_noerr t.oc;
  close_in_noerr t.ic

let rpc t req =
  (* Write and read are handled separately: a daemon shedding under fd
     pressure writes one structured error line and closes without ever
     reading the request, so this write can fail (EPIPE) with the
     verdict the caller needs already sitting in the socket buffer.
     Always attempt the read; fall back to the write's error only when
     nothing could be drained. *)
  let write_err =
    match
      output_string t.oc
        (Json.to_string
           (Protocol.with_token t.token (Protocol.request_to_json req)));
      output_char t.oc '\n';
      flush t.oc
    with
    | () -> None
    | exception Sys_error msg -> Some msg
    | exception Unix.Unix_error (e, _, _) -> Some (Unix.error_message e)
  in
  match input_line t.ic with
  | exception End_of_file ->
    Error (Option.value write_err ~default:"connection closed by server")
  | exception Sys_error msg -> Error (Option.value write_err ~default:msg)
  | exception Unix.Unix_error (e, _, _) ->
    Error (Option.value write_err ~default:(Unix.error_message e))
  | line -> (
    match Json.parse line with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "malformed response: %s" msg))

let ok resp =
  match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let error_message resp =
  match Option.bind (Json.member "error" resp) Json.string_opt with
  | Some msg -> msg
  | None -> "server error"

let error_code resp = Option.bind (Json.member "code" resp) Json.string_opt

let retry_after resp =
  Option.map
    (fun ms -> float_of_int ms /. 1000.0)
    (Option.bind (Json.member "retry_after_ms" resp) Json.int_opt)

let submit t spec =
  match rpc t (Protocol.Submit spec) with
  | Error _ as e -> e
  | Ok resp when not (ok resp) -> Error (error_message resp)
  | Ok resp -> (
    match Option.bind (Json.member "job" resp) Json.string_opt with
    | None -> Error "submit response missing job id"
    | Some id ->
      let cached =
        match Json.member "cached" resp with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      Ok (id, cached))

(* Retrying a submit is safe by construction: submissions are
   content-addressed (digest + parameters), so a retry either coalesces
   onto the first attempt's job or hits its cached result — it can never
   run the work twice.  The schedule honors the daemon's
   [retry_after_ms] hint as a floor on each delay and is hard-bounded by
   the policy's [max_total]. *)
let submit_retry ?(policy = Backoff.default) t spec =
  let schedule = Backoff.start policy in
  let rec go () =
    match rpc t (Protocol.Submit spec) with
    | Error _ as e -> e
    | Ok resp when ok resp -> (
      match Option.bind (Json.member "job" resp) Json.string_opt with
      | None -> Error "submit response missing job id"
      | Some id ->
        let cached =
          match Json.member "cached" resp with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        Ok (id, cached))
    | Ok resp -> (
      match error_code resp with
      | Some ("overloaded" | "quarantined" | "resource_exhausted") -> (
        let floor = Option.value (retry_after resp) ~default:0.0 in
        match Backoff.next_with_floor schedule ~floor with
        | None ->
          Error
            (Printf.sprintf "%s (gave up after %d attempt(s), %.1fs)"
               (error_message resp)
               (Backoff.attempts schedule)
               (Backoff.total_slept schedule))
        | Some d ->
          Unix.sleepf d;
          go ())
      | _ -> Error (error_message resp))
  in
  go ()

let wait ?(poll_interval = 0.05) ?timeout t job =
  let deadline = Option.map (fun s -> Clock.now () +. s) timeout in
  let rec go () =
    match rpc t (Protocol.Status job) with
    | Error _ as e -> e
    | Ok resp when not (ok resp) -> Error (error_message resp)
    | Ok resp -> (
      match Option.bind (Json.member "state" resp) Json.string_opt with
      | Some ("done" | "failed" | "cancelled") -> rpc t (Protocol.Result job)
      | _ -> (
        match deadline with
        | Some d when Clock.now () > d ->
          Error (Printf.sprintf "timed out waiting for %s" job)
        | _ ->
          Unix.sleepf poll_interval;
          go ()))
  in
  go ()

let ping t =
  match rpc t Protocol.Ping with Ok resp -> ok resp | Error _ -> false

let health t =
  match rpc t Protocol.Health with
  | Error _ as e -> e
  | Ok resp when not (ok resp) -> Error (error_message resp)
  | Ok resp -> Ok resp

let slo t =
  match rpc t Protocol.Slo with
  | Error _ as e -> e
  | Ok resp when not (ok resp) -> Error (error_message resp)
  | Ok resp -> Ok resp
