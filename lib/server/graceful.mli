(** Graceful-shutdown path shared by the one-shot CLI and the daemon.

    A SIGTERM/SIGINT handler installed by {!install} records the signal;
    long-running code polls {!check} at safe boundaries (the synthesis
    engine's per-round checkpoint hook, the daemon's accept loop) and
    unwinds via {!Interrupted}. On the way out the process runs its
    registered flush hooks — telemetry sinks, metrics exports, incident
    logs, final checkpoints — and exits with the conventional
    [128 + signal] code (130 for SIGINT, 143 for SIGTERM), which the CLI
    documents in [accals --help].

    Handlers only set an atomic flag, so they are async-signal-safe; all
    real work happens on the polling thread. *)

exception Interrupted of int
(** Carries the OCaml signal number ({!Sys.sigint} / {!Sys.sigterm}). *)

val install : ?signals:int list -> ?on_signal:(int -> unit) -> unit -> unit
(** Install handlers for [signals] (default SIGINT and SIGTERM) that
    record the signal for {!check}/{!stop_requested}. When [on_signal] is
    given it is also called from the handler with the OCaml signal number
    — the daemon uses it to wake its select loop. Idempotent. *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignored, so a write to a disconnected peer raises
    [Unix.Unix_error (EPIPE, _, _)] instead of killing the process.
    Called by {!Server.create} and by the client on connect — a client
    that submits and disconnects before reading its response must cost
    the daemon one connection, not the whole multi-tenant process.
    Idempotent; deliberately not part of {!install}, so the one-shot CLI
    keeps conventional SIGPIPE-on-closed-stdout behaviour. *)

val request_stop : int -> unit
(** Record a stop request by hand (what the installed handler does). *)

val stop_requested : unit -> int option
(** The first recorded signal, if any. *)

val check : unit -> unit
(** Raise {!Interrupted} if a stop was requested; otherwise return. *)

val clear : unit -> unit
(** Forget a recorded stop request (for tests). *)

(** {1 Flush hooks} *)

val on_shutdown : string -> (unit -> unit) -> unit
(** Register a named flush hook. Re-registering a name replaces the
    previous hook. *)

val remove_hook : string -> unit

val run_hooks : unit -> unit
(** Run every registered hook exactly once, newest-first, swallowing
    exceptions (a failed flush must not mask the others), and unregister
    them. Safe to call repeatedly. *)

val exit_code : int -> int
(** [128 + signal] under the system's numbering: 130 for SIGINT, 143 for
    SIGTERM, 128 for anything unmapped. *)
