(** Content-addressed, on-disk result cache for the synthesis service.

    An entry maps a {!key} — the canonical circuit digest
    ({!Accals_network.Network.digest}) combined with the
    result-determining request parameters (metric, bound, samples, seed;
    {e not} the job count, which never changes a result) — to the full
    certified report JSON and the synthesized BLIF. Entries are one JSON
    file each, written atomically (temp file + rename in the cache
    directory), so the cache survives daemon restarts and concurrent
    writers, and a half-written entry can never be observed. A corrupt or
    unreadable entry behaves as a miss.

    Budget-degraded results are never stored (the caller enforces this):
    a cached entry always describes the budget-independent, fully
    converged synthesis of its key. *)

module Json := Accals_telemetry.Json
module Metric := Accals_metrics.Metric

type t

type entry = {
  key : string;
  report : Json.t;  (** the full report, [Report_json] schema *)
  blif : string;  (** the synthesized circuit *)
}

val create : dir:string -> t
(** Open (creating if needed) the cache directory. *)

val dir : t -> string

val key :
  digest:string -> metric:Metric.kind -> bound:float -> samples:int ->
  seed:int -> string
(** Deterministic, filename-safe cache key. *)

val find : t -> string -> entry option
(** Look a key up on disk; [None] on a missing, corrupt or mismatched
    entry. Any read or parse failure is a miss — the channel is always
    closed (a truncated file must not leak an fd per lookup) and a
    corrupt entry is deleted so it stops costing an open + parse on
    every subsequent lookup. A hit refreshes the entry's mtime, which
    is the recency order {!evict} uses. *)

val store : ?max_bytes:int -> t -> entry -> unit
(** Atomically persist an entry (last writer wins). With [max_bytes > 0],
    eviction runs {e before} the write whenever the cache plus the new
    entry would exceed the cap, so the on-disk total never overshoots it
    — not even transiently. Writes go through
    {!Accals_resilience.Fault_io}; on any failure (real or injected
    [ENOSPC]/torn write) the temp file is removed and the previous entry
    for the key, if any, survives intact. *)

val size : t -> int
(** Number of entry files currently on disk. *)

val bytes : t -> int
(** Total size of the entry files on disk, in bytes. *)

type eviction = {
  removed_corrupt : int;  (** unreadable / mismatched entries deleted *)
  removed_lru : int;  (** valid entries deleted oldest-mtime-first *)
  bytes_after : int;
}

val evict : t -> max_bytes:int -> eviction
(** Bring the cache under [max_bytes]: a no-op when it already fits;
    otherwise corrupt entries are removed first (they can never be
    hits), then valid entries least-recently-used first ({!find} hits
    refresh mtimes) until the total fits. Each removal is a single
    [unlink] — concurrent readers see an atomic miss, never a torn
    entry. *)
