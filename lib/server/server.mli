(** The [accals serve] daemon: a synthesis-as-a-service front end over
    the engine.

    One process owns a listening Unix-domain socket (and, optionally, a
    loopback TCP socket), a {!Scheduler} job table, a {!Cache} of
    finished results, and a pool of worker domains. Clients speak the
    newline-delimited JSON protocol of {!Protocol}: one request object
    per line, one response object per line, connections are persistent.

    Concurrency model: the main loop is single-threaded ([Unix.select]
    over the listeners, the live connections and a self-pipe) and is the
    only thread that touches sockets. Each running job gets its own
    worker domain, which runs [Engine.run] with [jobs = max 1 (jobs /
    max_concurrent)] domains of its own and reports back through the
    mutex-guarded scheduler; a one-byte write to the self-pipe wakes the
    select loop so finished workers are reaped promptly. Cancellation is
    cooperative: the worker's checkpoint hook polls the job's cancel
    flag at every round boundary and unwinds through the engine's
    [Fun.protect], so the job's domains are released.

    Client sockets are non-blocking and responses are buffered per
    connection (bounded; overflow drops the connection), so a client
    that pipelines requests without reading responses cannot stall the
    event loop for the other tenants. {!create} ignores SIGPIPE
    process-wide ({!Graceful.ignore_sigpipe}): a peer that disconnects
    mid-response costs its own connection (EPIPE), never the daemon.

    Admission de-duplicates work at two levels keyed by
    {!Cache.key} (canonical circuit digest + result-determining
    parameters): a disk hit answers immediately with the stored result,
    and a duplicate of a queued/running job coalesces onto it instead of
    running twice.

    Crash safety: on graceful shutdown the daemon checkpoints the specs
    of unfinished jobs to [state_dir/queue.ckpt]
    ({!Accals_resilience.Checkpoint}) and re-admits them on the next
    start; the result cache lives on disk and needs no recovery. *)

module Metrics := Accals_telemetry.Metrics

type config = {
  socket : string;  (** Unix-domain socket path *)
  tcp : (string * int) option;  (** optional [host, port]; port 0 = ephemeral *)
  tcp_token : string option;
      (** shared secret required for privileged requests over TCP (see
          the {!Protocol} trust model); [None] refuses them there *)
  jobs : int;  (** total worker domains to spread over running jobs *)
  max_concurrent : int;  (** jobs running simultaneously *)
  cache_dir : string option;  (** [None] disables the on-disk cache *)
  state_dir : string option;  (** queue checkpoint + shutdown artifacts *)
  default_samples : int;  (** when a submit omits [samples] *)
  log : bool;  (** chatter on stderr *)
}

val default_config : config
(** [socket = "accals.sock"], no TCP, no TCP token, [jobs = 0]
    (auto-detect), [max_concurrent = 2], no cache, no state dir,
    [default_samples = 2048], logging on. *)

type t

val create : config -> t
(** Bind the sockets, open the cache, re-admit any checkpointed queue.
    Raises [Unix.Unix_error] / [Failure] when a socket cannot be
    bound. *)

val tcp_port : t -> int option
(** The bound TCP port (useful with port 0). *)

val run : t -> unit
(** Serve until {!stop} is called (from a signal handler or another
    domain) or a client sends [shutdown]. On return the daemon has
    cancelled outstanding jobs, joined every worker, checkpointed the
    queue, written final metrics/event artifacts to [state_dir], and
    closed and unlinked its sockets. *)

val stop : t -> unit
(** Request a graceful shutdown; safe to call from a signal handler
    (atomic flag + self-pipe write). *)

val metrics : t -> Metrics.snapshot
(** Current server registry snapshot (jobs, cache, queue gauges). *)
