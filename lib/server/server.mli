(** The [accals serve] daemon: a synthesis-as-a-service front end over
    the engine.

    One process owns a listening Unix-domain socket (and, optionally, a
    loopback TCP socket), a {!Scheduler} job table, a {!Cache} of
    finished results, and a pool of worker domains. Clients speak the
    newline-delimited JSON protocol of {!Protocol}: one request object
    per line, one response object per line, connections are persistent.

    Concurrency model: the main loop is single-threaded ([Unix.select]
    over the listeners, the live connections and a self-pipe) and is the
    only thread that touches sockets. Each running job gets its own
    worker domain, which runs [Engine.run] with [jobs = max 1 (jobs /
    max_concurrent)] domains of its own and reports back through the
    mutex-guarded scheduler; a one-byte write to the self-pipe wakes the
    select loop so finished workers are reaped promptly. Cancellation is
    cooperative: the worker's checkpoint hook polls the job's cancel
    flag at every round boundary and unwinds through the engine's
    [Fun.protect], so the job's domains are released.

    Client sockets are non-blocking and responses are buffered per
    connection (bounded; overflow drops the connection), so a client
    that pipelines requests without reading responses cannot stall the
    event loop for the other tenants. {!create} ignores SIGPIPE
    process-wide ({!Graceful.ignore_sigpipe}): a peer that disconnects
    mid-response costs its own connection (EPIPE), never the daemon.

    Admission de-duplicates work at two levels keyed by
    {!Cache.key} (canonical circuit digest + result-determining
    parameters): a disk hit answers immediately with the stored result,
    and a duplicate of a queued/running job coalesces onto it instead of
    running twice.

    Crash safety: on graceful shutdown the daemon checkpoints the specs
    of unfinished jobs to [state_dir/queue.ckpt]
    ({!Accals_resilience.Checkpoint}) and re-admits them on the next
    start; the result cache lives on disk and needs no recovery.

    {b Overload protection.} Admission control bounds the queue: past
    [max_queue] total queued jobs, or [tenant_max_queued] for one
    tenant, a genuinely new submission (cache hits and coalesces are
    free and never shed) is rejected with a structured
    [code = "overloaded"] error carrying [retry_after_ms] — derived
    from the observed average run time and the backlog per slot.
    [tenant_max_running] additionally caps how many jobs one tenant
    may occupy slots with at once, enforced at pick time (over-quota
    jobs wait, they are not shed).

    {b Deadlines.} A submit may carry a wall-clock [deadline]; the
    per-tick sweep fails any job past it as [deadline_exceeded]
    (queued jobs never start) and records an {!Accals_audit.Incident}.
    A running worker first gets the cooperative cancel flag; if it is
    still not done [deadline_grace] seconds past the deadline it is
    {e abandoned} — domains cannot be killed, so the worker is moved
    off the slot-holding list (the slot is immediately reusable) and
    joined whenever it finally unwinds. Terminal scheduler transitions
    are idempotent, so a late report from an abandoned worker cannot
    overwrite the [deadline_exceeded] verdict.

    {b Quarantine.} A job fingerprint (cache key + budget) whose
    workers die abnormally [quarantine_threshold] times is refused
    admission for [quarantine_cooldown] seconds with
    [code = "quarantined"] — a crash-looping input cannot grind the
    service down. A successful run clears the fingerprint's history.

    {b Capacity.} With [cache_max_bytes > 0] the on-disk result cache
    is evicted after each store: corrupt entries first, then
    least-recently-used. The [health] request reports queue depth,
    slots, cache size, shed/deadline/quarantine totals and the
    daemon's open-fd count in one unprivileged round-trip. *)

module Metrics := Accals_telemetry.Metrics

type config = {
  socket : string;  (** Unix-domain socket path *)
  tcp : (string * int) option;  (** optional [host, port]; port 0 = ephemeral *)
  tcp_token : string option;
      (** shared secret required for privileged requests over TCP (see
          the {!Protocol} trust model); [None] refuses them there *)
  jobs : int;  (** total worker domains to spread over running jobs *)
  max_concurrent : int;  (** jobs running simultaneously *)
  max_queue : int;  (** queued-jobs bound before shedding; 0 = unlimited *)
  tenant_max_queued : int;  (** per-tenant queued bound; 0 = unlimited *)
  tenant_max_running : int;
      (** per-tenant running-slots cap (pick-time); 0 = unlimited *)
  deadline_grace : float;
      (** seconds past a job's deadline before its worker is abandoned *)
  quarantine_threshold : int;
      (** abnormal worker deaths per fingerprint before quarantine;
          0 disables quarantine *)
  quarantine_cooldown : float;  (** quarantine duration, seconds *)
  cache_dir : string option;  (** [None] disables the on-disk cache *)
  cache_max_bytes : int;  (** evict the cache past this; 0 = unlimited *)
  state_dir : string option;
      (** queue checkpoint + shutdown artifacts + incidents.jsonl *)
  default_samples : int;  (** when a submit omits [samples] *)
  max_memory_mb : int;
      (** per-job engine memory budget, passed through to
          {!Accals.Config.max_memory_mb}; 0 disables it.  A job the
          engine checkpoints and sheds under the budget fails with
          {!Scheduler.resource_failure} and a [retry_after_ms] hint, and
          never counts toward quarantine. *)
  statedir_headroom_mb : int;
      (** free-space floor for the filesystem backing the cache and
          state dir: under it the result cache is evicted before new
          stores; 0 disables the proactive check (the reactive
          [ENOSPC] evict-and-retry paths always run). *)
  fd_reserve : int;
      (** descriptors kept free for the daemon's own files: new
          connections are refused with a structured
          [code = "resource_exhausted"] error once accepting one more
          would leave less than this under the soft [RLIMIT_NOFILE]. *)
  slo_target_ms : float;
      (** end-to-end latency a job must beat to count as {e good} in
          the per-tenant SLO accounting (see {!Slo}) *)
  slo_objective : float;
      (** target good fraction in (0, 1); drives the burn-rate
          denominator *)
  profile_dir : string option;
      (** run the sampling {!Accals_telemetry.Profiler} (CPU mode) for
          the daemon's lifetime and write [server.folded] +
          [server.profile.json] here at shutdown; [None] disables *)
  profile_hz : int;  (** profiler sampling rate *)
  log : bool;  (** chatter on stderr *)
}

val default_config : config
(** [socket = "accals.sock"], no TCP, no TCP token, [jobs = 0]
    (auto-detect), [max_concurrent = 2], [max_queue = 256],
    [tenant_max_queued = 64], [tenant_max_running = 0] (unlimited),
    [deadline_grace = 2.0], [quarantine_threshold = 3],
    [quarantine_cooldown = 300.0], no cache, [cache_max_bytes = 0], no
    state dir, [default_samples = 2048], [max_memory_mb = 0],
    [statedir_headroom_mb = 0], [fd_reserve = 8],
    [slo_target_ms = 30000.0], [slo_objective = 0.99], no profiling,
    [profile_hz = 97], logging on. *)

type t

val create : config -> t
(** Bind the sockets, open the cache, re-admit any checkpointed queue.
    Raises [Unix.Unix_error] / [Failure] when a socket cannot be
    bound. *)

val tcp_port : t -> int option
(** The bound TCP port (useful with port 0). *)

val run : t -> unit
(** Serve until {!stop} is called (from a signal handler or another
    domain) or a client sends [shutdown]. On return the daemon has
    cancelled outstanding jobs, joined every worker, checkpointed the
    queue, written final metrics/event artifacts to [state_dir], and
    closed and unlinked its sockets. *)

val stop : t -> unit
(** Request a graceful shutdown; safe to call from a signal handler
    (atomic flag + self-pipe write). *)

val metrics : t -> Metrics.snapshot
(** Current server registry snapshot (jobs, cache, queue gauges). *)
