module Json = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock
module Metrics = Accals_telemetry.Metrics

type spec = { target_ms : float; objective : float }

let default_spec = { target_ms = 30_000.0; objective = 0.99 }

(* One hour of one-minute buckets: long enough to smooth bursts, short
   enough that a recovered outage stops dominating within the hour. *)
let window_minutes = 60

(* Phase-latency histogram, seconds. Percentiles are linearly
   interpolated inside the winning bucket, which is exact enough for a
   dashboard and costs a fixed 17 ints per (tenant, phase). *)
let latency_bounds =
  [|
    0.001; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
    30.0; 60.0; 120.0; 300.0;
  |]

type hist = {
  counts : int array;  (* length = bounds + 1; last is +Inf *)
  mutable sum : float;
  mutable n : int;
}

let hist_create () =
  { counts = Array.make (Array.length latency_bounds + 1) 0; sum = 0.0; n = 0 }

let hist_observe h x =
  let nb = Array.length latency_bounds in
  let rec bucket i =
    if i >= nb then nb else if x <= latency_bounds.(i) then i else bucket (i + 1)
  in
  let b = bucket 0 in
  h.counts.(b) <- h.counts.(b) + 1;
  h.sum <- h.sum +. x;
  h.n <- h.n + 1

let hist_percentile h p =
  if h.n = 0 then None
  else begin
    let rank = p *. float_of_int h.n in
    let nb = Array.length latency_bounds in
    let rec walk i cum =
      if i > nb then Some latency_bounds.(nb - 1)
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank then
          if i >= nb then Some latency_bounds.(nb - 1)
          else begin
            let lo = if i = 0 then 0.0 else latency_bounds.(i - 1) in
            let hi = latency_bounds.(i) in
            let inside =
              if h.counts.(i) = 0 then 0.0
              else (rank -. float_of_int cum) /. float_of_int h.counts.(i)
            in
            Some (lo +. ((hi -. lo) *. inside))
          end
        else walk (i + 1) cum'
    in
    walk 0 0
  end

type minute = { mutable mn_stamp : int; mutable mn_good : int; mutable mn_bad : int }

type tenant = {
  tn_name : string;
  wait : hist;
  run : hist;
  e2e : hist;
  mutable good : int;  (* succeeded within target *)
  mutable violated : int;  (* succeeded, but slower than target *)
  failures : (string, int ref) Hashtbl.t;  (* failure kind -> count *)
  ring : minute array;  (* the rolling burn-rate window *)
}

type t = {
  mutex : Mutex.t;
  spec : spec;
  tenants : (string, tenant) Hashtbl.t;
  reg : Metrics.t;  (* Prometheus-facing mirror of the accounting *)
}

let create ?(spec = default_spec) () =
  if not (spec.target_ms > 0.0) then
    invalid_arg "Slo.create: target_ms must be positive";
  if not (spec.objective > 0.0 && spec.objective < 1.0) then
    invalid_arg "Slo.create: objective must be in (0, 1)";
  {
    mutex = Mutex.create ();
    spec;
    tenants = Hashtbl.create 8;
    reg = Metrics.create ();
  }

let spec t = t.spec

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
    let tn =
      {
        tn_name = name;
        wait = hist_create ();
        run = hist_create ();
        e2e = hist_create ();
        good = 0;
        violated = 0;
        failures = Hashtbl.create 4;
        ring =
          Array.init window_minutes (fun _ ->
              { mn_stamp = -1; mn_good = 0; mn_bad = 0 });
      }
    in
    Hashtbl.add t.tenants name tn;
    tn

(* Call with the lock held. *)
let minute_slot tn =
  let m = int_of_float (Clock.now () /. 60.0) in
  let slot = tn.ring.(m mod window_minutes) in
  if slot.mn_stamp <> m then begin
    slot.mn_stamp <- m;
    slot.mn_good <- 0;
    slot.mn_bad <- 0
  end;
  slot

let bump_failure tn kind =
  match Hashtbl.find_opt tn.failures kind with
  | Some r -> incr r
  | None -> Hashtbl.add tn.failures kind (ref 1)

let prom_hist t ~tenant ~phase =
  Metrics.histogram t.reg "accals_slo_latency_seconds"
    ~help:"Per-tenant job latency by phase"
    ~labels:[ ("tenant", tenant); ("phase", phase) ]
    ~buckets:latency_bounds

let prom_outcome t ~tenant ~outcome =
  Metrics.counter t.reg "accals_slo_jobs_total"
    ~help:"Per-tenant jobs by SLO outcome"
    ~labels:[ ("tenant", tenant); ("outcome", outcome) ]

let observe_job t ~tenant ?failure ~wait_s ~run_s ~total_s () =
  Mutex.lock t.mutex;
  let tn = tenant_of t tenant in
  hist_observe tn.wait wait_s;
  hist_observe tn.run run_s;
  hist_observe tn.e2e total_s;
  let good =
    failure = None && total_s *. 1000.0 <= t.spec.target_ms
  in
  let outcome =
    match failure with
    | Some kind ->
      bump_failure tn kind;
      kind
    | None ->
      if good then tn.good <- tn.good + 1 else tn.violated <- tn.violated + 1;
      if good then "good" else "violated"
  in
  let slot = minute_slot tn in
  if good then slot.mn_good <- slot.mn_good + 1
  else slot.mn_bad <- slot.mn_bad + 1;
  Mutex.unlock t.mutex;
  (* Registry instruments take their own locks; keep them outside ours. *)
  Metrics.observe (prom_hist t ~tenant ~phase:"queue_wait") wait_s;
  Metrics.observe (prom_hist t ~tenant ~phase:"run") run_s;
  Metrics.observe (prom_hist t ~tenant ~phase:"end_to_end") total_s;
  Metrics.incr (prom_outcome t ~tenant ~outcome)

let observe_shed t ~tenant ~kind =
  Mutex.lock t.mutex;
  let tn = tenant_of t tenant in
  bump_failure tn kind;
  let slot = minute_slot tn in
  slot.mn_bad <- slot.mn_bad + 1;
  Mutex.unlock t.mutex;
  Metrics.incr (prom_outcome t ~tenant ~outcome:kind)

(* Call with the lock held. Only minutes inside the window count — a
   stale slot (stamp older than the window) is history, not traffic. *)
let window_counts tn =
  let now_m = int_of_float (Clock.now () /. 60.0) in
  Array.fold_left
    (fun (g, b) slot ->
      if slot.mn_stamp >= 0 && now_m - slot.mn_stamp < window_minutes then
        (g + slot.mn_good, b + slot.mn_bad)
      else (g, b))
    (0, 0) tn.ring

(* Error-budget burn rate over the window: the observed bad fraction
   divided by the allowed bad fraction (1 - objective). 1.0 means
   burning exactly the budget; 0 means clean; >> 1 means paging. *)
let burn tn ~objective =
  let good, bad = window_counts tn in
  if good + bad = 0 then 0.0
  else
    let frac = float_of_int bad /. float_of_int (good + bad) in
    frac /. (1.0 -. objective)

let burn_rate t ~tenant =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.tenants tenant with
    | None -> 0.0
    | Some tn -> burn tn ~objective:t.spec.objective
  in
  Mutex.unlock t.mutex;
  r

let percentile_fields h =
  let field name p =
    ( name,
      match hist_percentile h p with
      | None -> Json.Null
      | Some s -> Json.Float (s *. 1000.0) )
  in
  Json.Obj
    [
      field "p50_ms" 0.50;
      field "p90_ms" 0.90;
      field "p99_ms" 0.99;
      ( "mean_ms",
        if h.n = 0 then Json.Null
        else Json.Float (1000.0 *. h.sum /. float_of_int h.n) );
      ("count", Json.Int h.n);
    ]

let tenant_json t tn =
  let good_w, bad_w = window_counts tn in
  let failures =
    Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) tn.failures []
    |> List.sort compare
  in
  let failed = List.fold_left (fun acc (_, v) ->
      match v with Json.Int n -> acc + n | _ -> acc) 0 failures
  in
  Json.Obj
    [
      ("tenant", Json.String tn.tn_name);
      ("jobs_total", Json.Int (tn.good + tn.violated + failed));
      ("good", Json.Int tn.good);
      ("violated", Json.Int tn.violated);
      ("failures", Json.Obj failures);
      ("burn_rate", Json.Float (burn tn ~objective:t.spec.objective));
      ( "window",
        Json.Obj
          [
            ("minutes", Json.Int window_minutes);
            ("good", Json.Int good_w);
            ("bad", Json.Int bad_w);
          ] );
      ( "latency",
        Json.Obj
          [
            ("queue_wait", percentile_fields tn.wait);
            ("run", percentile_fields tn.run);
            ("end_to_end", percentile_fields tn.e2e);
          ] );
    ]

let to_json t =
  Mutex.lock t.mutex;
  let tenants =
    Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
    |> List.sort (fun a b -> compare a.tn_name b.tn_name)
    |> List.map (tenant_json t)
  in
  Mutex.unlock t.mutex;
  Json.Obj
    [
      ("target_ms", Json.Float t.spec.target_ms);
      ("objective", Json.Float t.spec.objective);
      ("window_minutes", Json.Int window_minutes);
      ("tenants", Json.List tenants);
    ]

let registry_snapshot t =
  (* Burn rate is derived from the rolling window, so the gauge is
     refreshed at scrape time rather than on every observation. *)
  Mutex.lock t.mutex;
  let burns =
    Hashtbl.fold
      (fun name tn acc -> (name, burn tn ~objective:t.spec.objective) :: acc)
      t.tenants []
  in
  Mutex.unlock t.mutex;
  List.iter
    (fun (name, b) ->
      Metrics.set
        (Metrics.gauge t.reg "accals_slo_burn_rate"
           ~help:"Error-budget burn rate over the rolling window (1.0 = at budget)"
           ~labels:[ ("tenant", name) ])
        b)
    burns;
  Metrics.snapshot t.reg
