module Json = Accals_telemetry.Json
module Metric = Accals_metrics.Metric

type t = { dir : string }

type entry = { key : string; report : Json.t; blif : string }

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  ensure_dir dir;
  { dir }

let dir t = t.dir

let key ~digest ~metric ~bound ~samples ~seed =
  (* Readable on purpose: `ls` of the cache directory shows what is
     cached.  %h is the shortest exact float encoding, hex so the key
     never depends on decimal rounding. *)
  Printf.sprintf "%s-%s-%h-s%d-r%d" digest
    (String.lowercase_ascii (Metric.kind_to_string metric))
    bound samples seed
  |> String.map (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' -> c
         | _ -> '_')

let path t key = Filename.concat t.dir (key ^ ".json")

let find t k =
  let file = path t k in
  match
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error _ -> None
  | contents -> (
    match Json.parse contents with
    | Error _ -> None
    | Ok v -> (
      let str f = Option.bind (Json.member f v) Json.string_opt in
      match (str "key", Json.member "report" v, str "blif") with
      | Some stored_key, Some report, Some blif when stored_key = k ->
        Some { key = k; report; blif }
      | _ -> None))

let store t e =
  let final = path t e.key in
  let tmp =
    Filename.temp_file ~temp_dir:t.dir ("." ^ e.key) ".tmp"
  in
  let payload =
    Json.Obj
      [
        ("key", Json.String e.key);
        ("report", e.report);
        ("blif", Json.String e.blif);
      ]
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Json.to_string payload);
     output_char oc '\n'
   with ex ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise ex);
  close_out oc;
  Sys.rename tmp final

let size t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f ".json" && not (String.length f > 0 && f.[0] = '.')
        then acc + 1
        else acc)
      0 files
