module Json = Accals_telemetry.Json
module Metric = Accals_metrics.Metric

type t = { dir : string }

type entry = { key : string; report : Json.t; blif : string }

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  ensure_dir dir;
  { dir }

let dir t = t.dir

let key ~digest ~metric ~bound ~samples ~seed =
  (* Readable on purpose: `ls` of the cache directory shows what is
     cached.  %h is the shortest exact float encoding, hex so the key
     never depends on decimal rounding. *)
  Printf.sprintf "%s-%s-%h-s%d-r%d" digest
    (String.lowercase_ascii (Metric.kind_to_string metric))
    bound samples seed
  |> String.map (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' -> c
         | _ -> '_')

let path t key = Filename.concat t.dir (key ^ ".json")

let parse_entry k contents =
  match Json.parse contents with
  | Error _ -> None
  | Ok v -> (
    let str f = Option.bind (Json.member f v) Json.string_opt in
    match (str "key", Json.member "report" v, str "blif") with
    | Some stored_key, Some report, Some blif when stored_key = k ->
      Some { key = k; report; blif }
    | _ -> None)

(* Reading must never leak the channel and must treat *any* failure as a
   miss: a truncated entry makes [really_input_string] raise
   [End_of_file], which a [Sys_error]-only handler would let escape —
   taking the input channel with it.  [Fun.protect] owns the close. *)
let read_file file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic -> (
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | contents -> Some contents
        | exception _ -> None))

let remove_quietly file = try Sys.remove file with Sys_error _ -> ()

(* Touch an entry on every hit so the file mtime orders the entries by
   last use — the eviction pass below is LRU because of this. *)
let touch file = try Unix.utimes file 0.0 0.0 with Unix.Unix_error _ -> ()

let find t k =
  let file = path t k in
  match Option.bind (read_file file) (parse_entry k) with
  | Some e ->
    touch file;
    Some e
  | None ->
    (* A corrupt or mismatched entry can never become a hit; delete it
       so it stops costing an open + parse on every lookup. A missing
       file makes [remove_quietly] a no-op. *)
    if Sys.file_exists file then remove_quietly file;
    None

let entry_files t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f ->
           Filename.check_suffix f ".json"
           && not (String.length f > 0 && f.[0] = '.'))

let size t = List.length (entry_files t)

let bytes t =
  List.fold_left
    (fun acc f ->
      match Unix.stat (Filename.concat t.dir f) with
      | st -> acc + st.Unix.st_size
      | exception Unix.Unix_error _ -> acc)
    0 (entry_files t)

type eviction = { removed_corrupt : int; removed_lru : int; bytes_after : int }

let evict t ~max_bytes =
  let stats =
    List.filter_map
      (fun f ->
        let file = Filename.concat t.dir f in
        match Unix.stat file with
        | st -> Some (file, st.Unix.st_size, st.Unix.st_mtime)
        | exception Unix.Unix_error _ -> None)
      (entry_files t)
  in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 stats in
  if total <= max_bytes then
    { removed_corrupt = 0; removed_lru = 0; bytes_after = total }
  else begin
    (* Over the cap: corrupt entries go first (they can never be hits),
       then least-recently-used entries until the cache fits.  The
       entry's own key is recorded inside the file, so corruption is
       detected exactly as [find] would: unreadable, unparsable, or a
       stored key that does not match the filename. *)
    let key_of file = Filename.remove_extension (Filename.basename file) in
    let corrupt, valid =
      List.partition
        (fun (file, _, _) ->
          Option.bind (read_file file) (parse_entry (key_of file)) = None)
        stats
    in
    List.iter (fun (file, _, _) -> remove_quietly file) corrupt;
    let total =
      List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 valid
    in
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) valid
    in
    let removed_lru = ref 0 in
    let remaining = ref total in
    List.iter
      (fun (file, sz, _) ->
        if !remaining > max_bytes then begin
          remove_quietly file;
          remaining := !remaining - sz;
          incr removed_lru
        end)
      by_age;
    {
      removed_corrupt = List.length corrupt;
      removed_lru = !removed_lru;
      bytes_after = !remaining;
    }
  end

module Fault_io = Accals_resilience.Fault_io

let store ?(max_bytes = 0) t e =
  let final = path t e.key in
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("key", Json.String e.key);
           ("report", e.report);
           ("blif", Json.String e.blif);
         ])
    ^ "\n"
  in
  (* Make room *before* writing: a store into an almost-full cache must
     never overshoot the cap, even transiently (a concurrent du / quota
     check would see the excursion). The new entry's own size is part of
     the target, so the write below fits by construction. *)
  if max_bytes > 0 && bytes t + String.length payload > max_bytes then
    ignore (evict t ~max_bytes:(max 0 (max_bytes - String.length payload)));
  let tmp =
    Filename.temp_file ~temp_dir:t.dir ("." ^ e.key) ".tmp"
  in
  (* Durable I/O runs through [Fault_io] so chaos specs can hand this
     path ENOSPC and torn writes; the temp file is removed on any
     failure, leaving the previous entry (if any) untouched. *)
  let oc =
    try Fault_io.open_out_bin tmp
    with ex ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise ex
  in
  (try Fault_io.output_string oc payload
   with ex ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise ex);
  close_out oc;
  try Fault_io.rename tmp final
  with ex ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise ex
