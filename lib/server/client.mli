(** Blocking client for the daemon's newline-delimited JSON protocol —
    the library under [accals client] and the bench load generator. *)

module Json := Accals_telemetry.Json

type t

(** Connecting ignores SIGPIPE process-wide ({!Graceful.ignore_sigpipe})
    so a daemon that disconnects mid-request surfaces as an [Error], not
    a dead client process.  [?token] is attached to every request — the
    daemon requires it for privileged requests over TCP. *)

val connect_unix : ?token:string -> string -> t
(** Connect to a Unix-domain socket. Raises [Unix.Unix_error]. *)

val connect_unix_retry : ?policy:Backoff.t -> ?token:string -> string -> t
(** Retry [connect_unix] under a {!Backoff} schedule (default
    {!Backoff.default}: jittered exponential, 30s total budget) — for
    racing a daemon that is still booting. Raises the last error once
    the schedule is exhausted. *)

val connect_tcp : ?token:string -> string -> int -> t
(** Connect to [host, port]. Raises [Unix.Unix_error] / [Failure]. *)

val close : t -> unit

val rpc : t -> Protocol.request -> (Json.t, string) result
(** Send one request, read one response line. [Error] on connection
    loss or a malformed response; a server-side [{"ok": false}] is
    still [Ok] — inspect with {!ok} / {!error_message}. A response the
    daemon sent before closing (e.g. the unprompted
    [code = "resource_exhausted"] shed under fd pressure) is drained
    and returned even when sending the request itself failed. *)

val ok : Json.t -> bool
(** The response's ["ok"] field. *)

val error_message : Json.t -> string
(** The response's ["error"] field (or a placeholder). *)

val error_code : Json.t -> string option
(** The response's structured ["code"] field, e.g. ["overloaded"]. *)

val retry_after : Json.t -> float option
(** The response's ["retry_after_ms"] hint, converted to seconds. *)

val submit : t -> Protocol.job_spec -> (string * bool, string) result
(** Submit and return [(job id, cached)]; [Error] on rejection. *)

val submit_retry :
  ?policy:Backoff.t -> t -> Protocol.job_spec -> (string * bool, string) result
(** As {!submit}, but retry [overloaded] / [quarantined] /
    [resource_exhausted] rejections
    under a {!Backoff} schedule, honoring the daemon's [retry_after_ms]
    hint as a per-step floor. Safe because submissions are
    content-addressed: a retry coalesces onto the first attempt or hits
    its cache entry, never duplicating work. [Error] once the policy's
    [max_total] sleep budget is exhausted. *)

val wait :
  ?poll_interval:float ->
  ?timeout:float ->
  t ->
  string ->
  (Json.t, string) result
(** Poll [status] until the job reaches a terminal state (polling every
    [poll_interval] seconds, default 0.05), then fetch and return the
    [result] response. [Error] after [timeout] seconds (default: no
    timeout). *)

val ping : t -> bool
(** One ping round-trip; [false] on any failure. *)

val health : t -> (Json.t, string) result
(** The daemon's [health] response (queue depth, slots, cache size,
    shed / deadline / quarantine totals, open fds). *)

val slo : t -> (Json.t, string) result
(** The daemon's [slo] response: per-tenant latency percentiles by
    phase, outcome breakdowns and rolling burn rates. *)
