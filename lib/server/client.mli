(** Blocking client for the daemon's newline-delimited JSON protocol —
    the library under [accals client] and the bench load generator. *)

module Json := Accals_telemetry.Json

type t

(** Connecting ignores SIGPIPE process-wide ({!Graceful.ignore_sigpipe})
    so a daemon that disconnects mid-request surfaces as an [Error], not
    a dead client process.  [?token] is attached to every request — the
    daemon requires it for privileged requests over TCP. *)

val connect_unix : ?token:string -> string -> t
(** Connect to a Unix-domain socket. Raises [Unix.Unix_error]. *)

val connect_unix_retry :
  ?attempts:int -> ?delay:float -> ?token:string -> string -> t
(** Retry [connect_unix] (default 100 attempts, 50ms apart) — for
    racing a daemon that is still booting. Raises the last error. *)

val connect_tcp : ?token:string -> string -> int -> t
(** Connect to [host, port]. Raises [Unix.Unix_error] / [Failure]. *)

val close : t -> unit

val rpc : t -> Protocol.request -> (Json.t, string) result
(** Send one request, read one response line. [Error] on connection
    loss or a malformed response; a server-side [{"ok": false}] is
    still [Ok] — inspect with {!ok} / {!error_message}. *)

val ok : Json.t -> bool
(** The response's ["ok"] field. *)

val error_message : Json.t -> string
(** The response's ["error"] field (or a placeholder). *)

val submit : t -> Protocol.job_spec -> (string * bool, string) result
(** Submit and return [(job id, cached)]; [Error] on rejection. *)

val wait :
  ?poll_interval:float ->
  ?timeout:float ->
  t ->
  string ->
  (Json.t, string) result
(** Poll [status] until the job reaches a terminal state (polling every
    [poll_interval] seconds, default 0.05), then fetch and return the
    [result] response. [Error] after [timeout] seconds (default: no
    timeout). *)

val ping : t -> bool
(** One ping round-trip; [false] on any failure. *)
