module Json = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock
module Metrics = Accals_telemetry.Metrics
module Telemetry = Accals_telemetry.Telemetry
module Tracer = Accals_telemetry.Tracer
module Profiler = Accals_telemetry.Profiler
module Build_info = Accals_telemetry.Build_info
module Checkpoint = Accals_resilience.Checkpoint
module Network = Accals_network.Network
module Blif = Accals_io.Blif
module Bench_suite = Accals_circuits.Bench_suite
module Domain_hub = Accals_runtime.Domain_hub
module Engine = Accals.Engine
module Config = Accals.Config
module Report_json = Accals.Report_json
module Incident = Accals_audit.Incident
module Budget = Accals_resilience.Budget

type config = {
  socket : string;
  tcp : (string * int) option;
  tcp_token : string option;
  jobs : int;
  max_concurrent : int;
  max_queue : int;
  tenant_max_queued : int;
  tenant_max_running : int;
  deadline_grace : float;
  quarantine_threshold : int;
  quarantine_cooldown : float;
  cache_dir : string option;
  cache_max_bytes : int;
  state_dir : string option;
  default_samples : int;
  max_memory_mb : int;
  statedir_headroom_mb : int;
  fd_reserve : int;
  slo_target_ms : float;
  slo_objective : float;
  profile_dir : string option;
      (** run the sampling profiler for the daemon's lifetime and write
          folded stacks + a summary here at drain *)
  profile_hz : int;
  log : bool;
}

let default_config =
  {
    socket = "accals.sock";
    tcp = None;
    tcp_token = None;
    jobs = 0;
    max_concurrent = 2;
    max_queue = 256;
    tenant_max_queued = 64;
    tenant_max_running = 0;
    deadline_grace = 2.0;
    quarantine_threshold = 3;
    quarantine_cooldown = 300.0;
    cache_dir = None;
    cache_max_bytes = 0;
    state_dir = None;
    default_samples = 2048;
    max_memory_mb = 0;
    statedir_headroom_mb = 0;
    fd_reserve = 8;
    slo_target_ms = Slo.default_spec.Slo.target_ms;
    slo_objective = Slo.default_spec.Slo.objective;
    profile_dir = None;
    profile_hz = 97;
    log = true;
  }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  origin : [ `Unix | `Tcp ];
  mutable pending : string;
  (* Outbound bytes the non-blocking socket has not accepted yet:
     response chunks oldest-first, with [out_off] the progress into the
     head chunk and [out_bytes] the total for the back-pressure bound. *)
  outbox : string Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  mutable closed : bool;
}

(* A client that pipelines requests without reading responses gets this
   much buffered on its behalf; beyond it the connection is dropped so
   one misbehaving client cannot hold daemon memory hostage.  Sized so a
   full result payload (16 MiB request bound, comparable response) plus
   slack fits. *)
let max_outbox_bytes = 64 * 1024 * 1024

(* One hub job per running synthesis job.  Jobs run on the daemon's
   persistent {!Domain_hub} domains (spawned on demand, reused across
   jobs) instead of one ad-hoc [Domain.spawn] each, so steady traffic
   stops paying a domain spawn/join per request.  [w_completed] is the
   reclaim condition: OCaml domains cannot be killed, so the main loop
   only ever waits on a job whose body has finished (set in the
   submitted closure's [Fun.protect]).  A wedged worker past its job's
   deadline + grace is moved off the slot-holding list instead (see
   [sweep_deadlines]) and its hub domain abandoned — the hub never
   schedules another job behind it, and spawns a replacement domain on
   demand. *)
type worker = {
  w_handle : Domain_hub.handle;
  w_job : Scheduler.job;
  w_completed : bool Atomic.t;
}

(* Crash-loop record for one job fingerprint (cache key + budget).
   [q_until] is an absolute [Clock.now] instant; 0.0 means "failures
   observed but not quarantined yet". *)
type quarantine_entry = { mutable q_failures : int; mutable q_until : float }

type t = {
  cfg : config;
  per_job_jobs : int;  (** engine domains per running job *)
  unix_listener : Unix.file_descr;
  tcp_listener : Unix.file_descr option;
  tcp_port : int option;
  pipe_r : Unix.file_descr;  (** self-pipe: workers wake the select loop *)
  pipe_w : Unix.file_descr;
  sched : Scheduler.t;
  cache : Cache.t option;
  nets_mutex : Mutex.t;
  nets : (string, Network.t) Hashtbl.t;  (** job id -> parsed circuit *)
  mutable conns : conn list;
  hub : Domain_hub.t;  (** persistent job domains *)
  mutable workers : worker list;
  mutable zombies : worker list;
      (** abandoned (deadline-wedged) workers: no longer hold a slot,
          joined opportunistically once they unwind *)
  quarantine : (string, quarantine_entry) Hashtbl.t;
      (** main-loop only: reaping, sweeping and admission all run on the
          select-loop thread *)
  run_mutex : Mutex.t;
  mutable run_total_s : float;  (** guarded by [run_mutex] *)
  mutable run_count : int;  (** guarded by [run_mutex] *)
  mutable n_shed : int;  (** main-loop only; mirrors [m_shed] for health *)
  mutable n_deadline : int;
  mutable n_quarantined : int;
  mutable n_resource : int;  (** jobs/connections shed by a budget governor *)
  mutable n_zombies_leaked : int;
      (** abandoned workers that outlived the shutdown drain window *)
  mutable fd_shedding : bool;
      (** inside an fd-pressure episode: one incident per episode, not
          one per refused connection *)
  stopped : bool Atomic.t;
  started_mono : float;
  slo : Slo.t;
  lanes : (string, int) Hashtbl.t;
      (** job id -> concurrency-slot lane, assigned at dispatch; drives
          the per-slot lanes of the server-wide trace (main-loop only) *)
  mutable profiler : Profiler.t option;
  reg : Metrics.t;
  m_submitted : Metrics.counter;
  m_cache_hit_mem : Metrics.counter;
  m_cache_hit_disk : Metrics.counter;
  m_cache_miss : Metrics.counter;
  m_shed : Metrics.counter;
  m_deadline : Metrics.counter;
  m_quarantined : Metrics.counter;
  m_resource : Metrics.counter;
  m_zombies_leaked : Metrics.counter;
  g_queue : Metrics.gauge;
  g_running : Metrics.gauge;
  g_cache : Metrics.gauge;
  g_cache_bytes : Metrics.gauge;
  g_conns : Metrics.gauge;
  g_memory : Metrics.gauge;
  g_statedir : Metrics.gauge;
  g_open_fds : Metrics.gauge;
  h_wait : Metrics.histogram;
  h_run : Metrics.histogram;
}

exception Job_cancelled

let queue_tag = "serve-queue"

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.log then Printf.eprintf "[accals-serve] %s\n%!" s)
    fmt

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let resolve_jobs jobs =
  if jobs > 0 then jobs
  else max 1 (min 64 (Domain.recommended_domain_count ()))

(* -- sockets ------------------------------------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let listen_tcp host port =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "cannot resolve %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound_port)

let wake t =
  try ignore (Unix.write t.pipe_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
  -> ()

let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 64 with
    | n when n = 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* -- construction -------------------------------------------------------- *)

let create cfg =
  (* A client that disconnects while a response is in flight must cost
     one connection (EPIPE -> close), not kill the daemon: the default
     SIGPIPE action would terminate every tenant's queued and running
     jobs. *)
  Graceful.ignore_sigpipe ();
  let cfg = { cfg with jobs = resolve_jobs cfg.jobs } in
  let max_concurrent = max 1 cfg.max_concurrent in
  let cfg = { cfg with max_concurrent } in
  let unix_listener = listen_unix cfg.socket in
  let tcp_listener, tcp_port =
    match cfg.tcp with
    | None -> (None, None)
    | Some (host, port) ->
      let fd, bound = listen_tcp host port in
      (Some fd, Some bound)
  in
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let reg = Metrics.create () in
  let counter ?labels name help = Metrics.counter reg ~help ?labels name in
  let gauge name help = Metrics.gauge reg ~help name in
  let latency_buckets =
    [| 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 30.0; 120.0; 600.0 |]
  in
  let t =
    {
      cfg;
      per_job_jobs = max 1 (cfg.jobs / max_concurrent);
      unix_listener;
      tcp_listener;
      tcp_port;
      pipe_r;
      pipe_w;
      sched = Scheduler.create ();
      cache = Option.map (fun dir -> Cache.create ~dir) cfg.cache_dir;
      nets_mutex = Mutex.create ();
      nets = Hashtbl.create 16;
      conns = [];
      hub = Domain_hub.create ();
      workers = [];
      zombies = [];
      quarantine = Hashtbl.create 16;
      run_mutex = Mutex.create ();
      run_total_s = 0.0;
      run_count = 0;
      n_shed = 0;
      n_deadline = 0;
      n_quarantined = 0;
      n_resource = 0;
      n_zombies_leaked = 0;
      fd_shedding = false;
      stopped = Atomic.make false;
      started_mono = Clock.now ();
      slo =
        Slo.create
          ~spec:
            {
              Slo.target_ms = cfg.slo_target_ms;
              Slo.objective = cfg.slo_objective;
            }
          ();
      lanes = Hashtbl.create 16;
      profiler = None;
      reg;
      m_submitted =
        counter "accals_server_jobs_submitted_total" "Jobs admitted";
      m_cache_hit_mem =
        counter "accals_server_cache_hits_total"
          ~labels:[ ("source", "memory") ]
          "Submissions answered by a finished in-memory job";
      m_cache_hit_disk =
        counter "accals_server_cache_hits_total"
          ~labels:[ ("source", "disk") ]
          "Submissions answered by the on-disk result cache";
      m_cache_miss =
        counter "accals_server_cache_misses_total"
          "Submissions that had to run the engine";
      m_shed =
        counter "accals_server_shed_total"
          "Submissions rejected by admission control (queue or quota full)";
      m_deadline =
        counter "accals_server_deadline_exceeded_total"
          "Jobs failed for blowing their client-supplied deadline";
      m_quarantined =
        counter "accals_server_quarantined_total"
          "Job fingerprints placed in crash-loop quarantine";
      m_resource =
        counter "accals_server_resource_exhausted_total"
          "Jobs or connections shed by a resource budget governor";
      m_zombies_leaked =
        counter "accals_server_zombies_leaked_total"
          "Abandoned worker domains that outlived the shutdown drain";
      g_queue = gauge "accals_server_queue_depth" "Jobs waiting to run";
      g_running = gauge "accals_server_running_jobs" "Jobs currently running";
      g_cache = gauge "accals_server_cache_entries" "Result cache entries on disk";
      g_cache_bytes =
        gauge "accals_server_cache_bytes" "Result cache size on disk, bytes";
      g_conns = gauge "accals_server_connections" "Open client connections";
      g_memory = gauge "accals_memory_bytes" "Daemon major-heap size, bytes";
      g_statedir =
        gauge "accals_statedir_bytes" "Bytes under --state-dir (and cache)";
      g_open_fds = gauge "accals_open_fds" "Open file descriptors";
      h_wait =
        Metrics.histogram reg ~help:"Queue wait per job, seconds"
          ~buckets:latency_buckets "accals_server_job_wait_seconds";
      h_run =
        Metrics.histogram reg ~help:"Engine run per job, seconds"
          ~buckets:latency_buckets "accals_server_job_run_seconds";
    }
  in
  log t "listening on %s%s (engine domains: %d total, %d per job, %d concurrent jobs)"
    cfg.socket
    (match tcp_port with
     | Some p -> Printf.sprintf " and tcp port %d" p
     | None -> "")
    cfg.jobs t.per_job_jobs max_concurrent;
  t

let tcp_port t = t.tcp_port
let stop t =
  Atomic.set t.stopped true;
  wake t

let request_counter t name =
  Metrics.counter t.reg ~help:"Requests handled"
    ~labels:[ ("req", name) ]
    "accals_server_requests_total"

let finished_counter t state =
  Metrics.counter t.reg ~help:"Jobs finished"
    ~labels:[ ("state", state) ]
    "accals_server_jobs_finished_total"

let update_gauges t =
  let counts = Scheduler.counts t.sched in
  let n s = float_of_int (Option.value (List.assoc_opt s counts) ~default:0) in
  Metrics.set t.g_queue (n Scheduler.Queued);
  Metrics.set t.g_running (n Scheduler.Running);
  Metrics.set t.g_conns (float_of_int (List.length t.conns));
  Option.iter
    (fun c ->
      Metrics.set t.g_cache (float_of_int (Cache.size c));
      Metrics.set t.g_cache_bytes (float_of_int (Cache.bytes c)))
    t.cache;
  Metrics.set t.g_memory
    (float_of_int
       ((Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8)));
  (let statedir_bytes =
     (match t.cfg.state_dir with
      | Some d -> Budget.Disk.usage_bytes d
      | None -> 0)
     +
     match t.cache with
     | Some c when t.cfg.state_dir <> Some (Cache.dir c) -> Cache.bytes c
     | _ -> 0
   in
   Metrics.set t.g_statedir (float_of_int statedir_bytes));
  Option.iter
    (fun n -> Metrics.set t.g_open_fds (float_of_int n))
    (Budget.Fd.open_fds ())

let metrics t =
  update_gauges t;
  (* The SLO module keeps its own registry (per-tenant instruments are
     created on demand there); the exposition is the union. *)
  Metrics.merge (Metrics.snapshot t.reg) (Slo.registry_snapshot t.slo)

(* -- incidents and overload hints ---------------------------------------- *)

let record_incident t kind =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> (
    ensure_dir dir;
    try
      Incident.append_jsonl
        ~path:(Filename.concat dir "incidents.jsonl")
        [ Incident.make ~round:0 kind ]
    with Sys_error _ -> ())

let observe_run t seconds =
  Mutex.protect t.run_mutex (fun () ->
      t.run_total_s <- t.run_total_s +. seconds;
      t.run_count <- t.run_count + 1)

(* How long a shed client should wait before retrying: the observed
   average job run time scaled by the backlog per slot, clamped to
   [100ms, 60s].  A heuristic, not a promise — but it is derived from
   this daemon's actual service rate, so a queue of long syntheses hints
   minutes where a queue of cache-warm repeats hints milliseconds. *)
let retry_after_ms t =
  let avg =
    Mutex.protect t.run_mutex (fun () ->
        if t.run_count = 0 then 0.5
        else t.run_total_s /. float_of_int t.run_count)
  in
  let queued, running = Scheduler.totals t.sched in
  let backlog =
    float_of_int (queued + running) /. float_of_int t.cfg.max_concurrent
  in
  let hint_s = avg *. Float.max 1.0 backlog in
  int_of_float (Float.max 100.0 (Float.min 60_000.0 (hint_s *. 1000.0)))

(* -- quarantine ----------------------------------------------------------- *)

(* A poison job is identified by what reaches the engine: the cache key
   (digest + result-determining parameters) plus the budget, which
   shapes the run.  All quarantine state lives on the main loop. *)
let fingerprint_of ~key ~budget =
  key ^ match budget with None -> "" | Some b -> Printf.sprintf "-b%h" b

let fingerprint job =
  fingerprint_of ~key:(Scheduler.key job)
    ~budget:(Scheduler.spec job).Protocol.budget

let quarantined t fp =
  match Hashtbl.find_opt t.quarantine fp with
  | Some e when e.q_until > Clock.now () ->
    Some (int_of_float (Float.ceil ((e.q_until -. Clock.now ()) *. 1000.0)))
  | _ -> None

(* Called exactly once per reaped worker (normal or zombie): count
   abnormal deaths toward quarantine, clear the record on success.  A
   deadline reap is the watchdog's verdict and a resource shed is the
   budget governor's — neither is the job's fault, so neither counts. *)
let note_worker_outcome t job =
  (* Health's [resource_exhausted_total] counts on the main loop (like
     [n_shed]); the worker only records the verdict in the scheduler. *)
  (match Scheduler.state t.sched job with
   | Scheduler.Failed
     when (Scheduler.view t.sched job).Scheduler.v_failure
          = Some Scheduler.resource_failure ->
     t.n_resource <- t.n_resource + 1;
     Metrics.incr t.m_resource
   | _ -> ());
  if t.cfg.quarantine_threshold > 0 then begin
    let fp = fingerprint job in
    match Scheduler.state t.sched job with
    | Scheduler.Failed
      when (let f = (Scheduler.view t.sched job).Scheduler.v_failure in
            f <> Some Scheduler.deadline_failure
            && f <> Some Scheduler.resource_failure) ->
      let entry =
        match Hashtbl.find_opt t.quarantine fp with
        | Some e -> e
        | None ->
          let e = { q_failures = 0; q_until = 0.0 } in
          Hashtbl.add t.quarantine fp e;
          e
      in
      entry.q_failures <- entry.q_failures + 1;
      if
        entry.q_failures >= t.cfg.quarantine_threshold
        && entry.q_until <= Clock.now ()
      then begin
        entry.q_until <- Clock.now () +. t.cfg.quarantine_cooldown;
        t.n_quarantined <- t.n_quarantined + 1;
        Metrics.incr t.m_quarantined;
        log t "quarantined %s for %.0fs after %d abnormal worker death(s)" fp
          t.cfg.quarantine_cooldown entry.q_failures;
        record_incident t
          (Incident.Job_quarantined
             {
               fingerprint = fp;
               failures = entry.q_failures;
               cooldown_s = t.cfg.quarantine_cooldown;
             })
      end
    | Scheduler.Done -> Hashtbl.remove t.quarantine fp
    | _ -> ()
  end

(* -- admission ----------------------------------------------------------- *)

(* Structured admission failures, so [handle_submit] can answer with a
   machine-readable code and a retry hint instead of prose alone. *)
type reject =
  | Bad_request of string
  | Overloaded of { scope : string; retry_after_ms : int }
  | Quarantined of { fingerprint : string; retry_after_ms : int }

let reject_to_string = function
  | Bad_request msg -> msg
  | Overloaded { scope; retry_after_ms } ->
    Printf.sprintf "overloaded (%s); retry in ~%dms" scope retry_after_ms
  | Quarantined { fingerprint; retry_after_ms } ->
    Printf.sprintf "quarantined (%s); retry in ~%dms" fingerprint
      retry_after_ms

let net_of_source = function
  | Protocol.Named name -> (
    match Bench_suite.load name with
    | net -> Ok net
    | exception Not_found -> Error (Printf.sprintf "unknown circuit %S" name))
  | Protocol.Blif_text text -> (
    match Blif.parse_string text with
    | net -> Ok net
    | exception Blif.Parse_error msg -> Error ("blif: " ^ msg))

let retain_net t id net =
  Mutex.protect t.nets_mutex (fun () -> Hashtbl.replace t.nets id net)

let take_net t id =
  Mutex.protect t.nets_mutex (fun () ->
      let net = Hashtbl.find_opt t.nets id in
      Hashtbl.remove t.nets id;
      net)

(* [admit] is the single path every submission takes (socket submits and
   checkpointed re-admissions alike): parse, digest, cache-key, then
   dedup against finished/in-flight work, and only if the job would
   actually consume a queue slot apply admission control (quarantine,
   global queue bound, per-tenant queued quota).  Coalesced and cached
   answers are never shed — they cost nothing to serve. *)
let admit t (spec : Protocol.job_spec) =
  match net_of_source spec.Protocol.source with
  | Error msg -> Error (Bad_request msg)
  | Ok net ->
    let digest = Network.digest net in
    let samples =
      Option.value spec.Protocol.samples ~default:t.cfg.default_samples
    in
    let key =
      Cache.key ~digest ~metric:spec.Protocol.metric ~bound:spec.Protocol.bound
        ~samples ~seed:spec.Protocol.seed
    in
    let lookup_begin = Clock.now () in
    (match Scheduler.active_by_key t.sched key ~budget:spec.Protocol.budget with
     | Some j ->
       let done_ = Scheduler.state t.sched j = Scheduler.Done in
       if done_ then Metrics.incr t.m_cache_hit_mem;
       log t "%s %s onto %s" (if done_ then "cache hit (memory):" else "coalesced")
         (Network.name net) (Scheduler.id j);
       Ok (j, `Coalesced done_)
     | None -> (
       match Option.bind t.cache (fun c -> Cache.find c key) with
       | Some entry ->
         Metrics.incr t.m_submitted;
         Metrics.incr t.m_cache_hit_disk;
         let lookup_s = Clock.now () -. lookup_begin in
         let j =
           Scheduler.submit t.sched ~spec ~circuit:(Network.name net) ~digest
             ~key ~cached:entry ~lookup_s ()
         in
         log t "cache hit (disk): %s -> %s" (Network.name net) (Scheduler.id j);
         Ok (j, `Cached)
       | None -> (
         let fp = fingerprint_of ~key ~budget:spec.Protocol.budget in
         match quarantined t fp with
         | Some retry_after_ms ->
           log t "refused %s: fingerprint %s is quarantined"
             (Network.name net) fp;
           Slo.observe_shed t.slo ~tenant:spec.Protocol.tenant
             ~kind:"quarantined";
           Error (Quarantined { fingerprint = fp; retry_after_ms })
         | None ->
           let shed scope =
             t.n_shed <- t.n_shed + 1;
             Metrics.incr t.m_shed;
             Slo.observe_shed t.slo ~tenant:spec.Protocol.tenant ~kind:"shed";
             let retry_after_ms = retry_after_ms t in
             log t "shed %s (%s; retry in ~%dms)" (Network.name net) scope
               retry_after_ms;
             Error (Overloaded { scope; retry_after_ms })
           in
           let queued_total, _ = Scheduler.totals t.sched in
           if t.cfg.max_queue > 0 && queued_total >= t.cfg.max_queue then
             shed "queue full"
           else
             let tenant_queued, _ =
               Scheduler.tenant_load t.sched spec.Protocol.tenant
             in
             if
               t.cfg.tenant_max_queued > 0
               && tenant_queued >= t.cfg.tenant_max_queued
             then shed (Printf.sprintf "tenant %S queue quota" spec.Protocol.tenant)
             else begin
               Metrics.incr t.m_submitted;
               Metrics.incr t.m_cache_miss;
               let lookup_s = Clock.now () -. lookup_begin in
               let j =
                 Scheduler.submit t.sched ~spec ~circuit:(Network.name net)
                   ~digest ~key ~lookup_s ()
               in
               retain_net t (Scheduler.id j) net;
               log t "queued %s as %s (key %s)" (Network.name net)
                 (Scheduler.id j) key;
               Ok (j, `Queued)
             end)))

let restore_queue t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> (
    let path = Filename.concat dir "queue.ckpt" in
    match
      (try Checkpoint.load ~path ~tag:queue_tag
       with Checkpoint.Corrupt msg ->
         log t "ignoring corrupt queue checkpoint: %s" msg;
         None)
    with
    | None -> ()
    | Some (specs : Protocol.job_spec list) ->
      (try Sys.remove path with Sys_error _ -> ());
      List.iter
        (fun spec ->
          match admit t spec with
          | Ok (j, _) -> log t "re-admitted %s from queue checkpoint" (Scheduler.id j)
          | Error r -> log t "dropped checkpointed job: %s" (reject_to_string r))
        specs)

(* -- workers ------------------------------------------------------------- *)

(* Engine traces can run to hundreds of thousands of events on a long
   synthesis; the merged per-job trace keeps the daemon's memory bounded
   by only attaching traces below this count (the run/lifecycle spans
   are always there — it is the per-round detail that is shed). *)
let max_attached_trace_events = 20_000

let worker_body t job net =
  let spec = Scheduler.spec job in
  Scheduler.note_run_begin t.sched job;
  (* Every engine observation for this job — spans, structured events,
     round progress — flows through a job-private telemetry handle, so
     concurrent jobs never interleave in each other's traces.  The
     job's pool workers inherit it (Pool.create captures the creating
     domain's effective handle). *)
  let tr = Tracer.create () in
  let last_progress = ref 0.0 in
  let handle =
    Telemetry.make ~tracer:tr
      ~on_event:(fun ev ->
        Scheduler.record_event t.sched job "engine" [ ("detail", ev) ])
      ~on_progress:(fun ~round ~max_rounds ~error ~area ->
        (* Heartbeat, not a firehose: at most ~2 progress events per
           second land on the job's event log, however fast rounds go. *)
        let now = Clock.now () in
        if now -. !last_progress >= 0.5 then begin
          last_progress := now;
          Scheduler.record_event t.sched job "progress"
            [
              ("round", Json.Int round);
              ("max_rounds", Json.Int max_rounds);
              ("error", Json.Float error);
              ("area", Json.Float area);
            ]
        end)
      ()
  in
  (try
     let samples =
       Option.value spec.Protocol.samples ~default:t.cfg.default_samples
     in
     let base =
       {
         Config.default with
         Config.samples;
         seed = spec.Protocol.seed;
         jobs = t.per_job_jobs;
         run_deadline = spec.Protocol.budget;
         max_memory_mb = t.cfg.max_memory_mb;
       }
     in
     let config = Config.for_network ~base net in
     (* Raising from the checkpoint hook aborts the run at a round
        boundary and unwinds through the engine's [Fun.protect], which
        shuts the job's pool down — cancellation frees its domains. *)
     let checkpoint _snap =
       if Scheduler.cancel_requested job then raise Job_cancelled
     in
     let report =
       Telemetry.with_handle handle (fun () ->
           Engine.run ~config ~checkpoint net ~metric:spec.Protocol.metric
             ~error_bound:spec.Protocol.bound)
     in
     match
       List.find_map
         (fun i ->
           match i.Incident.kind with
           | Incident.Resource_exhausted _ -> Some i.Incident.kind
           | _ -> None)
         report.Engine.incidents
     with
     | Some kind ->
       (* The engine's memory governor ran out of non-destructive
          responses: it checkpointed the run and shed it.  The partial
          result is not published — the job fails with the structured
          resource verdict, which admission treats like a deadline
          (never quarantine-worthy). *)
       record_incident t kind;
       Scheduler.fail t.sched job Scheduler.resource_failure;
       Metrics.incr (finished_counter t "failed")
     | None ->
       let entry =
         {
           Cache.key = Scheduler.key job;
           report = Report_json.to_json ~rounds:true report;
           blif = Blif.to_string report.Engine.approximate;
         }
       in
       Scheduler.finish t.sched job entry ~degraded:report.Engine.degraded;
       (* A budget-degraded result is request-specific; only converged
          results are content-addressable. *)
       if not report.Engine.degraded then
         Option.iter
           (fun c ->
             (* Disk governor, cache branch: keep [--statedir-headroom-mb]
                free proactively, pre-evict to the byte cap inside
                [Cache.store], and treat a real ENOSPC as
                evict-then-retry-once — the entry is an optimization, the
                filesystem's last blocks are not worth crashing over. *)
             let headroom = t.cfg.statedir_headroom_mb * 1024 * 1024 in
             if
               headroom > 0
               && not
                    (Budget.Disk.has_headroom ~dir:(Cache.dir c)
                       ~headroom_bytes:headroom)
             then begin
               let ev = Cache.evict c ~max_bytes:(Cache.bytes c / 2) in
               log t
                 "state dir under %d MiB free; evicted %d cache entries"
                 t.cfg.statedir_headroom_mb
                 (ev.Cache.removed_corrupt + ev.Cache.removed_lru)
             end;
             let store () =
               Cache.store ~max_bytes:t.cfg.cache_max_bytes c entry
             in
             try store () with
             | Unix.Unix_error (Unix.ENOSPC, _, _) -> (
               let observed =
                 match Budget.Disk.free_bytes (Cache.dir c) with
                 | Some n -> float_of_int n
                 | None -> 0.0
               in
               record_incident t
                 (Incident.Resource_exhausted
                    {
                      resource = "disk";
                      limit = float_of_int headroom;
                      observed;
                    });
               let ev = Cache.evict c ~max_bytes:(Cache.bytes c / 2) in
               log t
                 "cache store hit ENOSPC; evicted %d entries and retrying"
                 (ev.Cache.removed_corrupt + ev.Cache.removed_lru);
               try store ()
               with e ->
                 log t "cache store failed for %s after eviction: %s"
                   (Scheduler.key job) (Printexc.to_string e))
             | e ->
               log t "cache store failed for %s: %s" (Scheduler.key job)
                 (Printexc.to_string e))
           t.cache;
       Metrics.incr (finished_counter t "done")
   with
   | Job_cancelled ->
     Scheduler.finished_cancelled t.sched job;
     Metrics.incr (finished_counter t "cancelled")
   | e ->
     Scheduler.fail t.sched job (Printexc.to_string e);
     Metrics.incr (finished_counter t "failed"));
  (* The engine trace is attached on failure too — a post-mortem wants
     the rounds that led up to the crash, not just the happy path. *)
  if Tracer.event_count tr > 0 && Tracer.event_count tr <= max_attached_trace_events
  then
    Scheduler.attach_trace t.sched job
      (Tracer.events_json ~ts_offset_us:(Tracer.epoch_us tr) ~tid_offset:1
         ~pid:1
         ~thread_name:(fun tid ->
           if tid = 0 then "engine" else Printf.sprintf "engine-worker-%d" tid)
         tr);
  (let v = Scheduler.view t.sched job in
   Option.iter (Metrics.observe t.h_wait) v.Scheduler.v_wait_s;
   Option.iter
     (fun s ->
       Metrics.observe t.h_run s;
       observe_run t s)
     v.Scheduler.v_run_s;
   (* SLO accounting: good/violated on success, a bounded-cardinality
      failure kind otherwise (free-form exception text must not mint
      Prometheus label values). *)
   let failure =
     match Scheduler.state t.sched job with
     | Scheduler.Done -> None
     | Scheduler.Cancelled -> Some "cancelled"
     | Scheduler.Failed ->
       Some
         (match v.Scheduler.v_failure with
          | Some f
            when f = Scheduler.deadline_failure
                 || f = Scheduler.resource_failure ->
            f
          | _ -> "error")
     | Scheduler.Queued | Scheduler.Running -> Some "error"
   in
   let wait_s = Option.value v.Scheduler.v_wait_s ~default:0.0 in
   let run_s = Option.value v.Scheduler.v_run_s ~default:0.0 in
   Slo.observe_job t.slo ~tenant:v.Scheduler.v_tenant ?failure ~wait_s ~run_s
     ~total_s:(wait_s +. run_s) ())

(* Join only domains whose body has finished ([w_completed]): a
   scheduler-state check would deadlock-adjacent-block on a worker whose
   job the watchdog failed while the domain is still crunching. *)
let reap t =
  let reap_list workers =
    let finished, alive =
      List.partition (fun w -> Atomic.get w.w_completed) workers
    in
    List.iter
      (fun w ->
        Domain_hub.wait w.w_handle;
        note_worker_outcome t w.w_job)
      finished;
    alive
  in
  t.workers <- reap_list t.workers;
  t.zombies <- reap_list t.zombies

(* Deadline enforcement, run every loop tick.  Two stages: any queued or
   running job past its deadline is failed as [deadline_exceeded]
   immediately (the cooperative cancel flag is set so a live worker
   unwinds at the next round boundary, and the idempotent terminal
   transitions make its late report a no-op); a worker still not done at
   deadline + grace is abandoned — moved off the slot-holding list so
   [dispatch] reuses the slot — because domains cannot be killed. *)
let sweep_deadlines t =
  let now = Clock.now () in
  List.iter
    (fun job ->
      match Scheduler.expire t.sched job with
      | None -> ()
      | Some phase ->
        t.n_deadline <- t.n_deadline + 1;
        Metrics.incr t.m_deadline;
        let deadline_s =
          Option.value (Scheduler.spec job).Protocol.deadline ~default:0.0
        in
        log t "%s exceeded its %.1fs deadline while %s" (Scheduler.id job)
          deadline_s phase;
        record_incident t
          (Incident.Deadline_exceeded
             { job = Scheduler.id job; phase; deadline_s });
        (* An expired queued job never starts; drop its parsed circuit.
           It also never reaches a worker, so its SLO verdict lands
           here (a running job's lands in the worker's epilogue). *)
        if phase = "queued" then begin
          ignore (take_net t (Scheduler.id job));
          Slo.observe_shed t.slo
            ~tenant:(Scheduler.spec job).Protocol.tenant
            ~kind:Scheduler.deadline_failure
        end)
    (Scheduler.expired t.sched ~now);
  let wedged, alive =
    List.partition
      (fun w ->
        (not (Atomic.get w.w_completed))
        &&
        match Scheduler.deadline_mono w.w_job with
        | Some d -> now >= d +. t.cfg.deadline_grace
        | None -> false)
      t.workers
  in
  if wedged <> [] then begin
    t.workers <- alive;
    List.iter
      (fun w ->
        log t "abandoning wedged worker for %s (deadline + %.1fs grace)"
          (Scheduler.id w.w_job) t.cfg.deadline_grace;
        (* The hub domain never takes another job and a fresh domain is
           spawned on demand, so a wedged job cannot wedge the slot. *)
        Domain_hub.abandon t.hub w.w_handle)
      wedged;
    t.zombies <- wedged @ t.zombies
  end

let dispatch t =
  let continue = ref true in
  while !continue && List.length t.workers < t.cfg.max_concurrent do
    let tenant_max_running =
      if t.cfg.tenant_max_running > 0 then Some t.cfg.tenant_max_running
      else None
    in
    match Scheduler.pick ?tenant_max_running t.sched with
    | None -> continue := false
    | Some job -> (
      match take_net t (Scheduler.id job) with
      | None -> Scheduler.fail t.sched job "internal error: circuit not retained"
      | Some net ->
        log t "start %s" (Scheduler.id job);
        (* Stable slot lane for the server-wide trace: the smallest
           lane no live worker holds, so a job's run span lands on the
           concurrency slot it actually occupied. *)
        (let used =
           List.filter_map
             (fun w -> Hashtbl.find_opt t.lanes (Scheduler.id w.w_job))
             (t.workers @ t.zombies)
         in
         let rec free lane = if List.mem lane used then free (lane + 1) else lane in
         Hashtbl.replace t.lanes (Scheduler.id job) (free 1));
        let completed = Atomic.make false in
        let h =
          Domain_hub.submit t.hub (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  Atomic.set completed true;
                  wake t)
                (fun () -> worker_body t job net))
        in
        t.workers <- { w_handle = h; w_job = job; w_completed = completed } :: t.workers)
  done

(* -- request handling ---------------------------------------------------- *)

let opt_json f = function None -> Json.Null | Some x -> f x

let view_fields (v : Scheduler.view) =
  [
    ("job", Json.String v.Scheduler.v_id);
    ("state", Json.String (Scheduler.state_to_string v.Scheduler.v_state));
    ("circuit", Json.String v.Scheduler.v_circuit);
    ("metric", Json.String v.Scheduler.v_metric);
    ("bound", Json.Float v.Scheduler.v_bound);
    ("tenant", Json.String v.Scheduler.v_tenant);
    ("priority", Json.Int v.Scheduler.v_priority);
    ("cached", Json.Bool v.Scheduler.v_cached);
    ("degraded", Json.Bool v.Scheduler.v_degraded);
    ("queue_position", opt_json (fun i -> Json.Int i) v.Scheduler.v_queue_position);
    ("submitted_at", Json.Float v.Scheduler.v_submitted_at);
    ("wait_s", opt_json (fun x -> Json.Float x) v.Scheduler.v_wait_s);
    ("run_s", opt_json (fun x -> Json.Float x) v.Scheduler.v_run_s);
    ("failure", opt_json (fun s -> Json.String s) v.Scheduler.v_failure);
  ]

(* A resource-shed job's status carries the structured code and a retry
   hint, exactly like an admission shed — the client's backoff logic
   need not care whether the governor ran at admission or mid-run. *)
let resource_fields t j =
  if
    (Scheduler.view t.sched j).Scheduler.v_failure
    = Some Scheduler.resource_failure
  then
    [
      ("code", Json.String "resource_exhausted");
      ("retry_after_ms", Json.Int (retry_after_ms t));
    ]
  else []

let with_job t id f =
  match Scheduler.find t.sched id with
  | None -> Protocol.error_response (Printf.sprintf "unknown job %S" id)
  | Some j -> f j

let handle_submit t spec =
  match admit t spec with
  | Error (Bad_request msg) -> Protocol.error_response msg
  | Error (Overloaded { scope; retry_after_ms }) ->
    Protocol.error_response_code ~code:"overloaded"
      ~extra:[ ("retry_after_ms", Json.Int retry_after_ms) ]
      (Printf.sprintf "overloaded: %s" scope)
  | Error (Quarantined { fingerprint; retry_after_ms }) ->
    Protocol.error_response_code ~code:"quarantined"
      ~extra:[ ("retry_after_ms", Json.Int retry_after_ms) ]
      (Printf.sprintf
         "fingerprint %s is quarantined after repeated worker failures"
         fingerprint)
  | Ok (j, how) ->
    let v = Scheduler.view t.sched j in
    let cached =
      match how with `Cached | `Coalesced true -> true | _ -> false
    in
    let coalesced = match how with `Coalesced _ -> true | _ -> false in
    (* The view's "cached" field describes the job; for a submit response
       the effective answer (which includes coalescing onto a finished
       duplicate) is what the client needs. *)
    let fields =
      List.filter (fun (k, _) -> k <> "cached") (view_fields v)
    in
    Protocol.ok_response
      (fields
      @ [
          ("cached", Json.Bool cached);
          ("coalesced", Json.Bool coalesced);
          (* The effective trace-context id (the client's, or minted at
             admission) — what to pass to the [trace] request. *)
          ("trace_id", Json.String (Scheduler.trace_id j));
        ])

let handle_request t req =
  match req with
  | Protocol.Submit spec -> handle_submit t spec
  | Protocol.Status id -> with_job t id (fun j ->
      Protocol.ok_response
        (view_fields (Scheduler.view t.sched j) @ resource_fields t j))
  | Protocol.Result id ->
    with_job t id (fun j ->
        let fields =
          view_fields (Scheduler.view t.sched j) @ resource_fields t j
        in
        match Scheduler.result t.sched j with
        | Some e ->
          (* First successful fetch closes the result.delivery span. *)
          Scheduler.note_delivered t.sched j;
          Protocol.ok_response
            (fields
            @ [ ("report", e.Cache.report); ("blif", Json.String e.Cache.blif) ])
        | None -> Protocol.ok_response fields)
  | Protocol.Cancel id ->
    with_job t id (fun j ->
        let outcome =
          match Scheduler.cancel t.sched j with
          | `Cancelled_queued -> "cancelled"
          | `Cancel_requested -> "cancel_requested"
          | `Already_finished -> "already_finished"
        in
        Protocol.ok_response
          (view_fields (Scheduler.view t.sched j)
          @ [ ("cancel", Json.String outcome) ]))
  | Protocol.List ->
    let jobs =
      List.map
        (fun j -> Json.Obj (view_fields (Scheduler.view t.sched j)))
        (Scheduler.all t.sched)
    in
    Protocol.ok_response [ ("jobs", Json.List jobs) ]
  | Protocol.Metrics ->
    Protocol.ok_response
      [ ("metrics", Json.String (Metrics.to_prometheus (metrics t))) ]
  | Protocol.Trace id ->
    with_job t id (fun j ->
        Protocol.ok_response
          [ ("trace", Json.List (Scheduler.trace_events t.sched j)) ])
  | Protocol.Events id ->
    with_job t id (fun j ->
        Protocol.ok_response
          [ ("events", Json.List (Scheduler.events t.sched j)) ])
  | Protocol.Slo -> (
    match Slo.to_json t.slo with
    | Json.Obj fields -> Protocol.ok_response fields
    | other -> Protocol.ok_response [ ("slo", other) ])
  | Protocol.Health ->
    (* Everything a load balancer or the CI soak needs in one cheap,
       unprivileged round-trip.  [open_fds] exposes the daemon's own fd
       count (via /proc; -1 where unavailable) so a soak can assert the
       daemon does not leak descriptors under flood. *)
    let queued, running = Scheduler.totals t.sched in
    let open_fds =
      match Sys.readdir "/proc/self/fd" with
      | entries -> Array.length entries
      | exception Sys_error _ -> -1
    in
    Protocol.ok_response
      [
        ("queue_depth", Json.Int queued);
        ("running", Json.Int running);
        ("slots", Json.Int t.cfg.max_concurrent);
        ("slots_free",
         Json.Int (max 0 (t.cfg.max_concurrent - List.length t.workers)));
        ("max_queue", Json.Int t.cfg.max_queue);
        ("zombies", Json.Int (List.length t.zombies));
        ("hub_domains_spawned", Json.Int (Domain_hub.spawned t.hub));
        ("hub_domains_live", Json.Int (Domain_hub.live t.hub));
        ("connections", Json.Int (List.length t.conns));
        ("cache_entries",
         opt_json (fun c -> Json.Int (Cache.size c)) t.cache);
        ("cache_bytes",
         opt_json (fun c -> Json.Int (Cache.bytes c)) t.cache);
        ("shed_total", Json.Int t.n_shed);
        ("deadline_exceeded_total", Json.Int t.n_deadline);
        ("quarantined_total", Json.Int t.n_quarantined);
        ("resource_exhausted_total", Json.Int t.n_resource);
        ("zombies_leaked_total", Json.Int t.n_zombies_leaked);
        ("uptime_s", Json.Float (Clock.now () -. t.started_mono));
        (* [uptime_seconds] is the documented name; [uptime_s] stays for
           existing probes. *)
        ("uptime_seconds", Json.Float (Clock.now () -. t.started_mono));
        ("protocol_version", Json.Int Protocol.version);
        ("build", Build_info.to_json ());
        ("open_fds", Json.Int open_fds);
        ("fd_limit",
         Json.Int (Option.value (Budget.Fd.limit ()) ~default:(-1)));
        ("memory_bytes",
         Json.Int ((Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8)));
        ("statedir_bytes",
         Json.Int
           (match t.cfg.state_dir with
            | Some d -> Budget.Disk.usage_bytes d
            | None -> 0));
      ]
  | Protocol.Ping ->
    Protocol.ok_response
      [
        ("pong", Json.Bool true);
        ("uptime_s", Json.Float (Clock.now () -. t.started_mono));
        ("jobs", Json.Int t.cfg.jobs);
        ("max_concurrent", Json.Int t.cfg.max_concurrent);
      ]
  | Protocol.Shutdown ->
    Atomic.set t.stopped true;
    Protocol.ok_response [ ("stopping", Json.Bool true) ]

let request_name = function
  | Protocol.Submit _ -> "submit"
  | Protocol.Status _ -> "status"
  | Protocol.Result _ -> "result"
  | Protocol.Cancel _ -> "cancel"
  | Protocol.List -> "list"
  | Protocol.Metrics -> "metrics"
  | Protocol.Health -> "health"
  | Protocol.Trace _ -> "trace"
  | Protocol.Events _ -> "events"
  | Protocol.Slo -> "slo"
  | Protocol.Ping -> "ping"
  | Protocol.Shutdown -> "shutdown"

(* Constant-time comparison: a byte-wise early-exit compare would leak
   the token prefix through response timing. *)
let token_eq a b =
  String.length a = String.length b
  &&
  let d = ref 0 in
  String.iteri (fun i c -> d := !d lor (Char.code c lxor Char.code b.[i])) a;
  !d = 0

(* The Unix socket is the trusted control plane (filesystem permissions
   on the socket path).  Over TCP, privileged requests need the shared
   token; without [--tcp-token] configured they are refused outright. *)
let authorized t origin req ~token =
  match origin with
  | `Unix -> true
  | `Tcp ->
    (not (Protocol.privileged req))
    || (match (t.cfg.tcp_token, token) with
       | Some secret, Some presented -> token_eq secret presented
       | _ -> false)

let handle_line t origin line =
  match Protocol.parse_request_v line with
  | Error (Protocol.Unsupported_version _ as r) ->
    (* Structured: a newer client learns the server's version from the
       first response instead of misparsing a generic error. *)
    Metrics.incr (request_counter t "invalid");
    Protocol.error_response_code ~code:"unsupported_version"
      ~extra:[ ("v", Json.Int Protocol.version) ]
      (Protocol.reject_message r)
  | Error (Protocol.Malformed msg) ->
    Metrics.incr (request_counter t "invalid");
    Protocol.error_response msg
  | Ok (req, token) ->
    if not (authorized t origin req ~token) then begin
      Metrics.incr (request_counter t "unauthorized");
      Protocol.error_response
        (Printf.sprintf "%s is not allowed over TCP%s" (request_name req)
           (match t.cfg.tcp_token with
            | None -> " (daemon started without --tcp-token)"
            | Some _ -> " without a valid \"token\""))
    end
    else begin
      Metrics.incr (request_counter t (request_name req));
      handle_request t req
    end

(* -- connection plumbing ------------------------------------------------- *)

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

(* Write as much of the outbox as the non-blocking socket will take
   right now; the rest waits for the select loop to report the fd
   writable again.  The daemon never blocks on a slow or stalled reader
   — that would stall every other tenant's accepts and dispatches. *)
let rec flush_outbox t c =
  if (not c.closed) && not (Queue.is_empty c.outbox) then begin
    let head = Queue.peek c.outbox in
    let len = String.length head - c.out_off in
    match Unix.write_substring c.fd head c.out_off len with
    | n ->
      c.out_bytes <- c.out_bytes - n;
      if n = len then begin
        ignore (Queue.pop c.outbox);
        c.out_off <- 0;
        flush_outbox t c
      end
      else c.out_off <- c.out_off + n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ ->
      log t "dropping connection %s (write failed)" c.peer;
      close_conn t c
  end

let send t c resp =
  if not c.closed then begin
    let s = Json.to_string resp ^ "\n" in
    Queue.push s c.outbox;
    c.out_bytes <- c.out_bytes + String.length s;
    if c.out_bytes > max_outbox_bytes then begin
      log t "dropping connection %s (outbound buffer over %d bytes)" c.peer
        max_outbox_bytes;
      close_conn t c
    end
    else flush_outbox t c
  end

(* Shutdown-time flush: switch the socket back to blocking with a short
   send timeout so the final response (e.g. the shutdown ack) reaches a
   well-behaved client, without letting a stalled one hold up drain. *)
let flush_outbox_closing t c =
  if (not c.closed) && not (Queue.is_empty c.outbox) then begin
    (try
       Unix.clear_nonblock c.fd;
       Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO 1.0
     with Unix.Unix_error _ -> ());
    flush_outbox t c
  end

(* Fd governor: refuse a connection {e before} the descriptor table is
   exhausted.  The listener is readable, so this [accept] still succeeds
   — but admitting the connection would leave fewer than [fd_reserve]
   descriptors for the daemon's own files (cache entries, checkpoints,
   incident log), whose [open] failing is far worse than one client
   retrying.  The peer gets a structured one-line error and a retry
   hint, never a connection reset from a failing [accept]. *)
let shed_accept t listener =
  match Unix.accept listener with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    t.n_resource <- t.n_resource + 1;
    Metrics.incr t.m_resource;
    if not t.fd_shedding then begin
      (* One incident per pressure episode, not one per refused
         connection — a flood must not flood incidents.jsonl too. *)
      t.fd_shedding <- true;
      let count probe = match probe with Some n -> float_of_int n | None -> 0.0 in
      let observed = count (Budget.Fd.open_fds ()) in
      let limit = count (Budget.Fd.limit ()) in
      log t "fd budget: %.0f of %.0f descriptors open (reserve %d); \
             shedding new connections" observed limit t.cfg.fd_reserve;
      record_incident t
        (Incident.Resource_exhausted { resource = "fds"; limit; observed })
    end;
    let resp =
      Json.to_string
        (Protocol.error_response_code ~code:"resource_exhausted"
           ~extra:[ ("retry_after_ms", Json.Int (retry_after_ms t)) ]
           "file descriptor budget exhausted")
      ^ "\n"
    in
    (try
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
       ignore (Unix.write_substring fd resp 0 (String.length resp))
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_conn t listener ~origin =
  if not (Budget.Fd.should_accept ~reserve:t.cfg.fd_reserve) then
    shed_accept t listener
  else begin
    if t.fd_shedding then begin
      t.fd_shedding <- false;
      log t "fd pressure cleared; accepting connections again"
    end;
    match Unix.accept listener with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | fd, addr ->
    Unix.set_nonblock fd;
    let peer =
      match addr with
      | Unix.ADDR_UNIX _ -> "unix"
      | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    in
    t.conns <-
      {
        fd;
        peer;
        origin;
        pending = "";
        outbox = Queue.create ();
        out_off = 0;
        out_bytes = 0;
        closed = false;
      }
      :: t.conns
  end

let rec process_pending t c =
  if not c.closed then
    match String.index_opt c.pending '\n' with
    | None ->
      if String.length c.pending > Protocol.max_request_bytes then begin
        send t c (Protocol.error_response "request exceeds maximum size");
        close_conn t c
      end
    | Some i ->
      let line =
        let raw = String.sub c.pending 0 i in
        if raw <> "" && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      c.pending <-
        String.sub c.pending (i + 1) (String.length c.pending - i - 1);
      if String.trim line <> "" then send t c (handle_line t c.origin line);
      process_pending t c

let handle_readable t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 65536 with
  | 0 -> close_conn t c
  | n ->
    c.pending <- c.pending ^ Bytes.sub_string buf 0 n;
    process_pending t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn t c

(* -- main loop and teardown ---------------------------------------------- *)

let write_text_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* The server-wide trace: every job's lifecycle spans on shared lanes.
   Admission-side spans (client.submit, cache.lookup, queue.wait,
   dispatch) stack on lane 0; the run and everything after it lands on
   the concurrency slot the job actually occupied, so slot contention is
   visible at a glance.  Per-round engine detail stays in the per-job
   traces — this is the fleet view, not the microscope. *)
let server_trace t =
  let admission_span name =
    List.mem name [ "client.submit"; "cache.lookup"; "queue.wait"; "dispatch" ]
  in
  let max_lane = ref 0 in
  let events =
    List.concat_map
      (fun j ->
        let lane =
          Option.value (Hashtbl.find_opt t.lanes (Scheduler.id j)) ~default:0
        in
        if lane > !max_lane then max_lane := lane;
        List.filter_map
          (fun ev ->
            match (Json.member "ph" ev, Json.member "tid" ev, ev) with
            | Some (Json.String "M"), _, _ -> None
            | _, Some (Json.Int 0), Json.Obj fields ->
              let name =
                match Json.member "name" ev with
                | Some (Json.String n) -> n
                | _ -> ""
              in
              let tid = if admission_span name then 0 else lane in
              Some
                (Json.Obj
                   (List.map
                      (fun (k, v) ->
                        if k = "tid" then (k, Json.Int tid) else (k, v))
                      fields))
            | _ -> None (* engine lanes: per-job traces only *))
          (Scheduler.trace_events t.sched j))
      (Scheduler.all t.sched)
  in
  let meta tid name =
    Json.Obj
      [
        ("ph", Json.String "M");
        ("name", Json.String "thread_name");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  meta 0 "admission"
  :: List.init !max_lane (fun i -> meta (i + 1) (Printf.sprintf "slot-%d" (i + 1)))
  @ events

let drain t =
  (* Stop sampling before teardown I/O: past this point no signal can
     interrupt the artifact writes, and the profile covers exactly the
     serving lifetime. *)
  (match t.profiler with
   | None -> ()
   | Some p ->
     t.profiler <- None;
     Profiler.stop p;
     Option.iter
       (fun dir ->
         ensure_dir dir;
         (try Profiler.write_folded p (Filename.concat dir "server.folded")
          with Sys_error _ -> ());
         try
           Json.write_file
             (Filename.concat dir "server.profile.json")
             (Profiler.summary p)
         with Sys_error _ -> ())
       t.cfg.profile_dir);
  log t "shutting down: %d connection(s), %d worker(s)" (List.length t.conns)
    (List.length t.workers);
  (* Checkpoint unfinished work first, then cancel it: a restart with the
     same state dir re-admits exactly what this process did not finish. *)
  let pending = Scheduler.queued_specs t.sched in
  (match t.cfg.state_dir with
   | Some dir ->
     ensure_dir dir;
     let path = Filename.concat dir "queue.ckpt" in
     if pending = [] then (try Sys.remove path with Sys_error _ -> ())
     else (
       let save () = Checkpoint.save ~path ~tag:queue_tag pending in
       try
         save ();
         log t "checkpointed %d unfinished job(s)" (List.length pending)
       with
       | Unix.Unix_error (Unix.ENOSPC, _, _) -> (
         (* Disk governor, checkpoint branch: the queue checkpoint
            outranks every cached result — cache entries can be
            recomputed, unfinished jobs cannot.  Evict the whole cache,
            retry once, and only then degrade to dropping the queue.
            [Checkpoint.save] already removed its temp file, so the
            previous checkpoint (if any) is intact either way. *)
         Option.iter (fun c -> ignore (Cache.evict c ~max_bytes:0)) t.cache;
         record_incident t
           (Incident.Resource_exhausted
              {
                resource = "disk";
                limit =
                  float_of_int (t.cfg.statedir_headroom_mb * 1024 * 1024);
                observed =
                  (match Budget.Disk.free_bytes dir with
                   | Some n -> float_of_int n
                   | None -> 0.0);
              });
         match save () with
         | () ->
           log t
             "checkpointed %d unfinished job(s) after evicting the cache"
             (List.length pending)
         | exception e ->
           log t "queue checkpoint failed twice: %s (dropping %d job(s))"
             (Printexc.to_string e) (List.length pending))
       | e -> log t "queue checkpoint failed: %s" (Printexc.to_string e))
   | None ->
     if pending <> [] then
       log t "dropping %d unfinished job(s) (no state dir)"
         (List.length pending));
  List.iter
    (fun j -> ignore (Scheduler.cancel t.sched j))
    (Scheduler.all t.sched);
  List.iter (fun w -> Domain_hub.wait w.w_handle) t.workers;
  t.workers <- [];
  (* Abandoned workers cannot be joined unless they unwind on their own;
     give them a bounded window (their cancel flags are set), then leak
     the rest — process exit reclaims them, and blocking shutdown on a
     wedged domain is exactly what abandonment was for. *)
  (let give_up = Clock.now () +. 5.0 in
   let rec wait_zombies () =
     let dead, undead =
       List.partition (fun w -> Atomic.get w.w_completed) t.zombies
     in
     List.iter (fun w -> Domain_hub.wait w.w_handle) dead;
     t.zombies <- undead;
     if undead <> [] && Clock.now () < give_up then begin
       Unix.sleepf 0.05;
       wait_zombies ()
     end
   in
   wait_zombies ();
   if t.zombies <> [] then begin
     (* Count the leak before the final metrics/health snapshots below:
        a soak that kills and restarts the daemon reads the tally from
        state_dir/metrics.prom. *)
     let leaked = List.length t.zombies in
     t.n_zombies_leaked <- t.n_zombies_leaked + leaked;
     Metrics.add t.m_zombies_leaked leaked;
     log t "leaking %d still-wedged worker domain(s) at exit" leaked
   end);
  (* Joins idle and reclaimable hub domains; still-wedged abandoned ones
     are leaked, exactly as before. *)
  Domain_hub.shutdown t.hub;
  (* Flush observability artifacts so a post-mortem needs no live daemon. *)
  (match t.cfg.state_dir with
   | None -> ()
   | Some dir ->
     ensure_dir dir;
     (try
        write_text_file
          (Filename.concat dir "metrics.prom")
          (Metrics.to_prometheus (metrics t))
      with Sys_error _ -> ());
     (try
        let buf = Buffer.create 4096 in
        List.iter
          (fun j ->
            List.iter
              (fun ev ->
                Buffer.add_string buf (Json.to_string ev);
                Buffer.add_char buf '\n')
              (Scheduler.events t.sched j))
          (Scheduler.all t.sched);
        write_text_file (Filename.concat dir "events.jsonl") (Buffer.contents buf)
      with Sys_error _ -> ());
     let traces = Filename.concat dir "traces" in
     ensure_dir traces;
     List.iter
       (fun j ->
         try
           Json.write_file
             (Filename.concat traces (Scheduler.id j ^ ".trace.json"))
             (Json.Obj
                [
                  ("traceEvents",
                   Json.List (Scheduler.trace_events t.sched j));
                  ("displayTimeUnit", Json.String "ms");
                ])
         with Sys_error _ -> ())
       (Scheduler.all t.sched);
     try
       Json.write_file
         (Filename.concat dir "server.trace.json")
         (Json.Obj
            [
              ("traceEvents", Json.List (server_trace t));
              ("displayTimeUnit", Json.String "ms");
            ])
     with Sys_error _ -> ());
  List.iter (fun c -> flush_outbox_closing t c) t.conns;
  List.iter (fun c -> close_conn t c) t.conns;
  (try Unix.close t.unix_listener with Unix.Unix_error _ -> ());
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.tcp_listener;
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  log t "bye"

let run t =
  (match t.cfg.profile_dir with
   | None -> ()
   | Some _ -> (
     (* CPU-time sampling: SIGPROF only fires while the daemon burns
        CPU, so an idle select loop costs nothing and never has its
        blocking syscalls interrupted. *)
     try
       t.profiler <-
         Some (Profiler.start ~hz:t.cfg.profile_hz ~mode:Profiler.Cpu ())
     with Invalid_argument msg -> log t "profiler not started: %s" msg));
  restore_queue t;
  let listeners =
    t.unix_listener
    :: (match t.tcp_listener with Some fd -> [ fd ] | None -> [])
  in
  while not (Atomic.get t.stopped) do
    reap t;
    sweep_deadlines t;
    dispatch t;
    let read_set = (t.pipe_r :: listeners) @ List.map (fun c -> c.fd) t.conns in
    let write_set =
      List.filter_map
        (fun c -> if Queue.is_empty c.outbox then None else Some c.fd)
        t.conns
    in
    match Unix.select read_set write_set [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | Some c -> flush_outbox t c
          | None -> ())
        ready_w;
      List.iter
        (fun fd ->
          if fd = t.pipe_r then drain_pipe t
          else if List.memq fd listeners then
            accept_conn t fd
              ~origin:(if fd = t.unix_listener then `Unix else `Tcp)
          else
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some c -> handle_readable t c
            | None -> ())
        ready_r
  done;
  drain t
