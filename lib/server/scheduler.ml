module Json = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock
module Trace_context = Accals_telemetry.Trace_context
module Metric = Accals_metrics.Metric

type state = Queued | Running | Done | Failed | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : string;
  seq : int;
  spec : Protocol.job_spec;
  trace_id : string;  (* from the spec, or minted at admission *)
  circuit : string;
  digest : string;
  key : string;
  submitted_wall : float;  (* Unix epoch, for display *)
  submitted_mono : float;  (* Clock.now, for durations *)
  lookup_s : float;  (* cache-lookup cost paid at admission *)
  deadline_mono : float option;  (* absolute Clock.now deadline *)
  cancel_flag : bool Atomic.t;
  mutable state : state;
  mutable started_mono : float option;  (* picked by the dispatcher *)
  mutable run_begin_mono : float option;  (* engine actually entered *)
  mutable finished_mono : float option;
  mutable delivered_mono : float option;  (* first successful result fetch *)
  mutable cached : bool;
  mutable degraded : bool;
  mutable result : Cache.entry option;
  mutable failure : string option;
  mutable events : Json.t list;  (* newest first *)
  mutable engine_trace : Json.t list;
      (* The job's engine-side Chrome-trace events, already rebased to
         absolute monotonic microseconds and relocated off the lifecycle
         lane (see [attach_trace]); merged into [trace_events]. *)
}

type t = {
  mutex : Mutex.t;
  tbl : (string, job) Hashtbl.t;
  mutable jobs : job list;  (* newest first *)
  mutable next_seq : int;
  rng : Random.State.t;
}

(* Job ids are capabilities of a sort — [result]/[cancel] take nothing
   but the id — so they must not be guessable from watching one's own
   submissions.  Seed from the system entropy pool; the fallback only
   matters on systems without /dev/urandom. *)
let seed_rng () =
  match
    let ic = open_in_bin "/dev/urandom" in
    let s = really_input_string ic 16 in
    close_in ic;
    s
  with
  | s -> Random.State.make (Array.init 16 (fun i -> Char.code s.[i]))
  | exception Sys_error _ | exception End_of_file ->
    Random.State.make
      [| int_of_float (Unix.gettimeofday () *. 1e6); Unix.getpid () |]

let create () =
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create 64;
    jobs = [];
    next_seq = 1;
    rng = seed_rng ();
  }

let locked t f = Mutex.protect t.mutex f

let id j = j.id
let spec j = j.spec
let key j = j.key
let digest j = j.digest
let trace_id j = j.trace_id
let cancel_requested j = Atomic.get j.cancel_flag

let push_event j name fields =
  let ev =
    Json.Obj
      (("ts", Json.Float (Clock.now ()))
      :: ("job", Json.String j.id)
      :: ("event", Json.String name)
      :: fields)
  in
  j.events <- ev :: j.events

let record_event t j name fields = locked t (fun () -> push_event j name fields)

let submit t ~spec ~circuit ~digest ~key ?cached ?(lookup_s = 0.0) () =
  locked t (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      (* 64 random bits after the readable sequence number. *)
      let nonce =
        Int64.logor
          (Int64.shift_left (Random.State.int64 t.rng Int64.max_int) 1)
          (Int64.of_int (Random.State.int t.rng 2))
      in
      let now_mono = Clock.now () in
      let j =
        {
          id = Printf.sprintf "j-%06d-%016Lx" seq nonce;
          seq;
          spec;
          trace_id =
            (match spec.Protocol.trace_id with
             | Some id -> id
             | None -> Trace_context.mint ());
          circuit;
          digest;
          key;
          submitted_wall = Unix.gettimeofday ();
          submitted_mono = now_mono;
          lookup_s;
          deadline_mono =
            Option.map (fun d -> now_mono +. d) spec.Protocol.deadline;
          cancel_flag = Atomic.make false;
          state = (match cached with Some _ -> Done | None -> Queued);
          started_mono = None;
          run_begin_mono = None;
          finished_mono = None;
          delivered_mono = None;
          cached = Option.is_some cached;
          degraded = false;
          result = cached;
          failure = None;
          events = [];
          engine_trace = [];
        }
      in
      (match cached with
       | Some _ ->
         j.started_mono <- Some j.submitted_mono;
         j.finished_mono <- Some j.submitted_mono
       | None -> ());
      Hashtbl.replace t.tbl j.id j;
      t.jobs <- j :: t.jobs;
      push_event j "submitted"
        [
          ("circuit", Json.String circuit);
          ("digest", Json.String digest);
          ("tenant", Json.String spec.Protocol.tenant);
          ("priority", Json.Int spec.Protocol.priority);
          ("cached", Json.Bool j.cached);
          ("trace_id", Json.String j.trace_id);
        ];
      j)

let find t id = locked t (fun () -> Hashtbl.find_opt t.tbl id)
let all t = locked t (fun () -> List.rev t.jobs)
let state t j = locked t (fun () -> j.state)

let active_by_key t k ~budget =
  locked t (fun () ->
      (* The fold runs newest-to-oldest and overwrites, so the oldest
         match wins — coalescing is stable across lookups.  In-flight
         jobs only coalesce when the budgets agree (a budget can degrade
         a result); finished ones only count when they converged. *)
      List.fold_left
        (fun acc j ->
          match j.state with
          | (Queued | Running) when j.spec.Protocol.budget = budget -> Some j
          | Done when j.result <> None && not j.degraded -> Some j
          | _ -> acc)
        None
        (List.filter (fun j -> j.key = k) t.jobs))

(* Scheduling policy: strict priority, then fewest running jobs for the
   tenant (fair share), then submission order. *)
let policy_order running_of_tenant a b =
  let c = compare b.spec.Protocol.priority a.spec.Protocol.priority in
  if c <> 0 then c
  else
    let c =
      compare
        (running_of_tenant a.spec.Protocol.tenant)
        (running_of_tenant b.spec.Protocol.tenant)
    in
    if c <> 0 then c else compare a.seq b.seq

let running_by_tenant t =
  (* Call with the lock held. *)
  let running = Hashtbl.create 8 in
  List.iter
    (fun j ->
      if j.state = Running then
        let tenant = j.spec.Protocol.tenant in
        Hashtbl.replace running tenant
          (1 + Option.value (Hashtbl.find_opt running tenant) ~default:0))
    t.jobs;
  fun tenant -> Option.value (Hashtbl.find_opt running tenant) ~default:0

let queued_in_order t =
  (* Call with the lock held. *)
  let running_of_tenant = running_by_tenant t in
  List.filter (fun j -> j.state = Queued) t.jobs
  |> List.sort (policy_order running_of_tenant)

let pick ?tenant_max_running t =
  locked t (fun () ->
      let running_of_tenant = running_by_tenant t in
      let admissible j =
        (* The per-tenant running quota is enforced at pick time: an
           over-quota tenant's queued jobs wait (they are not shed — the
           queue quota already bounded them at admission), and the next
           tenant in policy order runs instead. *)
        match tenant_max_running with
        | Some cap when cap > 0 ->
          running_of_tenant j.spec.Protocol.tenant < cap
        | _ -> true
      in
      match List.filter admissible (queued_in_order t) with
      | [] -> None
      | j :: _ ->
        j.state <- Running;
        j.started_mono <- Some (Clock.now ());
        push_event j "started" [];
        Some j)

let terminal j =
  match j.state with Done | Failed | Cancelled -> true | Queued | Running -> false

let note_run_begin t j =
  locked t (fun () ->
      if j.run_begin_mono = None && not (terminal j) then begin
        j.run_begin_mono <- Some (Clock.now ());
        push_event j "run_begin" []
      end)

let note_delivered t j =
  locked t (fun () ->
      if j.delivered_mono = None && terminal j then begin
        j.delivered_mono <- Some (Clock.now ());
        push_event j "delivered" []
      end)

let attach_trace t j evs = locked t (fun () -> j.engine_trace <- evs)

let cancel t j =
  locked t (fun () ->
      match j.state with
      | Queued ->
        j.state <- Cancelled;
        j.finished_mono <- Some (Clock.now ());
        push_event j "cancelled" [ ("while", Json.String "queued") ];
        `Cancelled_queued
      | Running ->
        Atomic.set j.cancel_flag true;
        push_event j "cancel_requested" [];
        `Cancel_requested
      | Done | Failed | Cancelled -> `Already_finished)

(* Terminal transitions are idempotent no-ops once a job is terminal:
   the deadline watchdog may reclaim an abandoned job's slot and fail it
   while its worker domain is still unwinding — whatever that worker
   reports afterwards must not resurrect or overwrite the verdict. *)

let finish t j entry ~degraded =
  locked t (fun () ->
      if not (terminal j) then begin
        j.state <- Done;
        j.degraded <- degraded;
        j.result <- Some entry;
        j.finished_mono <- Some (Clock.now ());
        push_event j "done" [ ("degraded", Json.Bool degraded) ]
      end)

let fail t j msg =
  locked t (fun () ->
      if not (terminal j) then begin
        j.state <- Failed;
        j.failure <- Some msg;
        j.finished_mono <- Some (Clock.now ());
        push_event j "failed" [ ("error", Json.String msg) ]
      end)

let finished_cancelled t j =
  locked t (fun () ->
      if not (terminal j) then begin
        j.state <- Cancelled;
        j.finished_mono <- Some (Clock.now ());
        push_event j "cancelled" [ ("while", Json.String "running") ]
      end)

let deadline_failure = "deadline_exceeded"
let resource_failure = "resource_exhausted"

let expire t j =
  locked t (fun () ->
      match j.state with
      | Queued | Running ->
        let phase = if j.state = Queued then "queued" else "running" in
        (* The worker (if any) still holds the cooperative flag; set it
           so an abandoned domain unwinds at its next round boundary. *)
        Atomic.set j.cancel_flag true;
        j.state <- Failed;
        j.failure <- Some deadline_failure;
        j.finished_mono <- Some (Clock.now ());
        push_event j "deadline_exceeded" [ ("while", Json.String phase) ];
        Some phase
      | Done | Failed | Cancelled -> None)

let deadline_mono j = j.deadline_mono

let deadline_expired j ~now =
  match j.deadline_mono with None -> false | Some d -> now >= d

let expired t ~now =
  locked t (fun () ->
      List.filter
        (fun j ->
          (j.state = Queued || j.state = Running) && deadline_expired j ~now)
        (List.rev t.jobs))

(* Admission-control inputs: how much is queued/running overall and per
   tenant.  Reading and the subsequent submit both happen on the
   daemon's single select-loop thread, so check-then-admit does not
   race; workers can only shrink these counts in between, which makes
   admission conservative, never over-permissive. *)

let totals t =
  locked t (fun () ->
      List.fold_left
        (fun (q, r) j ->
          match j.state with
          | Queued -> (q + 1, r)
          | Running -> (q, r + 1)
          | _ -> (q, r))
        (0, 0) t.jobs)

let tenant_load t tenant =
  locked t (fun () ->
      List.fold_left
        (fun (q, r) j ->
          if j.spec.Protocol.tenant <> tenant then (q, r)
          else
            match j.state with
            | Queued -> (q + 1, r)
            | Running -> (q, r + 1)
            | _ -> (q, r))
        (0, 0) t.jobs)

type view = {
  v_id : string;
  v_state : state;
  v_circuit : string;
  v_metric : string;
  v_bound : float;
  v_tenant : string;
  v_priority : int;
  v_cached : bool;
  v_degraded : bool;
  v_queue_position : int option;
  v_submitted_at : float;
  v_wait_s : float option;
  v_run_s : float option;
  v_failure : string option;
}

let view t j =
  locked t (fun () ->
      let position =
        if j.state = Queued then
          let queued = queued_in_order t in
          let rec index i = function
            | [] -> None
            | x :: _ when x.id = j.id -> Some i
            | _ :: rest -> index (i + 1) rest
          in
          index 0 queued
        else None
      in
      {
        v_id = j.id;
        v_state = j.state;
        v_circuit = j.circuit;
        v_metric = Metric.kind_to_string j.spec.Protocol.metric;
        v_bound = j.spec.Protocol.bound;
        v_tenant = j.spec.Protocol.tenant;
        v_priority = j.spec.Protocol.priority;
        v_cached = j.cached;
        v_degraded = j.degraded;
        v_queue_position = position;
        v_submitted_at = j.submitted_wall;
        v_wait_s =
          Option.map (fun s -> s -. j.submitted_mono) j.started_mono;
        v_run_s =
          (match (j.started_mono, j.finished_mono) with
           | Some s, Some f -> Some (f -. s)
           | Some s, None -> Some (Clock.now () -. s)
           | _ -> None);
        v_failure = j.failure;
      })

let result t j = locked t (fun () -> j.result)
let events t j = locked t (fun () -> List.rev j.events)

(* The per-job merged trace: lifecycle spans synthesized from the job's
   timestamps on lane 0 ("lifecycle"), plus the engine's own events
   (attached by the server, already rebased/relocated) on lanes 1..n.
   Everything shares pid 1 and carries the job's trace_id in args, so
   one file tells the job's whole story: client submit, cache lookup,
   queue wait, dispatch, engine rounds/phases, delivery. *)
let trace_events t j =
  locked t (fun () ->
      let us x = 1e6 *. x in
      let args extra =
        ( "args",
          Json.Obj
            (("job", Json.String j.id)
            :: ("trace_id", Json.String j.trace_id)
            :: extra) )
      in
      let span ?(extra = []) name ts_s dur_s =
        Json.Obj
          [
            ("name", Json.String name);
            ("cat", Json.String "job");
            ("ph", Json.String "X");
            ("ts", Json.Float (us ts_s));
            ("dur", Json.Float (us (Float.max 0.0 dur_s)));
            ("pid", Json.Int 1);
            ("tid", Json.Int 0);
            args extra;
          ]
      in
      let instant ?(extra = []) name ts_s =
        Json.Obj
          [
            ("name", Json.String name);
            ("cat", Json.String "job");
            ("ph", Json.String "i");
            ("ts", Json.Float (us ts_s));
            ("s", Json.String "t");
            ("pid", Json.Int 1);
            ("tid", Json.Int 0);
            args extra;
          ]
      in
      let now = Clock.now () in
      (* The client's monotonic clock only shares an epoch with ours on
         the same machine; an implausible gap (remote client, clock
         mixup) drops the span rather than drawing a nonsense bar. *)
      let client_submit =
        match j.spec.Protocol.client_ts with
        | Some c when c <= j.submitted_mono && j.submitted_mono -. c < 300.0
          ->
          [ span "client.submit" c (j.submitted_mono -. c) ]
        | _ -> []
      in
      let cache_lookup =
        if j.lookup_s > 0.0 then
          [
            span "cache.lookup" j.submitted_mono j.lookup_s
              ~extra:[ ("hit", Json.Bool j.cached) ];
          ]
        else []
      in
      let queued_end = Option.value j.started_mono ~default:now in
      let queue_wait =
        [ span "queue.wait" j.submitted_mono (queued_end -. j.submitted_mono) ]
      in
      let dispatch =
        match j.started_mono with
        | None -> []
        | Some s ->
          let e = Option.value j.run_begin_mono ~default:s in
          [ span "dispatch" s (e -. s) ]
      in
      let run =
        match (j.cached, j.started_mono) with
        | true, _ | _, None -> []
        | false, Some s ->
          let b = Option.value j.run_begin_mono ~default:s in
          let e = Option.value j.finished_mono ~default:now in
          [ span "run" b (e -. b) ]
      in
      let terminal_mark =
        match j.finished_mono with
        | None -> []
        | Some f ->
          [
            instant (state_to_string j.state) f
              ~extra:
                (match j.failure with
                 | Some msg -> [ ("error", Json.String msg) ]
                 | None -> []);
          ]
      in
      let delivery =
        match (j.finished_mono, j.delivered_mono) with
        | Some f, Some d -> [ span "result.delivery" f (d -. f) ]
        | _ -> []
      in
      let meta =
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.String "lifecycle") ]);
          ]
      in
      (meta :: client_submit)
      @ cache_lookup @ queue_wait @ dispatch @ run @ terminal_mark @ delivery
      @ j.engine_trace)

let counts t =
  locked t (fun () ->
      List.map
        (fun s -> (s, List.length (List.filter (fun j -> j.state = s) t.jobs)))
        [ Queued; Running; Done; Failed; Cancelled ])

let queued_specs t =
  locked t (fun () ->
      List.rev t.jobs
      |> List.filter (fun j -> j.state = Queued || j.state = Running)
      |> List.map (fun j -> j.spec))
