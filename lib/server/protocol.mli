(** Wire protocol of the [accals serve] daemon.

    Newline-delimited JSON over a Unix-domain (or TCP) socket: each
    request is one JSON object on one line, each response is one JSON
    object on one line. The codec reuses the dependency-free
    {!Accals_telemetry.Json} tree; requests are parsed with the hardened
    limits ({!max_request_bytes}, nesting depth) because the daemon reads
    them from untrusted clients.

    Requests carry a ["req"] discriminator:
    - [submit]: a synthesis job — inline BLIF text (["circuit"]) or a
      registered benchmark name (["name"]), plus ["metric"], ["bound"]
      and optional ["budget"] (seconds), ["priority"] (higher runs
      first), ["tenant"] (fair-share identity), ["samples"], ["seed"].
    - [status] / [result] / [cancel] / [trace] / [events]: per-job, keyed
      by ["job"].
    - [list], [metrics], [ping], [shutdown]: server-wide.

    Responses always carry ["ok"] ([true]/[false]); failures add
    ["error"].

    {b Trust model.} The Unix-domain socket is the trusted control
    plane: whoever can open it (filesystem permissions on the socket
    path) can do everything.  TCP is for remote {e submission and
    observation} only — requests classified {!privileged} (result,
    cancel, trace, events, shutdown) are refused on TCP connections
    unless the daemon was started with a shared [--tcp-token] and the
    request carries a matching ["token"] field.  The token travels in
    clear text, so TCP mode is still only for trusted networks. *)

module Json := Accals_telemetry.Json
module Metric := Accals_metrics.Metric

type source =
  | Blif_text of string  (** inline BLIF document *)
  | Named of string  (** registered benchmark name *)

type job_spec = {
  source : source;
  metric : Metric.kind;
  bound : float;
  budget : float option;  (** per-job run-deadline, seconds *)
  deadline : float option;
      (** wall-clock deadline in seconds from submission; past it the
          job is failed as [deadline_exceeded] — in-queue (never
          started) or in-flight (slot reclaimed by the watchdog).
          Unlike [budget], which degrades gracefully to the best
          circuit found, a deadline is a hard fault. *)
  priority : int;  (** default 0; higher is scheduled first *)
  tenant : string;  (** fair-share identity; default ["default"] *)
  samples : int option;  (** [None]: the server default *)
  seed : int;  (** default 1 *)
  trace_id : string option;
      (** 16-hex trace-context id (see
          {!Accals_telemetry.Trace_context}). The client mints one per
          submission (or the user forces one with [--trace-id]); every
          span the daemon records for the job — queue-wait, dispatch,
          engine rounds, delivery — is tagged with it, so the [trace]
          request returns one merged Chrome trace for the whole job.
          Validated on parse: a malformed id rejects the submit. *)
  client_ts : float option;
      (** Client's monotonic clock (seconds) at submit. Comparable with
          the daemon's clock on the same machine (Unix socket), letting
          the merged trace include a client-submit span. *)
}

type request =
  | Submit of job_spec
  | Status of string
  | Result of string
  | Cancel of string
  | List
  | Metrics
  | Health
      (** load-balancer probe: queue depth, slots, cache size, shed /
          deadline / quarantine counters, open fds, uptime, build
          identity *)
  | Trace of string
  | Events of string
  | Slo
      (** per-tenant SLO accounting: latency percentiles by phase,
          failure breakdowns, rolling burn rate (server-wide, no job
          payloads — unprivileged like [metrics]) *)
  | Ping
  | Shutdown

val max_request_bytes : int
(** Upper bound on one request line (16 MiB — a large BLIF fits, a
    hostile stream does not). Servers close the connection when a line
    exceeds it. *)

val version : int
(** Major protocol version, stamped on every encoded request as ["v"].
    Servers refuse other versions with a structured
    [code = "unsupported_version"] error carrying their own version; a
    request without ["v"] is treated as version 1. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val parse_request : string -> (request, string) result
(** Parse one request line under the hardened limits. *)

val parse_request_full : string -> (request * string option, string) result
(** As {!parse_request}, also returning the optional ["token"] field —
    parsed from the same JSON tree, so a 16 MiB submit is decoded once. *)

type reject =
  | Malformed of string  (** bad JSON or a bad request shape *)
  | Unsupported_version of int  (** the client's ["v"] *)

val parse_request_v : string -> (request * string option, reject) result
(** As {!parse_request_full} with a typed rejection, so servers can
    answer an {!Unsupported_version} with the structured error instead
    of a generic parse failure. *)

val reject_message : reject -> string

val with_token : string option -> Json.t -> Json.t
(** Attach a ["token"] field to an encoded request (client side). *)

val privileged : request -> bool
(** Whether the request controls or reads other tenants' jobs and hence
    requires the shared token over TCP (see the trust model above). *)

val error_response : string -> Json.t
(** [{"ok": false, "error": msg}]. *)

val error_response_code :
  code:string -> ?extra:(string * Json.t) list -> string -> Json.t
(** [{"ok": false, "error": msg, "code": code, ...extra}] — a
    structured failure clients can react to without parsing the
    message. Codes in use: ["overloaded"] (with ["retry_after_ms"]),
    ["quarantined"] (with ["retry_after_ms"]),
    ["unsupported_version"] (with ["v"], the server's version). *)

val ok_response : (string * Json.t) list -> Json.t
(** [{"ok": true, ...fields}]. *)
