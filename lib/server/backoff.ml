type t = {
  base : float;
  factor : float;
  max_delay : float;
  max_total : float;
  jitter : float;
}

let default =
  { base = 0.05; factor = 2.0; max_delay = 2.0; max_total = 30.0; jitter = 0.25 }

(* SplitMix64 finalizer over the attempt counter: a cheap, stateless way
   to get a well-distributed jitter factor that is a pure function of the
   attempt number — reproducible schedules, no shared RNG state. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 33) in
  let x = mul x 0xff51afd7ed558ccdL in
  let x = logxor x (shift_right_logical x 33) in
  let x = mul x 0xc4ceb9fe1a85ec53L in
  logxor x (shift_right_logical x 33)

let unit_float attempt =
  (* 53 uniform bits -> [0, 1). *)
  let bits =
    Int64.shift_right_logical (mix64 (Int64.of_int (attempt + 0x9e37)) ) 11
  in
  Int64.to_float bits /. 9007199254740992.0

let delay t ~attempt =
  let attempt = max 1 attempt in
  let raw = t.base *. (t.factor ** float_of_int (attempt - 1)) in
  let capped = Float.min raw t.max_delay in
  let j = Float.max 0.0 (Float.min 1.0 t.jitter) in
  (* scale in [1 - j, 1 + j], deterministic in the attempt number *)
  let scale = 1.0 -. j +. (2.0 *. j *. unit_float attempt) in
  Float.max 0.0 (capped *. scale)

type schedule = {
  policy : t;
  mutable attempt : int;
  mutable slept : float;
}

let start policy = { policy; attempt = 0; slept = 0.0 }

let next_with_floor s ~floor =
  let remaining = s.policy.max_total -. s.slept in
  if remaining <= 0.0 then None
  else begin
    s.attempt <- s.attempt + 1;
    let d = Float.max (delay s.policy ~attempt:s.attempt) floor in
    (* Never grant more than the remaining budget: the schedule's total
       sleep is hard-bounded by [max_total]. *)
    let d = Float.min d remaining in
    s.slept <- s.slept +. d;
    Some d
  end

let next s = next_with_floor s ~floor:0.0
let total_slept s = s.slept
let attempts s = s.attempt
