(** Per-tenant SLO accounting for the daemon.

    The server reports every finished job here with its phase latencies
    (queue-wait, run, end-to-end) and outcome; admission-control rejects
    are reported as sheds. The module keeps, per tenant:

    - fixed-bucket latency histograms per phase (seconds), from which
      the [slo] protocol request serves interpolated p50/p90/p99;
    - an outcome breakdown — [good] (succeeded within the target),
      [violated] (succeeded but slow), and a count per failure kind
      ([deadline_exceeded], [resource_exhausted], [shed], ...);
    - a rolling one-hour ring of one-minute good/bad counts, from which
      the error-budget {e burn rate} is derived: the observed bad
      fraction divided by the allowed bad fraction [1 - objective].
      1.0 means the tenant is burning exactly its error budget; 0 is
      clean; anything well above 1 is an incident.

    A job is {e good} iff it succeeded and its end-to-end latency is at
    most [target_ms]. Everything else — slow successes, failures,
    sheds — is {e bad} and burns budget.

    Thread-safety: one internal mutex; observation entry points are
    called from worker domains and the accept loop concurrently.

    Export: {!to_json} serves the [slo] protocol request (and [accals
    top]); {!registry_snapshot} mirrors the accounting into Prometheus
    instruments ([accals_slo_latency_seconds],
    [accals_slo_jobs_total], [accals_slo_burn_rate]) that the server
    merges into its [metrics] exposition. *)

module Json := Accals_telemetry.Json
module Metrics := Accals_telemetry.Metrics

type spec = {
  target_ms : float;  (** good jobs finish end-to-end within this *)
  objective : float;  (** target good fraction, in (0, 1), e.g. 0.99 *)
}

val default_spec : spec
(** 30 s at 99%. *)

val window_minutes : int
(** Size of the rolling burn-rate window (60). *)

type t

val create : ?spec:spec -> unit -> t
(** Raises [Invalid_argument] on a non-positive [target_ms] or an
    [objective] outside (0, 1). *)

val spec : t -> spec

val observe_job :
  t ->
  tenant:string ->
  ?failure:string ->
  wait_s:float ->
  run_s:float ->
  total_s:float ->
  unit ->
  unit
(** Account one finished job. Without [failure] the job succeeded and
    is [good] or [violated] depending on [total_s] vs the target; with
    [failure] (a kind such as [Scheduler.deadline_failure]) it burns
    budget under that kind. Latencies are observed either way — a
    deadline-exceeded job's queue-wait is exactly the signal the
    histogram is for. *)

val observe_shed :
  t -> tenant:string -> kind:string -> unit
(** Account an admission-control reject (no latency to observe; burns
    budget under [kind], e.g. ["shed"] or ["quota"]). *)

val burn_rate : t -> tenant:string -> float
(** Current burn rate over the rolling window; 0 for an unknown tenant
    or one with no traffic in the window. *)

val to_json : t -> Json.t
(** The [slo] response body: spec, then per tenant (sorted by name) the
    outcome breakdown, burn rate, window counts and per-phase latency
    percentiles in milliseconds. *)

val registry_snapshot : t -> Metrics.snapshot
(** Refresh the burn-rate gauges and snapshot the Prometheus mirror,
    for merging into the server's metrics exposition. *)
