(** Shared jittered-exponential-backoff retry policy.

    One policy value describes a whole retry schedule: a base delay that
    doubles (by [factor]) per attempt, capped at [max_delay], with a
    deterministic jitter derived from the attempt counter — the same
    policy always produces the same schedule, so tests and the bench
    overload experiment are reproducible, while distinct attempt numbers
    still de-synchronize a thundering herd. [max_total] bounds the sum of
    all delays the policy will ever grant, so a client can never wait
    unboundedly on a dead or permanently overloaded daemon.

    Used by {!Client.connect_unix_retry} (racing a booting daemon) and
    {!Client.submit_retry} (honoring the daemon's [retry_after_ms]
    overload hint). *)

type t = {
  base : float;  (** first delay, seconds *)
  factor : float;  (** per-attempt multiplier (>= 1) *)
  max_delay : float;  (** cap on a single delay, seconds *)
  max_total : float;  (** cap on the sum of all delays, seconds *)
  jitter : float;  (** fraction of the delay randomized, in [0, 1] *)
}

val default : t
(** [base = 0.05], [factor = 2.0], [max_delay = 2.0], [max_total = 30.0],
    [jitter = 0.25]. *)

val delay : t -> attempt:int -> float
(** The delay before retry number [attempt] (1-based), jittered
    deterministically from [attempt]: the unjittered exponential delay
    scaled by a factor in [1 - jitter, 1 + jitter]. Always
    non-negative; always [<= max_delay * (1 + jitter)]. *)

type schedule
(** Mutable cursor over a policy: tracks the attempt counter and the
    total slept so far, enforcing [max_total]. *)

val start : t -> schedule

val next : schedule -> float option
(** The next delay to sleep, or [None] when the schedule's [max_total]
    budget is exhausted. [~floor] lets the caller raise a single step to
    at least a server-provided hint (e.g. [retry_after_ms]); the floored
    amount still counts against [max_total]. *)

val next_with_floor : schedule -> floor:float -> float option

val total_slept : schedule -> float
val attempts : schedule -> int
