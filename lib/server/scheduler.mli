(** Multi-tenant job table and scheduling policy for the daemon.

    The scheduler owns every job the daemon has admitted: a mutex-guarded
    table mapping job ids to their spec, lifecycle state, timestamps,
    event log and (once finished) result. The daemon's main loop asks
    {!pick} for the next job to run; worker domains report back through
    {!finish} / {!fail} / {!finished_cancelled}. All mutation goes
    through this module's functions, so workers and the accept loop never
    race on a job record.

    Scheduling policy (deterministic given the table state):
    {ol
    {- strict priority — a higher [priority] job always runs first;}
    {- fair share within a priority — among equal-priority queued jobs,
       the tenant with the fewest currently running jobs wins, so one
       tenant flooding the queue cannot starve the others;}
    {- FIFO within a tenant — ties break on submission order.}}

    Lifecycle: [Queued -> Running -> Done | Failed | Cancelled], plus
    [Queued -> Cancelled] directly and [Queued/Done] at admission for
    cache hits. Cancellation of a running job is cooperative: {!cancel}
    sets a flag the worker polls at every round boundary (the engine's
    checkpoint hook), and the worker then reports
    {!finished_cancelled}. *)

module Json := Accals_telemetry.Json
module Protocol := Protocol

type state = Queued | Running | Done | Failed | Cancelled

val state_to_string : state -> string

type job
(** Opaque; read through {!view} / {!result} / {!events}. *)

type t

val create : unit -> t

val submit :
  t ->
  spec:Protocol.job_spec ->
  circuit:string ->
  digest:string ->
  key:string ->
  ?cached:Cache.entry ->
  ?lookup_s:float ->
  unit ->
  job
(** Admit a job. With [cached] it is born [Done] with that result and
    marked as a cache hit. [circuit] is the display name. [lookup_s] is
    the cache-lookup cost the daemon paid at admission, drawn as the
    "cache.lookup" span in the merged trace. A job without a
    [spec.trace_id] gets one minted here, so every job is traceable. *)

val find : t -> string -> job option
val all : t -> job list
(** Submission order. *)

val id : job -> string
(** ["j-<seq>-<64 random bits in hex>"]: the readable sequence number
    plus an unguessable nonce, because [result]/[cancel] are keyed by
    nothing but the id. *)

val spec : job -> Protocol.job_spec
val key : job -> string
val digest : job -> string

val trace_id : job -> string
(** The job's trace-context id: the client's, or minted at admission.
    Always a valid {!Accals_telemetry.Trace_context} id. *)

val state : t -> job -> state

val active_by_key : t -> string -> budget:float option -> job option
(** The coalescing/in-memory-cache lookup: a [Queued]/[Running] job with
    this cache key and the same [budget], or a successfully (converged,
    non-degraded) [Done] one regardless of budget. *)

val pick : ?tenant_max_running:int -> t -> job option
(** Select the next queued job under the scheduling policy, mark it
    [Running], stamp [started_at], and return it. [None] when nothing is
    queued. With [tenant_max_running > 0], queued jobs of a tenant that
    already has that many jobs running are passed over (they wait, they
    are not shed) and the next tenant in policy order runs instead. *)

val cancel_requested : job -> bool
(** Polled by workers (atomic flag; no lock needed on the hot path). *)

val cancel :
  t -> job -> [ `Cancelled_queued | `Cancel_requested | `Already_finished ]
(** Cancel a queued job immediately, or request cooperative cancellation
    of a running one. *)

val note_run_begin : t -> job -> unit
(** The worker domain is about to enter the engine: closes the
    "dispatch" span (pick -> run) in the merged trace and logs a
    [run_begin] event. Idempotent; no-op once terminal. *)

val note_delivered : t -> job -> unit
(** A client fetched the job's result for the first time: closes the
    "result.delivery" span. Idempotent; no-op until terminal. *)

val attach_trace : t -> job -> Json.t list -> unit
(** Attach the job's engine-side Chrome-trace events, already rebased
    to absolute monotonic microseconds and relocated off lane 0 (the
    server uses {!Accals_telemetry.Tracer.events_json} with the
    tracer's epoch and a tid offset). They are appended verbatim to
    {!trace_events}. *)

val finish : t -> job -> Cache.entry -> degraded:bool -> unit
val fail : t -> job -> string -> unit
val finished_cancelled : t -> job -> unit
(** A worker observed the cancel flag and unwound.

    All three terminal transitions are idempotent no-ops on a job that
    is already terminal: the deadline watchdog may {!expire} an
    abandoned job while its worker domain is still unwinding, and the
    worker's late report must not overwrite the verdict. *)

val deadline_failure : string
(** The failure string ({!view}'s [v_failure]) of a deadline-expired
    job: ["deadline_exceeded"]. *)

val resource_failure : string
(** The failure string of a job the engine checkpointed and shed under a
    resource budget: ["resource_exhausted"]. Like {!deadline_failure}, it
    is the environment's verdict, not the job's fault — it never counts
    toward quarantine. *)

val expire : t -> job -> string option
(** Fail a queued or running job as {!deadline_failure}, setting its
    cooperative cancel flag so an abandoned worker unwinds at the next
    round boundary. Returns the phase it was in (["queued"] /
    ["running"]), or [None] if the job was already terminal. *)

val deadline_mono : job -> float option
(** The absolute monotonic deadline ([Clock.now]-based), if any. *)

val expired : t -> now:float -> job list
(** Queued or running jobs whose deadline is at or past [now], in
    submission order — the watchdog sweep's work list. *)

val totals : t -> int * int
(** [(queued, running)] across all tenants. *)

val tenant_load : t -> string -> int * int
(** [(queued, running)] for one tenant — the admission-control input
    for per-tenant quotas. *)

val record_event : t -> job -> string -> (string * Json.t) list -> unit
(** Append a timestamped event to the job's JSONL event log. *)

type view = {
  v_id : string;
  v_state : state;
  v_circuit : string;
  v_metric : string;
  v_bound : float;
  v_tenant : string;
  v_priority : int;
  v_cached : bool;
  v_degraded : bool;
  v_queue_position : int option;  (** 0-based among queued jobs, policy order *)
  v_submitted_at : float;  (** wall clock, Unix epoch seconds *)
  v_wait_s : float option;  (** submit -> start *)
  v_run_s : float option;  (** start -> finish *)
  v_failure : string option;
}

val view : t -> job -> view
val result : t -> job -> Cache.entry option
val events : t -> job -> Json.t list
(** Chronological. *)

val trace_events : t -> job -> Json.t list
(** The job's merged Chrome trace: lifecycle spans synthesized from its
    timestamps on lane 0 — [client.submit] (when the client sent a
    plausible same-machine [client_ts]), [cache.lookup], [queue.wait],
    [dispatch], [run], a terminal-state instant and [result.delivery] —
    followed by the engine events attached via {!attach_trace} on lanes
    1..n. One pid, every event tagged with the job's [trace_id];
    loadable in Perfetto as a single coherent timeline. *)

val counts : t -> (state * int) list
(** Jobs per state, for gauges. *)

val queued_specs : t -> Protocol.job_spec list
(** Specs of jobs that have not finished (queued or still running), in
    submission order — what a shutting-down daemon checkpoints so a
    restart can re-admit them. *)
