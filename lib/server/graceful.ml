exception Interrupted of int

let () =
  Printexc.register_printer (function
    | Interrupted s -> Some (Printf.sprintf "Graceful.Interrupted (signal %d)" s)
    | _ -> None)

(* The recorded signal: 0 = none.  OCaml signal numbers are negative, so
   the sentinel cannot collide. *)
let requested = Atomic.make 0

let request_stop signal = ignore (Atomic.compare_and_set requested 0 signal)

let stop_requested () =
  match Atomic.get requested with 0 -> None | s -> Some s

let check () =
  match Atomic.get requested with 0 -> () | s -> raise (Interrupted s)

let clear () = Atomic.set requested 0

(* SIGPIPE's default action kills the process, so a client that
   disconnects mid-response would take the whole multi-tenant daemon
   down with it.  Ignoring the signal turns the failed write into an
   EPIPE [Unix.Unix_error] that the writer handles by dropping the one
   connection.  Deliberately NOT part of [install]: the one-shot CLI
   keeps the conventional die-on-closed-stdout-pipe behaviour. *)
let sigpipe_ignored = Atomic.make false

let ignore_sigpipe () =
  if not (Atomic.exchange sigpipe_ignored true) then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ | Sys_error _ -> ()

let installed = Atomic.make false

let install ?(signals = [ Sys.sigint; Sys.sigterm ]) ?on_signal () =
  if not (Atomic.exchange installed true) then
    List.iter
      (fun s ->
        Sys.set_signal s
          (Sys.Signal_handle
             (fun s ->
               request_stop s;
               match on_signal with None -> () | Some f -> f s)))
      signals

(* ------------------------------------------------------------------ *)
(* Flush hooks *)

let hooks : (string * (unit -> unit)) list ref = ref []
let hooks_mutex = Mutex.create ()

let on_shutdown name f =
  Mutex.protect hooks_mutex (fun () ->
      hooks := (name, f) :: List.remove_assoc name !hooks)

let remove_hook name =
  Mutex.protect hooks_mutex (fun () -> hooks := List.remove_assoc name !hooks)

let run_hooks () =
  let to_run =
    Mutex.protect hooks_mutex (fun () ->
        let h = !hooks in
        hooks := [];
        h)
  in
  List.iter (fun (_, f) -> try f () with _ -> ()) to_run

let exit_code signal =
  if signal = Sys.sigint then 130
  else if signal = Sys.sigterm then 143
  else 128
