module Json = Accals_telemetry.Json
module Trace_context = Accals_telemetry.Trace_context
module Metric = Accals_metrics.Metric

type source = Blif_text of string | Named of string

type job_spec = {
  source : source;
  metric : Metric.kind;
  bound : float;
  budget : float option;
  deadline : float option;
  priority : int;
  tenant : string;
  samples : int option;
  seed : int;
  trace_id : string option;
      (* 16-hex trace-context id minted by the client (or forced with
         --trace-id); every span the daemon records for this job is
         tagged with it. *)
  client_ts : float option;
      (* The client's monotonic clock (seconds) at submit time. On the
         same machine (Unix socket) this shares an epoch with the
         daemon's clock, so the merged trace can show a client-submit
         span covering the socket + queue admission latency. *)
}

type request =
  | Submit of job_spec
  | Status of string
  | Result of string
  | Cancel of string
  | List
  | Metrics
  | Health
  | Trace of string
  | Events of string
  | Slo
  | Ping
  | Shutdown

let max_request_bytes = 16 * 1024 * 1024

(* Major protocol version. Clients stamp every request with ["v"];
   servers refuse versions they do not speak with a structured error
   carrying their own version, so an incompatible client fails loud at
   the first request instead of tripping over a missing field later.
   A request without ["v"] is treated as version 1 (the field was
   introduced in version 1, so absence can only mean a v1 writer). *)
let version = 1

let request_to_json req =
  let obj fields = Json.Obj (("v", Json.Int version) :: fields) in
  match req with
  | Submit spec ->
    let source_field =
      match spec.source with
      | Blif_text s -> ("circuit", Json.String s)
      | Named n -> ("name", Json.String n)
    in
    obj
      ([
         ("req", Json.String "submit");
         source_field;
         ("metric", Json.String (Metric.kind_to_string spec.metric));
         ("bound", Json.Float spec.bound);
       ]
      @ (match spec.budget with
         | Some b -> [ ("budget", Json.Float b) ]
         | None -> [])
      @ (match spec.deadline with
         | Some d -> [ ("deadline", Json.Float d) ]
         | None -> [])
      @ (if spec.priority <> 0 then [ ("priority", Json.Int spec.priority) ]
         else [])
      @ (if spec.tenant <> "default" then
           [ ("tenant", Json.String spec.tenant) ]
         else [])
      @ (match spec.samples with
         | Some s -> [ ("samples", Json.Int s) ]
         | None -> [])
      @ (if spec.seed <> 1 then [ ("seed", Json.Int spec.seed) ] else [])
      @ (match spec.trace_id with
         | Some id -> [ ("trace_id", Json.String id) ]
         | None -> [])
      @
      match spec.client_ts with
      | Some ts -> [ ("client_ts", Json.Float ts) ]
      | None -> [])
  | Status job -> obj [ ("req", Json.String "status"); ("job", Json.String job) ]
  | Result job -> obj [ ("req", Json.String "result"); ("job", Json.String job) ]
  | Cancel job -> obj [ ("req", Json.String "cancel"); ("job", Json.String job) ]
  | List -> obj [ ("req", Json.String "list") ]
  | Metrics -> obj [ ("req", Json.String "metrics") ]
  | Health -> obj [ ("req", Json.String "health") ]
  | Trace job -> obj [ ("req", Json.String "trace"); ("job", Json.String job) ]
  | Events job -> obj [ ("req", Json.String "events"); ("job", Json.String job) ]
  | Slo -> obj [ ("req", Json.String "slo") ]
  | Ping -> obj [ ("req", Json.String "ping") ]
  | Shutdown -> obj [ ("req", Json.String "shutdown") ]

let spec_of_json v =
  let str key = Option.bind (Json.member key v) Json.string_opt in
  let num key = Option.bind (Json.member key v) Json.number_opt in
  let int_field key = Option.bind (Json.member key v) Json.int_opt in
  let source =
    match (str "circuit", str "name") with
    | Some blif, None -> Ok (Blif_text blif)
    | None, Some name -> Ok (Named name)
    | Some _, Some _ -> Error "submit: give either \"circuit\" or \"name\", not both"
    | None, None -> Error "submit: missing \"circuit\" (BLIF text) or \"name\""
  in
  match source with
  | Error _ as e -> e
  | Ok source -> (
    match str "metric" with
    | None -> Error "submit: missing \"metric\""
    | Some m -> (
      match Metric.kind_of_string m with
      | None -> Error (Printf.sprintf "submit: unknown metric %S" m)
      | Some metric -> (
        match num "bound" with
        | None -> Error "submit: missing numeric \"bound\""
        | Some bound when bound <= 0.0 -> Error "submit: bound must be positive"
        | Some bound -> (
          let budget = num "budget" in
          match budget with
          | Some b when b <= 0.0 -> Error "submit: budget must be positive"
          | _ -> (
            let deadline = num "deadline" in
            match deadline with
            | Some d when d <= 0.0 -> Error "submit: deadline must be positive"
            | _ -> (
              match int_field "samples" with
              | Some s when s < 1 -> Error "submit: samples must be >= 1"
              | samples -> (
                match str "trace_id" with
                | Some raw when Trace_context.normalize raw = None ->
                  Error
                    (Printf.sprintf
                       "submit: trace_id must be %d hex digits, got %S"
                       Trace_context.length raw)
                | trace_raw ->
                  Ok
                    {
                      source;
                      metric;
                      bound;
                      budget;
                      deadline;
                      priority = Option.value (int_field "priority") ~default:0;
                      tenant = Option.value (str "tenant") ~default:"default";
                      samples;
                      seed = Option.value (int_field "seed") ~default:1;
                      trace_id =
                        Option.bind trace_raw Trace_context.normalize;
                      client_ts = num "client_ts";
                    })))))))

let request_of_json v =
  match Option.bind (Json.member "req" v) Json.string_opt with
  | None -> Error "missing \"req\" field"
  | Some req -> (
    let with_job k =
      match Option.bind (Json.member "job" v) Json.string_opt with
      | Some job -> Ok (k job)
      | None -> Error (Printf.sprintf "%s: missing \"job\" field" req)
    in
    match req with
    | "submit" -> Result.map (fun spec -> Submit spec) (spec_of_json v)
    | "status" -> with_job (fun j -> Status j)
    | "result" -> with_job (fun j -> Result j)
    | "cancel" -> with_job (fun j -> Cancel j)
    | "list" -> Ok List
    | "metrics" -> Ok Metrics
    | "health" -> Ok Health
    | "trace" -> with_job (fun j -> Trace j)
    | "events" -> with_job (fun j -> Events j)
    | "slo" -> Ok Slo
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown request %S" other))

let token_of_json v = Option.bind (Json.member "token" v) Json.string_opt

let with_token token json =
  match (token, json) with
  | Some tk, Json.Obj fields -> Json.Obj (fields @ [ ("token", Json.String tk) ])
  | _ -> json

type reject = Malformed of string | Unsupported_version of int

let parse_request_v line =
  match Json.parse ~max_bytes:max_request_bytes line with
  | Error msg -> Error (Malformed msg)
  | Ok v -> (
    (* Version gate first: an incompatible client gets the structured
       version error even when the rest of its request would not parse. *)
    match Json.member "v" v with
    | Some (Json.Int w) when w <> version -> Error (Unsupported_version w)
    | Some (Json.Int _) | None -> (
      match request_of_json v with
      | Error msg -> Error (Malformed msg)
      | Ok req -> Ok (req, token_of_json v))
    | Some _ -> Error (Malformed "\"v\" must be an integer"))

let reject_message = function
  | Malformed msg -> msg
  | Unsupported_version w ->
    Printf.sprintf "unsupported protocol version %d (server speaks %d)" w
      version

let parse_request_full line =
  Result.map_error reject_message (parse_request_v line)

let parse_request line = Result.map fst (parse_request_full line)

(* Requests that control or read other tenants' jobs.  Over TCP these
   require the daemon's shared token; the Unix socket is trusted (access
   to it is filesystem permissions).  Submit/status/list/metrics/ping/
   health stay open — they create or observe, they cannot steal or
   destroy. *)
let privileged = function
  | Result _ | Cancel _ | Trace _ | Events _ | Shutdown -> true
  | Submit _ | Status _ | List | Metrics | Health | Slo | Ping -> false

let error_response msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

(* Structured failure: machine-readable ["code"] plus code-specific
   fields (e.g. ["retry_after_ms"] on "overloaded"), so clients can
   react without parsing the human-readable message. *)
let error_response_code ~code ?(extra = []) msg =
  Json.Obj
    (("ok", Json.Bool false)
    :: ("error", Json.String msg)
    :: ("code", Json.String code)
    :: extra)

let ok_response fields = Json.Obj (("ok", Json.Bool true) :: fields)
