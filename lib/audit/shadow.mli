(** Shadow audits: re-derive a round's signatures from scratch and compare
    them against what the incremental engine believes.

    The audit is the rebuild path run once, out-of-band: a fresh liveness
    walk, a fresh topological order, a fresh bit-parallel simulation of the
    working circuit, and a fresh error measurement against the golden
    outputs. {!compare} then checks the incremental signature store (when
    one is in use) node-by-node and the recorded running error against the
    re-derived values. The result is either [Clean] or a [Divergence]
    carrying the diverging node ids and a CRC-32 fingerprint pair —
    everything an incident record needs. *)

open Accals_network

type divergence = {
  backend : string;  (** ["incremental"] or ["rebuild"] *)
  nodes : int list;  (** diverging node ids, ascending, at most 8 reported *)
  fp_reference : string;  (** fingerprint of the re-derived signatures *)
  fp_observed : string;  (** fingerprint of the audited store; ["-"] if none *)
  recorded_error : float;
  reference_error : float;
}

type verdict = Clean | Divergence of divergence

val fingerprint :
  live:bool array -> sigs:Accals_bitvec.Bitvec.t array -> int -> string
(** CRC-32 over (id, signature words) of every live node below the given
    bound, as eight hex digits. Equal signature sets give equal
    fingerprints. *)

val compare :
  net:Network.t ->
  patterns:Sim.patterns ->
  golden:Accals_bitvec.Bitvec.t array ->
  metric:Accals_metrics.Metric.kind ->
  recorded_error:float ->
  observed:(bool array * Accals_bitvec.Bitvec.t array) option ->
  verdict
(** [observed] is the incremental store's (live set, signatures) view, or
    [None] on the rebuild backend — in which case only the recorded error
    is cross-checked against the re-derivation. *)

(** {1 Self-test hook}

    Arming a round number makes the engine deliberately corrupt one stored
    signature immediately before that round's audit. The environment
    variable [ACCALS_AUDIT_SELFTEST=N] arms it at program start; a
    malformed value exits with code 2. *)

val arm_selftest : round:int -> unit
val disarm_selftest : unit -> unit
val selftest_round : unit -> int option
