type level = Incremental | Rebuild | Single_lac

(* New constructors go at the END: the reason is marshaled inside engine
   snapshots and appending keeps existing tags decodable. *)
type reason =
  | Audit_divergence
  | Watchdog_run
  | Watchdog_round
  | Certification_rollback
  | Manual
  | Resource_pressure

type event = { round : int; level : level; reason : reason; transient : bool }

type t = {
  initial : level;
  mutable level : level;
  mutable events : event list; (* newest first *)
}

let create ~initial = { initial; level = initial; events = [] }
let copy t = { initial = t.initial; level = t.level; events = t.events }
let initial t = t.initial
let level t = t.level
let events t = List.rev t.events

let rank = function Incremental -> 2 | Rebuild -> 1 | Single_lac -> 0

let level_to_string = function
  | Incremental -> "incremental"
  | Rebuild -> "rebuild"
  | Single_lac -> "single-lac"

let reason_to_string = function
  | Audit_divergence -> "audit_divergence"
  | Watchdog_run -> "watchdog_run"
  | Watchdog_round -> "watchdog_round"
  | Certification_rollback -> "certification_rollback"
  | Manual -> "manual"
  | Resource_pressure -> "resource_pressure"

let descend t ~round ~level:target ~reason =
  if rank target < rank t.level then begin
    t.level <- target;
    t.events <- { round; level = target; reason; transient = false } :: t.events
  end

let note t ~round ~reason =
  (* Transient events (round watchdog demotions, run-deadline stops) are
     recorded once per reason — they describe a mode, not each occurrence,
     and keep the checkpointed event list bounded. *)
  if List.exists (fun e -> e.transient && e.reason = reason) t.events then
    false
  else begin
    t.events <- { round; level = t.level; reason; transient = true } :: t.events;
    true
  end

let summary t =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (level_to_string t.initial);
  List.iter
    (fun e ->
      if e.transient then
        Buffer.add_string buf
          (Printf.sprintf " [%s@%d]" (reason_to_string e.reason) e.round)
      else
        Buffer.add_string buf
          (Printf.sprintf " -> %s@%d (%s)" (level_to_string e.level) e.round
             (reason_to_string e.reason)))
    (events t);
  Buffer.contents buf
