type kind =
  | Audit_divergence of {
      backend : string;
      nodes : int list;
      fp_reference : string;
      fp_observed : string;
      recorded_error : float;
      reference_error : float;
    }
  | Checkpoint_corrupt of { path : string; detail : string }
  | Certification_violation of { measured : float; bound : float; step : int }
  | Watchdog_expired of { scope : string }
  | Deadline_exceeded of { job : string; phase : string; deadline_s : float }
  | Job_quarantined of { fingerprint : string; failures : int; cooldown_s : float }
  | Resource_exhausted of { resource : string; limit : float; observed : float }

type t = { round : int; kind : kind }

let make ~round kind = { round; kind }

let kind_name t =
  match t.kind with
  | Audit_divergence _ -> "audit_divergence"
  | Checkpoint_corrupt _ -> "checkpoint_corrupt"
  | Certification_violation _ -> "certification_violation"
  | Watchdog_expired _ -> "watchdog_expired"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Job_quarantined _ -> "job_quarantined"
  | Resource_exhausted _ -> "resource_exhausted"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"round\": %d, \"kind\": \"%s\"" t.round (kind_name t));
  (match t.kind with
   | Audit_divergence d ->
     Buffer.add_string buf
       (Printf.sprintf ", \"backend\": \"%s\", \"nodes\": [%s]"
          (escape d.backend)
          (String.concat ", " (List.map string_of_int d.nodes)));
     Buffer.add_string buf
       (Printf.sprintf
          ", \"fp_reference\": \"%s\", \"fp_observed\": \"%s\", \
           \"recorded_error\": %.9g, \"reference_error\": %.9g"
          (escape d.fp_reference) (escape d.fp_observed) d.recorded_error
          d.reference_error)
   | Checkpoint_corrupt c ->
     Buffer.add_string buf
       (Printf.sprintf ", \"path\": \"%s\", \"detail\": \"%s\""
          (escape c.path) (escape c.detail))
   | Certification_violation v ->
     Buffer.add_string buf
       (Printf.sprintf ", \"measured\": %.9g, \"bound\": %.9g, \"step\": %d"
          v.measured v.bound v.step)
   | Watchdog_expired w ->
     Buffer.add_string buf
       (Printf.sprintf ", \"scope\": \"%s\"" (escape w.scope))
   | Deadline_exceeded d ->
     Buffer.add_string buf
       (Printf.sprintf
          ", \"job\": \"%s\", \"phase\": \"%s\", \"deadline_s\": %.9g"
          (escape d.job) (escape d.phase) d.deadline_s)
   | Job_quarantined q ->
     Buffer.add_string buf
       (Printf.sprintf
          ", \"fingerprint\": \"%s\", \"failures\": %d, \"cooldown_s\": %.9g"
          (escape q.fingerprint) q.failures q.cooldown_s)
   | Resource_exhausted r ->
     Buffer.add_string buf
       (Printf.sprintf
          ", \"resource\": \"%s\", \"limit\": %.9g, \"observed\": %.9g"
          (escape r.resource) r.limit r.observed));
  Buffer.add_char buf '}';
  Buffer.contents buf

let append_jsonl ~path incidents =
  if incidents <> [] then begin
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
    (* Governed write: the incident log shares --state-dir with checkpoints
       and the cache, so chaos runs must be able to starve it too. *)
    List.iter
      (fun t ->
        Accals_resilience.Fault_io.output_string oc (to_json t);
        output_char oc '\n')
      incidents;
    flush oc
  end
