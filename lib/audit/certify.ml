module Metric = Accals_metrics.Metric
module Evaluate = Accals_esterr.Evaluate
module Exhaustive = Accals_analysis.Exhaustive
open Accals_network

type method_ = Exhaustive of int | Sampled of int

type outcome = {
  measured : float;
  method_ : method_;
  bound : float;
  certified : bool;
  rollback_steps : int;
}

let method_to_string = function
  | Exhaustive n -> Printf.sprintf "exhaustive:%d" n
  | Sampled n -> Printf.sprintf "sampled:%d" n

(* A fixed odd offset keeps the certification stream disjoint from every
   PRNG stream the synthesis loop draws (patterns use [seed], the engine
   uses [seed + 77]) while staying a pure function of the run seed. *)
let independent_seed seed = (seed * 2654435761) lxor 0x5DEECE66D

let measure ~golden ~approx ~metric ~seed ~samples ~exhaustive_limit =
  let n_inputs = Array.length (Network.inputs golden) in
  if n_inputs <= exhaustive_limit && n_inputs <= Exhaustive.max_inputs then begin
    let report = Exhaustive.compare_networks ~golden ~approx in
    (Exhaustive.value report metric, Exhaustive report.Exhaustive.vectors)
  end
  else begin
    let patterns =
      Sim.random ~seed:(independent_seed seed) ~count:samples n_inputs
    in
    let golden_out = Evaluate.output_signatures golden patterns in
    let approx_out = Evaluate.output_signatures approx patterns in
    (Metric.measure metric ~golden:golden_out ~approx:approx_out, Sampled samples)
  end

let certify_with_rollback ~measure ~bound ~candidates ~on_violation =
  if candidates = [] then invalid_arg "Certify.certify_with_rollback";
  let rec attempt step = function
    | [] -> assert false
    | produce :: rest ->
      let circuit, sampled_error = produce () in
      let measured, method_ = measure circuit in
      if measured <= bound then
        ( { measured; method_; bound; certified = true; rollback_steps = step },
          circuit,
          sampled_error )
      else begin
        on_violation ~step ~measured;
        match rest with
        | [] ->
          (* Every candidate failed, including the caller's fallback: be
             honest and emit the last one uncertified. *)
          ( {
              measured;
              method_;
              bound;
              certified = false;
              rollback_steps = step;
            },
            circuit,
            sampled_error )
        | _ -> attempt (step + 1) rest
      end
  in
  attempt 0 candidates
