(** The degradation ladder: an explicit, reported state machine over the
    engine's evaluation modes.

    The engine starts at {!Incremental} (or {!Rebuild} under
    [--no-incremental]) and only ever moves {e down} the ladder:
    [Incremental -> Rebuild -> Single_lac]. Each permanent descent carries
    a {!reason} and the round it happened in; transient events (a round
    watchdog demoting one round to single-LAC, a run deadline stopping the
    run) are recorded once per reason without changing the level. The whole
    ladder is part of the engine snapshot, so a resumed run reports the
    same history as an uninterrupted one. *)

type level = Incremental | Rebuild | Single_lac

type reason =
  | Audit_divergence  (** a shadow audit caught the fast path diverging *)
  | Watchdog_run  (** [--run-deadline] expired; run stopped degraded *)
  | Watchdog_round  (** [--round-deadline] demoted a round to single-LAC *)
  | Certification_rollback
      (** independent measurement rejected a result circuit *)
  | Manual  (** operator choice, e.g. [--no-incremental] *)
  | Resource_pressure
      (** the [--max-memory-mb] governor demanded a cheaper backend or a
          checkpoint-and-shed stop *)

type event = { round : int; level : level; reason : reason; transient : bool }

type t

val create : initial:level -> t
val copy : t -> t
(** Snapshot-friendly deep copy (the event list is immutable and shared). *)

val initial : t -> level
(** The level the run started at (survives checkpointing). *)

val level : t -> level
val events : t -> event list
(** Chronological. *)

val descend : t -> round:int -> level:level -> reason:reason -> unit
(** Move permanently down to [level]. No-op unless [level] is strictly
    below the current one — the ladder never climbs back up. *)

val note : t -> round:int -> reason:reason -> bool
(** Record a transient event at the current level, once per [reason]:
    [true] when recorded, [false] when that reason was already noted. *)

val rank : level -> int
(** [Incremental] = 2, [Rebuild] = 1, [Single_lac] = 0. *)

val level_to_string : level -> string
val reason_to_string : reason -> string

val summary : t -> string
(** Human-readable one-liner, e.g.
    ["incremental -> rebuild@4 (audit_divergence)"]. *)
