module Bitvec = Accals_bitvec.Bitvec
module Crc32 = Accals_resilience.Crc32
module Metric = Accals_metrics.Metric
open Accals_network

type divergence = {
  backend : string;
  nodes : int list;
  fp_reference : string;
  fp_observed : string;
  recorded_error : float;
  reference_error : float;
}

type verdict = Clean | Divergence of divergence

let max_reported_nodes = 8

let fingerprint ~live ~sigs n =
  let crc = ref Crc32.init in
  for id = 0 to n - 1 do
    if live.(id) then begin
      crc := Crc32.add_int !crc id;
      if id < Array.length sigs && Bitvec.length sigs.(id) > 0 then
        crc := Bitvec.fold_words sigs.(id) ~init:!crc ~f:Crc32.add_int
    end
  done;
  Crc32.to_hex (Crc32.finish !crc)

let compare ~net ~patterns ~golden ~metric ~recorded_error ~observed =
  let live = Structure.live_set net in
  let order = Structure.topo_order ~live net in
  let sigs = Sim.run ~live net patterns ~order in
  let approx = Array.map (fun id -> sigs.(id)) (Network.outputs net) in
  let reference_error = Metric.measure metric ~golden ~approx in
  let n = Network.num_nodes net in
  let error_diverges = not (Float.equal reference_error recorded_error) in
  match observed with
  | None ->
    (* Rebuild backend: there is no second signature store to cross-check,
       but the recorded running error must still be re-derivable. *)
    if not error_diverges then Clean
    else
      Divergence
        {
          backend = "rebuild";
          nodes = [];
          fp_reference = fingerprint ~live ~sigs n;
          fp_observed = "-";
          recorded_error;
          reference_error;
        }
  | Some (obs_live, obs_sigs) ->
    let diverging = ref [] in
    let count = ref 0 in
    for id = 0 to n - 1 do
      let ref_live = live.(id) in
      let ob_live = id < Array.length obs_live && obs_live.(id) in
      let diverges =
        if ref_live && ob_live then not (Bitvec.equal sigs.(id) obs_sigs.(id))
        else ref_live <> ob_live
      in
      if diverges then begin
        incr count;
        if !count <= max_reported_nodes then diverging := id :: !diverging
      end
    done;
    if !count = 0 && not error_diverges then Clean
    else
      Divergence
        {
          backend = "incremental";
          nodes = List.rev !diverging;
          fp_reference = fingerprint ~live ~sigs n;
          fp_observed =
            fingerprint ~live:obs_live ~sigs:obs_sigs
              (min n (Array.length obs_live));
          recorded_error;
          reference_error;
        }

(* Deliberate-corruption self-test hook: when armed with a round number
   (programmatically or via ACCALS_AUDIT_SELFTEST), the engine corrupts one
   stored signature just before that round's audit, proving end-to-end that
   divergence detection, incident logging and rebuild fallback all fire. *)

let armed : int option ref = ref None

let () =
  match Sys.getenv_opt "ACCALS_AUDIT_SELFTEST" with
  | None | Some "" -> ()
  | Some s -> (
    match int_of_string_opt s with
    | Some r when r >= 1 -> armed := Some r
    | _ ->
      Printf.eprintf
        "accals: invalid ACCALS_AUDIT_SELFTEST %S (expected a round number \
         >= 1)\n\
         %!"
        s;
      exit 2)

let arm_selftest ~round = armed := Some round
let disarm_selftest () = armed := None
let selftest_round () = !armed
