(** Structured incident records for the self-auditing runtime.

    Every anomaly the runtime survives — a shadow-audit divergence, a
    corrupt checkpoint skipped during resume, a certification measurement
    violating the bound, an expired watchdog — is recorded as an incident
    and (from the CLI) appended to a JSONL incident log: one JSON object
    per line, no framing, safe to append to across runs. *)

type kind =
  | Audit_divergence of {
      backend : string;  (** backend that was audited, e.g. ["incremental"] *)
      nodes : int list;  (** sample of diverging node ids (at most 8) *)
      fp_reference : string;  (** CRC-32 fingerprint of the re-derived signatures *)
      fp_observed : string;  (** fingerprint of the audited backend's signatures *)
      recorded_error : float;  (** error the round loop recorded *)
      reference_error : float;  (** error re-derived from scratch *)
    }
  | Checkpoint_corrupt of { path : string; detail : string }
  | Certification_violation of { measured : float; bound : float; step : int }
  | Watchdog_expired of { scope : string }  (** ["run"] or ["round"] *)
  | Deadline_exceeded of {
      job : string;  (** daemon job id *)
      phase : string;  (** ["queued"] (expired before starting) or ["running"] *)
      deadline_s : float;  (** the client-requested deadline, seconds *)
    }  (** A service job blew its client-supplied wall-clock deadline. *)
  | Job_quarantined of {
      fingerprint : string;  (** digest/budget fingerprint of the poison job *)
      failures : int;  (** abnormal worker deaths observed *)
      cooldown_s : float;  (** how long resubmissions will be refused *)
    }  (** Crash-loop detection tripped: the job is refused admission. *)
  | Resource_exhausted of {
      resource : string;  (** ["memory"], ["disk"] or ["fds"] *)
      limit : float;  (** the configured ceiling, in the resource's unit *)
      observed : float;  (** the measurement that tripped the governor *)
    }
      (** A budget governor ran out of non-destructive responses: the work
          was checkpointed and shed (memory), degraded (disk), or refused
          (fds) — never left to the OOM killer or a failing [accept]. *)

type t = { round : int; kind : kind }
(** [round] is 0 for service-side incidents (they are not tied to an
    engine round). *)

val make : round:int -> kind -> t

val kind_name : t -> string
(** The stable [kind] discriminator used in the JSON encoding. *)

val to_json : t -> string
(** One-line JSON object (no trailing newline). *)

val append_jsonl : path:string -> t list -> unit
(** Append each incident as one line to [path], creating it if needed.
    No-op on the empty list. *)
