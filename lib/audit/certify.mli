(** Certified error reports: re-measure the result circuit with an
    independent PRNG stream (or exhaustively) before reporting it.

    The synthesis loop steers by errors measured on its own sample set; a
    report is only {e certified} once an independent measurement — fresh
    random vectors from a stream the loop never touched, or the full input
    space when the width permits — confirms the error constraint. When the
    independent measurement rejects a circuit, {!certify_with_rollback}
    walks back through previously feasible circuits (newest first) until
    one passes, rather than emitting a violating result. *)

open Accals_network

type method_ =
  | Exhaustive of int  (** exact, over this many input vectors *)
  | Sampled of int  (** independent random stream of this many vectors *)

type outcome = {
  measured : float;  (** the independent measurement of the emitted circuit *)
  method_ : method_;
  bound : float;  (** the error constraint it was checked against *)
  certified : bool;  (** [measured <= bound] *)
  rollback_steps : int;  (** candidates rejected before this one *)
}

val method_to_string : method_ -> string

val independent_seed : int -> int
(** Derive the certification PRNG seed from the run seed; disjoint from
    the pattern and engine streams by construction. *)

val measure :
  golden:Network.t ->
  approx:Network.t ->
  metric:Accals_metrics.Metric.kind ->
  seed:int ->
  samples:int ->
  exhaustive_limit:int ->
  float * method_
(** Independent error of [approx] against [golden]: exhaustive when the
    input width is within [exhaustive_limit] (and {!Exhaustive.max_inputs}),
    otherwise sampled on [samples] fresh vectors. *)

val certify_with_rollback :
  measure:(Network.t -> float * method_) ->
  bound:float ->
  candidates:(unit -> Network.t * float) list ->
  on_violation:(step:int -> measured:float -> unit) ->
  outcome * Network.t * float
(** Try each candidate (a thunk producing the circuit and its
    loop-sampled error), newest first, until one measures within [bound];
    [on_violation] fires for each rejection. The caller puts its ultimate
    fallback (e.g. the exact original circuit) last; if even that fails the
    last candidate is returned with [certified = false]. Returns the
    outcome, the accepted circuit and its loop-sampled error. *)
