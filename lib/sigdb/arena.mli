(** Per-domain scratch arenas.

    An ['a Arena.t] hands each domain its own private instance of some
    scratch structure (signature-buffer pools, overlay arrays, ...),
    created lazily on the domain's first access and then reused for the
    domain's lifetime. This is what keeps candidate scoring from
    bouncing buffer allocations across domains: a worker that scored
    candidates once already owns warmed buffers for every later chunk it
    runs, no matter which fan-out (or round) the chunk belongs to.

    Soundness requires the scratch to be write-before-read — results
    must be bit-identical whether an instance is fresh or reused, which
    is the same contract {!Fan_out} already imposes on per-chunk
    states. Instances are never shared between domains and never moved,
    so no synchronization is involved on the access path. *)

type 'a t

val create : (unit -> 'a) -> 'a t
(** [create make] is an arena whose per-domain instances are produced by
    [make] (called at most once per domain, on that domain). *)

val local : 'a t -> 'a
(** This domain's instance. *)

val instances : 'a t -> int
(** How many domains have materialized an instance so far (telemetry). *)
