open Accals_network
module Bitvec = Accals_bitvec.Bitvec

(* A versioned per-node signature database.

   The database owns the node signatures of one concrete network and keeps
   them valid across in-place mutation: it listens to [Network.change]
   events, maintains the full fanout lists incrementally, and after a batch
   of definition changes re-evaluates only the transitive fanout cone of
   the changed nodes, stopping early wherever a recomputed signature equals
   the stored one (event-driven resimulation). Candidate LAC sets are
   evaluated under an undo journal: the set is applied to the live network,
   the affected outputs are recomputed into a throwaway overlay, and the
   journal restores the network (and the incremental structures) exactly.

   Exactness contract: for live nodes, [sigs db] is always bit-identical to
   a from-scratch [Sim.run] over a topological order of the current
   network. The per-round views (live set, topological order, live-filtered
   fanouts, fanout counts) are *recomputed* by [refresh] with the same
   [Structure] routines the rebuild path uses, so candidate enumeration
   order — and therefore every downstream tie-break — cannot diverge from
   the rebuild-everything path. Only the expensive bitvector work is
   incremental. *)

type counters = {
  mutable resim_nodes : int;
  mutable resim_converged : int;
  mutable buffers_recycled : int;
  mutable journal_undos : int;
  mutable journal_entries_undone : int;
}

type delta = {
  sig_changed : int list;
  struct_dirty : bool array;
  live_changed : int list;
}

type journal_entry =
  | J_replace of { id : int; old_op : Gate.op; old_fanins : int array }
  | J_outputs of { old_ids : int array; old_names : string array }

type mode = Pending | Journal | Silent

type t = {
  net : Network.t;
  patterns : Sim.patterns;
  mutable sigs : Bitvec.t array;  (* capacity-sized; dummy when dead *)
  mutable live : bool array;  (* frozen at last refresh *)
  mutable order : int array;
  mutable topo_pos : int array;
  mutable fanouts_all : int list array;
      (* full consumer lists (dead consumers included), descending consumer
         id, one entry per distinct (consumer, fanin) pair — the exact
         superset of [Structure.fanouts ~live_only:true] *)
  mutable fanouts : int array array;  (* live-filtered view *)
  mutable fanout_counts : int array;
  mutable version : int;
  mutable free : Bitvec.t list;  (* recycled signature buffers *)
  counters : counters;
  (* committed-change accumulation (between refreshes) *)
  mutable pending_roots : int list;
  mutable pending_touched : int list;
  mutable sig_changed : int list;
  (* undo journal *)
  mutable mode : mode;
  mutable j_entries : journal_entry list;  (* newest first *)
  mutable j_mark : int;
  mutable j_roots : int list;
  mutable j_touched : int list;
  (* overlay scratch for journal evaluation *)
  mutable overlay : Bitvec.t array;
  mutable have : bool array;
}

let dummy = Bitvec.create 0

let network db = db.net
let patterns db = db.patterns
let version db = db.version
let counters db = db.counters

let live_view db = db.live
let order_view db = db.order
let topo_pos_view db = db.topo_pos
let fanouts_view db = db.fanouts
let fanout_counts_view db = db.fanout_counts
let sigs_view db = db.sigs

(* ------------------------------------------------------------------ *)
(* Buffer pool *)

let take_buf db =
  match db.free with
  | b :: rest ->
    db.free <- rest;
    db.counters.buffers_recycled <- db.counters.buffers_recycled + 1;
    b
  | [] -> Bitvec.create db.patterns.Sim.count

let release_buf db b = if Bitvec.length b > 0 then db.free <- b :: db.free

let buf_bytes b =
  let bpw = Bitvec.bits_per_word in
  (Bitvec.length b + bpw - 1) / bpw * (bpw / 8)

let pool_size db = List.length db.free
let pool_bytes db = List.fold_left (fun acc b -> acc + buf_bytes b) 0 db.free

(* Memory-pressure relief: drop the recycled buffers. Purely a perf/space
   trade — the next resimulation allocates fresh ones, and nothing about
   signatures or enumeration order changes. *)
let trim_pool db =
  let n = pool_size db in
  db.free <- [];
  n

(* ------------------------------------------------------------------ *)
(* Incremental full-fanout maintenance.

   Lists are kept in descending consumer-id order with one entry per
   distinct pair — exactly the canonical form [Structure.fanouts] produces
   (it iterates consumers in ascending id order and prepends), so the
   live-filtered view below is equal element-for-element to a rebuild. *)

let remove_fanout db f c =
  db.fanouts_all.(f) <- List.filter (fun x -> x <> c) db.fanouts_all.(f)

let insert_fanout db f c =
  let rec ins = function
    | [] -> [ c ]
    | x :: _ as l when x < c -> c :: l
    | x :: _ as l when x = c -> l
    | x :: rest -> x :: ins rest
  in
  db.fanouts_all.(f) <- ins db.fanouts_all.(f)

let ensure_capacity db =
  let n = Network.num_nodes db.net in
  let cap = Array.length db.sigs in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let sigs = Array.make cap' dummy in
    Array.blit db.sigs 0 sigs 0 cap;
    db.sigs <- sigs;
    let fos = Array.make cap' [] in
    Array.blit db.fanouts_all 0 fos 0 cap;
    db.fanouts_all <- fos;
    let overlay = Array.make cap' dummy in
    Array.blit db.overlay 0 overlay 0 (Array.length db.have);
    db.overlay <- overlay;
    let have = Array.make cap' false in
    Array.blit db.have 0 have 0 (Array.length db.have);
    db.have <- have
  end

(* ------------------------------------------------------------------ *)
(* Change tracking *)

let on_change db change =
  (match change with
   | Network.Replaced { id; old_fanins; _ } ->
     Array.iter (fun f -> remove_fanout db f id) old_fanins;
     let nf = Network.fanins db.net id in
     Array.iter (fun f -> insert_fanout db f id) nf;
     (match db.mode with
      | Silent -> ()
      | Journal ->
        (match change with
         | Network.Replaced { id; old_op; old_fanins } ->
           db.j_entries <- J_replace { id; old_op; old_fanins } :: db.j_entries
         | _ -> ());
        db.j_roots <- id :: db.j_roots;
        db.j_touched <-
          id :: List.rev_append (Array.to_list old_fanins)
                  (List.rev_append (Array.to_list nf) db.j_touched)
      | Pending ->
        db.pending_roots <- id :: db.pending_roots;
        db.pending_touched <-
          id :: List.rev_append (Array.to_list old_fanins)
                  (List.rev_append (Array.to_list nf) db.pending_touched))
   | Network.Added id ->
     ensure_capacity db;
     let nf = Network.fanins db.net id in
     Array.iter (fun f -> insert_fanout db f id) nf;
     (match db.mode with
      | Silent -> ()
      | Journal ->
        db.j_roots <- id :: db.j_roots;
        db.j_touched <- id :: List.rev_append (Array.to_list nf) db.j_touched
      | Pending ->
        db.pending_roots <- id :: db.pending_roots;
        db.pending_touched <- id :: List.rev_append (Array.to_list nf) db.pending_touched)
   | Network.Outputs_changed { old_ids; old_names } ->
     (* Output rewiring changes no signature, so no resimulation root; but
        which nodes drive outputs feeds criticality, so both the old and
        the new driver sets count as structurally touched. *)
     let touched acc =
       Array.to_list old_ids
       @ Array.to_list (Network.outputs db.net)
       @ acc
     in
     (match db.mode with
      | Silent -> ()
      | Journal ->
        db.j_entries <- J_outputs { old_ids; old_names } :: db.j_entries;
        db.j_touched <- touched db.j_touched
      | Pending -> db.pending_touched <- touched db.pending_touched))

(* ------------------------------------------------------------------ *)
(* Cone collection: transitive fanout of the roots over the full fanout
   lists, pruned at nodes that are neither live (as of the last refresh)
   nor newly added, then topologically ordered by depth-first search over
   the fanin edges restricted to the cone. Any valid topological order
   yields bit-identical signatures; this one is also deterministic because
   the traversal only follows deterministic root and adjacency orders. *)

let eligible db id = id >= Array.length db.live || db.live.(id)

let collect_order db roots =
  let in_cone = Hashtbl.create 64 in
  let members = ref [] in
  let stack = ref [] in
  List.iter
    (fun r ->
      if eligible db r && (not (Network.is_input db.net r))
         && not (Hashtbl.mem in_cone r)
      then begin
        Hashtbl.add in_cone r ();
        members := r :: !members;
        stack := r :: !stack
      end)
    roots;
  let rec walk () =
    match !stack with
    | [] -> ()
    | x :: rest ->
      stack := rest;
      List.iter
        (fun c ->
          if eligible db c && not (Hashtbl.mem in_cone c) then begin
            Hashtbl.add in_cone c ();
            members := c :: !members;
            stack := c :: !stack
          end)
        db.fanouts_all.(x);
      walk ()
  in
  walk ();
  (* DFS post-order over in-cone fanin edges: fanins before consumers. *)
  let state = Hashtbl.create 64 in
  let acc = ref [] in
  let visit root =
    if not (Hashtbl.mem state root) then begin
      Hashtbl.add state root 1;
      let stack = ref [ (root, 0) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (id, next) :: rest ->
          let fis = Network.fanins db.net id in
          if next >= Array.length fis then begin
            acc := id :: !acc;
            stack := rest
          end
          else begin
            stack := (id, next + 1) :: rest;
            let f = fis.(next) in
            if Hashtbl.mem in_cone f && not (Hashtbl.mem state f) then begin
              Hashtbl.add state f 1;
              stack := (f, 0) :: !stack
            end
          end
      done
    end
  in
  List.iter visit (List.rev !members);
  (Array.of_list (List.rev !acc), in_cone)

(* ------------------------------------------------------------------ *)
(* Journal *)

let begin_journal db =
  if db.mode = Journal then invalid_arg "Sigdb.begin_journal: journal already active";
  db.mode <- Journal;
  db.j_mark <- Network.num_nodes db.net;
  db.j_entries <- [];
  db.j_roots <- [];
  db.j_touched <- []

let end_journal db =
  db.j_entries <- [];
  db.j_roots <- [];
  db.j_touched <- [];
  db.mode <- Pending

let undo_journal db =
  if db.mode <> Journal then invalid_arg "Sigdb.undo_journal: no active journal";
  db.counters.journal_undos <- db.counters.journal_undos + 1;
  db.counters.journal_entries_undone <-
    db.counters.journal_entries_undone + List.length db.j_entries;
  db.mode <- Silent;
  List.iter
    (function
      | J_replace { id; old_op; old_fanins } ->
        Network.replace ~check_cycle:false db.net id old_op old_fanins
      | J_outputs { old_ids; old_names } ->
        Network.set_outputs db.net
          (Array.map2 (fun nm id -> (nm, id)) old_names old_ids))
    db.j_entries;
  for id = db.j_mark to Network.num_nodes db.net - 1 do
    Array.iter (fun f -> remove_fanout db f id) (Network.fanins db.net id)
  done;
  Network.truncate db.net db.j_mark;
  end_journal db

let commit_journal db =
  if db.mode <> Journal then invalid_arg "Sigdb.commit_journal: no active journal";
  db.pending_roots <- List.rev_append db.j_roots db.pending_roots;
  db.pending_touched <- List.rev_append db.j_touched db.pending_touched;
  end_journal db

(* Overlay evaluation of the journaled changes: recompute the affected part
   of the cone into recycled buffers, hand the resulting primary-output
   signatures to [k], then return every buffer to the pool. The stored
   signatures are never touched. *)
let with_journal_outputs db k =
  if db.mode <> Journal then
    invalid_arg "Sigdb.with_journal_outputs: no active journal";
  let order, in_cone = collect_order db db.j_roots in
  let roots = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace roots r ()) db.j_roots;
  ignore in_cone;
  let touched = ref [] in
  let lookup id = if db.have.(id) then db.overlay.(id) else db.sigs.(id) in
  Array.iter
    (fun id ->
      let fis = Network.fanins db.net id in
      let dirty =
        Hashtbl.mem roots id || Array.exists (fun f -> db.have.(f)) fis
      in
      if dirty then begin
        let dst = take_buf db in
        db.counters.resim_nodes <- db.counters.resim_nodes + 1;
        Sim.eval_node_into db.net ~lookup id ~dst;
        let old = db.sigs.(id) in
        if Bitvec.length old > 0 && Bitvec.equal dst old then begin
          release_buf db dst;
          db.counters.resim_converged <- db.counters.resim_converged + 1
        end
        else begin
          db.overlay.(id) <- dst;
          db.have.(id) <- true;
          touched := id :: !touched
        end
      end)
    order;
  let approx = Array.map lookup (Network.outputs db.net) in
  let result = k approx in
  List.iter
    (fun id ->
      release_buf db db.overlay.(id);
      db.overlay.(id) <- dummy;
      db.have.(id) <- false)
    !touched;
  result

(* ------------------------------------------------------------------ *)
(* Committed resimulation: consume the pending roots and update the stored
   signatures in place, in topological order, pruning wherever a node's
   recomputed signature equals the stored one. Displaced buffers go back
   to the pool. *)

let resimulate db =
  if db.mode = Journal then
    invalid_arg "Sigdb.resimulate: commit or undo the journal first";
  let roots = db.pending_roots in
  db.pending_roots <- [];
  if roots <> [] then begin
    let order, _ = collect_order db roots in
    let is_root = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace is_root r ()) roots;
    let changed = Hashtbl.create 64 in
    let lookup id = db.sigs.(id) in
    Array.iter
      (fun id ->
        let fis = Network.fanins db.net id in
        let dirty =
          Hashtbl.mem is_root id || Array.exists (Hashtbl.mem changed) fis
        in
        if dirty then begin
          let dst = take_buf db in
          db.counters.resim_nodes <- db.counters.resim_nodes + 1;
          Sim.eval_node_into db.net ~lookup id ~dst;
          let old = db.sigs.(id) in
          if Bitvec.length old > 0 && Bitvec.equal dst old then begin
            release_buf db dst;
            db.counters.resim_converged <- db.counters.resim_converged + 1
          end
          else begin
            Hashtbl.replace changed id ();
            if Bitvec.length old > 0 && not (Network.is_input db.net id) then
              release_buf db old;
            db.sigs.(id) <- dst;
            db.sig_changed <- id :: db.sig_changed
          end
        end)
      order;
    db.version <- db.version + 1
  end

(* ------------------------------------------------------------------ *)
(* Per-round structural refresh.

   Contract: every signature-changing mutation since the last refresh has
   been followed by [resimulate]; mutations still pending here must be
   function-preserving per node (e.g. [Cleanup.sweep]'s rewrites), so the
   stored signatures are already correct for the current definitions. *)

let refresh db =
  if db.mode = Journal then
    invalid_arg "Sigdb.refresh: commit or undo the journal first";
  let net = db.net in
  let n = Network.num_nodes net in
  let old_live = db.live in
  let live = Structure.live_set net in
  let order = Structure.topo_order ~live net in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun i id -> topo_pos.(id) <- i) order;
  let fanouts =
    Array.init n (fun id ->
        Array.of_list (List.filter (fun c -> live.(c)) db.fanouts_all.(id)))
  in
  let fanout_counts = Structure.fanout_counts net ~live in
  (* Liveness diff; every dead node hands its signature buffer back (a node
     added and committed this round can already be dead here without ever
     having been live, so this is not restricted to flips). Dead unused
     primary inputs keep their pattern vector: it is shared with
     [patterns.by_input] and must never enter the pool. *)
  let live_changed = ref [] in
  let n_old = Array.length old_live in
  for id = n - 1 downto 0 do
    let was = if id < n_old then old_live.(id) else false in
    if was <> live.(id) then live_changed := id :: !live_changed;
    if (not live.(id))
       && (not (Network.is_input net id))
       && Bitvec.length db.sigs.(id) > 0
    then begin
      release_buf db db.sigs.(id);
      db.sigs.(id) <- dummy
    end
  done;
  let struct_dirty = Array.make n false in
  List.iter
    (fun id -> if id < n then struct_dirty.(id) <- true)
    db.pending_touched;
  (* A liveness flip also dirties the node's fanins: a revived consumer
     extends its fanins' fanout cones, a dying one shrinks them. *)
  List.iter
    (fun id ->
      struct_dirty.(id) <- true;
      Array.iter (fun f -> struct_dirty.(f) <- true) (Network.fanins net id))
    !live_changed;
  let delta =
    {
      sig_changed = db.sig_changed;
      struct_dirty;
      live_changed = !live_changed;
    }
  in
  db.live <- live;
  db.order <- order;
  db.topo_pos <- topo_pos;
  db.fanouts <- fanouts;
  db.fanout_counts <- fanout_counts;
  db.pending_roots <- [];
  db.pending_touched <- [];
  db.sig_changed <- [];
  db.version <- db.version + 1;
  delta

(* ------------------------------------------------------------------ *)

let create net patterns =
  let n = Network.num_nodes net in
  let live = Structure.live_set net in
  let order = Structure.topo_order ~live net in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun i id -> topo_pos.(id) <- i) order;
  let fanouts_all = Array.make (max 1 n) [] in
  for c = 0 to n - 1 do
    let seen = Hashtbl.create 4 in
    Array.iter
      (fun f ->
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          fanouts_all.(f) <- c :: fanouts_all.(f)
        end)
      (Network.fanins net c)
  done;
  let fanouts =
    Array.init n (fun id ->
        Array.of_list (List.filter (fun c -> live.(c)) fanouts_all.(id)))
  in
  let fanout_counts = Structure.fanout_counts net ~live in
  let sigs = Sim.run ~live net patterns ~order in
  let db =
    {
      net;
      patterns;
      sigs;
      live;
      order;
      topo_pos;
      fanouts_all;
      fanouts;
      fanout_counts;
      version = 0;
      free = [];
      counters =
        {
          resim_nodes = 0;
          resim_converged = 0;
          buffers_recycled = 0;
          journal_undos = 0;
          journal_entries_undone = 0;
        };
      pending_roots = [];
      pending_touched = [];
      sig_changed = [];
      mode = Pending;
      j_entries = [];
      j_mark = n;
      j_roots = [];
      j_touched = [];
      overlay = Array.make (max 1 n) dummy;
      have = Array.make (max 1 n) false;
    }
  in
  Network.set_tracker net (Some (on_change db));
  db

let detach db = Network.set_tracker db.net None

(* Audit self-test hook: flip one bit of the first live non-input stored
   signature (in topological order), simulating silent state corruption
   that a shadow audit must catch. *)
let corrupt_signature db =
  let n = Array.length db.live in
  let rec find i =
    if i >= Array.length db.order then None
    else
      let id = db.order.(i) in
      if
        id < n && db.live.(id)
        && (not (Network.is_input db.net id))
        && Bitvec.length db.sigs.(id) > 0
      then Some id
      else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some id ->
    let s = db.sigs.(id) in
    Bitvec.set s 0 (not (Bitvec.get s 0));
    Some id
