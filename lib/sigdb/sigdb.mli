(** Versioned per-node signature database with event-driven resimulation.

    A [Sigdb.t] attaches to one {!Accals_network.Network.t} (via the
    network's change tracker) and keeps per-node simulation signatures
    valid across in-place mutation. Instead of rebuilding every structure
    and resimulating the whole circuit each round, it

    - maintains full fanout lists incrementally from change events,
    - re-evaluates only the transitive fanout cone of changed nodes,
      stopping early where a recomputed signature is bit-equal to the
      stored one,
    - recycles displaced signature buffers through an internal pool, and
    - supports speculative mutation under an undo journal, evaluating the
      journaled changes into a throwaway overlay without touching the
      committed signatures.

    Exactness contract: for every live node the stored signature is
    bit-identical to what a from-scratch {!Accals_network.Sim.run} over the
    current network would produce. The cheap per-round views (live set,
    topological order, live-filtered fanouts, fanout counts) are
    recomputed by {!refresh} with the same {!Accals_network.Structure}
    routines the rebuild path uses, so candidate enumeration order is
    exactly that of the non-incremental path.

    Usage protocol per engine round:
    + {!refresh} (or {!create} initially), build views, score candidates;
    + per candidate set: {!begin_journal}, apply LACs to the network,
      {!with_journal_outputs} to measure error, {!undo_journal};
    + commit the chosen set by applying it outside a journal, then
      {!resimulate}, then (optionally) run function-preserving cleanup
      such as [Cleanup.sweep], then {!refresh} for the next round.

    Mutations left pending at {!refresh} without a prior {!resimulate}
    must be function-preserving per node (cleanup rewrites): the stored
    signatures are assumed still correct for the current definitions. *)

type counters = {
  mutable resim_nodes : int;  (** node evaluations performed *)
  mutable resim_converged : int;
      (** evaluations whose result was bit-equal to the stored signature,
          pruning their downstream cone *)
  mutable buffers_recycled : int;  (** pool hits when acquiring a buffer *)
  mutable journal_undos : int;  (** {!undo_journal} invocations *)
  mutable journal_entries_undone : int;
      (** total journal entries reverted across all undos (the journal's
          depth at each undo, summed) *)
}

type delta = {
  sig_changed : int list;
      (** nodes whose committed signature changed since the previous
          {!refresh} (includes nodes added and then resimulated) *)
  struct_dirty : bool array;
      (** per-node flag (indexed by id, sized to the current node count):
          the node's definition, fanout set or liveness changed since the
          previous {!refresh} *)
  live_changed : int list;  (** nodes whose liveness flipped *)
}

type t

val create : Accals_network.Network.t -> Accals_network.Sim.patterns -> t
(** Build the database: full structural analysis plus one full (live-only)
    simulation. Attaches the network's change tracker; raises
    [Invalid_argument] if another tracker is already attached. The network
    must not be marshaled while attached — checkpoint a
    {!Accals_network.Network.copy} instead (copies carry no tracker). *)

val detach : t -> unit
(** Detach from the network's change tracker. The database must not be
    used afterwards. *)

val corrupt_signature : t -> int option
(** Audit self-test hook: flip one bit of the first live non-input stored
    signature (topological order) and return its node id, or [None] when
    no such node exists. Deliberately violates the exactness contract so
    the shadow-audit path (see [lib/audit]) can be exercised end-to-end;
    never call it outside a self-test. *)

val network : t -> Accals_network.Network.t
val patterns : t -> Accals_network.Sim.patterns

val version : t -> int
(** Monotonic counter bumped by {!resimulate} and {!refresh}. *)

val counters : t -> counters
(** Live counter record (monotonic); callers snapshot and diff. *)

(** {2 Buffer-pool accounting}

    The recycled-buffer pool trades memory for allocation churn; under a
    [--max-memory-mb] budget the governor reads its footprint and, at soft
    pressure, gives the memory back. *)

val pool_size : t -> int
(** Buffers currently idle in the pool. *)

val pool_bytes : t -> int
(** Estimated bytes held by idle pooled buffers. *)

val trim_pool : t -> int
(** Drop every idle pooled buffer and return how many were dropped. Purely
    a space/time trade: signatures, views and enumeration order are
    untouched, so results cannot change. *)

(** {2 Frozen per-round views}

    All views are replaced (not mutated) by {!refresh}, so values captured
    after a refresh stay internally consistent for the whole round even as
    the network mutates. Signature entries of dead nodes are a shared
    zero-length dummy and must not be read. *)

val sigs_view : t -> Accals_bitvec.Bitvec.t array
val live_view : t -> bool array
val order_view : t -> int array
val topo_pos_view : t -> int array
val fanouts_view : t -> int array array
val fanout_counts_view : t -> int array

(** {2 Speculative evaluation} *)

val begin_journal : t -> unit
(** Start recording mutations for undo. At most one journal at a time. *)

val with_journal_outputs : t -> (Accals_bitvec.Bitvec.t array -> 'a) -> 'a
(** Evaluate the journaled mutations into a throwaway overlay (cone-only,
    early-stopping) and pass the resulting primary-output signatures to
    the callback. Committed signatures are untouched; overlay buffers are
    returned to the pool afterwards. The journal stays open. *)

val undo_journal : t -> unit
(** Revert every journaled mutation — node definitions, the output table,
    and speculative node allocations (the network is truncated back to its
    pre-journal node count) — restoring the incremental structures
    exactly. *)

val commit_journal : t -> unit
(** Keep the journaled mutations: fold them into the pending set consumed
    by {!resimulate}/{!refresh}, then close the journal. *)

(** {2 Committed updates} *)

val resimulate : t -> unit
(** Consume the pending committed mutations: re-evaluate their transitive
    fanout cone in topological order, updating stored signatures in place
    and pruning wherever a recomputed signature is bit-equal. Must not be
    called with an open journal. *)

val refresh : t -> delta
(** Recompute the per-round views (live set, topological order,
    live-filtered fanouts, fanout counts) for the current network and
    return what changed since the last refresh — the estimator uses the
    delta for selective invalidation. Newly dead nodes release their
    signature buffers to the pool. Must not be called with an open
    journal. *)
