(* Domain-local storage keyed per arena. [Domain.DLS] slots are cheap
   (one array slot per domain per key) but keys cannot be reclaimed, so
   arenas are meant for long-lived structures — one per estimator, not
   one per fan-out. *)

type 'a t = { key : 'a Domain.DLS.key; count : int Atomic.t }

let create make =
  let count = Atomic.make 0 in
  let key =
    Domain.DLS.new_key (fun () ->
        Atomic.incr count;
        make ())
  in
  { key; count }

let local t = Domain.DLS.get t.key
let instances t = Atomic.get t.count
