(** Fixed-length bit vectors packed into OCaml [int] words.

    A [Bitvec.t] stores one bit per simulation pattern; bitwise operations
    over whole vectors give 62-way parallel logic simulation. All operations
    maintain the invariant that padding bits beyond [length] are zero, so
    [popcount] and [equal] are exact. *)

type t

val bits_per_word : int
(** Number of payload bits per word (62 on 64-bit platforms). *)

val create : int -> t
(** [create len] is an all-zero vector of [len] bits. *)

val length : t -> int

val copy : t -> t

val get : t -> int -> bool

val set : t -> int -> bool -> unit

val fill : t -> bool -> unit

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; lengths must match. *)

val equal : t -> t -> bool

val is_zero : t -> bool

val popcount : t -> int
(** Number of set bits. *)

val hamming : t -> t -> int
(** Number of positions at which the two vectors differ. *)

(** {1 Allocating bitwise operations} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 In-place destination-style operations}

    [*_into a b ~dst] stores the result in [dst]; [dst] may alias an
    argument. These avoid allocation in simulation inner loops. *)

val logand_into : t -> t -> dst:t -> unit
val logor_into : t -> t -> dst:t -> unit
val logxor_into : t -> t -> dst:t -> unit
val lognot_into : t -> dst:t -> unit

val mux_into : sel:t -> t -> t -> dst:t -> unit
(** [mux_into ~sel a b ~dst] sets [dst = (sel AND a) OR (NOT sel AND b)]. *)

val randomize : Prng.t -> t -> unit
(** Fill with uniformly random bits. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val iter_set : t -> (int -> unit) -> unit
(** [iter_set v f] applies [f] to the index of every set bit, ascending. *)

val prefix_word : t -> int
(** The first machine word of the payload (up to 62 bits), usable as a fast
    similarity hash: equal vectors have equal prefix words. *)

val fold_words : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over the payload words in order, for hashing/fingerprinting.
    Padding bits are always zero, so equal vectors fold identically. *)

val pp : Format.formatter -> t -> unit
(** Prints as a 0/1 string, bit 0 first. *)
