type t = { len : int; words : int array }

let bits_per_word = 62

let word_mask = max_int (* 2^62 - 1 *)

let words_for len = (len + bits_per_word - 1) / bits_per_word

(* Mask selecting the valid bits of the last word. *)
let tail_mask len =
  let r = len mod bits_per_word in
  if r = 0 then word_mask else (1 lsl r) - 1

let create len =
  assert (len >= 0);
  { len; words = Array.make (max 1 (words_for len)) 0 }

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let get t i =
  assert (i >= 0 && i < t.len);
  t.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let set t i b =
  assert (i >= 0 && i < t.len);
  let w = i / bits_per_word and s = i mod bits_per_word in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl s)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl s)

let fill t b =
  if b then begin
    Array.fill t.words 0 (Array.length t.words) word_mask;
    if t.len > 0 then
      t.words.(Array.length t.words - 1) <- tail_mask t.len
    else Array.fill t.words 0 (Array.length t.words) 0
  end
  else Array.fill t.words 0 (Array.length t.words) 0

let blit ~src ~dst =
  assert (src.len = dst.len);
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let equal a b = a.len = b.len && a.words = b.words

let is_zero t = Array.for_all (fun w -> w = 0) t.words

(* 16-bit table popcount: four lookups per word. *)
let pop_table =
  let tbl = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count v acc = if v = 0 then acc else count (v lsr 1) (acc + (v land 1)) in
    Bytes.unsafe_set tbl i (Char.chr (count i 0))
  done;
  tbl

let popcount_word w =
  Char.code (Bytes.unsafe_get pop_table (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop_table (w lsr 16 land 0xffff))
  + Char.code (Bytes.unsafe_get pop_table (w lsr 32 land 0xffff))
  + Char.code (Bytes.unsafe_get pop_table (w lsr 48 land 0xffff))

let popcount t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + popcount_word t.words.(i)
  done;
  !acc

let hamming a b =
  assert (a.len = b.len);
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_word (a.words.(i) lxor b.words.(i))
  done;
  !acc

let check2 a b = assert (a.len = b.len)

let map2 f a b =
  check2 a b;
  let r = create a.len in
  for i = 0 to Array.length a.words - 1 do
    r.words.(i) <- f a.words.(i) b.words.(i)
  done;
  r

let logand = map2 ( land )
let logor = map2 ( lor )
let logxor = map2 ( lxor )

let lognot t =
  let r = create t.len in
  for i = 0 to Array.length t.words - 1 do
    r.words.(i) <- lnot t.words.(i) land word_mask
  done;
  if t.len > 0 then begin
    let last = Array.length r.words - 1 in
    r.words.(last) <- r.words.(last) land tail_mask t.len
  end else r.words.(0) <- 0;
  r

let map2_into f a b ~dst =
  check2 a b;
  check2 a dst;
  for i = 0 to Array.length a.words - 1 do
    dst.words.(i) <- f a.words.(i) b.words.(i)
  done

let logand_into a b ~dst = map2_into ( land ) a b ~dst
let logor_into a b ~dst = map2_into ( lor ) a b ~dst
let logxor_into a b ~dst = map2_into ( lxor ) a b ~dst

let lognot_into a ~dst =
  check2 a dst;
  for i = 0 to Array.length a.words - 1 do
    dst.words.(i) <- lnot a.words.(i) land word_mask
  done;
  if a.len > 0 then begin
    let last = Array.length dst.words - 1 in
    dst.words.(last) <- dst.words.(last) land tail_mask a.len
  end else dst.words.(0) <- 0

let mux_into ~sel a b ~dst =
  check2 sel a;
  check2 sel b;
  check2 sel dst;
  for i = 0 to Array.length sel.words - 1 do
    let s = sel.words.(i) in
    dst.words.(i) <- (s land a.words.(i)) lor (lnot s land b.words.(i) land word_mask)
  done

let randomize rng t =
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Prng.bits62 rng
  done;
  if t.len > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land tail_mask t.len
  end else t.words.(0) <- 0

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then set t i true) a;
  t

let to_bool_array t = Array.init t.len (get t)

let iter_set t f =
  for i = 0 to Array.length t.words - 1 do
    let w = ref t.words.(i) in
    let base = i * bits_per_word in
    while !w <> 0 do
      let low = !w land - !w in
      (* index of lowest set bit *)
      let rec bit_index v acc = if v = 1 then acc else bit_index (v lsr 1) (acc + 1) in
      f (base + bit_index low 0);
      w := !w land lnot low
    done
  done

let prefix_word t = t.words.(0)

let fold_words t ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length t.words - 1 do
    acc := f !acc t.words.(i)
  done;
  !acc

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
