open Accals_network

type t = {
  net : Network.t;
  live : bool array;
  order : int array;
  topo_pos : int array;
  fanouts : int array array;
  fanout_counts : int array;
  sigs : Accals_bitvec.Bitvec.t array;
  patterns : Sim.patterns;
}

let create net patterns =
  let live = Structure.live_set net in
  let order = Structure.topo_order ~live net in
  let topo_pos = Array.make (Network.num_nodes net) (-1) in
  Array.iteri (fun i id -> topo_pos.(id) <- i) order;
  let fanouts = Structure.fanouts net in
  let fanout_counts = Structure.fanout_counts net ~live in
  let sigs = Sim.run ~live net patterns ~order in
  { net; live; order; topo_pos; fanouts; fanout_counts; sigs; patterns }

(* Thin view over an attached signature database: same field contents as
   [create] (the database recomputes the structural views with the same
   [Structure] routines and keeps signatures incrementally exact), without
   any per-round bitvector work. *)
let of_sigdb db =
  let module Sigdb = Accals_sigdb.Sigdb in
  {
    net = Sigdb.network db;
    live = Sigdb.live_view db;
    order = Sigdb.order_view db;
    topo_pos = Sigdb.topo_pos_view db;
    fanouts = Sigdb.fanouts_view db;
    fanout_counts = Sigdb.fanout_counts_view db;
    sigs = Sigdb.sigs_view db;
    patterns = Sigdb.patterns db;
  }

let output_sigs t = Array.map (fun id -> t.sigs.(id)) (Network.outputs t.net)
