(** Per-round analysis context.

    AccALS recomputes structural and simulation analyses once per synthesis
    round; candidate generation, error estimation and the selection steps
    all share this bundle. *)

open Accals_network
open Accals_bitvec

type t = {
  net : Network.t;
  live : bool array;
  order : int array;  (** topological order over live nodes *)
  topo_pos : int array;  (** node id -> position in [order] (-1 if dead) *)
  fanouts : int array array;
  fanout_counts : int array;
  sigs : Bitvec.t array;  (** per-node simulation signatures *)
  patterns : Sim.patterns;
}

val create : Network.t -> Sim.patterns -> t

val of_sigdb : Accals_sigdb.Sigdb.t -> t
(** Zero-copy view over a signature database's current per-round views
    (capture after {!Accals_sigdb.Sigdb.refresh}; the views stay frozen
    for the round). Field-for-field equal to what [create] would build on
    the same network. *)

val output_sigs : t -> Bitvec.t array
(** Signatures of the primary outputs, in PO order. *)
