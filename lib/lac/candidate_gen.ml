open Accals_network
module Bitvec = Accals_bitvec.Bitvec

let default_window = 24
let default_wires_per_target = 6
let default_pairs_per_target = 6

type config = {
  window : int;
  wires_per_target : int;
  pairs_per_target : int;
  triples_per_target : int;
  global_wires : int;
  wire_distance_fraction : float;
  sops_per_target : int;
  cut_size : int;
  cuts_per_node : int;
}

let default_config =
  {
    window = default_window;
    wires_per_target = default_wires_per_target;
    pairs_per_target = default_pairs_per_target;
    triples_per_target = 4;
    global_wires = 4;
    wire_distance_fraction = 0.25;
    sops_per_target = 2;
    cut_size = 4;
    cuts_per_node = 4;
  }

(* Global SASIMI candidates: buckets of signals sharing a signature prefix
   (and, separately, the complemented prefix) find almost-identical signals
   far outside the structural window. *)
let similarity_buckets (ctx : Round_ctx.t) =
  let buckets : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      let key = Bitvec.prefix_word ctx.sigs.(id) in
      let prev = try Hashtbl.find buckets key with Not_found -> [] in
      Hashtbl.replace buckets key (id :: prev))
    ctx.order;
  buckets

let global_matches buckets (ctx : Round_ctx.t) config target =
  if config.global_wires = 0 then []
  else begin
    let tsig = ctx.sigs.(target) in
    let direct = try Hashtbl.find buckets (Bitvec.prefix_word tsig) with Not_found -> [] in
    let inverted =
      let complement = Bitvec.lognot tsig in
      try Hashtbl.find buckets (Bitvec.prefix_word complement) with Not_found -> []
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> if x = target then take n rest else x :: take (n - 1) rest
    in
    take config.global_wires direct @ take config.global_wires inverted
  end

(* Structural window around [target]: transitive fanins (BFS) plus siblings
   (other fanins of the target's fanouts), capped at [config.window]. *)
let window_of (ctx : Round_ctx.t) config target =
  let net = ctx.net in
  let seen = Hashtbl.create 32 in
  Hashtbl.add seen target ();
  let result = ref [] in
  let count = ref 0 in
  let push id =
    if (not (Hashtbl.mem seen id)) && ctx.live.(id) && !count < config.window
    then begin
      Hashtbl.add seen id ();
      result := id :: !result;
      incr count
    end
  in
  (* Siblings first: cheap shared logic nearby. *)
  Array.iter
    (fun fanout -> Array.iter push (Network.fanins net fanout))
    ctx.fanouts.(target);
  (* BFS through fanins. *)
  let queue = Queue.create () in
  Queue.add target queue;
  while (not (Queue.is_empty queue)) && !count < config.window do
    let id = Queue.pop queue in
    Array.iter
      (fun f ->
        if not (Hashtbl.mem seen f) then begin
          push f;
          Queue.add f queue
        end)
      (Network.fanins net id)
  done;
  !result

let mffc_nodes (ctx : Round_ctx.t) target =
  Structure.mffc ctx.net ~fanout_counts:ctx.fanout_counts ~live:ctx.live target

(* Area freed when [target]'s definition is replaced by a function of
   [sns]: the target's MFFC minus whatever part of it the substitute
   signals still need. MFFC members have no fanouts outside the cone, so
   only SNs that are themselves inside the cone can retain MFFC nodes. *)
let freed_area (ctx : Round_ctx.t) ~mffc target sns =
  let in_mffc = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_mffc id ()) mffc;
  let kept = Hashtbl.create 8 in
  let rec keep id =
    if id <> target && Hashtbl.mem in_mffc id && not (Hashtbl.mem kept id)
    then begin
      Hashtbl.replace kept id ();
      Array.iter keep (Network.fanins ctx.net id)
    end
  in
  List.iter keep sns;
  Cost.area_of_nodes ctx.net
    (List.filter (fun id -> not (Hashtbl.mem kept id)) mffc)

module Truth = Accals_twolevel.Truth
module Qm = Accals_twolevel.Qm
module Sop_synth = Accals_twolevel.Sop_synth
module Cut_enum = Accals_twolevel.Cut_enum

(* Sampled probability of each cut-input minterm, from leaf signatures. *)
let minterm_probabilities (ctx : Round_ctx.t) leaves =
  let samples = ctx.patterns.Sim.count in
  let vars = Array.length leaves in
  let product = Bitvec.create samples in
  let negated = Bitvec.create samples in
  Array.init (Truth.rows vars) (fun m ->
      Bitvec.fill product true;
      Array.iteri
        (fun i leaf ->
          if m lsr i land 1 = 1 then
            Bitvec.logand_into product ctx.sigs.(leaf) ~dst:product
          else begin
            Bitvec.lognot_into ctx.sigs.(leaf) ~dst:negated;
            Bitvec.logand_into product negated ~dst:product
          end)
        leaves;
      float_of_int (Bitvec.popcount product) /. float_of_int samples)

(* SOP rewriting candidates for one target: re-minimize the cut function
   exactly, and with the rarest minterms declared don't-care (the
   approximate-cut idea of [15]). *)
let sop_candidates (ctx : Round_ctx.t) config ~mffc target cuts_of_target =
  let net = ctx.net in
  let results = ref [] in
  List.iter
    (fun leaves ->
      if Array.length leaves >= 2 && Array.length leaves <= Truth.max_vars then begin
        match Truth.of_cone net ~leaves ~root:target with
        | exception Invalid_argument _ -> ()
        | truth ->
          let vars = Array.length leaves in
          let probs = minterm_probabilities ctx leaves in
          let order =
            let idx = Array.init (Truth.rows vars) (fun i -> i) in
            Array.sort (fun a b -> compare probs.(a) probs.(b)) idx;
            idx
          in
          let dc_of count =
            let dc = ref 0 in
            for i = 0 to count - 1 do
              dc := Truth.set !dc order.(i) true
            done;
            !dc
          in
          let freed = freed_area ctx ~mffc target (Array.to_list leaves) in
          let consider dc =
            let on = truth land lnot dc land Truth.mask vars in
            let cubes = Qm.minimize ~vars ~on ~dc () in
            let gain = freed -. Sop_synth.estimated_area cubes in
            if gain > 0.0 then
              results :=
                (gain, Lac.make ~target (Lac.Sop { leaves; cubes }) ~area_gain:gain)
                :: !results
          in
          consider 0;
          consider (dc_of 1);
          consider (dc_of 2);
          if vars >= 3 then consider (dc_of 4)
      end)
    cuts_of_target;
  (* Largest gains first; dedup identical covers. *)
  let sorted =
    List.sort_uniq
      (fun (ga, la) (gb, lb) ->
        match compare gb ga with 0 -> compare la.Lac.kind lb.Lac.kind | c -> c)
      !results
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, lac) :: rest -> lac :: take (n - 1) rest
  in
  take config.sops_per_target sorted

(* Take the k elements with the smallest measure. *)
let take_best k measure items =
  let scored = List.map (fun x -> (measure x, x)) items in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, x) :: rest -> x :: take (n - 1) rest
  in
  take k sorted

(* All candidates for one target, in emission order. Reads only immutable
   views of [ctx] (plus the prebuilt similarity buckets and cut sets), so
   distinct targets can be enumerated on different domains concurrently. *)
let candidates_for_target (ctx : Round_ctx.t) config ~buckets ~all_cuts target =
  let net = ctx.net in
  let samples = ctx.patterns.Sim.count in
  let wire_limit =
    int_of_float (config.wire_distance_fraction *. float_of_int samples)
  in
  let inv_area = Cost.gate_area Gate.Not 1 in
  let acc = ref [] in
  let emit lac = acc := lac :: !acc in
  (fun target ->
      let op = Network.op net target in
      let worth_replacing =
        match op with
        | Gate.Input | Gate.Const _ | Gate.Buf -> false
        | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
        | Gate.Xnor | Gate.Mux -> true
      in
      if worth_replacing then begin
        let mffc = mffc_nodes ctx target in
        let gain_base = Cost.area_of_nodes net mffc in
        if gain_base > 0.0 then begin
          (* Constant LACs. *)
          emit (Lac.make ~target Lac.Const0 ~area_gain:gain_base);
          emit (Lac.make ~target Lac.Const1 ~area_gain:gain_base);
          (* Substitution pool: structural window, minus the target's TFO
             (using an SN inside the TFO would close a cycle). *)
          let tfo = Structure.tfo_set net ~fanouts:ctx.fanouts target in
          let usable v = v <> target && not (Bitvec.get tfo v) in
          let pool = List.filter usable (window_of ctx config target) in
          let tsig = ctx.sigs.(target) in
          let distance v =
            let d = Bitvec.hamming tsig ctx.sigs.(v) in
            min d (samples - d)
          in
          (* Wire / inverted-wire candidates: structural window plus global
             signature matches. *)
          let global = List.filter usable (global_matches buckets ctx config target) in
          let wires =
            List.sort_uniq compare
              (take_best config.wires_per_target distance pool @ global)
          in
          List.iter
            (fun v ->
              let d = Bitvec.hamming tsig ctx.sigs.(v) in
              if min d (samples - d) <= wire_limit then begin
                let freed = freed_area ctx ~mffc target [ v ] in
                if d <= samples - d then begin
                  if freed > 0.0 then
                    emit (Lac.make ~target (Lac.Wire v) ~area_gain:freed)
                end
                else if freed -. inv_area > 0.0 then
                  emit
                    (Lac.make ~target (Lac.Inv_wire v)
                       ~area_gain:(freed -. inv_area))
              end)
            wires;
          (* 2-input resubstitution over the closest pool signals. *)
          if config.pairs_per_target > 0 then begin
            let shortlist = take_best 5 distance pool in
            let scratch = Bitvec.create samples in
            let pair_candidates = ref [] in
            let consider op a b =
              if a <> b then begin
                (match op with
                 | Gate.And | Gate.Nand ->
                   Bitvec.logand_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch
                 | Gate.Or | Gate.Nor ->
                   Bitvec.logor_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch
                 | Gate.Xor | Gate.Xnor ->
                   Bitvec.logxor_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch
                 | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux ->
                   invalid_arg "Candidate_gen: unsupported pair op");
                (match op with
                 | Gate.Nand | Gate.Nor | Gate.Xnor ->
                   Bitvec.lognot_into scratch ~dst:scratch
                 | Gate.And | Gate.Or | Gate.Xor | Gate.Const _ | Gate.Input
                 | Gate.Buf | Gate.Not | Gate.Mux -> ());
                let d = Bitvec.hamming tsig scratch in
                let gain =
                  freed_area ctx ~mffc target [ a; b ] -. Cost.gate_area op 2
                in
                if gain > 0.0 then
                  pair_candidates := (d, Lac.make ~target (Lac.Gate2 (op, a, b)) ~area_gain:gain) :: !pair_candidates
              end
            in
            let rec pairs = function
              | [] -> ()
              | a :: rest ->
                List.iter
                  (fun b ->
                    consider Gate.And a b;
                    consider Gate.Or a b;
                    consider Gate.Xor a b;
                    consider Gate.Nand a b;
                    consider Gate.Nor a b;
                    consider Gate.Xnor a b)
                  rest;
                pairs rest
            in
            pairs shortlist;
            let best =
              take_best config.pairs_per_target fst !pair_candidates
            in
            List.iter (fun (_, lac) -> emit lac) best
          end;
          (* 3-input resubstitution (ALSRAC with k = 3): AND/OR/XOR trees
             and muxes over the closest pool signals. *)
          if config.triples_per_target > 0 then begin
            let shortlist = take_best 4 distance pool in
            let scratch = Bitvec.create samples in
            let triple_candidates = ref [] in
            let consider3 op a b c =
              if a <> b && b <> c && a <> c then begin
                (match op with
                 | Gate.And ->
                   Bitvec.logand_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch;
                   Bitvec.logand_into scratch ctx.sigs.(c) ~dst:scratch
                 | Gate.Or ->
                   Bitvec.logor_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch;
                   Bitvec.logor_into scratch ctx.sigs.(c) ~dst:scratch
                 | Gate.Xor ->
                   Bitvec.logxor_into ctx.sigs.(a) ctx.sigs.(b) ~dst:scratch;
                   Bitvec.logxor_into scratch ctx.sigs.(c) ~dst:scratch
                 | Gate.Mux ->
                   Bitvec.mux_into ~sel:ctx.sigs.(a) ctx.sigs.(b) ctx.sigs.(c)
                     ~dst:scratch
                 | Gate.Nand | Gate.Nor | Gate.Xnor | Gate.Const _
                 | Gate.Input | Gate.Buf | Gate.Not ->
                   invalid_arg "Candidate_gen: unsupported triple op");
                let d = Bitvec.hamming tsig scratch in
                let gain =
                  freed_area ctx ~mffc target [ a; b; c ] -. Cost.gate_area op 3
                in
                if gain > 0.0 then
                  triple_candidates :=
                    (d, Lac.make ~target (Lac.Gate3 (op, a, b, c)) ~area_gain:gain)
                    :: !triple_candidates
              end
            in
            let rec triples = function
              | a :: (b :: rest2 as rest) ->
                List.iter
                  (fun c ->
                    consider3 Gate.And a b c;
                    consider3 Gate.Or a b c;
                    consider3 Gate.Xor a b c;
                    consider3 Gate.Mux a b c;
                    consider3 Gate.Mux b a c;
                    consider3 Gate.Mux c a b)
                  rest2;
                triples rest
              | [ _ ] | [] -> ()
            in
            triples shortlist;
            let best =
              take_best config.triples_per_target fst !triple_candidates
            in
            List.iter (fun (_, lac) -> emit lac) best
          end;
          (* Cut-rewriting (SOP) candidates. *)
          if config.sops_per_target > 0 && all_cuts.(target) <> [] then
            List.iter emit
              (sop_candidates ctx config ~mffc target all_cuts.(target))
        end
      end)
    target;
  List.rev !acc

let enumerate_cuts (ctx : Round_ctx.t) config =
  if config.sops_per_target > 0 then
    Cut_enum.enumerate ctx.net ~order:ctx.order
      ~k:(min config.cut_size Truth.max_vars)
      ~per_node:config.cuts_per_node
  else [||]

let generate ?pool (ctx : Round_ctx.t) config =
  match pool with
  | Some pool when Accals_runtime.Pool.jobs pool > 1 ->
    (* The two pre-passes are independent, so overlap them instead of
       running them back to back: cut enumeration is forked to the worker
       domains while the submitting domain computes the similarity
       buckets. Both are pure functions of [ctx], so the overlap cannot
       change their results; [Fan_out.join] publishes the forked write. *)
    let all_cuts = ref [||] in
    let ticket =
      Accals_runtime.Fan_out.fork ~label:"candidates.cuts" pool ~count:1
        (fun _ -> all_cuts := enumerate_cuts ctx config)
    in
    let buckets = similarity_buckets ctx in
    Accals_runtime.Fan_out.join pool ticket;
    let per_target =
      candidates_for_target ctx config ~buckets ~all_cuts:!all_cuts
    in
    (* Per-target enumeration fans out; concatenating the per-target lists
       in topological-order position reproduces the sequential emission
       order exactly. *)
    Accals_runtime.Fan_out.concat_map_array ~label:"candidates" pool
      ~f:per_target ctx.order
  | _ ->
    let buckets = similarity_buckets ctx in
    let all_cuts = enumerate_cuts ctx config in
    let per_target = candidates_for_target ctx config ~buckets ~all_cuts in
    List.concat_map per_target (Array.to_list ctx.order)
