(** Candidate LAC generation.

    For each live internal node the generator proposes:
    - constant-0 / constant-1 replacement,
    - SASIMI-style substitution by a signature-similar existing signal (or
      its negation) drawn from a structural window plus a global
      similarity index,
    - ALSRAC-style 2-input resubstitution (AND/OR/XOR of window signals)
      whose sampled function is close to the target's.

    Only LACs with positive estimated area gain survive. The gain of a LAC
    is the area of the target's MFFC minus the area of the installed
    replacement logic (the nodes that die when the target's old cone is
    dereferenced). *)

val default_window : int
val default_wires_per_target : int
val default_pairs_per_target : int

type config = {
  window : int;  (** structural window size per target *)
  wires_per_target : int;  (** max wire/inv-wire candidates per target *)
  pairs_per_target : int;  (** max 2-input resubstitution candidates *)
  triples_per_target : int;  (** max 3-input resubstitution candidates *)
  global_wires : int;
      (** max additional SASIMI candidates found by global signature
          matching (outside the structural window) *)
  wire_distance_fraction : float;
      (** wire candidates must agree with the target on at least
          [1 - fraction] of the samples *)
  sops_per_target : int;
      (** max cut-rewriting (SOP) candidates per target; 0 disables the
          cut-based LAC family *)
  cut_size : int;  (** max cut leaves for SOP rewriting (<= 6) *)
  cuts_per_node : int;  (** cuts kept per node during enumeration *)
}

val default_config : config

val generate :
  ?pool:Accals_runtime.Pool.t -> Round_ctx.t -> config -> Lac.t list
(** All candidate LACs for the current round, unscored
    ([delta_error = nan]). Deterministic: with a multi-domain [pool] the
    per-target enumeration fans out across domains and per-target results
    are concatenated in topological order, byte-identical to the
    sequential run. *)
