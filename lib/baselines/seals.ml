open Accals_network
open Accals_lac
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Config = Accals.Config
module Engine = Accals.Engine
module Trace = Accals.Trace
module Round_eval = Accals.Round_eval
module Telemetry = Accals_telemetry.Telemetry
module Metrics = Accals_telemetry.Metrics
module Tjson = Accals_telemetry.Json

let run ?config ?patterns ?shortlist ?pool net ~metric ~error_bound =
  if error_bound <= 0.0 then invalid_arg "Seals.run: error bound must be positive";
  let config = match config with Some c -> c | None -> Config.for_network net in
  let shortlist =
    match shortlist with Some s -> s | None -> config.Config.shortlist
  in
  let pool, owned_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Accals_runtime.Pool.create ~jobs:config.Config.jobs, true)
  in
  let patterns =
    match patterns with
    | Some p -> p
    | None ->
      Sim.for_network ~seed:config.Config.seed ~count:config.Config.samples
        ~exhaustive_limit:config.Config.exhaustive_limit net
  in
  let started = Unix.gettimeofday () in
  Telemetry.with_span ~cat:"baseline"
    ~args:[ ("circuit", Tjson.String (Network.name net)) ]
    "seals.run"
  @@ fun () ->
  Fun.protect
    ~finally:(fun () -> if owned_pool then Accals_runtime.Pool.shutdown pool)
  @@ fun () ->
  let stats = Accals_runtime.Pool.stats pool in
  let phase name f = Accals_runtime.Stats.time_phase stats name f in
  let golden = phase "simulate" (fun () -> Evaluate.output_signatures net patterns) in
  let area0 = Cost.area net in
  let delay0 = Cost.delay net in
  let current = ref (Network.copy net) in
  let error = ref 0.0 in
  let best = ref (Network.copy net) in
  let best_error = ref 0.0 in
  let rounds = ref [] in
  let evaluations = ref 0 in
  let round_index = ref 0 in
  let finished = ref false in
  let ev =
    Round_eval.create ~incremental:config.Config.incremental ~current
      ~patterns ~golden ~metric
  in
  while (not !finished) && !round_index < config.Config.max_rounds do
    incr round_index;
    Telemetry.with_span ~cat:"baseline"
      ~args:[ ("round", Tjson.Int !round_index) ]
      "round"
    @@ fun () ->
    let ctx, est = phase "simulate" (fun () -> Round_eval.begin_round ev) in
    let candidates =
      phase "candidates" (fun () ->
          Candidate_gen.generate ~pool ctx config.Config.candidate)
    in
    if candidates = [] then finished := true
    else begin
      let scored =
        phase "estimate" (fun () -> Estimator.score ~pool est ~shortlist candidates)
      in
      evaluations := !evaluations + Round_eval.take_evaluations ev;
      match phase "evaluate" (fun () -> Round_eval.eval_single ev scored) with
      | None -> finished := true
      | Some (lac, e_new) ->
        phase "evaluate" (fun () -> Round_eval.commit_single ev lac);
        let e_before = !error in
        error := e_new;
        let resim_nodes, resim_converged, resim_recycled =
          Round_eval.take_counters ev
        in
        rounds :=
          {
            Trace.index = !round_index;
            mode = Trace.Single;
            candidates = List.length candidates;
            top_count = 1;
            sol_count = 1;
            indp_count = 0;
            rand_count = 0;
            chose_indp = None;
            applied = 1;
            skipped_cycles = 0;
            error_before = e_before;
            error_after = e_new;
            estimated_error = e_before +. lac.Lac.delta_error;
            reverted = false;
            area = Cost.area !current;
            resim_nodes;
            resim_converged;
            resim_recycled;
          }
          :: !rounds;
        if e_new <= error_bound then begin
          best := Network.copy !current;
          best_error := e_new
        end
        else finished := true
    end
  done;
  let approximate = Cleanup.compact !best in
  let stats_snap = Accals_runtime.Stats.snapshot stats in
  {
    Engine.original = net;
    approximate;
    error = !best_error;
    metric;
    error_bound;
    rounds = List.rev !rounds;
    runtime_seconds = Unix.gettimeofday () -. started;
    exact_evaluations = !evaluations;
    area_ratio = Cost.area approximate /. area0;
    delay_ratio = Cost.delay approximate /. delay0;
    adp_ratio = Cost.adp approximate /. (area0 *. delay0);
    degraded = false;
    degraded_reason = None;
    final_level =
      (if config.Config.incremental then Accals_audit.Ladder.Incremental
       else Accals_audit.Ladder.Rebuild);
    ladder_events = [];
    ladder_summary =
      (if config.Config.incremental then "incremental" else "rebuild");
    audits = 0;
    incidents = [];
    certification = None;
    stats = stats_snap;
    metrics =
      Metrics.merge stats_snap.Accals_runtime.Stats.metrics
        (Metrics.snapshot (Telemetry.metrics ()));
  }
