(** SEALS [12]: the state-of-the-art single-selection iterative ALS flow
    AccALS is compared against (Section III-B).

    Each round evaluates the candidate LACs with the same sensitivity-driven
    two-level estimator as AccALS but applies only the single best LAC
    (minimum ΔE, ties by larger area gain). The per-round estimation
    shortlist is small — the flow only needs the argmin — which is exactly
    the pruning benefit SEALS gets from its sensitivity metric. *)

open Accals_network
module Metric := Accals_metrics.Metric

val run :
  ?config:Accals.Config.t ->
  ?patterns:Sim.patterns ->
  ?shortlist:int ->
  ?pool:Accals_runtime.Pool.t ->
  Network.t ->
  metric:Metric.kind ->
  error_bound:float ->
  Accals.Engine.report
(** Same report shape as {!Accals.Engine.run}; every round is a
    [Trace.Single] round. [shortlist] defaults to the config's shortlist so
    that per-round estimation effort matches AccALS — the controlled
    variable of the paper's comparison is single- versus multi-LAC
    selection. *)
