(** AMOSA-style evolutionary baseline [15] (Section III-C).

    Selects multiple LACs per round with archived multi-objective simulated
    annealing over subsets of the round's conflict-free candidate LACs. A
    state is a LAC subset; its objectives are the exact-on-samples error and
    the circuit area after application. Non-dominated (error, area) points
    are archived; acceptance follows the AMOSA rule (always accept
    dominating moves, accept dominated moves with a temperature-scaled
    probability of the domination amount). At the end of a round the
    archived point with the largest area reduction within the error bound is
    applied, and the process repeats on the new circuit.

    Every annealing proposal costs a full circuit evaluation, which is what
    makes the approach slow relative to AccALS (Table III). *)

open Accals_network
module Metric := Accals_metrics.Metric

type config = {
  iterations_per_round : int;  (** annealing proposals per round *)
  subset_limit : int;  (** max LACs in a state *)
  pool_size : int;  (** conflict-free candidates fed to the annealer *)
  initial_temperature : float;
  cooling : float;  (** geometric factor per proposal *)
  seed : int;
}

val default_config : config

type result = {
  report : Accals.Engine.report;
  archive : (float * float) list;
      (** non-dominated (error, area ratio) points collected over the whole
          run — the Fig. 7 curve *)
}

val run :
  ?config:Accals.Config.t ->
  ?amosa:config ->
  ?patterns:Sim.patterns ->
  ?pool:Accals_runtime.Pool.t ->
  Network.t ->
  metric:Metric.kind ->
  error_bound:float ->
  result
