open Accals_network
open Accals_lac
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Prng = Accals_bitvec.Prng
module Config = Accals.Config
module Engine = Accals.Engine
module Trace = Accals.Trace
module Conflict_graph = Accals.Conflict_graph
module Round_eval = Accals.Round_eval

type config = {
  iterations_per_round : int;
  subset_limit : int;
  pool_size : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_config =
  {
    iterations_per_round = 3000;
    subset_limit = 12;
    pool_size = 48;
    initial_temperature = 0.08;
    cooling = 0.995;
    seed = 5;
  }

type result = { report : Engine.report; archive : (float * float) list }

(* (error, area) Pareto bookkeeping: smaller is better on both axes. *)
let dominates (e1, a1) (e2, a2) =
  e1 <= e2 && a1 <= a2 && (e1 < e2 || a1 < a2)

let archive_insert archive point =
  if List.exists (fun p -> dominates p point || p = point) archive then archive
  else point :: List.filter (fun p -> not (dominates point p)) archive

let run ?config ?(amosa = default_config) ?patterns ?pool net ~metric
    ~error_bound =
  if error_bound <= 0.0 then invalid_arg "Amosa.run: error bound must be positive";
  let config = match config with Some c -> c | None -> Config.for_network net in
  let dpool, owned_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Accals_runtime.Pool.create ~jobs:config.Config.jobs, true)
  in
  let patterns =
    match patterns with
    | Some p -> p
    | None ->
      Sim.for_network ~seed:config.Config.seed ~count:config.Config.samples
        ~exhaustive_limit:config.Config.exhaustive_limit net
  in
  let started = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> if owned_pool then Accals_runtime.Pool.shutdown dpool)
  @@ fun () ->
  let golden = Evaluate.output_signatures net patterns in
  let area0 = Cost.area net in
  let delay0 = Cost.delay net in
  let rng = Prng.create amosa.seed in
  let current = ref (Network.copy net) in
  let error = ref 0.0 in
  let best = ref (Network.copy net) in
  let best_error = ref 0.0 in
  let rounds = ref [] in
  let evaluations = ref 0 in
  let global_archive = ref [ (0.0, 1.0) ] in
  let round_index = ref 0 in
  let finished = ref false in
  let ev =
    Round_eval.create ~incremental:config.Config.incremental ~current
      ~patterns ~golden ~metric
  in
  while (not !finished) && !round_index < config.Config.max_rounds do
    incr round_index;
    let ctx, est = Round_eval.begin_round ev in
    let candidates =
      Candidate_gen.generate ~pool:dpool ctx config.Config.candidate
    in
    if candidates = [] then finished := true
    else begin
      let scored =
        Estimator.score ~pool:dpool est ~shortlist:amosa.pool_size candidates
      in
      evaluations := !evaluations + Round_eval.take_evaluations ev;
      let l_sol, _ = Conflict_graph.find_and_solve scored in
      let pool = Array.of_list l_sol in
      let n = Array.length pool in
      if n = 0 then finished := true
      else begin
        (* Evaluate a subset: exact error and area after application and
           sweep, without committing anything. *)
        let evaluate subset =
          let lacs = List.map (fun i -> pool.(i)) subset in
          let applied, e, area = Round_eval.probe ev lacs in
          incr evaluations;
          (applied, e, area)
        in
        let mutate subset =
          let add () =
            let v = Prng.int rng n in
            if List.mem v subset || List.length subset >= amosa.subset_limit
            then subset
            else v :: subset
          in
          let remove () =
            match subset with
            | [] -> subset
            | _ ->
              let k = Prng.int rng (List.length subset) in
              List.filteri (fun i _ -> i <> k) subset
          in
          match Prng.int rng 3 with
          | 0 -> add ()
          | 1 -> remove ()
          | _ -> add () |> fun s -> (match s with [] -> s | _ -> s)
        in
        let state = ref [ Prng.int rng n ] in
        let _, e0, a0 = evaluate !state in
        let state_point = ref (e0, a0 /. area0) in
        let round_best = ref None in
        let note_candidate subset point =
          global_archive := archive_insert !global_archive point;
          let e, _ = point in
          if e <= error_bound then
            match !round_best with
            | Some (_, _, best_a) when snd point >= best_a -> ()
            | _ -> round_best := Some (subset, e, snd point)
        in
        note_candidate !state !state_point;
        let temperature = ref amosa.initial_temperature in
        for _ = 1 to amosa.iterations_per_round do
          let proposal = mutate !state in
          if proposal <> !state then begin
            let _, e, a = evaluate proposal in
            let point = (e, a /. area0) in
            note_candidate proposal point;
            let accept =
              if dominates point !state_point then true
              else if dominates !state_point point then begin
                (* Accept a dominated move with temperature-scaled odds on
                   the domination amount (AMOSA's acceptance). *)
                let de = fst point -. fst !state_point in
                let da = snd point -. snd !state_point in
                let amount = (max 0.0 de /. max error_bound 1e-9) +. max 0.0 da in
                Prng.float rng < exp (-.amount /. max !temperature 1e-9)
              end
              else Prng.bool rng
            in
            if accept then begin
              state := proposal;
              state_point := point
            end
          end;
          temperature := !temperature *. amosa.cooling
        done;
        match !round_best with
        | None -> finished := true
        | Some (subset, _, _) when subset = [] -> finished := true
        | Some (subset, _, _) ->
          let applied, e_new, _ = evaluate subset in
          if applied = [] then finished := true else begin
          let e_before = !error in
          Round_eval.commit_set ev applied;
          error := e_new;
          let resim_nodes, resim_converged, resim_recycled =
            Round_eval.take_counters ev
          in
          rounds :=
            {
              Trace.index = !round_index;
              mode = Trace.Multi;
              candidates = List.length candidates;
              top_count = List.length scored;
              sol_count = n;
              indp_count = List.length applied;
              rand_count = 0;
              chose_indp = None;
              applied = List.length applied;
              skipped_cycles = 0;
              error_before = e_before;
              error_after = e_new;
              estimated_error =
                List.fold_left
                  (fun acc l -> acc +. l.Lac.delta_error)
                  e_before applied;
              reverted = false;
              area = Cost.area !current;
              resim_nodes;
              resim_converged;
              resim_recycled;
            }
            :: !rounds;
          if e_new <= error_bound then begin
            best := Network.copy !current;
            best_error := e_new
          end
          else finished := true
          end
      end
    end
  done;
  let approximate = Cleanup.compact !best in
  let stats_snap = Accals_runtime.Stats.snapshot (Accals_runtime.Pool.stats dpool) in
  let report =
    {
      Engine.original = net;
      approximate;
      error = !best_error;
      metric;
      error_bound;
      rounds = List.rev !rounds;
      runtime_seconds = Unix.gettimeofday () -. started;
      exact_evaluations = !evaluations;
      area_ratio = Cost.area approximate /. area0;
      delay_ratio = Cost.delay approximate /. delay0;
      adp_ratio = Cost.adp approximate /. (area0 *. delay0);
      degraded = false;
      degraded_reason = None;
      final_level =
        (if config.Config.incremental then Accals_audit.Ladder.Incremental
         else Accals_audit.Ladder.Rebuild);
      ladder_events = [];
      ladder_summary =
        (if config.Config.incremental then "incremental" else "rebuild");
      audits = 0;
      incidents = [];
      certification = None;
      stats = stats_snap;
      metrics =
        Accals_telemetry.Metrics.merge
          stats_snap.Accals_runtime.Stats.metrics
          (Accals_telemetry.Metrics.snapshot
             (Accals_telemetry.Telemetry.metrics ()));
    }
  in
  { report; archive = List.sort compare !global_archive }
