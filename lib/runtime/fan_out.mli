(** Deterministic fan-out over index ranges, arrays and lists.

    Every function here splits its work into ordered units, runs the units
    on the pool's domains, and assembles results in submission order, so the
    output is bit-identical to a sequential run no matter how many domains
    execute it or how the scheduler interleaves them. Work units are
    claimed dynamically (an atomic cursor), which load-balances irregular
    task costs without affecting where each result lands.

    [state]-carrying variants create one private scratch state per chunk
    with [state ()]; the state must be pure scratch — per-element results
    must not depend on which elements share a state, or determinism across
    [jobs] values is lost. *)

val map_array : Pool.t -> f:('a -> 'b) -> 'a array -> 'b array
(** One task per element; [result.(i) = f arr.(i)]. *)

val map_list : Pool.t -> f:('a -> 'b) -> 'a list -> 'b list

val map_array_with :
  Pool.t -> state:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a array -> 'b array
(** Elements are grouped into contiguous chunks; each chunk task calls
    [state ()] once and folds its elements through [f] left to right.
    Results land by element index. *)

val map_list_with :
  Pool.t -> state:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a list -> 'b list

val map_reduce :
  Pool.t -> n:int -> map:(int -> 'b) -> merge:('b -> 'b -> 'b) -> init:'b -> 'b
(** [map_reduce p ~n ~map ~merge ~init] computes [map i] for [0 <= i < n]
    in parallel and folds [merge] over the results in index order:
    [merge (... (merge init (map 0)) ...) (map (n-1))]. The merge runs on
    the submitting domain, so [merge] needs no synchronization and the
    association order is fixed — the result does not depend on [jobs]. *)

val concat_map_array : Pool.t -> f:('a -> 'b list) -> 'a array -> 'b list
(** [concat_map_array p ~f arr] is [List.concat_map f (Array.to_list arr)]
    with the per-element lists computed in parallel. *)
