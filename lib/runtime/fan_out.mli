(** Deterministic fan-out over index ranges, arrays and lists, with bounded
    recovery from failed work units.

    Every function here splits its work into ordered units, runs the units
    on the pool's domains, and assembles results in submission order, so the
    output is bit-identical to a sequential run no matter how many domains
    execute it or how the scheduler interleaves them. Work units are
    claimed dynamically (an atomic cursor), which load-balances irregular
    task costs without affecting where each result lands.

    [state]-carrying variants create one private scratch state per chunk
    with [state ()]; the state must be pure scratch — per-element results
    must not depend on which elements share a state, or determinism across
    [jobs] values is lost.

    {2 Failure recovery}

    A unit that raises (a real defect, or an injected
    {!Accals_resilience.Fault} crash) does not abort the fan-out: after the
    batch drains, the failed units — and only those — are resubmitted in
    ascending index order, up to two retries. Because results land by index
    and units must be pure, a recovered run is bit-identical to a
    failure-free one. Units still failing after the last attempt raise
    {!Runtime_failure} listing every dead unit, instead of leaking a bare
    worker exception. *)

exception
  Runtime_failure of {
    batch : int;  (** logical submission serial (see {!Accals_resilience.Fault}) *)
    attempts : int;  (** attempts made, including the first *)
    failed : (int * string) list;
        (** still-failing unit indices with their printed exceptions,
            ascending *)
  }

val max_attempts : int
(** Total attempts per unit (first run + retries). *)

val submit : ?label:string -> Pool.t -> count:int -> (int -> unit) -> unit
(** [submit pool ~count task] runs [task 0 .. task (count - 1)] with the
    retry policy above. All mapping functions below route through this;
    direct {!Pool.run} bypasses recovery. [label] keys the pool's
    per-task cost model (chunk sizing, sequential-inline cutoff) and the
    [accals_pool_task_cost_seconds] histogram; fan-outs doing the same
    kind of work should share a label. *)

val map_array : ?label:string -> Pool.t -> f:('a -> 'b) -> 'a array -> 'b array
(** One task per element; [result.(i) = f arr.(i)]. *)

val map_list : ?label:string -> Pool.t -> f:('a -> 'b) -> 'a list -> 'b list

val map_array_with :
  ?label:string ->
  Pool.t ->
  state:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  'a array ->
  'b array
(** Elements are grouped into contiguous chunks; each chunk task calls
    [state ()] once and folds its elements through [f] left to right.
    Results land by element index. A retried chunk re-creates its scratch
    state and recomputes every one of its elements. *)

val map_list_with :
  ?label:string ->
  Pool.t ->
  state:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  'a list ->
  'b list

val map_reduce :
  ?label:string ->
  Pool.t ->
  n:int ->
  map:(int -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  init:'b ->
  'b
(** [map_reduce p ~n ~map ~merge ~init] computes [map i] for [0 <= i < n]
    in parallel and folds [merge] over the results in index order:
    [merge (... (merge init (map 0)) ...) (map (n-1))]. The merge runs on
    the submitting domain, so [merge] needs no synchronization and the
    association order is fixed — the result does not depend on [jobs]. *)

val concat_map_array :
  ?label:string -> Pool.t -> f:('a -> 'b list) -> 'a array -> 'b list
(** [concat_map_array p ~f arr] is [List.concat_map f (Array.to_list arr)]
    with the per-element lists computed in parallel. *)

(** {2 Overlapping fork/join}

    For a side computation the submitting domain wants to overlap with
    its own sequential work: fork it, compute, then join before reading
    anything the forked tasks wrote. Unlike {!submit} there is no
    fault-injection hook and no retry — a task failure re-raises at
    {!join}. Publication of the forked tasks' writes to the joiner is
    guaranteed by {!Pool.await}. *)

val fork : ?label:string -> Pool.t -> count:int -> (int -> unit) -> Pool.ticket

val join : Pool.t -> Pool.ticket -> unit
(** Wait for a forked fan-out; re-raises the lowest-index failure, if
    any. Join each ticket exactly once. *)
