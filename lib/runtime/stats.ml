open Accals_telemetry

let phase_family = "accals_phase_seconds_total"

type t = {
  jobs : int;
  metrics : Metrics.t;
  tasks : Metrics.counter;
  batches : Metrics.counter;
  waits : Metrics.counter;
}

let create ~jobs =
  let metrics = Metrics.create () in
  {
    jobs;
    metrics;
    tasks =
      Metrics.counter metrics "accals_pool_tasks_total"
        ~help:"Tasks executed by the pool (including sequential bypass)";
    batches =
      Metrics.counter metrics "accals_pool_batches_total"
        ~help:"Pool.run invocations that fanned out to workers";
    waits =
      Metrics.counter metrics "accals_pool_waits_total"
        ~help:"Times a worker domain slept waiting for work";
  }

let jobs t = t.jobs
let metrics t = t.metrics

let incr_tasks t = Metrics.incr t.tasks
let add_tasks t n = Metrics.add t.tasks n
let incr_batches t = Metrics.incr t.batches
let incr_waits t = Metrics.incr t.waits

let phase_counter t name =
  Metrics.counter t.metrics phase_family
    ~help:"Wall-clock seconds accumulated per engine phase"
    ~labels:[ ("phase", name) ]

let add_phase t name seconds = Metrics.addf (phase_counter t name) seconds

let time_phase t name f =
  let span = Telemetry.begin_span ~cat:"phase" name in
  let started = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      add_phase t name (Clock.now () -. started);
      Telemetry.end_span span)
    f

type snapshot = {
  jobs : int;
  tasks : int;
  batches : int;
  waits : int;
  phases : (string * float) list;
  metrics : Metrics.snapshot;
}

let snapshot (t : t) =
  let metrics = Metrics.snapshot t.metrics in
  let phases =
    List.filter_map
      (fun s ->
        if s.Metrics.name = phase_family then
          match (List.assoc_opt "phase" s.Metrics.labels, s.Metrics.value) with
          | Some phase, Metrics.Counter seconds -> Some (phase, seconds)
          | _ -> None
        else None)
      metrics
  in
  {
    jobs = t.jobs;
    tasks = int_of_float (Metrics.counter_value t.tasks);
    batches = int_of_float (Metrics.counter_value t.batches);
    waits = int_of_float (Metrics.counter_value t.waits);
    phases;
    metrics;
  }

let empty =
  { jobs = 1; tasks = 0; batches = 0; waits = 0; phases = []; metrics = [] }

let phase_seconds snap name =
  match List.assoc_opt name snap.phases with Some s -> s | None -> 0.0
