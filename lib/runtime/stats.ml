open Accals_telemetry

let phase_family = "accals_phase_seconds_total"

(* Per-label exponentially weighted moving average of per-task cost,
   feeding the pool's chunk-size planner and its sequential-inline
   cutoff. Updated by worker domains under a mutex (one update per
   chunk, so contention is negligible next to the work itself). *)
type cost_model = {
  cm_mutex : Mutex.t;
  cm_ewma : (string, float ref) Hashtbl.t;
}

type t = {
  jobs : int;
  metrics : Metrics.t;
  tasks : Metrics.counter;
  batches : Metrics.counter;
  waits : Metrics.counter;
  steals : Metrics.counter;
  idle_seconds : Metrics.counter;
  idle_workers : Metrics.gauge;
  idle_now : int Atomic.t;
  costs : cost_model;
}

let create ~jobs =
  let metrics = Metrics.create () in
  {
    jobs;
    metrics;
    tasks =
      Metrics.counter metrics "accals_pool_tasks_total"
        ~help:"Tasks executed by the pool (including sequential bypass)";
    batches =
      Metrics.counter metrics "accals_pool_batches_total"
        ~help:"Pool.run invocations that fanned out to workers";
    waits =
      Metrics.counter metrics "accals_pool_waits_total"
        ~help:"Times a worker domain slept waiting for work";
    steals =
      Metrics.counter metrics "accals_pool_steal_total"
        ~help:"Chunks taken from another domain's deque";
    idle_seconds =
      Metrics.counter metrics "accals_pool_idle_seconds_total"
        ~help:"Seconds worker domains spent parked waiting for work";
    idle_workers =
      Metrics.gauge metrics "accals_pool_workers_idle"
        ~help:"Worker domains currently parked waiting for work";
    idle_now = Atomic.make 0;
    costs = { cm_mutex = Mutex.create (); cm_ewma = Hashtbl.create 16 };
  }

let jobs t = t.jobs
let metrics t = t.metrics

let incr_tasks t = Metrics.incr t.tasks
let add_tasks t n = Metrics.add t.tasks n
let incr_batches t = Metrics.incr t.batches
let incr_waits t = Metrics.incr t.waits
let incr_steals t = Metrics.incr t.steals

let worker_parked t =
  Metrics.set t.idle_workers
    (float_of_int (1 + Atomic.fetch_and_add t.idle_now 1))

let worker_unparked t seconds =
  Metrics.set t.idle_workers
    (float_of_int (Atomic.fetch_and_add t.idle_now (-1) - 1));
  if seconds > 0.0 then Metrics.addf t.idle_seconds seconds

let cost_buckets =
  [| 1e-7; 3e-7; 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 1e-2; 1e-1 |]

let cost_histogram t label =
  Metrics.histogram t.metrics "accals_pool_task_cost_seconds"
    ~help:"Measured per-task wall seconds, by fan-out label"
    ~labels:[ ("phase", label) ]
    ~buckets:cost_buckets

let ewma_alpha = 0.2

let note_task_cost t ~label ~tasks ~seconds =
  if tasks > 0 then begin
    let per_task = seconds /. float_of_int tasks in
    Metrics.observe (cost_histogram t label) per_task;
    let cm = t.costs in
    Mutex.lock cm.cm_mutex;
    (match Hashtbl.find_opt cm.cm_ewma label with
    | Some r -> r := ((1.0 -. ewma_alpha) *. !r) +. (ewma_alpha *. per_task)
    | None -> Hashtbl.add cm.cm_ewma label (ref per_task));
    Mutex.unlock cm.cm_mutex
  end

let task_cost t label =
  let cm = t.costs in
  Mutex.lock cm.cm_mutex;
  let c = Option.map ( ! ) (Hashtbl.find_opt cm.cm_ewma label) in
  Mutex.unlock cm.cm_mutex;
  c

let phase_counter t name =
  Metrics.counter t.metrics phase_family
    ~help:"Wall-clock seconds accumulated per engine phase"
    ~labels:[ ("phase", name) ]

let add_phase t name seconds = Metrics.addf (phase_counter t name) seconds

let time_phase t name f =
  let span = Telemetry.begin_span ~cat:"phase" name in
  let started = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      add_phase t name (Clock.now () -. started);
      Telemetry.end_span span)
    f

type snapshot = {
  jobs : int;
  tasks : int;
  batches : int;
  waits : int;
  steals : int;
  idle_seconds : float;
  phases : (string * float) list;
  metrics : Metrics.snapshot;
}

let snapshot (t : t) =
  let metrics = Metrics.snapshot t.metrics in
  let phases =
    List.filter_map
      (fun s ->
        if s.Metrics.name = phase_family then
          match (List.assoc_opt "phase" s.Metrics.labels, s.Metrics.value) with
          | Some phase, Metrics.Counter seconds -> Some (phase, seconds)
          | _ -> None
        else None)
      metrics
  in
  {
    jobs = t.jobs;
    tasks = int_of_float (Metrics.counter_value t.tasks);
    batches = int_of_float (Metrics.counter_value t.batches);
    waits = int_of_float (Metrics.counter_value t.waits);
    steals = int_of_float (Metrics.counter_value t.steals);
    idle_seconds = Metrics.counter_value t.idle_seconds;
    phases;
    metrics;
  }

let empty =
  {
    jobs = 1;
    tasks = 0;
    batches = 0;
    waits = 0;
    steals = 0;
    idle_seconds = 0.0;
    phases = [];
    metrics = [];
  }

let phase_seconds snap name =
  match List.assoc_opt name snap.phases with Some s -> s | None -> 0.0
