type t = {
  jobs : int;
  tasks : int Atomic.t;
  batches : int Atomic.t;
  waits : int Atomic.t;
  mutex : Mutex.t;  (* guards [phases] *)
  mutable phases : (string * float ref) list;  (* reverse insertion order *)
}

let create ~jobs =
  {
    jobs;
    tasks = Atomic.make 0;
    batches = Atomic.make 0;
    waits = Atomic.make 0;
    mutex = Mutex.create ();
    phases = [];
  }

let jobs t = t.jobs

let incr_tasks t = Atomic.incr t.tasks

let add_tasks t n = ignore (Atomic.fetch_and_add t.tasks n)

let incr_batches t = Atomic.incr t.batches

let incr_waits t = Atomic.incr t.waits

let add_phase t name seconds =
  Mutex.lock t.mutex;
  (match List.assoc_opt name t.phases with
   | Some cell -> cell := !cell +. seconds
   | None -> t.phases <- (name, ref seconds) :: t.phases);
  Mutex.unlock t.mutex

let time_phase t name f =
  let started = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_phase t name (Unix.gettimeofday () -. started)) f

type snapshot = {
  jobs : int;
  tasks : int;
  batches : int;
  waits : int;
  phases : (string * float) list;
}

let snapshot t =
  Mutex.lock t.mutex;
  let phases = List.rev_map (fun (name, cell) -> (name, !cell)) t.phases in
  Mutex.unlock t.mutex;
  {
    jobs = t.jobs;
    tasks = Atomic.get t.tasks;
    batches = Atomic.get t.batches;
    waits = Atomic.get t.waits;
    phases;
  }

let empty = { jobs = 1; tasks = 0; batches = 0; waits = 0; phases = [] }

let phase_seconds snap name =
  match List.assoc_opt name snap.phases with Some s -> s | None -> 0.0
