(** Work accounting for the domain-parallel runtime, backed by the
    telemetry metrics registry.

    A [Stats.t] is attached to a {!Pool.t} and accumulates, across the
    pool's whole lifetime: the number of tasks executed, the number of
    batches (one per {!Pool.run}), and the number of times a worker went to
    sleep waiting for work. The counters live in a per-pool
    {!Accals_telemetry.Metrics} registry (names [accals_pool_*_total]),
    so they appear directly in Prometheus exports; the integer parts are
    [Atomic]-backed, so workers on different domains bump them without
    locks.

    Named phases ("simulate", "estimate", ...) accumulate wall-clock
    seconds via {!time_phase} into the registry family
    [accals_phase_seconds_total{phase=...}]. Timing uses the monotonic
    {!Accals_telemetry.Clock} — a wall-clock step (NTP slew, manual date
    change) cannot produce negative or inflated phase times. A
    {!snapshot} freezes everything into a plain record for reports and
    the bench harness. *)

type t

val create : jobs:int -> t

val jobs : t -> int

val metrics : t -> Accals_telemetry.Metrics.t
(** The pool's backing registry (counters and phase times live here). *)

(** {1 Counters (used by [Pool])} *)

val incr_tasks : t -> unit
val add_tasks : t -> int -> unit
val incr_batches : t -> unit
val incr_waits : t -> unit

val incr_steals : t -> unit
(** A chunk was taken from another domain's deque
    ([accals_pool_steal_total]). *)

val worker_parked : t -> unit
(** A worker domain is about to sleep; bumps the
    [accals_pool_workers_idle] gauge. *)

val worker_unparked : t -> float -> unit
(** The worker woke after sleeping for the given monotonic seconds;
    drops the gauge and accumulates [accals_pool_idle_seconds_total]. *)

(** {1 Task-cost model}

    Worker domains report measured per-chunk durations; the pool reads
    the per-label EWMA back to size chunks and to decide when a fan-out
    is too small to be worth waking workers for. Each report also lands
    in the [accals_pool_task_cost_seconds{phase=...}] histogram so chunk
    sizing is observable from Prometheus exports. *)

val note_task_cost : t -> label:string -> tasks:int -> seconds:float -> unit
(** Record that [tasks] tasks of the given fan-out label took [seconds]
    of wall clock in total. No-op when [tasks = 0]. *)

val task_cost : t -> string -> float option
(** Current EWMA of per-task seconds for a label; [None] until the first
    measurement. *)

(** {1 Phase timing} *)

val time_phase : t -> string -> (unit -> 'a) -> 'a
(** [time_phase t name f] runs [f ()] and adds its monotonic wall-clock
    duration to the accumulated time of phase [name]; when the ambient
    telemetry tracer is enabled it also records a span (category
    ["phase"]). Phases appear in snapshots in first-recorded order.

    Re-entrancy: calls may nest, including the same phase inside itself —
    each level accumulates its own full duration on exit (so a
    self-nested phase double-counts the inner interval; the engine's
    phases never self-nest). The duration is recorded even if [f]
    raises. *)

val add_phase : t -> string -> float -> unit
(** Add [seconds] to phase [name] directly. *)

(** {1 Snapshots} *)

type snapshot = {
  jobs : int;  (** pool size the stats were collected under *)
  tasks : int;  (** tasks executed (including sequential bypass) *)
  batches : int;  (** [Pool.run] invocations that fanned out *)
  waits : int;  (** times a worker domain slept waiting for work *)
  steals : int;  (** chunks taken from another domain's deque *)
  idle_seconds : float;  (** total seconds workers spent parked *)
  phases : (string * float) list;  (** per-phase wall seconds, in order *)
  metrics : Accals_telemetry.Metrics.snapshot;
      (** full registry snapshot (pool counters, phase seconds, and any
          engine metrics recorded against this pool's registry) *)
}

val snapshot : t -> snapshot

val empty : snapshot
(** All-zero snapshot with [jobs = 1]; the placeholder for flows that never
    touched a pool. *)

val phase_seconds : snapshot -> string -> float
(** Accumulated seconds of a phase, 0 if never recorded. *)
