(** Work accounting for the domain-parallel runtime.

    A [Stats.t] is attached to a {!Pool.t} and accumulates, across the
    pool's whole lifetime: the number of tasks executed, the number of
    batches (one per {!Pool.run}), and the number of times a worker went to
    sleep waiting for work. Counters are [Atomic.t]-backed so workers on
    different domains can bump them without locks.

    Independently, named phases ("simulate", "estimate", ...) accumulate
    wall-clock seconds via {!time_phase}; phase timing is only ever driven
    from the submitting domain, so it needs no synchronization beyond the
    counters themselves. A {!snapshot} freezes everything into a plain
    record for reports and the bench harness. *)

type t

val create : jobs:int -> t

val jobs : t -> int

(** {1 Counters (used by [Pool])} *)

val incr_tasks : t -> unit
val add_tasks : t -> int -> unit
val incr_batches : t -> unit
val incr_waits : t -> unit

(** {1 Phase timing} *)

val time_phase : t -> string -> (unit -> 'a) -> 'a
(** [time_phase t name f] runs [f ()] and adds its wall-clock duration to
    the accumulated time of phase [name]. Phases appear in snapshots in
    first-recorded order. Re-entrant calls to the same phase are summed. *)

val add_phase : t -> string -> float -> unit
(** Add [seconds] to phase [name] directly. *)

(** {1 Snapshots} *)

type snapshot = {
  jobs : int;  (** pool size the stats were collected under *)
  tasks : int;  (** tasks executed (including sequential bypass) *)
  batches : int;  (** [Pool.run] invocations that fanned out *)
  waits : int;  (** times a worker domain slept waiting for work *)
  phases : (string * float) list;  (** per-phase wall seconds, in order *)
}

val snapshot : t -> snapshot

val empty : snapshot
(** All-zero snapshot with [jobs = 1]; the placeholder for flows that never
    touched a pool. *)

val phase_seconds : snapshot -> string -> float
(** Accumulated seconds of a phase, 0 if never recorded. *)
