(* All result assembly is positional: task [i] writes slot [i] (or the slots
   of chunk [i]), so the merged output never depends on scheduling. *)

module Fault = Accals_resilience.Fault

exception
  Runtime_failure of {
    batch : int;
    attempts : int;
    failed : (int * string) list;
  }

let () =
  Printexc.register_printer (function
    | Runtime_failure { batch; attempts; failed } ->
      Some
        (Printf.sprintf
           "Runtime_failure (batch %d: %d task%s still failing after %d \
            attempts; first: task %s)"
           batch (List.length failed)
           (if List.length failed = 1 then "" else "s")
           attempts
           (match failed with
            | (i, msg) :: _ -> Printf.sprintf "%d raised %s" i msg
            | [] -> "?"))
    | _ -> None)

let max_attempts = 3

(* Run [task 0 .. task (count-1)] on the pool with bounded retry of failed
   indices. Each attempt resubmits only the still-failing indices, in
   ascending index order; because every result lands by its original index
   and each index's computation is pure, a retried batch merges into output
   bit-identical to a failure-free run. The fault-injection hook wraps every
   attempt under the same logical batch serial so an armed Fault spec
   selects the same (batch, index) units no matter how work is scheduled. *)
let submit ?label pool ~count task =
  if count > 0 then begin
    let batch = Fault.fresh_batch () in
    let attempt_task attempt i =
      Fault.check ~batch ~index:i ~attempt;
      task i
    in
    let rec go attempt indices =
      (* [indices = None] is the full range, [Some arr] a failed subset in
         ascending order. *)
      let failures =
        match indices with
        | None -> Pool.try_run ?label pool ~count (attempt_task attempt)
        | Some arr ->
          Pool.try_run ?label pool ~count:(Array.length arr) (fun k ->
              attempt_task attempt arr.(k))
          |> List.map (fun (f : Pool.failure) -> { f with Pool.index = arr.(f.Pool.index) })
      in
      match failures with
      | [] -> ()
      | failures when attempt + 1 >= max_attempts ->
        raise
          (Runtime_failure
             {
               batch;
               attempts = attempt + 1;
               failed =
                 List.map
                   (fun (f : Pool.failure) ->
                     (f.Pool.index, Printexc.to_string f.Pool.exn))
                   failures;
             })
      | failures ->
        Accals_telemetry.Telemetry.instant ~cat:"pool"
          ~args:
            [
              ("batch", Accals_telemetry.Json.Int batch);
              ("attempt", Accals_telemetry.Json.Int (attempt + 1));
              ("failed", Accals_telemetry.Json.Int (List.length failures));
            ]
          "fan_out.retry";
        go (attempt + 1)
          (Some (Array.of_list (List.map (fun (f : Pool.failure) -> f.Pool.index) failures)))
    in
    go 0 None
  end

let map_array ?label pool ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    submit ?label pool ~count:n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_list ?label pool ~f items =
  Array.to_list (map_array ?label pool ~f (Array.of_list items))

(* Contiguous chunk ranges covering [0, n): at most [chunks] of them, sized
   within one element of each other. The layout depends only on [n] and
   [chunks], never on scheduling. *)
let ranges ~chunks n =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun c ->
      let lo = (c * base) + min c extra in
      let len = base + if c < extra then 1 else 0 in
      (lo, len))

let default_chunks pool n =
  (* Enough chunks for dynamic load balancing, few enough that per-chunk
     state creation stays negligible. *)
  min n (4 * Pool.jobs pool)

(* The [state]-carrying variants chunk here (one state per chunk), so the
   pool sees one task per chunk. They use a "<label>#chunk" cost key so
   their per-chunk durations never pollute the per-element cost model of
   a flat fan-out sharing the same label. *)
let chunk_label = Option.map (fun l -> l ^ "#chunk")

let map_array_with ?label pool ~state ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let ranges = ranges ~chunks:(default_chunks pool n) n in
    submit ?label:(chunk_label label) pool ~count:(Array.length ranges) (fun c ->
        let lo, len = ranges.(c) in
        let s = state () in
        for i = lo to lo + len - 1 do
          results.(i) <- Some (f s arr.(i))
        done);
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_list_with ?label pool ~state ~f items =
  Array.to_list (map_array_with ?label pool ~state ~f (Array.of_list items))

let map_reduce ?label pool ~n ~map ~merge ~init =
  if n = 0 then init
  else begin
    let results = Array.make n None in
    submit ?label pool ~count:n (fun i -> results.(i) <- Some (map i));
    Array.fold_left
      (fun acc r -> match r with Some r -> merge acc r | None -> assert false)
      init results
  end

let concat_map_array ?label pool ~f arr =
  List.concat (Array.to_list (map_array ?label pool ~f arr))

(* Overlapping fork/join. No fault-injection hook and no retry: a forked
   side computation is for pure compute the submitter wants to overlap
   with its own work, and a failure simply re-raises at [join]. *)
let fork ?label pool ~count task = Pool.fork ?label pool ~count task

let join pool ticket =
  match Pool.await pool ticket with
  | [] -> ()
  | f :: _ -> Printexc.raise_with_backtrace f.Pool.exn f.Pool.backtrace
