(* All result assembly is positional: task [i] writes slot [i] (or the slots
   of chunk [i]), so the merged output never depends on scheduling. *)

let map_array pool ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    Pool.run pool ~count:n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_list pool ~f items =
  Array.to_list (map_array pool ~f (Array.of_list items))

(* Contiguous chunk ranges covering [0, n): at most [chunks] of them, sized
   within one element of each other. The layout depends only on [n] and
   [chunks], never on scheduling. *)
let ranges ~chunks n =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun c ->
      let lo = (c * base) + min c extra in
      let len = base + if c < extra then 1 else 0 in
      (lo, len))

let default_chunks pool n =
  (* Enough chunks for dynamic load balancing, few enough that per-chunk
     state creation stays negligible. *)
  min n (4 * Pool.jobs pool)

let map_array_with pool ~state ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let ranges = ranges ~chunks:(default_chunks pool n) n in
    Pool.run pool ~count:(Array.length ranges) (fun c ->
        let lo, len = ranges.(c) in
        let s = state () in
        for i = lo to lo + len - 1 do
          results.(i) <- Some (f s arr.(i))
        done);
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_list_with pool ~state ~f items =
  Array.to_list (map_array_with pool ~state ~f (Array.of_list items))

let map_reduce pool ~n ~map ~merge ~init =
  if n = 0 then init
  else begin
    let results = Array.make n None in
    Pool.run pool ~count:n (fun i -> results.(i) <- Some (map i));
    Array.fold_left
      (fun acc r -> match r with Some r -> merge acc r | None -> assert false)
      init results
  end

let concat_map_array pool ~f arr =
  List.concat (Array.to_list (map_array pool ~f arr))
