open Accals_telemetry

(* Persistent work-stealing pool.

   One deque per domain (slot 0 is the submitting domain, slots 1.. the
   workers). A fan-out is split into contiguous chunks — sized from the
   measured per-task cost of its label — which are handed round-robin to
   the workers through small mutex-protected inboxes; each worker moves
   its inbox into its own Chase–Lev deque, works LIFO off the bottom,
   and steals FIFO from the top of the others when it runs dry. The
   submitting domain participates too (it owns slot 0 and steals like
   everyone else while awaiting), so a [jobs]-pool applies [jobs]
   domains to each batch.

   There is no per-batch barrier: a batch is a reference-counted bag of
   chunks ([b_remaining]), several batches can be in flight at once
   ({!fork}/{!await}), and workers park on a condition variable only
   when a full steal sweep finds every deque empty.

   Determinism: chunk layout depends only on (count, chunk count), each
   task index writes only its own slot of the caller's result array, and
   failures are collected by index — so results are bit-identical for
   every [jobs] value and any steal interleaving. The chunk count itself
   adapts to measured cost, which is scheduling-dependent, but it only
   changes which domain computes an index, never what lands at it. *)

type batch = {
  b_task : int -> unit;  (* exception-safe wrapper around the user task *)
  b_label : string;
  b_remaining : int Atomic.t;  (* chunks not yet fully executed *)
}

type chunk = { c_lo : int; c_len : int; c_batch : batch }

type slot = {
  deque : chunk Deque.t;  (* owner: the domain bound to this slot *)
  inbox_mutex : Mutex.t;
  mutable inbox : chunk list;  (* submitter -> owner handoff *)
}

type t = {
  jobs : int;
  stats : Stats.t;
  slots : slot array;
  mutex : Mutex.t;
  work_cond : Condition.t;  (* workers park here between fan-outs *)
  done_cond : Condition.t;  (* awaiters park here until a batch drains *)
  mutable seq : int;  (* bumped on every distribution; wakes workers *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

type ticket = {
  tk_batch : batch option;  (* [None]: ran inline at fork time *)
  tk_count : int;
  tk_errors : (exn * Printexc.raw_backtrace) option array;
}

let jobs t = t.jobs
let stats t = t.stats
let default_label = "_unlabelled"

(* Predicted-too-cheap fan-outs run inline on the submitter: below this
   much total predicted work, waking workers costs more than it buys. *)
let inline_cutoff = 50e-6

(* Chunk sizing aims here; small enough to load-balance, large enough
   that per-chunk bookkeeping (one cost sample, one refcount decrement)
   disappears in the noise. *)
let chunk_target_seconds = 200e-6

let exec_chunk t me c =
  let b = c.c_batch in
  (* Workers cannot be stack-sampled from domain 0, so each publishes
     the phase label of the chunk it is running; the profiler's signal
     handler snapshots these lock-free. Slot 0 is the submitting domain
     (real stacks), so it stays unlabeled. *)
  if me > 0 then Profiler.set_label me b.b_label;
  let started = Clock.now () in
  for i = c.c_lo to c.c_lo + c.c_len - 1 do
    b.b_task i
  done;
  if me > 0 then Profiler.clear_label me;
  Stats.note_task_cost t.stats ~label:b.b_label ~tasks:c.c_len
    ~seconds:(Clock.now () -. started);
  Stats.add_tasks t.stats c.c_len;
  if Atomic.fetch_and_add b.b_remaining (-1) = 1 then begin
    (* Last chunk of its batch: wake any awaiter. The mutex hop orders
       this broadcast against an awaiter that just re-checked
       [b_remaining] and is about to wait. *)
    Mutex.lock t.mutex;
    Condition.broadcast t.done_cond;
    Mutex.unlock t.mutex
  end

let drain_inbox t me =
  let s = t.slots.(me) in
  if s.inbox != [] then begin
    Mutex.lock s.inbox_mutex;
    let cs = s.inbox in
    s.inbox <- [];
    Mutex.unlock s.inbox_mutex;
    List.iter (Deque.push s.deque) cs
  end

(* Execute everything reachable from slot [me]: own inbox and deque
   first, then steal from the other slots. Returns when a full sweep
   over every other deque comes back empty. *)
let participate t me =
  let n = Array.length t.slots in
  let rec own () =
    drain_inbox t me;
    match Deque.pop t.slots.(me).deque with
    | Some c ->
      exec_chunk t me c;
      own ()
    | None -> sweep 1
  and sweep k =
    if k < n then
      match Deque.steal t.slots.((me + k) mod n).deque with
      | Deque.Stolen c ->
        Stats.incr_steals t.stats;
        exec_chunk t me c;
        own ()
      | Deque.Empty -> sweep (k + 1)
      | Deque.Retry ->
        Domain.cpu_relax ();
        sweep k
  in
  own ()

let worker t me =
  let last_seen = ref 0 in
  let rec loop () =
    participate t me;
    Mutex.lock t.mutex;
    let rec park () =
      if t.stop then false
      else if t.seq <> !last_seen then begin
        last_seen := t.seq;
        true
      end
      else begin
        Stats.incr_waits t.stats;
        Stats.worker_parked t.stats;
        let slept = Clock.now () in
        Condition.wait t.work_cond t.mutex;
        Stats.worker_unparked t.stats (Clock.now () -. slept);
        park ()
      end
    in
    let go = park () in
    Mutex.unlock t.mutex;
    if go then loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let t =
    {
      jobs;
      stats = Stats.create ~jobs;
      slots =
        Array.init jobs (fun _ ->
            {
              deque = Deque.create ();
              inbox_mutex = Mutex.create ();
              inbox = [];
            });
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      seq = 0;
      stop = false;
      domains = [];
    }
  in
  (* Workers report to whatever telemetry handle is effective on the
     creating domain — in the daemon that is the per-job handle scoped
     by [Telemetry.with_handle], so a job's pool spans land on that
     job's tracer instead of a neighbours'. *)
  let ambient = Telemetry.get () in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              (* Worker i occupies trace lane i+1; the submitting domain
                 keeps tid 0 ("main"). *)
              Tracer.set_tid (i + 1);
              Telemetry.set_local ambient;
              worker t (i + 1)));
  t

(* How many chunks to cut [count] tasks into. With no cost measurement
   yet, fall back to 4 chunks per domain (enough slack for stealing to
   balance); once the label's EWMA is known, aim for
   [chunk_target_seconds] per chunk, clamped between one chunk per
   domain and 8 per domain. *)
let plan_chunks t ~label ~count =
  match Stats.task_cost t.stats label with
  | None -> min count (4 * t.jobs)
  | Some c when c <= 0.0 -> min count (4 * t.jobs)
  | Some c ->
    let ideal =
      int_of_float (ceil (float_of_int count *. c /. chunk_target_seconds))
    in
    max (min count t.jobs) (min (min count (8 * t.jobs)) ideal)

let predicted_inline t ~label ~count =
  match Stats.task_cost t.stats label with
  | Some c -> c *. float_of_int count < inline_cutoff
  | None -> false

let run_inline t errors count task =
  (* No batch machinery, no synchronization; the whole index space still
     drains after a failure, mirroring the parallel path. *)
  let safe i =
    try task i
    with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  for i = 0 to count - 1 do
    safe i
  done;
  Stats.add_tasks t.stats count

let fork ?(label = default_label) t ~count task =
  if count < 0 then invalid_arg "Pool.fork: negative count";
  if count = 0 then { tk_batch = None; tk_count = 0; tk_errors = [||] }
  else begin
    let errors = Array.make count None in
    (* [count = 1] is only inlined on the synchronous path ([try_run]):
       a forked singleton must actually run on a worker, or fork/join
       overlap would silently degrade to sequential execution. *)
    if t.jobs = 1 || predicted_inline t ~label ~count then begin
      run_inline t errors count task;
      { tk_batch = None; tk_count = count; tk_errors = errors }
    end
    else begin
      let safe i =
        try task i
        with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
      in
      let chunks = plan_chunks t ~label ~count in
      let base = count / chunks and extra = count mod chunks in
      let b =
        { b_task = safe; b_label = label; b_remaining = Atomic.make chunks }
      in
      let workers = t.jobs - 1 in
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.fork: pool is shut down"
      end;
      (* Hand chunks to the worker slots round-robin; the submitter's own
         slot stays empty so a forked batch makes progress even while the
         submitting domain is busy elsewhere. The submitter still helps
         via stealing once it awaits. (Nesting inbox mutexes inside
         [t.mutex] is safe: no path acquires [t.mutex] while holding an
         inbox mutex.) *)
      for k = 0 to chunks - 1 do
        let lo = (k * base) + min k extra in
        let len = base + if k < extra then 1 else 0 in
        let c = { c_lo = lo; c_len = len; c_batch = b } in
        let s = t.slots.(1 + (k mod workers)) in
        Mutex.lock s.inbox_mutex;
        s.inbox <- c :: s.inbox;
        Mutex.unlock s.inbox_mutex
      done;
      Stats.incr_batches t.stats;
      t.seq <- t.seq + 1;
      Condition.broadcast t.work_cond;
      Mutex.unlock t.mutex;
      { tk_batch = Some b; tk_count = count; tk_errors = errors }
    end
  end

let collect_failures tk =
  let failures = ref [] in
  for i = tk.tk_count - 1 downto 0 do
    match tk.tk_errors.(i) with
    | Some (exn, backtrace) ->
      failures := { index = i; exn; backtrace } :: !failures
    | None -> ()
  done;
  !failures

let await t tk =
  (match tk.tk_batch with
  | None -> ()
  | Some b ->
    (* Help drain: run chunks of any in-flight batch, not just this
       one — executing a sibling ticket's chunk is always sound because
       every chunk is self-describing. *)
    participate t 0;
    if Atomic.get b.b_remaining > 0 then begin
      Mutex.lock t.mutex;
      while Atomic.get b.b_remaining > 0 do
        Condition.wait t.done_cond t.mutex
      done;
      Mutex.unlock t.mutex
    end);
  (* The final [b_remaining] load (SC atomic) orders every worker's
     error/result writes before the reads below. *)
  collect_failures tk

let try_run ?(label = default_label) t ~count task =
  if count < 0 then invalid_arg "Pool.try_run: negative count";
  if count = 0 then []
  else begin
    if count = 1 || t.jobs = 1 then begin
      let tk =
        { tk_batch = None; tk_count = count; tk_errors = Array.make count None }
      in
      run_inline t tk.tk_errors count task;
      collect_failures tk
    end
    else
    let tk = fork ~label t ~count task in
    match tk.tk_batch with
    | None -> collect_failures tk
    | Some _ ->
      Telemetry.with_span ~cat:"pool"
        ~args:[ ("count", Json.Int count); ("label", Json.String label) ]
        "pool.batch"
        (fun () -> await t tk)
  end

let run ?label t ~count task =
  match try_run ?label t ~count task with
  | [] -> ()
  | f :: _ -> Printexc.raise_with_backtrace f.exn f.backtrace

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
