open Accals_telemetry

type batch = {
  id : int;
  count : int;
  task : int -> unit;  (* exception-safe wrapper around the user task *)
  next : int Atomic.t;  (* next index to claim *)
  completed : int Atomic.t;  (* finished tasks, equals [count] when done *)
}

type t = {
  jobs : int;
  stats : Stats.t;
  mutex : Mutex.t;
  cond : Condition.t;  (* workers: batch posted; submitter: batch finished *)
  mutable batch : batch option;
  mutable batch_id : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

let jobs t = t.jobs

let stats t = t.stats

(* Claim and run tasks until the batch's index space is exhausted. The last
   task to finish clears [t.batch] and wakes everyone: idle workers go back
   to waiting for the next id, the submitter returns from [try_run]. *)
let drain t b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.count then begin
      b.task i;
      Stats.incr_tasks t.stats;
      let finished = 1 + Atomic.fetch_and_add b.completed 1 in
      if finished = b.count then begin
        Mutex.lock t.mutex;
        t.batch <- None;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end;
      go ()
    end
  in
  go ()

let worker t =
  let last_seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      match t.batch with
      | Some b when b.id <> !last_seen -> Some b
      | _ ->
        if t.stop then None
        else begin
          Stats.incr_waits t.stats;
          Condition.wait t.cond t.mutex;
          await ()
        end
    in
    let next = await () in
    Mutex.unlock t.mutex;
    match next with
    | None -> ()
    | Some b ->
      last_seen := b.id;
      Telemetry.with_span ~cat:"pool"
        ~args:[ ("count", Json.Int b.count) ]
        "pool.drain"
        (fun () -> drain t b);
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let t =
    {
      jobs;
      stats = Stats.create ~jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      batch = None;
      batch_id = 0;
      stop = false;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              (* Worker i occupies trace lane i+1; the submitting domain
                 keeps tid 0 ("main"). *)
              Tracer.set_tid (i + 1);
              worker t));
  t

let try_run t ~count task =
  if count < 0 then invalid_arg "Pool.try_run: negative count";
  if count = 0 then []
  else begin
    (* Failures land by index, so the returned list is in submission order
       no matter which domain ran (or failed) which task. *)
    let errors = Array.make count None in
    let safe i =
      try task i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        errors.(i) <- Some (e, bt)
    in
    if t.jobs = 1 || count = 1 then begin
      (* Sequential bypass: no batch machinery, no synchronization. The
         whole index space still drains even after a failure, mirroring the
         parallel path. *)
      for i = 0 to count - 1 do
        safe i
      done;
      Stats.add_tasks t.stats count
    end
    else begin
      let batch_span =
        Telemetry.begin_span ~cat:"pool"
          ~args:[ ("count", Json.Int count) ]
          "pool.batch"
      in
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        Telemetry.end_span batch_span;
        invalid_arg "Pool.try_run: pool is shut down"
      end;
      assert (t.batch = None);
      t.batch_id <- t.batch_id + 1;
      let b =
        {
          id = t.batch_id;
          count;
          task = safe;
          next = Atomic.make 0;
          completed = Atomic.make 0;
        }
      in
      t.batch <- Some b;
      Stats.incr_batches t.stats;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      drain t b;
      Mutex.lock t.mutex;
      (* Wait for the last finisher to clear the batch slot, not merely for
         the completion count: the submitter can observe the final count
         before the finisher has re-taken the mutex, and an immediate next
         submission (e.g. a retry of failed units) must find the slot
         empty. *)
      let rec await_clear () =
        match t.batch with
        | Some _ ->
          Condition.wait t.cond t.mutex;
          await_clear ()
        | None -> ()
      in
      await_clear ();
      Mutex.unlock t.mutex;
      Telemetry.end_span batch_span
    end;
    let failures = ref [] in
    for i = count - 1 downto 0 do
      match errors.(i) with
      | Some (exn, backtrace) ->
        failures := { index = i; exn; backtrace } :: !failures
      | None -> ()
    done;
    !failures
  end

let run t ~count task =
  match try_run t ~count task with
  | [] -> ()
  | f :: _ -> Printexc.raise_with_backtrace f.exn f.backtrace

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
