(** Fixed-size domain pool.

    A pool spawns [jobs - 1] worker domains once and reuses them for every
    subsequent {!run}; the submitting domain always participates too, so a
    [jobs]-pool applies [jobs] domains to each batch. With [jobs = 1] no
    domain is ever spawned and {!run} degenerates to a plain sequential
    loop — the sequential path stays the reference implementation.

    {!run} is synchronous and must only be driven from one domain at a time
    (the engine's main loop); workers never submit batches themselves. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. [jobs] must be at
    least 1. The workers idle on a condition variable between batches. *)

val jobs : t -> int

val stats : t -> Stats.t
(** Shared work-accounting record; see {!Stats}. *)

val run : t -> count:int -> (int -> unit) -> unit
(** [run t ~count task] executes [task 0 .. task (count - 1)], each exactly
    once, distributing indices over the pool's domains, and returns when all
    have finished. Tasks must not depend on execution order or domain
    placement. If any task raises, the first exception (by completion time)
    is re-raised in the caller after the whole batch has drained. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle. A pool that
    is never shut down leaks its domains until program exit. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
