(** Persistent work-stealing domain pool.

    A pool spawns [jobs - 1] worker domains once and reuses them for every
    subsequent fan-out. Each domain owns a Chase–Lev deque ({!Deque});
    submitted work is cut into contiguous chunks — sized from the measured
    per-task cost of the fan-out's [label] — and handed to the workers,
    who steal from each other when their own deque runs dry. The
    submitting domain always participates too (it steals while awaiting),
    so a [jobs]-pool applies [jobs] domains to each batch. With [jobs = 1]
    no domain is ever spawned and batches degenerate to a plain sequential
    loop — the sequential path stays the reference implementation.

    There is no per-batch barrier: {!fork} returns a {!ticket} without
    waiting, several tickets can be in flight at once, and workers park
    only when every deque is empty. Fan-outs whose predicted total cost
    (per-task EWMA × count) is below a cutoff run inline on the submitter
    instead of waking workers — this is what keeps tiny phases (e.g.
    [simulate] on small circuits) from paying coordination for nothing.

    Determinism: chunk layout and stealing decide only {e which domain}
    computes an index, never what lands at it — task [i] must write only
    slot [i] of its output, and then results are bit-identical for every
    [jobs] value.

    {!run}, {!try_run}, {!fork} and {!await} must only be driven from one
    domain at a time (the engine's main loop); workers never submit
    batches themselves. *)

type t

type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }
(** One task that raised: its index in the batch and what it raised. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. [jobs] must be at
    least 1. The workers park on a condition variable when idle. *)

val jobs : t -> int

val stats : t -> Stats.t
(** Shared work-accounting record; see {!Stats}. *)

val run : ?label:string -> t -> count:int -> (int -> unit) -> unit
(** [run t ~count task] executes [task 0 .. task (count - 1)], each exactly
    once, distributing indices over the pool's domains, and returns when all
    have finished. Tasks must not depend on execution order or domain
    placement. If any task raises, the whole batch still drains and the
    failure with the lowest index is re-raised in the caller. [label] keys
    the per-task cost model (chunk sizing and the sequential-inline
    cutoff); fan-outs doing the same kind of work should share a label. *)

val try_run : ?label:string -> t -> count:int -> (int -> unit) -> failure list
(** Like {!run}, but collects failures instead of raising: the result lists
    every task that raised, in ascending index order (empty on full
    success). The whole index space always drains, so the caller can retry
    exactly the failed indices — see {!Fan_out}. *)

(** {1 Fork/join}

    Independent fan-outs can overlap: fork one, keep computing on the
    submitting domain (or fork more), and join later. Forked work runs
    entirely on the worker domains until {!await}, where the submitter
    helps drain. *)

type ticket
(** An in-flight (or already-inlined) fan-out. Await exactly once. *)

val fork : ?label:string -> t -> count:int -> (int -> unit) -> ticket
(** Submit without waiting. When the pool is sequential ([jobs = 1]), the
    count is 1, or the label's predicted cost is below the inline cutoff,
    the tasks run inline before [fork] returns (the ticket is then already
    complete). *)

val await : t -> ticket -> failure list
(** Block until the ticket's batch has fully drained, helping execute
    outstanding chunks (of any ticket) meanwhile. Returns the failures in
    ascending index order. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle (no ticket
    outstanding). A pool that is never shut down leaks its domains until
    program exit. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
