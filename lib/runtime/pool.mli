(** Fixed-size domain pool.

    A pool spawns [jobs - 1] worker domains once and reuses them for every
    subsequent batch; the submitting domain always participates too, so a
    [jobs]-pool applies [jobs] domains to each batch. With [jobs = 1] no
    domain is ever spawned and batches degenerate to a plain sequential
    loop — the sequential path stays the reference implementation.

    {!run} and {!try_run} are synchronous and must only be driven from one
    domain at a time (the engine's main loop); workers never submit batches
    themselves. *)

type t

type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }
(** One task that raised: its index in the batch and what it raised. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. [jobs] must be at
    least 1. The workers idle on a condition variable between batches. *)

val jobs : t -> int

val stats : t -> Stats.t
(** Shared work-accounting record; see {!Stats}. *)

val run : t -> count:int -> (int -> unit) -> unit
(** [run t ~count task] executes [task 0 .. task (count - 1)], each exactly
    once, distributing indices over the pool's domains, and returns when all
    have finished. Tasks must not depend on execution order or domain
    placement. If any task raises, the whole batch still drains and the
    failure with the lowest index is re-raised in the caller. *)

val try_run : t -> count:int -> (int -> unit) -> failure list
(** Like {!run}, but collects failures instead of raising: the result lists
    every task that raised, in ascending index order (empty on full
    success). The whole index space always drains, so the caller can retry
    exactly the failed indices — see {!Fan_out}. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle. A pool that
    is never shut down leaks its domains until program exit. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
