(* Each hub domain parks on its own condvar between jobs. A job handle
   carries its own completion latch (mutex + condvar + flag), because
   the domain that ran a job moves on to other jobs while old handles
   are still being waited on.

   Abandonment race: [abandon] must kill reuse of the domain only if it
   is still wedged on *this* handle's job — a late abandon after the
   domain picked up a new job must not poison it. The worker keeps a
   generation counter, bumped per assignment under its mutex, and the
   handle records the generation it was assigned; abandon compares the
   two under the same mutex. *)

type worker = {
  wk_mutex : Mutex.t;
  wk_cond : Condition.t;
  mutable wk_task : (unit -> unit) option;
  mutable wk_stop : bool;
  mutable wk_abandoned : bool;
  mutable wk_busy : bool;
  mutable wk_gen : int;
  mutable wk_domain : unit Domain.t option;  (* set right after spawn *)
}

type handle = {
  h_mutex : Mutex.t;
  h_cond : Condition.t;
  mutable h_done : bool;
  h_worker : worker;
  h_gen : int;
}

type t = {
  mutex : Mutex.t;
  mutable idle : worker list;
  mutable all : worker list;
  mutable stopped : bool;
  spawned : int Atomic.t;
}

let create () =
  {
    mutex = Mutex.create ();
    idle = [];
    all = [];
    stopped = false;
    spawned = Atomic.make 0;
  }

let spawned t = Atomic.get t.spawned
let live t =
  Mutex.lock t.mutex;
  let n = List.length t.all in
  Mutex.unlock t.mutex;
  n

(* Runs on the hub domain. Returns [true] to keep serving, [false] when
   the domain should exit (stop or abandoned). *)
let serve_one w =
  Mutex.lock w.wk_mutex;
  while w.wk_task = None && not w.wk_stop do
    Condition.wait w.wk_cond w.wk_mutex
  done;
  let task = w.wk_task in
  w.wk_task <- None;
  Mutex.unlock w.wk_mutex;
  match task with
  | None -> false (* stop *)
  | Some task ->
    Mutex.lock w.wk_mutex;
    w.wk_busy <- true;
    Mutex.unlock w.wk_mutex;
    (try task () with _ -> ());
    Mutex.lock w.wk_mutex;
    w.wk_busy <- false;
    let keep = not (w.wk_abandoned || w.wk_stop) in
    Mutex.unlock w.wk_mutex;
    keep

let rec worker_loop t w =
  if serve_one w then begin
    Mutex.lock t.mutex;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      t.idle <- w :: t.idle;
      Mutex.unlock t.mutex;
      worker_loop t w
    end
  end

let spawn_worker t =
  let w =
    {
      wk_mutex = Mutex.create ();
      wk_cond = Condition.create ();
      wk_task = None;
      wk_stop = false;
      wk_abandoned = false;
      wk_busy = false;
      wk_gen = 0;
      wk_domain = None;
    }
  in
  Atomic.incr t.spawned;
  w.wk_domain <- Some (Domain.spawn (fun () -> worker_loop t w));
  w

let submit t thunk =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_hub.submit: hub is shut down"
  end;
  let w =
    match t.idle with
    | w :: rest ->
      t.idle <- rest;
      Mutex.unlock t.mutex;
      w
    | [] ->
      let w = spawn_worker t in
      t.all <- w :: t.all;
      Mutex.unlock t.mutex;
      w
  in
  Mutex.lock w.wk_mutex;
  w.wk_gen <- w.wk_gen + 1;
  let h =
    {
      h_mutex = Mutex.create ();
      h_cond = Condition.create ();
      h_done = false;
      h_worker = w;
      h_gen = w.wk_gen;
    }
  in
  w.wk_task <-
    Some
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock h.h_mutex;
            h.h_done <- true;
            Condition.broadcast h.h_cond;
            Mutex.unlock h.h_mutex)
          thunk);
  Condition.signal w.wk_cond;
  Mutex.unlock w.wk_mutex;
  h

let is_done h =
  Mutex.lock h.h_mutex;
  let d = h.h_done in
  Mutex.unlock h.h_mutex;
  d

let wait h =
  Mutex.lock h.h_mutex;
  while not h.h_done do
    Condition.wait h.h_cond h.h_mutex
  done;
  Mutex.unlock h.h_mutex

let abandon _t h =
  (* A parked worker has unwound its job, so [is_done] is true and no
     mark lands — the idle set never contains an abandoned worker. *)
  let w = h.h_worker in
  Mutex.lock w.wk_mutex;
  if w.wk_gen = h.h_gen && not (is_done h) then w.wk_abandoned <- true;
  Mutex.unlock w.wk_mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  let all = t.all in
  t.all <- [];
  t.idle <- [];
  Mutex.unlock t.mutex;
  List.iter
    (fun w ->
      Mutex.lock w.wk_mutex;
      w.wk_stop <- true;
      Condition.signal w.wk_cond;
      (* An abandoned worker that already unwound has exited on its own
         (instant join); one still wedged in its job can never be joined
         and is leaked for process exit to reclaim. *)
      let joinable = not (w.wk_abandoned && w.wk_busy) in
      Mutex.unlock w.wk_mutex;
      if joinable then Option.iter Domain.join w.wk_domain)
    all
