(* Chase–Lev work-stealing deque.

   Layout: a growable circular buffer indexed by two monotonically
   increasing counters. [top] is advanced by successful steals (and by
   the owner when it takes the last element), [bottom] by owner pushes.
   The live region is [top, bottom).

   Memory-model notes (OCaml 5):
   - [top] and [bottom] are [Atomic.t]; OCaml atomics are SC, so a plain
     array write made by the owner before its [Atomic.set bottom]
     publication is visible to any thief that observed the new bottom.
   - The buffer pointer itself is a plain mutable field. A thief racing
     with {!grow} may read the old buffer record, but grow copies the
     live region before the owner publishes the new record, and the
     owner never writes into the old buffer afterwards, so the stale
     read still yields the correct element for any index whose CAS on
     [top] subsequently succeeds. Bundling the array and its mask into
     one record keeps the pair consistent under such races.
   - A slot read can be stale only when the CAS on [top] fails; stale
     values are therefore always discarded. *)

type 'a buffer = { arr : 'a option array; mask : int }

type 'a t = {
  mutable buf : 'a buffer;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

type 'a steal_result = Stolen of 'a | Empty | Retry

let min_capacity = 16

let make_buffer capacity = { arr = Array.make capacity None; mask = capacity - 1 }

let create () =
  {
    buf = make_buffer min_capacity;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

(* Owner only: double the buffer, copying the live region [t, b). *)
let grow q top bottom =
  let old = q.buf in
  let next = make_buffer ((old.mask + 1) * 2) in
  for i = top to bottom - 1 do
    next.arr.(i land next.mask) <- old.arr.(i land old.mask)
  done;
  q.buf <- next

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t > q.buf.mask then grow q t b;
  let buf = q.buf in
  buf.arr.(b land buf.mask) <- Some v;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  let size = b - t in
  if size < 0 then begin
    (* Was empty; undo the reservation. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = q.buf in
    let slot = b land buf.mask in
    let v = buf.arr.(slot) in
    if size > 0 then begin
      buf.arr.(slot) <- None;
      v
    end
    else begin
      (* Exactly one element left: race thieves for it via [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf.arr.(slot) <- None;
        v
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t <= 0 then Empty
  else begin
    let buf = q.buf in
    let v = buf.arr.(t land buf.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then
      match v with
      | Some x -> Stolen x
      | None ->
        (* Only reachable through a stale buffer read that nonetheless
           won the CAS; treat as a lost race so the caller re-observes. *)
        Retry
    else Retry
  end
