(** Chase–Lev work-stealing deque (SPAA'05, with the C11 adaptation of
    Lê et al., PPoPP'13).

    Single-owner, multi-thief: exactly one domain — the owner — may call
    {!push} and {!pop}; any other domain may call {!steal}. The owner
    works LIFO off the bottom (cache-warm), thieves take FIFO off the
    top (oldest chunks first, which keeps stolen work coarse).

    The buffer grows automatically; pushes never block or fail. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. Push onto the bottom. *)

val pop : 'a t -> 'a option
(** Owner only. Pop from the bottom; [None] when empty (including when
    the last element was lost to a concurrent thief). *)

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** no work observed — safe to move to the next victim *)
  | Retry  (** lost a race with the owner or another thief; try again *)

val steal : 'a t -> 'a steal_result
(** Any domain. Take from the top. [Retry] means the deque was non-empty
    but the CAS on [top] lost; callers sweeping several victims should
    treat it as "victim still interesting". *)
