(** Persistent domains for long-running jobs.

    Where {!Pool} fans one computation out over many domains, a hub runs
    {e whole independent jobs} (one thunk each) on a set of persistent
    domains that are spawned on demand and reused across jobs — the
    serve daemon's replacement for one ad-hoc [Domain.spawn] per job,
    so steady-state traffic stops paying domain spawn/join per request.

    Domains cannot be killed, so a wedged job cannot be reclaimed; it
    can only be {!abandon}ed: its domain is marked so that, should the
    thunk ever unwind, the domain exits instead of returning to the idle
    set (a later job is never scheduled behind a wedged one), and the
    hub simply spawns a fresh domain for the next {!submit}. This keeps
    the serve daemon's zombie-worker containment semantics intact.

    All hub operations are thread-safe; {!wait} may block. *)

type t

type handle
(** One submitted job. *)

val create : unit -> t

val submit : t -> (unit -> unit) -> handle
(** Run the thunk on an idle hub domain, spawning one if none is idle.
    The thunk's exceptions are swallowed by the hub (callers that care
    must catch inside the thunk — the serve daemon's job body already
    reports failures through its scheduler). Raises [Invalid_argument]
    after {!shutdown}. *)

val is_done : handle -> bool
(** The thunk has returned (or raised) and unwound. *)

val wait : handle -> unit
(** Block until {!is_done}. *)

val abandon : t -> handle -> unit
(** Mark the job's domain as not-reusable: when (if ever) the thunk
    unwinds, the domain exits instead of rejoining the idle set. No-op
    if the job already finished. *)

val spawned : t -> int
(** Domains spawned over the hub's lifetime (telemetry: steady-state
    traffic should keep this near the concurrency high-water mark). *)

val live : t -> int
(** Domains currently alive (idle or running). *)

val shutdown : t -> unit
(** Join every domain that can be joined: idle domains, busy
    non-abandoned domains (waits for their jobs), and abandoned domains
    whose thunk already unwound. Still-wedged abandoned domains are
    leaked — process exit reclaims them. Idempotent. *)
