type mode = Multi | Single

type round = {
  index : int;
  mode : mode;
  candidates : int;
  top_count : int;
  sol_count : int;
  indp_count : int;
  rand_count : int;
  chose_indp : bool option;
  applied : int;
  skipped_cycles : int;
  error_before : float;
  error_after : float;
  estimated_error : float;
  reverted : bool;
  area : float;
  resim_nodes : int;
  resim_converged : int;
  resim_recycled : int;
}

let indp_ratio rounds =
  let decided = List.filter_map (fun r -> r.chose_indp) rounds in
  match decided with
  | [] -> 0.0
  | _ ->
    let wins = List.length (List.filter (fun b -> b) decided) in
    float_of_int wins /. float_of_int (List.length decided)

let classify ~sigma r =
  match r.mode with
  | Single -> None
  | Multi ->
    let gap = r.estimated_error -. r.error_after in
    if gap > sigma then Some `Positive
    else if gap < -.sigma then Some `Negative
    else Some `Independent

let to_csv rounds =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "round,mode,candidates,top,sol,indp,rand,chose_indp,applied,skipped,\
     error_before,error_after,estimated_error,reverted,area,\
     resim_nodes,resim_converged,resim_recycled\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "%d,%s,%d,%d,%d,%d,%d,%s,%d,%d,%.9f,%.9f,%.9f,%b,%.1f,%d,%d,%d\n"
           r.index
           (match r.mode with Multi -> "multi" | Single -> "single")
           r.candidates r.top_count r.sol_count r.indp_count r.rand_count
           (match r.chose_indp with
            | Some true -> "indp"
            | Some false -> "rand"
            | None -> "-")
           r.applied r.skipped_cycles r.error_before r.error_after
           r.estimated_error r.reverted r.area r.resim_nodes r.resim_converged
           r.resim_recycled))
    rounds;
  Buffer.contents buf

(* Strict inverse of [to_csv]: same column set, same encodings. Raises
   [Failure] on arity or field mismatches so the round-trip test (and any
   external consumer) catches format drift immediately. *)
let of_csv text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> failwith "Trace.of_csv: empty input"
  | header :: rows ->
    let expected =
      "round,mode,candidates,top,sol,indp,rand,chose_indp,applied,skipped,\
       error_before,error_after,estimated_error,reverted,area,\
       resim_nodes,resim_converged,resim_recycled"
    in
    if header <> expected then
      failwith
        (Printf.sprintf "Trace.of_csv: unexpected header %S" header);
    let int ~row ~col s =
      match int_of_string_opt s with
      | Some i -> i
      | None ->
        failwith
          (Printf.sprintf "Trace.of_csv: row %d: bad int %S in %s" row s col)
    in
    let fl ~row ~col s =
      match float_of_string_opt s with
      | Some x -> x
      | None ->
        failwith
          (Printf.sprintf "Trace.of_csv: row %d: bad float %S in %s" row s col)
    in
    List.mapi
      (fun i row ->
        let rn = i + 1 in
        match String.split_on_char ',' row with
        | [
         index; mode; candidates; top; sol; indp; rand; chose; applied;
         skipped; e_before; e_after; e_est; reverted; area; r_nodes; r_conv;
         r_rec;
        ] ->
          {
            index = int ~row:rn ~col:"round" index;
            mode =
              (match mode with
               | "multi" -> Multi
               | "single" -> Single
               | m ->
                 failwith
                   (Printf.sprintf "Trace.of_csv: row %d: bad mode %S" rn m));
            candidates = int ~row:rn ~col:"candidates" candidates;
            top_count = int ~row:rn ~col:"top" top;
            sol_count = int ~row:rn ~col:"sol" sol;
            indp_count = int ~row:rn ~col:"indp" indp;
            rand_count = int ~row:rn ~col:"rand" rand;
            chose_indp =
              (match chose with
               | "indp" -> Some true
               | "rand" -> Some false
               | "-" -> None
               | c ->
                 failwith
                   (Printf.sprintf "Trace.of_csv: row %d: bad chose_indp %S"
                      rn c));
            applied = int ~row:rn ~col:"applied" applied;
            skipped_cycles = int ~row:rn ~col:"skipped" skipped;
            error_before = fl ~row:rn ~col:"error_before" e_before;
            error_after = fl ~row:rn ~col:"error_after" e_after;
            estimated_error = fl ~row:rn ~col:"estimated_error" e_est;
            reverted =
              (match bool_of_string_opt reverted with
               | Some b -> b
               | None ->
                 failwith
                   (Printf.sprintf "Trace.of_csv: row %d: bad reverted %S" rn
                      reverted));
            area = fl ~row:rn ~col:"area" area;
            resim_nodes = int ~row:rn ~col:"resim_nodes" r_nodes;
            resim_converged = int ~row:rn ~col:"resim_converged" r_conv;
            resim_recycled = int ~row:rn ~col:"resim_recycled" r_rec;
          }
        | fields ->
          failwith
            (Printf.sprintf "Trace.of_csv: row %d has %d fields, want 18" rn
               (List.length fields)))
      rows

let write_csv rounds path =
  let oc = open_out path in
  (try output_string oc (to_csv rounds) with e -> close_out oc; raise e);
  close_out oc

let summary rounds =
  let n = List.length rounds in
  let applied = List.fold_left (fun acc r -> acc + r.applied) 0 rounds in
  let reverts = List.length (List.filter (fun r -> r.reverted) rounds) in
  Printf.sprintf "%d rounds, %d LACs applied, %d reverts, L_indp ratio %.2f" n
    applied reverts (indp_ratio rounds)

let resim_summary rounds =
  let nodes = List.fold_left (fun acc r -> acc + r.resim_nodes) 0 rounds in
  let converged =
    List.fold_left (fun acc r -> acc + r.resim_converged) 0 rounds
  in
  let recycled =
    List.fold_left (fun acc r -> acc + r.resim_recycled) 0 rounds
  in
  Printf.sprintf
    "%d node evaluations (%d stopped early, %d buffers recycled)" nodes
    converged recycled

(* Runtime accounting (from lib/runtime), formatted next to the round trace
   so synthesis reports carry both the algorithmic and the execution view. *)

let stats_summary (s : Accals_runtime.Stats.snapshot) =
  Printf.sprintf "%d domain%s, %d tasks in %d batches, %d worker waits"
    s.Accals_runtime.Stats.jobs
    (if s.Accals_runtime.Stats.jobs = 1 then "" else "s")
    s.Accals_runtime.Stats.tasks s.Accals_runtime.Stats.batches
    s.Accals_runtime.Stats.waits

let phases_summary (s : Accals_runtime.Stats.snapshot) =
  match s.Accals_runtime.Stats.phases with
  | [] -> "no phases recorded"
  | phases ->
    String.concat ", "
      (List.map (fun (name, t) -> Printf.sprintf "%s %.2fs" name t) phases)
