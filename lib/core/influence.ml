open Accals_network
open Accals_lac
module Graph = Accals_mis.Graph
module Bitvec = Accals_bitvec.Bitvec

let pair_index ?limit (ctx : Round_ctx.t) ~tfo_j ~tfo_i n_j n_i =
  (* n_j is topologically before n_i. *)
  if Bitvec.get tfo_j n_i then begin
    let full = Network.num_nodes ctx.net in
    let limit = Option.value limit ~default:full in
    match
      Structure.shortest_path_bounded ctx.net ~fanouts:ctx.fanouts ~src:n_j
        ~dst:n_i ~limit
    with
    | Some d when d > 0 -> 1.0 /. float_of_int d
    | Some _ -> 1.0
    | None ->
      (* The TFO test said a path exists, so [None] can only mean the
         search was cut off at [limit]: the true distance d exceeds it,
         bounding the index by 1/(limit+1). Callers pick [limit] so that
         this is at most their edge threshold, making 0 equivalent. With
         the default full limit this case is unreachable. *)
      if limit >= full then 1.0 else 0.0
  end
  else begin
    let inter = Bitvec.popcount (Bitvec.logand tfo_j tfo_i) in
    let fi = Bitvec.popcount tfo_i in
    if fi = 0 then 0.0 else float_of_int inter /. float_of_int fi
  end

let orient (ctx : Round_ctx.t) a b =
  if ctx.topo_pos.(a) <= ctx.topo_pos.(b) then (a, b) else (b, a)

let index (ctx : Round_ctx.t) a b =
  let n_j, n_i = orient ctx a b in
  let tfo_j = Structure.tfo_set ctx.net ~fanouts:ctx.fanouts n_j in
  let tfo_i = Structure.tfo_set ctx.net ~fanouts:ctx.fanouts n_i in
  pair_index ctx ~tfo_j ~tfo_i n_j n_i

let build_graph ?pool (ctx : Round_ctx.t) ~targets ~t_b =
  let n = Array.length targets in
  let g = Graph.create n in
  let tfo_of id = Structure.tfo_set ctx.net ~fanouts:ctx.fanouts id in
  let tfos =
    (* One transitive-fanout DFS per target; independent, so fanned out. *)
    match pool with
    | Some pool when n > 1 ->
      Accals_runtime.Fan_out.map_array ~label:"influence.tfo" pool ~f:tfo_of
        targets
    | _ -> Array.map tfo_of targets
  in
  (* Pair row for [a]: the b > a partners it conflicts with. Each row only
     reads immutable round state, so rows are computed in parallel; edges
     are then inserted sequentially in a fixed order, keeping the graph
     bit-identical to the sequential build. (Overlapping pairs cost a
     bounded shortest-path search each — the dominant select-phase cost on
     large circuits.) *)
  (* An edge needs index > t_b; in the path case the index is 1/d, so any
     path longer than [path_limit] hops cannot produce one — cutting the
     per-pair search there changes nothing about the resulting graph. *)
  let path_limit =
    if t_b <= 0.0 then Network.num_nodes ctx.net
    else begin
      let l = int_of_float (1.0 /. t_b) in
      let l = if float_of_int l *. t_b >= 1.0 then l - 1 else l in
      max 1 l
    end
  in
  let row a =
    let edges = ref [] in
    for b = n - 1 downto a + 1 do
      let j, i =
        if ctx.topo_pos.(targets.(a)) <= ctx.topo_pos.(targets.(b)) then (a, b)
        else (b, a)
      in
      let p =
        pair_index ~limit:path_limit ctx ~tfo_j:tfos.(j) ~tfo_i:tfos.(i)
          targets.(j) targets.(i)
      in
      if p > t_b then edges := b :: !edges
    done;
    !edges
  in
  let rows =
    match pool with
    | Some pool when n > 1 ->
      Accals_runtime.Fan_out.map_array ~label:"influence" pool ~f:row
        (Array.init n (fun a -> a))
    | _ -> Array.init n row
  in
  Array.iteri (fun a bs -> List.iter (fun b -> Graph.add_edge g a b) bs) rows;
  g
