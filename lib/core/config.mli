(** AccALS parameters (Section III of the paper).

    Defaults mirror the paper's experimental setup: [t_b = 0.5],
    [lambda = 0.9], [l_e = 0.9], [l_d = 0.3], and size-dependent
    [(r_ref, r_sel)] of (100, 20) below 600 AIG nodes, (200, 40) up to
    4999, and (400, 80) from 5000. *)

open Accals_lac

type t = {
  r_ref : int;  (** reference top-LAC count (Eq. 2) *)
  r_sel : int;  (** reference selected-LAC count (Section II-D3) *)
  t_b : float;  (** mutual-influence index bound (Section II-D2) *)
  lambda : float;  (** per-round estimated-error budget factor λ *)
  l_e : float;  (** improvement 1: single-LAC mode above l_e·e_b *)
  l_d : float;  (** improvement 2: negative-set detection bound on β *)
  sigma : float;  (** tolerance σ classifying LAC sets (for the trace) *)
  seed : int;  (** PRNG seed for patterns and random selection *)
  samples : int;  (** random simulation patterns when not exhaustive *)
  exhaustive_limit : int;  (** exhaustive simulation up to this many PIs *)
  shortlist : int;  (** exact ΔE evaluations per round *)
  candidate : Candidate_gen.config;
  max_rounds : int;  (** safety valve *)
  (* Ablation switches (all true in the paper's flow): *)
  use_mis : bool;
      (** select N_indp by MIS on the influence graph; off: N_indp = N_sol *)
  use_random_comparison : bool;
      (** build and race L_rand against L_indp; off: always apply L_indp *)
  use_improvement_1 : bool;  (** single-LAC mode near the bound *)
  use_improvement_2 : bool;  (** negative-set detection and revert *)
  exact_estimation : bool;
      (** resimulate shortlisted candidates exactly (default); off: take
          the cheap criticality estimate as ΔE (VECBEE's fast mode) *)
  incremental : bool;
      (** drive each round through the event-driven signature database
          ([lib/sigdb]): candidate sets are evaluated under an undo journal
          on the working circuit and only changed fanout cones are
          resimulated, instead of copying the network and resimulating
          everything per evaluation. On (default) and off produce
          bit-identical traces and results for every [jobs] value; off is
          the reference rebuild-everything path kept for differential
          testing ([--no-incremental] in the CLI). *)
  jobs : int;
      (** domains for the parallel runtime; 1 (default) runs the reference
          sequential path with no pool. Results are bit-identical for every
          value, see [lib/runtime]. *)
  (* Resilience (all off by default; see [lib/resilience] and README
     "Failure semantics"): *)
  round_deadline : float option;
      (** per-round watchdog budget in seconds; when a round overruns it,
          the engine falls back from multi-LAC to single-LAC selection for
          that round instead of dying *)
  run_deadline : float option;
      (** whole-run watchdog budget in seconds; when it expires the engine
          stops and reports the best circuit found so far with
          [report.degraded = true] *)
  validate_rounds : bool;
      (** run {!Accals_network.Network.validate} on the working circuit at
          every round boundary (always done before checkpointing) *)
  audit_every : int;
      (** shadow-audit cadence: every [audit_every] rounds, re-derive the
          round's signatures and error from scratch and compare them with
          the incremental engine's view (see [lib/audit]); a divergence is
          recorded as an incident and permanently demotes the run down the
          degradation ladder. 0 (default) disables scheduled audits;
          watermark anomalies still trigger one. *)
  certify : bool;
      (** after the final round, re-measure the result circuit's error with
          an independent PRNG stream (exhaustively when the input width
          permits) and roll back to an earlier feasible circuit if the
          independent measurement violates the bound *)
  max_memory_mb : int;
      (** memory budget for the run in MiB; 0 (default) disables the
          governor. When the sampled footprint (GC major heap plus sigdb
          pool counters) crosses the budget the engine escalates through
          result-preserving relief (drop the cone cache and signature
          buffer pool, compact), then a rebuild-backend descent, and
          finally a checkpoint-and-stop with [report.degraded = true] —
          every rung is bit-identity-preserving for the circuits it does
          emit, and the OOM killer is never the failure mode *)
}

val default : t
(** Small-circuit bucket with 2048 samples. *)

val parallel : ?jobs:int -> t -> t
(** [parallel base] sets [jobs] (default
    [Domain.recommended_domain_count ()], clamped to at least 1). *)

val for_size : ?base:t -> int -> t
(** [for_size aig_nodes] applies the paper's (r_ref, r_sel) size buckets on
    top of [base] (default {!default}), scaling the exact-evaluation
    shortlist along with r_ref. *)

val for_network : ?base:t -> Accals_network.Network.t -> t
