open Accals_network
module Metric = Accals_metrics.Metric
module Stats = Accals_runtime.Stats
module Ladder = Accals_audit.Ladder
module Incident = Accals_audit.Incident
module Certify = Accals_audit.Certify
module Json = Accals_telemetry.Json

let mode_str = function Trace.Multi -> "multi" | Trace.Single -> "single"

let round_json (r : Trace.round) =
  Json.Obj
    [
      ("round", Json.Int r.Trace.index);
      ("mode", Json.String (mode_str r.Trace.mode));
      ("candidates", Json.Int r.Trace.candidates);
      ("top", Json.Int r.Trace.top_count);
      ("sol", Json.Int r.Trace.sol_count);
      ("indp", Json.Int r.Trace.indp_count);
      ("rand", Json.Int r.Trace.rand_count);
      ( "chose_indp",
        match r.Trace.chose_indp with
        | Some true -> Json.String "indp"
        | Some false -> Json.String "rand"
        | None -> Json.Null );
      ("applied", Json.Int r.Trace.applied);
      ("skipped", Json.Int r.Trace.skipped_cycles);
      ("error_before", Json.Float r.Trace.error_before);
      ("error_after", Json.Float r.Trace.error_after);
      ("estimated_error", Json.Float r.Trace.estimated_error);
      ("reverted", Json.Bool r.Trace.reverted);
      ("area", Json.Float r.Trace.area);
      ("resim_nodes", Json.Int r.Trace.resim_nodes);
      ("resim_converged", Json.Int r.Trace.resim_converged);
      ("resim_recycled", Json.Int r.Trace.resim_recycled);
    ]

let ladder_event_json (e : Ladder.event) =
  Json.Obj
    [
      ("round", Json.Int e.Ladder.round);
      ("level", Json.String (Ladder.level_to_string e.Ladder.level));
      ("reason", Json.String (Ladder.reason_to_string e.Ladder.reason));
      ("transient", Json.Bool e.Ladder.transient);
    ]

let incident_json (i : Incident.t) =
  (* Reuse the incident log's own (line-oriented) encoder so incident
     objects look identical in both artifacts. *)
  Json.parse_exn (Incident.to_json i)

let certification_json (o : Certify.outcome) =
  Json.Obj
    [
      ("certified", Json.Bool o.Certify.certified);
      ("measured", Json.Float o.Certify.measured);
      ("bound", Json.Float o.Certify.bound);
      ("method", Json.String (Certify.method_to_string o.Certify.method_));
      ("rollback_steps", Json.Int o.Certify.rollback_steps);
    ]

let stats_json (s : Stats.snapshot) =
  Json.Obj
    [
      ("jobs", Json.Int s.Stats.jobs);
      ("tasks", Json.Int s.Stats.tasks);
      ("batches", Json.Int s.Stats.batches);
      ("waits", Json.Int s.Stats.waits);
      ( "phases",
        Json.Obj
          (List.map (fun (name, t) -> (name, Json.Float t)) s.Stats.phases) );
    ]

let to_json ?(rounds = false) (r : Engine.report) =
  let base =
    [
      (* Header first: which binary produced this report.  Lets a sweep
         or CI artifact be tied back to an exact build after the fact. *)
      ("build", Accals_telemetry.Build_info.to_json ());
      ("circuit", Json.String (Network.name r.Engine.original));
      ("metric", Json.String (Metric.kind_to_string r.Engine.metric));
      ("error_bound", Json.Float r.Engine.error_bound);
      ("error", Json.Float r.Engine.error);
      ("area_ratio", Json.Float r.Engine.area_ratio);
      ("delay_ratio", Json.Float r.Engine.delay_ratio);
      ("adp_ratio", Json.Float r.Engine.adp_ratio);
      ("rounds", Json.Int (List.length r.Engine.rounds));
      ("runtime_seconds", Json.Float r.Engine.runtime_seconds);
      ("evaluations", Json.Int r.Engine.exact_evaluations);
      ("degraded", Json.Bool r.Engine.degraded);
      ( "degraded_reason",
        match r.Engine.degraded_reason with
        | Some reason -> Json.String (Ladder.reason_to_string reason)
        | None -> Json.Null );
      ("final_level", Json.String (Ladder.level_to_string r.Engine.final_level));
      ("ladder", Json.String r.Engine.ladder_summary);
      ( "ladder_events",
        Json.List (List.map ladder_event_json r.Engine.ladder_events) );
      ("audits", Json.Int r.Engine.audits);
      ("incidents", Json.List (List.map incident_json r.Engine.incidents));
      ( "certification",
        match r.Engine.certification with
        | Some o -> certification_json o
        | None -> Json.Null );
      ("lacs_applied", Json.Int
         (List.fold_left (fun acc x -> acc + x.Trace.applied) 0 r.Engine.rounds));
      ("stats", stats_json r.Engine.stats);
    ]
  in
  let base =
    if rounds then
      base @ [ ("round_trace", Json.List (List.map round_json r.Engine.rounds)) ]
    else base
  in
  Json.Obj base

let to_string ?rounds r = Json.to_string ~pretty:true (to_json ?rounds r) ^ "\n"
