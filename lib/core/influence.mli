(** Mutual-influence index between two LAC targets (Section II-D1).

    For targets n_j before n_i in topological order:
    - with a path from n_j to n_i of shortest length d: p = 1/d,
    - without a path: p = |F(n_j) ∩ F(n_i)| / |F(n_i)| over transitive
      fanouts F.

    Pairs with p > t_b are considered likely to form a dependent LAC set
    and get an edge in the influence graph. *)

open Accals_lac
module Graph := Accals_mis.Graph

val index : Round_ctx.t -> int -> int -> float
(** [index ctx a b]: the order of arguments is irrelevant; the function
    orients the pair by topological position internally. *)

val build_graph :
  ?pool:Accals_runtime.Pool.t ->
  Round_ctx.t ->
  targets:int array ->
  t_b:float ->
  Graph.t
(** Influence graph G_sol over target indices: vertex [k] stands for
    [targets.(k)]; edges join pairs with index > t_b. With [pool], the
    per-target fanout sets and the pairwise index rows are computed in
    parallel (bit-identical to the sequential build). *)
