open Accals_network
open Accals_lac
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Prng = Accals_bitvec.Prng
module Pool = Accals_runtime.Pool
module Stats = Accals_runtime.Stats
module Watchdog = Accals_resilience.Watchdog
module Budget = Accals_resilience.Budget
module Ladder = Accals_audit.Ladder
module Incident = Accals_audit.Incident
module Shadow = Accals_audit.Shadow
module Certify = Accals_audit.Certify
module Telemetry = Accals_telemetry.Telemetry
module Metrics = Accals_telemetry.Metrics
module Tjson = Accals_telemetry.Json
module Clock = Accals_telemetry.Clock

type report = {
  original : Network.t;
  approximate : Network.t;
  error : float;
  metric : Metric.kind;
  error_bound : float;
  rounds : Trace.round list;
  runtime_seconds : float;
  exact_evaluations : int;
  area_ratio : float;
  delay_ratio : float;
  adp_ratio : float;
  degraded : bool;
  degraded_reason : Ladder.reason option;
  final_level : Ladder.level;
  ladder_events : Ladder.event list;
  ladder_summary : string;
  audits : int;
  incidents : Incident.t list;
  certification : Certify.outcome option;
  stats : Stats.snapshot;
  metrics : Metrics.snapshot;
      (* pool registry (work counters, phase seconds, per-round engine
         metrics) merged with the ambient registry (checkpoint bytes) *)
}

(* Everything Algorithm 1 carries from one round to the next. A snapshot at
   a round boundary fully determines the rest of the run: the input
   patterns, golden signatures and cost baselines are all deterministic
   functions of [s_config] and [s_original], and the only other mutable
   loop state is the PRNG. Snapshots are what [lib/resilience]'s
   [Checkpoint] persists and what [resume] continues from. *)
type snapshot = {
  s_version : int;
  s_original : Network.t;
  s_current : Network.t;
  s_best : Network.t;
  s_error : float;
  s_best_error : float;
  s_rounds : Trace.round list;  (* newest first *)
  s_evaluations : int;
  s_round : int;
  s_finished : bool;
  s_degraded : bool;
  s_rng : Prng.t;
  s_config : Config.t;
  s_metric : Metric.kind;
  s_error_bound : float;
  s_ladder : Ladder.t;
  s_degraded_reason : Ladder.reason option;
  s_incidents : Incident.t list;  (* newest first *)
}

(* 2: [Config.t] gained [incremental] (changing the marshaled snapshot
   layout) and checkpoints store a tracker-free copy of the working
   circuit.
   3: [Config.t] gained [audit_every]/[certify]; snapshots carry the
   degradation ladder, the degradation reason and the incident list, so a
   resumed run reports the same audit history as an uninterrupted one.
   4: [Config.t] gained [max_memory_mb] and [Ladder.reason] gained
   [Resource_pressure]. *)
let snapshot_version = 4

let snapshot_round s = s.s_round
let snapshot_finished s = s.s_finished
let snapshot_circuit s = Network.name s.s_original
let snapshot_metric s = s.s_metric
let snapshot_error_bound s = s.s_error_bound
let snapshot_jobs s = s.s_config.Config.jobs

let patterns_for config net =
  Sim.for_network ~seed:config.Config.seed ~count:config.Config.samples
    ~exhaustive_limit:config.Config.exhaustive_limit net

let golden_signatures ?config ?patterns net =
  let config = match config with Some c -> c | None -> Config.for_network net in
  let patterns =
    match patterns with Some p -> p | None -> patterns_for config net
  in
  Evaluate.output_signatures net patterns

(* Eq. (1): estimated error of applying a LAC set on a circuit with error e. *)
let estimate_for e lacs =
  List.fold_left (fun acc lac -> acc +. lac.Lac.delta_error) e lacs

let run_loop ?patterns ?pool ?checkpoint st =
  let config = st.s_config in
  let metric = st.s_metric in
  let e_b = st.s_error_bound in
  let net = st.s_original in
  Telemetry.with_span ~cat:"engine"
    ~args:
      [
        ("circuit", Tjson.String (Network.name net));
        ("start_round", Tjson.Int st.s_round);
      ]
    "engine.run"
  @@ fun () ->
  let pool, owned_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Pool.create ~jobs:config.Config.jobs, true)
  in
  let stats = Pool.stats pool in
  let phase name f = Stats.time_phase stats name f in
  (* Per-round engine metrics live in the pool's registry, next to the
     phase clocks and the work counters they contextualize. *)
  let m = Stats.metrics stats in
  let c_rounds =
    Metrics.counter m "accals_rounds_total" ~help:"Synthesis rounds executed"
  in
  let c_candidates =
    Metrics.counter m "accals_candidates_total"
      ~help:"LAC candidates generated across all rounds"
  in
  let c_applied =
    Metrics.counter m "accals_lacs_applied_total" ~help:"LACs committed"
  in
  let c_skipped =
    Metrics.counter m "accals_lacs_skipped_total"
      ~help:"LACs skipped by the acyclicity guard"
  in
  let c_evals =
    Metrics.counter m "accals_estimator_evaluations_total"
      ~help:"Exact cone resimulations performed by the estimator"
  in
  let c_cache_hits =
    Metrics.counter m "accals_estimator_cone_cache_hits_total"
      ~help:"Estimator transitive-fanout cone cache hits"
  in
  let c_cache_misses =
    Metrics.counter m "accals_estimator_cone_cache_misses_total"
      ~help:"Estimator transitive-fanout cone cache misses"
  in
  let c_resim_nodes =
    Metrics.counter m "accals_resim_nodes_total"
      ~help:"Node evaluations during resimulation"
  in
  let c_resim_stops =
    Metrics.counter m "accals_resim_early_stops_total"
      ~help:"Resimulation evaluations pruned by bit-equal convergence"
  in
  let c_resim_recycles =
    Metrics.counter m "accals_resim_buffer_recycles_total"
      ~help:"Signature buffer pool hits during resimulation"
  in
  let c_journal_undos =
    Metrics.counter m "accals_journal_undos_total"
      ~help:"Sigdb undo-journal reverts"
  in
  let c_journal_entries =
    Metrics.counter m "accals_journal_entries_undone_total"
      ~help:"Sigdb journal entries reverted (journal depth summed over undos)"
  in
  let c_audits =
    Metrics.counter m "accals_audits_total" ~help:"Shadow audits performed"
  in
  let g_gc_minor =
    Metrics.gauge m "accals_gc_minor_collections"
      ~help:"GC minor collections since program start (sampled per round)"
  in
  let g_gc_major =
    Metrics.gauge m "accals_gc_major_collections"
      ~help:"GC major collections since program start (sampled per round)"
  in
  let g_gc_heap_words =
    Metrics.gauge m "accals_gc_heap_words"
      ~help:"Major heap size in words (sampled per round)"
  in
  let g_memory_bytes =
    Metrics.gauge m "accals_memory_bytes"
      ~help:
        "Estimated process footprint: GC major heap plus discardable \
         derived state (cone cache, signature buffer pool), sampled per \
         round"
  in
  let patterns =
    match patterns with Some p -> p | None -> patterns_for config net
  in
  let started = Clock.now () in
  let golden = phase "simulate" (fun () -> Evaluate.output_signatures net patterns) in
  let area0 = Cost.area net in
  let delay0 = Cost.delay net in
  let rng = st.s_rng in
  let current = ref st.s_current in
  let error = ref st.s_error in
  let best = ref st.s_best in
  let best_error = ref st.s_best_error in
  let rounds = ref st.s_rounds in
  let evaluations = ref st.s_evaluations in
  let round_index = ref st.s_round in
  let finished = ref st.s_finished in
  let degraded = ref st.s_degraded in
  let ladder = Ladder.copy st.s_ladder in
  let degraded_reason = ref st.s_degraded_reason in
  let incidents = ref st.s_incidents in
  let audits = ref 0 in
  (* Previously feasible best circuits, newest first, for certification
     rollback. In-memory only: a resumed run restarts with an empty stack,
     so its rollback depth is bounded by what it has seen since resuming. *)
  let max_rollback = 8 in
  let rollback = ref [] in
  let ev =
    Round_eval.create ~incremental:config.Config.incremental ~current
      ~patterns ~golden ~metric
  in
  (* The effective configuration can lose [incremental] mid-run (audit
     divergence); checkpoints persist the effective one so a resume
     continues on the degraded backend. *)
  let eff_config = ref config in
  let take_best e_new =
    rollback := List.filteri (fun i _ -> i < max_rollback - 1) !rollback;
    rollback := (!best, !best_error) :: !rollback;
    best := Network.copy !current;
    best_error := e_new
  in
  let run_watchdog = Watchdog.start config.Config.run_deadline in
  (* Checkpointed state is validated first: persisting (or handing out) a
     structurally broken network would silently poison every later resume,
     so fail loudly here instead. The PRNG is copied because the loop keeps
     mutating it after the hook returns, and the working circuit is copied
     because the incremental backend mutates it in place (the copy also
     drops the signature database's change tracker, which must never be
     marshaled). *)
  let emit_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some save ->
      Network.validate !current;
      Network.validate !best;
      save
        {
          st with
          s_config = !eff_config;
          s_current = Network.copy !current;
          s_best = !best;
          s_error = !error;
          s_best_error = !best_error;
          s_rounds = !rounds;
          s_evaluations = !evaluations;
          s_round = !round_index;
          s_finished = !finished;
          s_degraded = !degraded;
          s_degraded_reason = !degraded_reason;
          s_ladder = Ladder.copy ladder;
          s_incidents = !incidents;
          s_rng = Prng.copy rng;
        }
  in
  let incident kind =
    incidents := Incident.make ~round:!round_index kind :: !incidents
  in
  (* Ladder transitions become trace instants and JSONL events; the levels
     and reasons print with their report names so traces and reports
     cross-reference directly. *)
  let ladder_event ~kind ~reason =
    let args =
      [
        ("kind", Tjson.String kind);
        ("level", Tjson.String (Ladder.level_to_string (Ladder.level ladder)));
        ("reason", Tjson.String (Ladder.reason_to_string reason));
        ("round", Tjson.Int !round_index);
      ]
    in
    Telemetry.instant ~cat:"ladder" ~args ("ladder." ^ kind);
    Telemetry.event (fun () ->
        Tjson.Obj (("event", Tjson.String "ladder") :: args))
  in
  Telemetry.event (fun () ->
      Tjson.Obj
        [
          ("event", Tjson.String "run_start");
          ("circuit", Tjson.String (Network.name net));
          ("metric", Tjson.String (Metric.kind_to_string metric));
          ("error_bound", Tjson.Float e_b);
          ("start_round", Tjson.Int !round_index);
          ("jobs", Tjson.Int config.Config.jobs);
        ]);
  (* The shadow audit: re-derive the round's signatures and error from
     scratch and compare with what the fast path believes. A divergence
     moves the run permanently down the ladder — incremental to rebuild
     (abandoning the signature database), rebuild to single-LAC, and at the
     bottom the run stops with the best circuit so far. *)
  let maybe_audit () =
    if not !finished then begin
      let due =
        config.Config.audit_every > 0
        && !round_index mod config.Config.audit_every = 0
      in
      let anomaly = not (Round_eval.watermark_ok ev) in
      if due || anomaly then begin
        incr audits;
        Metrics.incr c_audits;
        (match Shadow.selftest_round () with
         | Some r when r = !round_index ->
           ignore (Round_eval.corrupt_for_selftest ev)
         | _ -> ());
        match
          phase "audit" (fun () -> Round_eval.audit ev ~recorded_error:!error)
        with
        | Shadow.Clean -> ()
        | Shadow.Divergence d ->
          incident
            (Incident.Audit_divergence
               {
                 backend = d.Shadow.backend;
                 nodes = d.Shadow.nodes;
                 fp_reference = d.Shadow.fp_reference;
                 fp_observed = d.Shadow.fp_observed;
                 recorded_error = d.Shadow.recorded_error;
                 reference_error = d.Shadow.reference_error;
               });
          degraded := true;
          if !degraded_reason = None then
            degraded_reason := Some Ladder.Audit_divergence;
          (match Ladder.level ladder with
           | Ladder.Incremental ->
             Round_eval.degrade_to_rebuild ev;
             eff_config := { !eff_config with Config.incremental = false };
             Ladder.descend ladder ~round:!round_index ~level:Ladder.Rebuild
               ~reason:Ladder.Audit_divergence
           | Ladder.Rebuild ->
             Ladder.descend ladder ~round:!round_index ~level:Ladder.Single_lac
               ~reason:Ladder.Audit_divergence
           | Ladder.Single_lac -> finished := true);
          ladder_event ~kind:"descend" ~reason:Ladder.Audit_divergence
      end
    end
  in
  (* The memory governor. Sampled once per round boundary; responses
     escalate and each rung preserves the bit-identity contract for every
     circuit the run does emit:
     - soft pressure (>= 85% of the budget): drop the discardable derived
       state — estimator cone cache, idle signature buffers — and compact.
       Pure space/time trade; scores and tie-breaks cannot change.
     - hard pressure (>= 100%) surviving that relief: descend the ladder to
       the rebuild backend, abandoning the signature database (the
       documented bit-identical reference path).
     - hard pressure even on the cheapest backend: checkpoint and stop
       degraded with a [Resource_exhausted] incident — the caller (or the
       serve daemon) sheds the job with a structured error instead of
       letting the OOM killer pick a victim. *)
  let mem_budget =
    if config.Config.max_memory_mb <= 0 then None
    else begin
      let b =
        Budget.Memory.create
          ~limit_bytes:(config.Config.max_memory_mb * 1024 * 1024)
      in
      Budget.Memory.register_source b ~name:"round_eval" (fun () ->
          Round_eval.aux_bytes ev);
      Some b
    end
  in
  let govern_memory () =
    match mem_budget with
    | None -> ()
    | Some mb ->
      let used = Budget.Memory.sample mb in
      Metrics.set g_memory_bytes (float_of_int used);
      if Budget.Memory.classify mb ~bytes:used <> Budget.Memory.Nominal
         && not !finished
      then begin
        let cones, bufs = phase "govern" (fun () ->
            let relief = Round_eval.relieve_memory ev in
            Gc.compact ();
            relief)
        in
        let used' = Budget.Memory.sample mb in
        Metrics.set g_memory_bytes (float_of_int used');
        Telemetry.instant ~cat:"budget"
          ~args:
            [
              ("bytes_before", Tjson.Int used);
              ("bytes_after", Tjson.Int used');
              ("limit_bytes", Tjson.Int (Budget.Memory.limit_bytes mb));
              ("cones_dropped", Tjson.Int cones);
              ("buffers_dropped", Tjson.Int bufs);
            ]
          "budget.memory_relief";
        if Budget.Memory.classify mb ~bytes:used' = Budget.Memory.Hard then begin
          degraded := true;
          if !degraded_reason = None then
            degraded_reason := Some Ladder.Resource_pressure;
          match Ladder.level ladder with
          | Ladder.Incremental ->
            (* Next-cheapest mode: the rebuild backend holds no persistent
               signature database at all, and stays bit-identical. *)
            Round_eval.degrade_to_rebuild ev;
            Gc.compact ();
            eff_config := { !eff_config with Config.incremental = false };
            Ladder.descend ladder ~round:!round_index ~level:Ladder.Rebuild
              ~reason:Ladder.Resource_pressure;
            ladder_event ~kind:"descend" ~reason:Ladder.Resource_pressure
          | Ladder.Rebuild | Ladder.Single_lac ->
            (* Nothing cheaper left: checkpoint (below) and stop with the
               best circuit so far, reporting the exhaustion. *)
            if
              Ladder.note ladder ~round:!round_index
                ~reason:Ladder.Resource_pressure
            then ladder_event ~kind:"note" ~reason:Ladder.Resource_pressure;
            incident
              (Incident.Resource_exhausted
                 {
                   resource = "memory";
                   limit = float_of_int (Budget.Memory.limit_bytes mb);
                   observed = float_of_int used';
                 });
            finished := true
        end
      end
  in
  Fun.protect ~finally:(fun () -> if owned_pool then Pool.shutdown pool)
  @@ fun () ->
  while (not !finished) && !round_index < config.Config.max_rounds do
    if Watchdog.expired run_watchdog then begin
      (* Run deadline: stop gracefully with the best circuit so far. *)
      degraded := true;
      if !degraded_reason = None then degraded_reason := Some Ladder.Watchdog_run;
      if Ladder.note ladder ~round:!round_index ~reason:Ladder.Watchdog_run then begin
        incident (Incident.Watchdog_expired { scope = "run" });
        ladder_event ~kind:"note" ~reason:Ladder.Watchdog_run
      end;
      finished := true
    end
    else begin
    incr round_index;
    Telemetry.with_span ~cat:"engine"
      ~args:[ ("round", Tjson.Int !round_index) ]
      "round"
    @@ fun () ->
    let round_watchdog = Watchdog.start config.Config.round_deadline in
    let ctx, est = phase "simulate" (fun () -> Round_eval.begin_round ev) in
    let candidates =
      phase "candidates" (fun () ->
          Candidate_gen.generate ~pool ctx config.Config.candidate)
    in
    if candidates = [] then finished := true
    else begin
      let single_mode =
        (config.Config.use_improvement_1 && !error > config.Config.l_e *. e_b)
        || Ladder.level ladder = Ladder.Single_lac
      in
      let mode =
        if config.Config.exact_estimation then Estimator.Exact
        else Estimator.Approximate
      in
      let scored =
        phase "estimate" (fun () ->
            Estimator.score ~mode ~pool est
              ~shortlist:(if single_mode then min 64 config.Config.shortlist
                          else config.Config.shortlist)
              candidates)
      in
      let evals_delta = Round_eval.take_evaluations ev in
      evaluations := !evaluations + evals_delta;
      Metrics.add c_evals evals_delta;
      (* Round deadline: degrade this round from multi-LAC selection to the
         cheap single-LAC path rather than blowing the budget further. *)
      let wd_round = Watchdog.expired round_watchdog in
      if wd_round then
        if Ladder.note ladder ~round:!round_index ~reason:Ladder.Watchdog_round
        then begin
          incident (Incident.Watchdog_expired { scope = "round" });
          ladder_event ~kind:"note" ~reason:Ladder.Watchdog_round
        end;
      let single_mode = single_mode || wd_round in
      let record ~mode ~top ~sol ~indp ~rand ~chose ~applied ~skipped ~e_before
          ~e_after ~e_est ~reverted =
        let resim_nodes, resim_converged, resim_recycled =
          Round_eval.take_counters ev
        in
        rounds :=
          {
            Trace.index = !round_index;
            mode;
            candidates = List.length candidates;
            top_count = top;
            sol_count = sol;
            indp_count = indp;
            rand_count = rand;
            chose_indp = chose;
            applied;
            skipped_cycles = skipped;
            error_before = e_before;
            error_after = e_after;
            estimated_error = e_est;
            reverted;
            area = Cost.area !current;
            resim_nodes;
            resim_converged;
            resim_recycled;
          }
          :: !rounds;
        Metrics.incr c_rounds;
        Metrics.add c_candidates (List.length candidates);
        Metrics.add c_applied applied;
        Metrics.add c_skipped skipped;
        Metrics.add c_resim_nodes resim_nodes;
        Metrics.add c_resim_stops resim_converged;
        Metrics.add c_resim_recycles resim_recycled;
        let aux = Round_eval.take_aux ev in
        Metrics.add c_cache_hits aux.Round_eval.cache_hits;
        Metrics.add c_cache_misses aux.Round_eval.cache_misses;
        Metrics.add c_journal_undos aux.Round_eval.journal_undos;
        Metrics.add c_journal_entries aux.Round_eval.journal_entries;
        let gc = Gc.quick_stat () in
        Metrics.set g_gc_minor (float_of_int gc.Gc.minor_collections);
        Metrics.set g_gc_major (float_of_int gc.Gc.major_collections);
        Metrics.set g_gc_heap_words (float_of_int gc.Gc.heap_words);
        let area = Cost.area !current in
        Telemetry.event (fun () ->
            Tjson.Obj
              [
                ("event", Tjson.String "round");
                ("round", Tjson.Int !round_index);
                ( "mode",
                  Tjson.String
                    (match mode with
                     | Trace.Multi -> "multi"
                     | Trace.Single -> "single") );
                ("candidates", Tjson.Int (List.length candidates));
                ("applied", Tjson.Int applied);
                ("error", Tjson.Float e_after);
                ("estimated_error", Tjson.Float e_est);
                ("area", Tjson.Float area);
                ("reverted", Tjson.Bool reverted);
              ]);
        Telemetry.progress_round ~round:!round_index
          ~max_rounds:config.Config.max_rounds ~error:e_after ~threshold:e_b
          ~area
      in
      match scored with
      | [] -> finished := true
      | _ when single_mode -> begin
        match phase "evaluate" (fun () -> Round_eval.eval_single ev scored) with
        | None -> finished := true
        | Some (lac, e_new) ->
          phase "evaluate" (fun () -> Round_eval.commit_single ev lac);
          let e_before = !error in
          error := e_new;
          record ~mode:Trace.Single ~top:1 ~sol:1 ~indp:0 ~rand:0 ~chose:None
            ~applied:1 ~skipped:0 ~e_before ~e_after:e_new
            ~e_est:(estimate_for e_before [ lac ]) ~reverted:false;
          if e_new <= e_b then take_best e_new else finished := true
      end
      | _ -> begin
        let l_indp, l_rand, l_top, l_sol =
          phase "select" (fun () ->
              let l_top =
                Top_set.obtain ~r_ref:config.Config.r_ref ~e:!error ~e_b scored
              in
              let l_sol, _n_sol = Conflict_graph.find_and_solve l_top in
              let l_indp =
                Independent_select.select ~pool config ctx ~l_sol ~e:!error
                  ~e_b
              in
              let l_rand =
                if config.Config.use_random_comparison then
                  Independent_select.select_random config rng ~l_sol ~e:!error
                    ~e_b
                else []
              in
              (l_indp, l_rand, l_top, l_sol))
        in
        let (applied1, skipped1, e1), (applied2, skipped2, e2) =
          phase "evaluate" (fun () ->
              let r1 = Round_eval.eval_set ev l_indp in
              let r2 =
                if l_rand = [] then ([], [], infinity)
                else Round_eval.eval_set ev l_rand
              in
              (r1, r2))
        in
        if applied1 = [] && applied2 = [] then finished := true
        else begin
          (* Paper's choice rule: error first, then LAC count. *)
          let choose_indp =
            (applied2 = [])
            || (applied1 <> []
                && (e1 < e2
                    || (e1 = e2 && List.length applied1 >= List.length applied2)))
          in
          let e_new, applied, skipped =
            if choose_indp then (e1, applied1, skipped1)
            else (e2, applied2, skipped2)
          in
          let e_before = !error in
          let e_est = estimate_for e_before applied in
          (* Improvement 2: detect a negative LAC set and revert. *)
          let beta =
            if e_new > 0.0 then (e_new -. e_est) /. e_new else 0.0
          in
          if config.Config.use_improvement_2 && e_new > 0.0 && beta > config.Config.l_d
          then begin
            match
              phase "evaluate" (fun () -> Round_eval.eval_single ev scored)
            with
            | None -> finished := true
            | Some (lac, e_s) ->
              phase "evaluate" (fun () -> Round_eval.commit_single ev lac);
              error := e_s;
              record ~mode:Trace.Multi ~top:(List.length l_top)
                ~sol:(List.length l_sol) ~indp:(List.length l_indp)
                ~rand:(List.length l_rand)
                ~chose:(Some choose_indp) ~applied:1 ~skipped:0
                ~e_before ~e_after:e_s
                ~e_est:(estimate_for e_before [ lac ]) ~reverted:true;
              if e_s <= e_b then take_best e_s else finished := true
          end
          else begin
            phase "evaluate" (fun () -> Round_eval.commit_set ev applied);
            error := e_new;
            record ~mode:Trace.Multi ~top:(List.length l_top)
              ~sol:(List.length l_sol) ~indp:(List.length l_indp)
              ~rand:(List.length l_rand) ~chose:(Some choose_indp)
              ~applied:(List.length applied)
              ~skipped:(List.length skipped)
              ~e_before ~e_after:e_new ~e_est ~reverted:false;
            if e_new <= e_b then begin
              best := Network.copy !current;
              best_error := e_new
            end
            else finished := true
          end
        end
      end
    end;
    if config.Config.validate_rounds then Network.validate !current;
    maybe_audit ();
    govern_memory ();
    emit_checkpoint ()
    end
  done;
  (* Persist the terminal state so resuming a completed (or degraded) run
     reproduces its report without redoing any round. *)
  finished := true;
  emit_checkpoint ();
  let approximate0 = Cleanup.compact !best in
  (* Certification: re-measure the result with an independent PRNG stream
     (exhaustively when the width permits) and, if the independent
     measurement violates the bound, walk back through earlier feasible
     circuits — ending at the exact original — rather than emit a violating
     result. *)
  let certification, approximate, reported_error =
    if not config.Config.certify then (None, approximate0, !best_error)
    else
      phase "certify" (fun () ->
          let measure circuit =
            Certify.measure ~golden:net ~approx:circuit ~metric
              ~seed:config.Config.seed ~samples:config.Config.samples
              ~exhaustive_limit:config.Config.exhaustive_limit
          in
          let candidates =
            (fun () -> (approximate0, !best_error))
            :: List.map (fun (c, e) () -> (Cleanup.compact c, e)) !rollback
            @ [ (fun () -> (Cleanup.compact net, 0.0)) ]
          in
          let outcome, circuit, sampled_error =
            Certify.certify_with_rollback ~measure ~bound:e_b ~candidates
              ~on_violation:(fun ~step ~measured ->
                incident
                  (Incident.Certification_violation
                     { measured; bound = e_b; step }))
          in
          if outcome.Certify.rollback_steps > 0 then begin
            ignore
              (Ladder.note ladder ~round:!round_index
                 ~reason:Ladder.Certification_rollback);
            ladder_event ~kind:"note" ~reason:Ladder.Certification_rollback
          end;
          (Some outcome, circuit, sampled_error))
  in
  let runtime_seconds = Clock.now () -. started in
  Telemetry.progress_finish ();
  let stats_snap = Stats.snapshot stats in
  Telemetry.event (fun () ->
      Tjson.Obj
        [
          ("event", Tjson.String "run_end");
          ("circuit", Tjson.String (Network.name net));
          ("rounds", Tjson.Int !round_index);
          ("error", Tjson.Float reported_error);
          ("runtime_seconds", Tjson.Float runtime_seconds);
          ("evaluations", Tjson.Int !evaluations);
          ("audits", Tjson.Int !audits);
          ("degraded", Tjson.Bool !degraded);
        ]);
  {
    original = net;
    approximate;
    error = reported_error;
    metric;
    error_bound = e_b;
    rounds = List.rev !rounds;
    runtime_seconds;
    exact_evaluations = !evaluations;
    area_ratio = Cost.area approximate /. area0;
    delay_ratio = Cost.delay approximate /. delay0;
    adp_ratio = Cost.adp approximate /. (area0 *. delay0);
    degraded = !degraded;
    degraded_reason = !degraded_reason;
    final_level = Ladder.level ladder;
    ladder_events = Ladder.events ladder;
    ladder_summary = Ladder.summary ladder;
    audits = !audits;
    incidents = List.rev !incidents;
    certification;
    stats = stats_snap;
    metrics =
      Metrics.merge stats_snap.Stats.metrics
        (Metrics.snapshot (Telemetry.metrics ()));
  }

let run ?config ?patterns ?pool ?checkpoint net ~metric ~error_bound =
  if error_bound <= 0.0 then invalid_arg "Engine.run: error bound must be positive";
  let config = match config with Some c -> c | None -> Config.for_network net in
  run_loop ?patterns ?pool ?checkpoint
    {
      s_version = snapshot_version;
      s_original = net;
      s_current = Network.copy net;
      s_best = Network.copy net;
      s_error = 0.0;
      s_best_error = 0.0;
      s_rounds = [];
      s_evaluations = 0;
      s_round = 0;
      s_finished = false;
      s_degraded = false;
      s_rng = Prng.create (config.Config.seed + 77);
      s_config = config;
      s_metric = metric;
      s_error_bound = error_bound;
      s_ladder =
        Ladder.create
          ~initial:
            (if config.Config.incremental then Ladder.Incremental
             else Ladder.Rebuild);
      s_degraded_reason = None;
      s_incidents = [];
    }

let resume ?jobs ?patterns ?pool ?checkpoint snapshot =
  if snapshot.s_version <> snapshot_version then
    invalid_arg
      (Printf.sprintf "Engine.resume: snapshot version %d, this build expects %d"
         snapshot.s_version snapshot_version);
  let config =
    match jobs with
    | None -> snapshot.s_config
    | Some j -> { snapshot.s_config with Config.jobs = max 1 j }
  in
  (* Deep-copy the mutable pieces so the caller's snapshot stays reusable
     (resume the same snapshot twice and both runs are identical). *)
  run_loop ?patterns ?pool ?checkpoint
    {
      snapshot with
      s_config = config;
      s_current = Network.copy snapshot.s_current;
      s_best = Network.copy snapshot.s_best;
      s_rng = Prng.copy snapshot.s_rng;
      s_ladder = Ladder.copy snapshot.s_ladder;
    }
