open Accals_lac

type t = {
  r_ref : int;
  r_sel : int;
  t_b : float;
  lambda : float;
  l_e : float;
  l_d : float;
  sigma : float;
  seed : int;
  samples : int;
  exhaustive_limit : int;
  shortlist : int;
  candidate : Candidate_gen.config;
  max_rounds : int;
  use_mis : bool;
  use_random_comparison : bool;
  use_improvement_1 : bool;
  use_improvement_2 : bool;
  exact_estimation : bool;
  incremental : bool;
  jobs : int;
  round_deadline : float option;
  run_deadline : float option;
  validate_rounds : bool;
  audit_every : int;
  certify : bool;
  max_memory_mb : int;
}

let default =
  {
    r_ref = 100;
    r_sel = 20;
    t_b = 0.5;
    lambda = 0.9;
    l_e = 0.9;
    l_d = 0.3;
    sigma = 0.001;
    seed = 1;
    samples = 2048;
    exhaustive_limit = 14;
    shortlist = 300;
    candidate = Candidate_gen.default_config;
    max_rounds = 10_000;
    use_mis = true;
    use_random_comparison = true;
    use_improvement_1 = true;
    use_improvement_2 = true;
    exact_estimation = true;
    incremental = true;
    jobs = 1;
    round_deadline = None;
    run_deadline = None;
    validate_rounds = false;
    audit_every = 0;
    certify = false;
    max_memory_mb = 0;
  }

let parallel ?jobs base =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  { base with jobs = max 1 jobs }

let for_size ?(base = default) aig_nodes =
  let r_ref, r_sel =
    if aig_nodes < 600 then (100, 20)
    else if aig_nodes < 5000 then (200, 40)
    else (400, 80)
  in
  { base with r_ref; r_sel; shortlist = 3 * r_ref }

let for_network ?base net =
  for_size ?base (Accals_network.Cost.aig_node_count net)
