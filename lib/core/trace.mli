(** Per-round synthesis trace, used for the paper's statistical analysis
    (Fig. 4) and for debugging. *)

type mode = Multi | Single

type round = {
  index : int;
  mode : mode;
  candidates : int;  (** candidate LACs generated *)
  top_count : int;  (** |L_top| *)
  sol_count : int;  (** |L_sol| after conflict resolution *)
  indp_count : int;  (** |L_indp| *)
  rand_count : int;  (** |L_rand| *)
  chose_indp : bool option;  (** [None] in single-LAC rounds *)
  applied : int;  (** LACs actually applied this round *)
  skipped_cycles : int;  (** LACs skipped by the acyclicity guard *)
  error_before : float;
  error_after : float;
  estimated_error : float;  (** Eq. (1) estimate for the applied set *)
  reverted : bool;  (** improvement technique 2 fired *)
  area : float;  (** circuit area after the round *)
  resim_nodes : int;
      (** node signature evaluations spent this round; on the incremental
          path only changed fanout cones are re-evaluated, on the rebuild
          path this counts the full simulations performed *)
  resim_converged : int;
      (** evaluations whose result was bit-equal to the stored signature,
          pruning the rest of their cone (0 on the rebuild path) *)
  resim_recycled : int;
      (** signature buffers served from the recycling pool instead of
          being freshly allocated (0 on the rebuild path) *)
}

val indp_ratio : round list -> float
(** Fraction of multi-LAC rounds in which the independent set won (the
    paper's L_indp ratio, Fig. 4). 0 when there were no such rounds. *)

val classify : sigma:float -> round -> [ `Positive | `Independent | `Negative ] option
(** Classification of the round's applied LAC set per Section II-A; [None]
    for single-LAC rounds. *)

val summary : round list -> string

val resim_summary : round list -> string
(** Totals of the per-round resimulation counters, e.g.
    ["8123 node evaluations (402 stopped early, 7310 buffers recycled)"]. *)

val to_csv : round list -> string
(** One header line plus one row per round; loads directly into pandas /
    gnuplot for trajectory plots. *)

val write_csv : round list -> string -> unit

val of_csv : string -> round list
(** Strict inverse of {!to_csv}: parses the header plus rows back into
    rounds, raising [Failure] on header drift, wrong column arity or
    malformed fields. [of_csv (to_csv rounds)] returns rounds whose float
    fields are the [%.9f]/[%.1f]-rounded values the CSV carries; all other
    fields round-trip exactly. *)

(** {1 Parallel-runtime accounting}

    The engine's report carries an {!Accals_runtime.Stats.snapshot}; these
    helpers render it alongside the round trace. *)

val stats_summary : Accals_runtime.Stats.snapshot -> string
(** e.g. ["4 domains, 1280 tasks in 12 batches, 31 worker waits"]. *)

val phases_summary : Accals_runtime.Stats.snapshot -> string
(** Per-phase wall time, e.g. ["simulate 0.12s, estimate 1.40s, ..."]. *)
