(** SelectIndpLACs and SelectRandomLACs (Sections II-D2, II-D3 and
    Algorithm 1 line 7).

    [select] builds the influence graph over the conflict-free targets,
    solves a maximum independent set on it to get N_indp, keeps the LACs
    whose targets lie in N_indp (the potential set L_pote), and sizes the
    final set by the paper's rule: all non-positive-ΔE LACs when there are
    at least [r_sel] of them, otherwise the longest ascending-ΔE prefix of
    the first [r_sel] whose Eq. (1) estimate stays within λ·e_b (at least
    one LAC always survives).

    [select_random] applies the same sizing discipline to a uniformly
    shuffled L_sol, giving the randomized comparison set L_rand. *)

open Accals_lac
module Prng := Accals_bitvec.Prng

val budget_prefix :
  r_sel:int -> lambda:float -> e:float -> e_b:float -> Lac.t list -> Lac.t list
(** The sizing rule applied to an already-ordered list (exposed for
    tests). *)

val select :
  ?pool:Accals_runtime.Pool.t ->
  Config.t ->
  Round_ctx.t ->
  l_sol:Lac.t list ->
  e:float ->
  e_b:float ->
  Lac.t list

val select_random :
  Config.t -> Prng.t -> l_sol:Lac.t list -> e:float -> e_b:float -> Lac.t list
