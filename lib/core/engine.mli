(** The AccALS synthesis engine (Algorithm 1 with the Section II-E
    improvement techniques). *)

open Accals_network
open Accals_bitvec
module Metric := Accals_metrics.Metric
module Ladder := Accals_audit.Ladder
module Incident := Accals_audit.Incident
module Certify := Accals_audit.Certify

type report = {
  original : Network.t;
  approximate : Network.t;  (** compacted final circuit, error <= bound *)
  error : float;  (** exact-on-samples error of [approximate] *)
  metric : Metric.kind;
  error_bound : float;
  rounds : Trace.round list;  (** chronological *)
  runtime_seconds : float;
  exact_evaluations : int;  (** estimator cone resimulations *)
  area_ratio : float;
  delay_ratio : float;
  adp_ratio : float;
  degraded : bool;
      (** the run ended early or off its preferred path — see
          [degraded_reason]; the report carries the best circuit found
          rather than a converged result *)
  degraded_reason : Ladder.reason option;
      (** why the run degraded: the run-deadline watchdog expired
          ([Watchdog_run]) or a shadow audit caught the fast path diverging
          ([Audit_divergence]); [None] iff [degraded = false] *)
  final_level : Ladder.level;
      (** where on the degradation ladder the run ended *)
  ladder_events : Ladder.event list;  (** chronological; survives resume *)
  ladder_summary : string;
      (** e.g. ["incremental -> rebuild@4 (audit_divergence)"] *)
  audits : int;
      (** shadow audits performed this process (work accounting: a resumed
          run counts only its own) *)
  incidents : Incident.t list;
      (** chronological anomaly records (audit divergences, watchdog
          expiries, certification violations); checkpointed, so a resumed
          run reports the same list *)
  certification : Certify.outcome option;
      (** present iff [Config.certify]: the independent re-measurement of
          [approximate] — when it rolled back, [error] and the ratio fields
          describe the rolled-back circuit actually emitted. Rollback
          candidates beyond the final best live in memory only, so a run
          resumed near its end may have fewer to try than the uninterrupted
          one. *)
  stats : Accals_runtime.Stats.snapshot;
      (** parallel-runtime work accounting and per-phase wall time
          ("simulate", "candidates", "estimate", "select", "evaluate") *)
  metrics : Accals_telemetry.Metrics.snapshot;
      (** full telemetry registry snapshot: the pool registry (work
          counters, phase seconds, per-round engine metrics, GC gauges)
          merged with the ambient registry (checkpoint counters). This is
          what [--metrics-out] exports; purely observational, identical
          synthesis outputs with or without any exporter attached. *)
}

type snapshot
(** The engine's complete deterministic state at a round boundary: original
    and working circuits, best feasible circuit, errors, round trace, PRNG
    state, configuration, metric and bound. A snapshot plus this module's
    code fully determines the remainder of the run — patterns and golden
    signatures are regenerated from the configuration and original circuit.
    Snapshots contain no closures and are safe to persist with
    [Accals_resilience.Checkpoint]. *)

val snapshot_version : int
(** Stored inside every snapshot; {!resume} rejects mismatches. *)

val snapshot_round : snapshot -> int
val snapshot_finished : snapshot -> bool
val snapshot_circuit : snapshot -> string
val snapshot_metric : snapshot -> Metric.kind
val snapshot_error_bound : snapshot -> float
val snapshot_jobs : snapshot -> int

val run :
  ?config:Config.t ->
  ?patterns:Sim.patterns ->
  ?pool:Accals_runtime.Pool.t ->
  ?checkpoint:(snapshot -> unit) ->
  Network.t ->
  metric:Metric.kind ->
  error_bound:float ->
  report
(** Synthesize an approximate version of the network whose [metric] error
    (measured on the shared pattern set against the original) does not
    exceed [error_bound]. When [config] is omitted, the paper's
    size-bucketed parameters are chosen from the circuit's AIG node count.
    When [patterns] is omitted, they are derived from [config]
    (exhaustive below the input-count limit, seeded-random otherwise).

    When [pool] is given it is used (and left running) for the parallel
    phases; otherwise a pool of [config.jobs] domains is created for the
    run and shut down before returning. The report is bit-identical for
    every [jobs] value — the parallel fan-out merges in submission order
    (see [lib/runtime]) — so [jobs = 1] remains the reference
    implementation.

    When [checkpoint] is given it is called with the engine's snapshot
    after every completed round and once more when the run ends; both the
    working and best circuits are validated
    ({!Accals_network.Network.validate}) before each call. The deadline
    fields of [config] ([round_deadline], [run_deadline]) arm the
    watchdogs described in {!Config.t}; deadline expiry only selects an
    alternative deterministic path (single-LAC fallback, early stop with
    [degraded = true]) — it never interrupts a computation midway. *)

val resume :
  ?jobs:int ->
  ?patterns:Sim.patterns ->
  ?pool:Accals_runtime.Pool.t ->
  ?checkpoint:(snapshot -> unit) ->
  snapshot ->
  report
(** Continue a run from a snapshot. The remainder of the run — and hence
    the final report, minus wall-clock fields ([runtime_seconds], [stats])
    — is bit-identical to the uninterrupted run the snapshot was taken
    from, for any [jobs] value. [jobs] overrides the snapshot's stored job
    count (the fan-out order, and therefore the result, does not depend on
    it). The snapshot is not consumed: resuming the same snapshot twice
    yields identical reports. Raises [Invalid_argument] when the
    snapshot's version does not match {!snapshot_version}. *)

val golden_signatures :
  ?config:Config.t -> ?patterns:Sim.patterns -> Network.t -> Bitvec.t array
(** The golden output signatures [run] scores against, for external
    verification of a report. *)
