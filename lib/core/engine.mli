(** The AccALS synthesis engine (Algorithm 1 with the Section II-E
    improvement techniques). *)

open Accals_network
open Accals_bitvec
module Metric := Accals_metrics.Metric

type report = {
  original : Network.t;
  approximate : Network.t;  (** compacted final circuit, error <= bound *)
  error : float;  (** exact-on-samples error of [approximate] *)
  metric : Metric.kind;
  error_bound : float;
  rounds : Trace.round list;  (** chronological *)
  runtime_seconds : float;
  exact_evaluations : int;  (** estimator cone resimulations *)
  area_ratio : float;
  delay_ratio : float;
  adp_ratio : float;
  stats : Accals_runtime.Stats.snapshot;
      (** parallel-runtime work accounting and per-phase wall time
          ("simulate", "candidates", "estimate", "select", "evaluate") *)
}

val run :
  ?config:Config.t ->
  ?patterns:Sim.patterns ->
  ?pool:Accals_runtime.Pool.t ->
  Network.t ->
  metric:Metric.kind ->
  error_bound:float ->
  report
(** Synthesize an approximate version of the network whose [metric] error
    (measured on the shared pattern set against the original) does not
    exceed [error_bound]. When [config] is omitted, the paper's
    size-bucketed parameters are chosen from the circuit's AIG node count.
    When [patterns] is omitted, they are derived from [config]
    (exhaustive below the input-count limit, seeded-random otherwise).

    When [pool] is given it is used (and left running) for the parallel
    phases; otherwise a pool of [config.jobs] domains is created for the
    run and shut down before returning. The report is bit-identical for
    every [jobs] value — the parallel fan-out merges in submission order
    (see [lib/runtime]) — so [jobs = 1] remains the reference
    implementation. *)

val golden_signatures :
  ?config:Config.t -> ?patterns:Sim.patterns -> Network.t -> Bitvec.t array
(** The golden output signatures [run] scores against, for external
    verification of a report. *)
