(** JSON serialization of {!Engine.report} — the one serializer behind the
    CLI's [--json] mode and the bench harness's report dumps, so the two
    can never drift apart.

    The encoding is deterministic (field order fixed, floats via the
    telemetry {!Accals_telemetry.Json} printer) and carries everything the
    printf report block shows: headline numbers, ladder summary and
    events, incident list, certification outcome, runtime-pool stats and
    phase times. A [build] header ({!Accals_telemetry.Build_info.to_json})
    opens every document so an archived report can be tied back to the
    exact binary that produced it. Round rows are summarized by default ([~rounds:false])
    because the CSV trace already carries them; pass [~rounds:true] to
    inline them. *)

val to_json : ?rounds:bool -> Engine.report -> Accals_telemetry.Json.t
(** [~rounds] (default [false]) inlines one object per synthesis round. *)

val to_string : ?rounds:bool -> Engine.report -> string
(** [to_json] pretty-printed, with a trailing newline. *)
