(** Round evaluation backend: candidate-set evaluation, single-LAC
    evaluation and commits, either by the reference rebuild-everything
    path (copy the circuit, resimulate from scratch) or through an
    attached {!Accals_sigdb.Sigdb} database (undo-journaled evaluation
    with cone-only resimulation). Both paths produce bit-identical
    applied/skipped partitions, error floats and committed circuits; only
    the work counters differ. *)

open Accals_network
open Accals_lac
module Metric := Accals_metrics.Metric
module Estimator := Accals_esterr.Estimator

type t

val create :
  incremental:bool ->
  current:Network.t ref ->
  patterns:Sim.patterns ->
  golden:Accals_bitvec.Bitvec.t array ->
  metric:Metric.kind ->
  t
(** The backend reads and updates the working circuit through [current].
    On the incremental path the referenced network gets a change tracker
    attached (on the first {!begin_round}) and is mutated in place by
    commits; checkpoint a {!Accals_network.Network.copy} of it, never the
    network itself. On the rebuild path commits replace the ref's content
    with a fresh copy, as the engine always did. *)

val backend_kind : t -> [ `Incremental | `Rebuild ]
(** The backend currently in use (it can change, see
    {!degrade_to_rebuild}). *)

val watermark_ok : t -> bool
(** False when the incremental database's frozen views are inconsistent
    with the working circuit (a missed change event); always true on the
    rebuild backend. The engine treats false as a forced-audit trigger. *)

val degrade_to_rebuild : t -> unit
(** Permanently switch to the rebuild backend: the signature database is
    detached and abandoned, and every subsequent round rebuilds its context
    from scratch. No-op when already on the rebuild backend. Callable at a
    round boundary only (not between {!begin_round} and its commit). *)

val audit : t -> recorded_error:float -> Accals_audit.Shadow.verdict
(** Shadow audit of the working circuit at a round boundary: re-derive
    liveness, order, signatures and error from scratch and compare with the
    incremental database's views ({!Accals_audit.Shadow.compare}). On the
    rebuild backend only the recorded error is cross-checked. *)

val corrupt_for_selftest : t -> int option
(** Corrupt one stored signature through
    {!Accals_sigdb.Sigdb.corrupt_signature}; [None] on the rebuild
    backend. Test hook. *)

val begin_round : t -> Round_ctx.t * Estimator.t
(** Analysis context and estimator for the round about to start. Rebuild:
    fresh ones over the current circuit. Incremental: the persistent pair,
    already refreshed by the previous round's commit. *)

val take_evaluations : t -> int
(** Estimator cone resimulations since the previous call (the estimator is
    persistent on the incremental path, so the raw counter accumulates). *)

val take_counters : t -> int * int * int
(** [(nodes, converged, recycled)] resimulation counters accumulated since
    the previous call. Incremental: node evaluations, early-convergence
    stops and pool hits from the signature database. Rebuild: [nodes]
    counts the full simulations performed (each costed at the round-start
    live non-input node count); the other two are 0. *)

type aux = {
  cache_hits : int;  (** estimator cone-cache hits *)
  cache_misses : int;
  journal_undos : int;  (** sigdb undo-journal reverts (0 on rebuild) *)
  journal_entries : int;  (** journal entries undone, summed over reverts *)
}

val take_aux : t -> aux
(** Secondary work counters accumulated since the previous call — the
    engine pushes these into the telemetry registry each round. Pure
    observation: reading them never affects evaluation. *)

val aux_bytes : t -> int
(** Estimated bytes held by discardable derived state: the estimator's
    cone cache plus the signature database's idle buffer pool. Feeds the
    [--max-memory-mb] governor's footprint sample. *)

val relieve_memory : t -> int * int
(** Memory-pressure relief: drop the cone cache and the idle signature
    buffer pool, returning [(cones_dropped, buffers_dropped)]. Both stores
    are derived data rebuilt on demand, so evaluation results are
    bit-identical with or without the relief — only time is lost. Round
    boundary only. *)

val eval_set : t -> Lac.t list -> Lac.t list * Lac.t list * float
(** Evaluate a LAC set without committing it: apply in ascending
    [delta_error] order, partition into (applied, skipped) under the
    acyclicity guard, and return the exact-on-samples error the working
    circuit would have (measured before any cleanup). The working circuit
    is unchanged on return. *)

val eval_single : t -> Lac.t list -> (Lac.t * float) option
(** First LAC of the list that applies without closing a cycle, with the
    exact-on-samples error of the resulting circuit; [None] if none
    applies. The working circuit is unchanged on return. *)

val probe : t -> Lac.t list -> Lac.t list * float * float
(** [(applied, error, area)] of the circuit obtained by applying the set
    and sweeping, without committing — the AMOSA baseline's state
    evaluation. Area is measured after the sweep. *)

val commit_set : t -> Lac.t list -> unit
(** Commit the [applied] list a prior {!eval_set} returned (in that exact
    order), then sweep. Re-application reproduces the evaluated circuit
    bit-for-bit, fresh node ids included. *)

val commit_single : t -> Lac.t -> unit
(** Commit one LAC a prior {!eval_single} returned, then sweep. *)
