open Accals_network
open Accals_lac
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Sigdb = Accals_sigdb.Sigdb
module Bitvec = Accals_bitvec.Bitvec

(* Round evaluation backend: one interface, two implementations.

   [Rebuild] is the reference path the engine historically used — every
   candidate-set evaluation copies the working circuit, applies the LACs to
   the copy and resimulates it from scratch, and every round rebuilds the
   analysis context and the estimator. [Incremental] keeps one signature
   database attached to the working circuit: evaluations run under an undo
   journal with cone-only overlay resimulation, commits resimulate the
   changed cones in place, and the persistent estimator is refreshed from
   the database's change delta.

   Both paths are bit-identical observable-for-observable: same applied /
   skipped partitions (the acyclicity guard sees the same network states),
   same error floats (overlay cone evaluation produces the same output
   bitvectors as a from-scratch simulation), same committed circuits
   (re-applying the applied sublist reproduces the evaluated circuit,
   including fresh node ids). Only the resimulation counters differ — they
   report the work actually done, which is the point. *)

type rebuild_state = {
  mutable r_ctx : Round_ctx.t option;
  mutable r_est : Estimator.t option;
  mutable r_sim_cost : int;  (* live non-input nodes at round start *)
  mutable r_nodes : int;  (* accumulated full-simulation node count *)
}

type incr_state = {
  mutable i_db : Sigdb.t option;
  mutable i_ctx : Round_ctx.t option;
  mutable i_est : Estimator.t option;
  mutable i_nodes_mark : int;
  mutable i_conv_mark : int;
  mutable i_rec_mark : int;
}

type backend = Rebuild of rebuild_state | Incremental of incr_state

type t = {
  current : Network.t ref;
  patterns : Sim.patterns;
  golden : Bitvec.t array;
  metric : Metric.kind;
  mutable backend : backend;
  mutable evals_mark : int;
  mutable hits_mark : int;  (* estimator cone-cache hit mark *)
  mutable misses_mark : int;
  mutable hits_pending : int;
      (* cache deltas banked when a rebuild-path estimator retires at
         commit, so [take_aux] can report them after the round closed *)
  mutable misses_pending : int;
  mutable undo_mark : int;  (* sigdb journal undo mark *)
  mutable jent_mark : int;  (* sigdb journal entries-undone mark *)
}

type aux = {
  cache_hits : int;
  cache_misses : int;
  journal_undos : int;
  journal_entries : int;
}

let create ~incremental ~current ~patterns ~golden ~metric =
  let backend =
    if incremental then
      Incremental
        {
          i_db = None;
          i_ctx = None;
          i_est = None;
          i_nodes_mark = 0;
          i_conv_mark = 0;
          i_rec_mark = 0;
        }
    else Rebuild { r_ctx = None; r_est = None; r_sim_cost = 0; r_nodes = 0 }
  in
  {
    current;
    patterns;
    golden;
    metric;
    backend;
    evals_mark = 0;
    hits_mark = 0;
    misses_mark = 0;
    hits_pending = 0;
    misses_pending = 0;
    undo_mark = 0;
    jent_mark = 0;
  }

let live_noninput ctx =
  Array.fold_left
    (fun acc id ->
      if Network.is_input ctx.Round_ctx.net id then acc else acc + 1)
    0 ctx.Round_ctx.order

let db_exn s =
  match s.i_db with
  | Some db -> db
  | None -> invalid_arg "Round_eval: no round started"

let sort_by_delta lacs =
  List.sort (fun a b -> compare a.Lac.delta_error b.Lac.delta_error) lacs

let backend_kind t =
  match t.backend with
  | Rebuild _ -> `Rebuild
  | Incremental _ -> `Incremental

(* The incremental views are replaced wholesale at every refresh, so a view
   sized differently from the network it describes can only mean the
   database missed a change event — the watermark anomaly that forces an
   immediate audit. *)
let watermark_ok t =
  match t.backend with
  | Rebuild _ -> true
  | Incremental { i_db = Some db; _ } ->
    Array.length (Sigdb.live_view db) = Network.num_nodes !(t.current)
  | Incremental _ -> true

(* Permanently abandon the incremental database and continue on the
   reference rebuild path. The database's tracker must come off the
   network first: rebuild-path commits replace the working circuit with
   untracked copies, and a stale tracker would keep mutating orphaned
   state. Counter marks reset with it — the counters they tracked are
   gone. *)
let degrade_to_rebuild t =
  match t.backend with
  | Rebuild _ -> ()
  | Incremental s ->
    (match s.i_db with Some db -> Sigdb.detach db | None -> ());
    t.evals_mark <- 0;
    t.hits_mark <- 0;
    t.misses_mark <- 0;
    t.undo_mark <- 0;
    t.jent_mark <- 0;
    t.backend <-
      Rebuild { r_ctx = None; r_est = None; r_sim_cost = 0; r_nodes = 0 }

let audit t ~recorded_error =
  let observed =
    match t.backend with
    | Rebuild _ -> None
    | Incremental s ->
      let db = db_exn s in
      Some (Sigdb.live_view db, Sigdb.sigs_view db)
  in
  Accals_audit.Shadow.compare ~net:!(t.current) ~patterns:t.patterns
    ~golden:t.golden ~metric:t.metric ~recorded_error ~observed

let corrupt_for_selftest t =
  match t.backend with
  | Rebuild _ -> None
  | Incremental s -> Sigdb.corrupt_signature (db_exn s)

(* ------------------------------------------------------------------ *)

let begin_round t =
  match t.backend with
  | Rebuild s ->
    let ctx = Round_ctx.create !(t.current) t.patterns in
    let est = Estimator.create ctx ~golden:t.golden ~metric:t.metric in
    s.r_ctx <- Some ctx;
    s.r_est <- Some est;
    s.r_sim_cost <- live_noninput ctx;
    s.r_nodes <- s.r_nodes + s.r_sim_cost;
    (* The estimator is fresh each rebuild round, so its raw counters
       restart from zero — the marks must follow. *)
    t.evals_mark <- 0;
    t.hits_mark <- 0;
    t.misses_mark <- 0;
    (ctx, est)
  | Incremental s -> (
    match (s.i_ctx, s.i_est) with
    | Some ctx, Some est -> (ctx, est)
    | _ ->
      let db = Sigdb.create !(t.current) t.patterns in
      let ctx = Round_ctx.of_sigdb db in
      let est = Estimator.create ctx ~golden:t.golden ~metric:t.metric in
      (* The initial full simulation inside [Sigdb.create] is real work;
         surface it through the same counter as the cone evaluations. *)
      (Sigdb.counters db).Sigdb.resim_nodes <-
        (Sigdb.counters db).Sigdb.resim_nodes + live_noninput ctx;
      s.i_db <- Some db;
      s.i_ctx <- Some ctx;
      s.i_est <- Some est;
      t.evals_mark <- 0;
      t.hits_mark <- 0;
      t.misses_mark <- 0;
      t.undo_mark <- 0;
      t.jent_mark <- 0;
      (ctx, est))

let estimator t =
  match t.backend with
  | Rebuild { r_est = Some est; _ } | Incremental { i_est = Some est; _ } ->
    est
  | _ -> invalid_arg "Round_eval: no round started"

let take_evaluations t =
  let now = Estimator.evaluations (estimator t) in
  let delta = now - t.evals_mark in
  t.evals_mark <- now;
  delta

let take_counters t =
  match t.backend with
  | Rebuild s ->
    let nodes = s.r_nodes in
    s.r_nodes <- 0;
    (nodes, 0, 0)
  | Incremental s ->
    let c = Sigdb.counters (db_exn s) in
    let nodes = c.Sigdb.resim_nodes - s.i_nodes_mark in
    let conv = c.Sigdb.resim_converged - s.i_conv_mark in
    let recycled = c.Sigdb.buffers_recycled - s.i_rec_mark in
    s.i_nodes_mark <- c.Sigdb.resim_nodes;
    s.i_conv_mark <- c.Sigdb.resim_converged;
    s.i_rec_mark <- c.Sigdb.buffers_recycled;
    (nodes, conv, recycled)

(* Bank the live estimator's cache deltas into the pending accumulators.
   Called when the estimator is about to retire (rebuild-path commit) and
   by [take_aux] itself. *)
let bank_cache_stats t =
  match t.backend with
  | Rebuild { r_est = Some est; _ } | Incremental { i_est = Some est; _ } ->
    let hits, misses = Estimator.cache_stats est in
    t.hits_pending <- t.hits_pending + (hits - t.hits_mark);
    t.misses_pending <- t.misses_pending + (misses - t.misses_mark);
    t.hits_mark <- hits;
    t.misses_mark <- misses
  | _ -> ()

let take_aux t =
  bank_cache_stats t;
  let cache_hits = t.hits_pending in
  let cache_misses = t.misses_pending in
  t.hits_pending <- 0;
  t.misses_pending <- 0;
  match t.backend with
  | Rebuild _ ->
    { cache_hits; cache_misses; journal_undos = 0; journal_entries = 0 }
  | Incremental s ->
    let c = Sigdb.counters (db_exn s) in
    let journal_undos = c.Sigdb.journal_undos - t.undo_mark in
    let journal_entries = c.Sigdb.journal_entries_undone - t.jent_mark in
    t.undo_mark <- c.Sigdb.journal_undos;
    t.jent_mark <- c.Sigdb.journal_entries_undone;
    { cache_hits; cache_misses; journal_undos; journal_entries }

(* ------------------------------------------------------------------ *)
(* Memory-governor hooks.

   [aux_bytes] is the footprint of the backend's discardable derived state
   — the estimator's cone cache and the signature database's idle buffer
   pool. [relieve_memory] gives exactly that state back: both stores are
   rebuilt on demand from the per-round views, so dropping them costs time
   but cannot change scores, tie-breaks or committed circuits. Round
   boundary only (a parallel [Estimator.score] reads the cone cache
   concurrently). *)

let aux_bytes t =
  match t.backend with
  | Rebuild { r_est = Some est; _ } -> Estimator.cone_cache_bytes est
  | Rebuild _ -> 0
  | Incremental s ->
    (match s.i_est with Some est -> Estimator.cone_cache_bytes est | None -> 0)
    + (match s.i_db with Some db -> Sigdb.pool_bytes db | None -> 0)

let relieve_memory t =
  let cones =
    match t.backend with
    | Rebuild { r_est = Some est; _ } | Incremental { i_est = Some est; _ } ->
      Estimator.drop_cone_cache est
    | _ -> 0
  in
  let bufs =
    match t.backend with
    | Incremental { i_db = Some db; _ } -> Sigdb.trim_pool db
    | _ -> 0
  in
  (cones, bufs)

(* ------------------------------------------------------------------ *)
(* Speculative evaluation *)

let measure_outputs t approx =
  Metric.measure t.metric ~golden:t.golden ~approx

(* Evaluate a LAC set (applied in ascending estimated-error order, as the
   engine always has) against the working circuit without committing it:
   returns the applied and skipped partitions and the exact-on-samples
   error of the would-be circuit, before any cleanup. *)
let eval_set t lacs =
  let ordered = sort_by_delta lacs in
  match t.backend with
  | Rebuild s ->
    let copy = Network.copy !(t.current) in
    let applied, skipped = Lac.apply_many copy ordered in
    let e = Evaluate.actual_error copy t.patterns ~golden:t.golden t.metric in
    s.r_nodes <- s.r_nodes + s.r_sim_cost;
    (applied, skipped, e)
  | Incremental s ->
    let db = db_exn s in
    Sigdb.begin_journal db;
    let applied, skipped = Lac.apply_many !(t.current) ordered in
    let e = Sigdb.with_journal_outputs db (measure_outputs t) in
    Sigdb.undo_journal db;
    (applied, skipped, e)

(* Try the scored LACs in order until one applies without closing a cycle;
   return it with the exact-on-samples error of the would-be circuit. The
   working circuit is left unchanged. *)
let eval_single t scored =
  match t.backend with
  | Rebuild s ->
    let rec try_apply = function
      | [] -> None
      | lac :: rest -> (
        let copy = Network.copy !(t.current) in
        match Lac.apply copy lac with
        | () ->
          let e =
            Evaluate.actual_error copy t.patterns ~golden:t.golden t.metric
          in
          s.r_nodes <- s.r_nodes + s.r_sim_cost;
          Some (lac, e)
        | exception Network.Cycle _ -> try_apply rest)
    in
    try_apply scored
  | Incremental s ->
    let db = db_exn s in
    let rec try_apply = function
      | [] -> None
      | lac :: rest -> (
        (* [Lac.apply] leaves the network untouched when it raises [Cycle]
           (the guard precedes every mutation), so consecutive attempts can
           share one journal. *)
        match Lac.apply !(t.current) lac with
        | () ->
          let e = Sigdb.with_journal_outputs db (measure_outputs t) in
          Some (lac, e)
        | exception Network.Cycle _ -> try_apply rest)
    in
    Sigdb.begin_journal db;
    let result = try_apply scored in
    Sigdb.undo_journal db;
    result

(* Evaluate a LAC set the way the AMOSA baseline scores states: apply,
   sweep, then measure both error and area of the cleaned-up circuit —
   still without committing anything. *)
let probe t lacs =
  let ordered = sort_by_delta lacs in
  match t.backend with
  | Rebuild s ->
    let copy = Network.copy !(t.current) in
    let applied, _skipped = Lac.apply_many copy ordered in
    Cleanup.sweep copy;
    let e = Evaluate.actual_error copy t.patterns ~golden:t.golden t.metric in
    s.r_nodes <- s.r_nodes + s.r_sim_cost;
    (applied, e, Cost.area copy)
  | Incremental s ->
    let db = db_exn s in
    Sigdb.begin_journal db;
    let applied, _skipped = Lac.apply_many !(t.current) ordered in
    Cleanup.sweep !(t.current);
    let e = Sigdb.with_journal_outputs db (measure_outputs t) in
    let area = Cost.area !(t.current) in
    Sigdb.undo_journal db;
    (applied, e, area)

(* ------------------------------------------------------------------ *)
(* Commits *)

let refresh_incremental t s =
  let db = db_exn s in
  Sigdb.resimulate db;
  Cleanup.sweep !(t.current);
  let delta = Sigdb.refresh db in
  let ctx = Round_ctx.of_sigdb db in
  let est =
    match s.i_est with
    | Some est -> est
    | None -> invalid_arg "Round_eval: no round started"
  in
  Estimator.refresh est ctx ~sig_changed:delta.Sigdb.sig_changed
    ~struct_dirty:delta.Sigdb.struct_dirty;
  s.i_ctx <- Some ctx

(* Commit the applied sublist a prior [eval_set] returned. Re-applying it
   reproduces the evaluated circuit exactly: the skipped LACs never mutated
   anything, so each applied LAC meets the same intermediate network (and
   the same node-id watermark) as during evaluation. *)
let commit_set t applied =
  match t.backend with
  | Rebuild s ->
    bank_cache_stats t;
    let copy = Network.copy !(t.current) in
    let applied', _ = Lac.apply_many copy applied in
    assert (List.length applied' = List.length applied);
    Cleanup.sweep copy;
    t.current := copy;
    s.r_ctx <- None;
    s.r_est <- None
  | Incremental s ->
    let applied', _ = Lac.apply_many !(t.current) applied in
    assert (List.length applied' = List.length applied);
    refresh_incremental t s

let commit_single t lac =
  match t.backend with
  | Rebuild s ->
    bank_cache_stats t;
    let copy = Network.copy !(t.current) in
    Lac.apply copy lac;
    Cleanup.sweep copy;
    t.current := copy;
    s.r_ctx <- None;
    s.r_est <- None
  | Incremental s ->
    Lac.apply !(t.current) lac;
    refresh_incremental t s
