open Accals_lac
module Prng = Accals_bitvec.Prng
module Mis = Accals_mis.Mis

let budget_prefix ~r_sel ~lambda ~e ~e_b lacs =
  match lacs with
  | [] -> []
  | first :: _ ->
    let non_positive = List.filter (fun l -> l.Lac.delta_error <= 0.0) lacs in
    if List.length non_positive >= r_sel then non_positive
    else begin
      let limit = lambda *. e_b in
      let rec scan acc est count = function
        | [] -> List.rev acc
        | _ when count >= r_sel -> List.rev acc
        | lac :: rest ->
          let est' = est +. lac.Lac.delta_error in
          if est' <= limit then scan (lac :: acc) est' (count + 1) rest
          else List.rev acc
      in
      match scan [] e 0 lacs with
      | [] -> [ first ] (* even the best LAC busts the budget: take it alone *)
      | chosen -> chosen
    end

let select ?pool cfg ctx ~l_sol ~e ~e_b =
  match l_sol with
  | [] -> []
  | _ ->
    let targets = Array.of_list (List.map (fun l -> l.Lac.target) l_sol) in
    let keep = Array.make (Array.length targets) false in
    if cfg.Config.use_mis then begin
      let graph = Influence.build_graph ?pool ctx ~targets ~t_b:cfg.Config.t_b in
      let chosen_indices = Mis.solve ~seed:cfg.Config.seed graph in
      List.iter (fun i -> keep.(i) <- true) chosen_indices
    end
    else Array.fill keep 0 (Array.length keep) true;
    let l_pote =
      List.filteri (fun i _ -> keep.(i)) l_sol
      |> List.sort (fun a b -> compare a.Lac.delta_error b.Lac.delta_error)
    in
    budget_prefix ~r_sel:cfg.Config.r_sel ~lambda:cfg.Config.lambda ~e ~e_b l_pote

let select_random cfg rng ~l_sol ~e ~e_b =
  match l_sol with
  | [] -> []
  | _ ->
    let arr = Array.of_list l_sol in
    Prng.shuffle rng arr;
    budget_prefix ~r_sel:cfg.Config.r_sel ~lambda:cfg.Config.lambda ~e ~e_b
      (Array.to_list arr)
