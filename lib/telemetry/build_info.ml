(* Build/runtime identity stamped into health responses and report
   headers, so a trace or incident can be tied back to the binary that
   produced it. There is no build-time code generation in this project,
   so the commit id comes from the environment (CI exports it as
   ACCALS_BUILD_COMMIT when building release artifacts) and falls back
   to "unknown" for local builds. *)

let version = "0.10.0"

let commit =
  match Sys.getenv_opt "ACCALS_BUILD_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> "unknown"

let ocaml = Sys.ocaml_version

let identity () =
  Printf.sprintf "accals %s (%s, ocaml %s)" version commit ocaml

let to_json () =
  Json.Obj
    [
      ("version", Json.String version);
      ("commit", Json.String commit);
      ("ocaml", Json.String ocaml);
      ("word_size", Json.Int Sys.word_size);
    ]
