(** Trace-context identifiers for end-to-end job tracing.

    A trace id names one logical operation across process boundaries:
    the client mints one (or the user supplies [--trace-id]), the
    protocol carries it on the job spec, and every span the scheduler,
    worker domain and engine record for that job is tagged with it — so
    a single merged Chrome trace can be assembled per job.

    Format: exactly 16 lowercase hex digits (64 bits). This is
    deliberately a subset of the W3C traceparent trace-id alphabet so
    ids can be embedded in standard headers later without re-encoding. *)

val length : int
(** Number of hex digits in a valid id (16). *)

val mint : unit -> string
(** A fresh id from /dev/urandom (clock+pid hash fallback). Always
    valid per {!is_valid}. *)

val is_valid : string -> bool
(** Exactly {!length} characters, all [0-9a-f]. *)

val normalize : string -> string option
(** Lowercase the id and validate it: [Some id] when well-formed,
    [None] otherwise. Use on ids arriving from users or the wire. *)
