(** Monotonic time source for all telemetry timestamps.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a C stub — wall-clock
    steps (NTP corrections, manual [date] changes) cannot produce negative
    durations or reorder span timestamps. The epoch is arbitrary (boot
    time on Linux); only differences are meaningful. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Alloc-free. *)

val now : unit -> float
(** Seconds on the monotonic clock (same epoch as {!now_ns}). *)

val cpu_ns : unit -> int64
(** Nanoseconds of CPU consumed by the whole process
    ([CLOCK_PROCESS_CPUTIME_ID]). Alloc-free. Unlike wall time it is
    barely disturbed by other tenants of the machine, which makes it
    the right clock for overhead gates. *)

val cpu : unit -> float
(** Seconds of process CPU time (same source as {!cpu_ns}). *)

val ns_to_us : int64 -> float
(** Nanoseconds to fractional microseconds (the Chrome trace unit). *)
