(** Sampling profiler with flamegraph-compatible folded-stack output.

    An interval timer (ITIMER_PROF for cpu time, ITIMER_REAL for wall
    time) delivers SIGPROF/SIGALRM at a configurable rate. OCaml 5
    runs signal handlers on domain 0 at safepoints, so each tick
    captures two things:

    - a real [Printexc] callstack of the handling domain ("main" rows
      in the folded output), and
    - a lock-free snapshot of every worker domain's published phase
      label ("worker-N;phase" rows) — workers cannot be stack-sampled
      from another domain, so they publish what they are doing into a
      fixed atomic slot indexed by their {!Tracer} tid instead (see
      {!set_label}; the pool and phase timers do this automatically).

    A [Gc.alarm] additionally records cumulative allocation at the end
    of every major collection, giving an allocation-rate series.

    Determinism contract: like the rest of the telemetry layer, the
    profiler only observes. Sampling on or off never changes synthesis
    results — the overhead is bounded and gated by [bench observe].

    The interval timer and signal disposition are process-global:
    at most one profiler may run at a time, started and stopped from
    the main domain. *)

type mode =
  | Cpu  (** ITIMER_PROF: ticks while the process burns CPU. *)
  | Wall  (** ITIMER_REAL: ticks in real time, even when blocked. *)

val mode_name : mode -> string
val mode_of_string : string -> mode option

type t

val start : ?hz:int -> ?mode:mode -> ?max_samples:int -> unit -> t
(** Install the signal handler, arm the interval timer at [hz]
    samples/second (default 97 — prime, to avoid phase-locking with
    periodic work) and register the Gc alarm. Raises
    [Invalid_argument] if [hz] is out of range or a profiler is
    already running. After [max_samples] captured samples further
    ticks are counted but dropped (memory bound). *)

val stop : t -> unit
(** Disarm the timer, restore the previous signal disposition, delete
    the Gc alarm and freeze the counters. Idempotent. *)

val ticks : t -> int
val sample_count : t -> int
val dropped : t -> int

val folded : t -> string
(** Folded stacks ("frame;frame;... count", root first), rows sorted,
    ready for [flamegraph.pl] or speedscope. *)

val write_folded : t -> string -> unit

val summary : t -> Json.t
(** Mode, rate, tick/sample/drop counts, wall and process-CPU seconds,
    allocated words and allocation rate, major-GC cycle count. *)

(** {1 Worker phase labels} *)

val set_label : int -> string -> unit
(** [set_label tid phase] publishes what worker [tid] is doing; ticks
    record it until the next set/clear. Lock-free, callable from any
    domain, no-op for out-of-range tids. *)

val clear_label : int -> unit
