type labels = (string * string) list

type counter = {
  c_ints : int Atomic.t;
  c_mutex : Mutex.t;
  mutable c_float : float;
}

type gauge = { g_mutex : Mutex.t; mutable g_value : float }

type histogram = {
  h_bounds : float array;  (* finite upper bounds, ascending *)
  h_counts : int Atomic.t array;  (* length = bounds + 1; last is +Inf *)
  h_mutex : Mutex.t;
  mutable h_sum : float;
}

type instrument = C of counter | G of gauge | H of histogram

type entry = {
  e_name : string;
  e_labels : labels;
  e_help : string;
  e_inst : instrument;
}

type t = {
  mutex : Mutex.t;
  table : (string * labels, entry) Hashtbl.t;
  mutable order : entry list;  (* reverse registration order *)
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 32; order = [] }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

(* Prometheus identifier grammar: metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*,
   label names [a-zA-Z_][a-zA-Z0-9_]* (and no colons). A bad name silently
   poisons the whole exposition for every scraper, so reject it at
   registration time where the call site is on the stack. *)
let valid_metric_name name =
  String.length name > 0
  && (match name.[0] with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
      | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       name
  (* "__"-prefixed label names are reserved for Prometheus internals. *)
  && not (String.length name >= 2 && name.[0] = '_' && name.[1] = '_')

let register t name labels help make =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Metrics: invalid label name %S on metric %s" k name))
    labels;
  Mutex.lock t.mutex;
  let entry =
    match Hashtbl.find_opt t.table (name, labels) with
    | Some e -> e
    | None ->
      let e = { e_name = name; e_labels = labels; e_help = help; e_inst = make () } in
      Hashtbl.add t.table (name, labels) e;
      t.order <- e :: t.order;
      e
  in
  Mutex.unlock t.mutex;
  entry

let counter t ?(help = "") ?(labels = []) name =
  let e =
    register t name labels help (fun () ->
        C { c_ints = Atomic.make 0; c_mutex = Mutex.create (); c_float = 0.0 })
  in
  match e.e_inst with
  | C c -> c
  | inst ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is registered as a %s" name
         (kind_name inst))

let incr c = Atomic.incr c.c_ints

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters never decrease";
  ignore (Atomic.fetch_and_add c.c_ints n)

let addf c x =
  if not (x >= 0.0) then invalid_arg "Metrics.addf: counters never decrease";
  Mutex.lock c.c_mutex;
  c.c_float <- c.c_float +. x;
  Mutex.unlock c.c_mutex

let counter_value c =
  Mutex.lock c.c_mutex;
  let f = c.c_float in
  Mutex.unlock c.c_mutex;
  float_of_int (Atomic.get c.c_ints) +. f

let gauge t ?(help = "") ?(labels = []) name =
  let e =
    register t name labels help (fun () ->
        G { g_mutex = Mutex.create (); g_value = 0.0 })
  in
  match e.e_inst with
  | G g -> g
  | inst ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s is registered as a %s" name
         (kind_name inst))

let set g x =
  Mutex.lock g.g_mutex;
  g.g_value <- x;
  Mutex.unlock g.g_mutex

let gauge_value g =
  Mutex.lock g.g_mutex;
  let v = g.g_value in
  Mutex.unlock g.g_mutex;
  v

let histogram t ?(help = "") ?(labels = []) ~buckets name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: at least one bucket bound required";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
    buckets;
  let e =
    register t name labels help (fun () ->
        {
          h_bounds = Array.copy buckets;
          h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_mutex = Mutex.create ();
          h_sum = 0.0;
        }
        |> fun h -> H h)
  in
  match e.e_inst with
  | H h -> h
  | inst ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is registered as a %s" name
         (kind_name inst))

let observe h x =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n then n else if x <= h.h_bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.h_counts.(bucket 0);
  Mutex.lock h.h_mutex;
  h.h_sum <- h.h_sum +. x;
  Mutex.unlock h.h_mutex

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type sample = { name : string; labels : labels; help : string; value : value }

type snapshot = sample list

let freeze_instrument = function
  | C c -> Counter (counter_value c)
  | G g -> Gauge (gauge_value g)
  | H h ->
    let counts = Array.map Atomic.get h.h_counts in
    Mutex.lock h.h_mutex;
    let sum = h.h_sum in
    Mutex.unlock h.h_mutex;
    Histogram
      {
        bounds = Array.copy h.h_bounds;
        counts;
        sum;
        count = Array.fold_left ( + ) 0 counts;
      }

let snapshot t =
  Mutex.lock t.mutex;
  let entries = List.rev t.order in
  Mutex.unlock t.mutex;
  List.map
    (fun e ->
      {
        name = e.e_name;
        labels = e.e_labels;
        help = e.e_help;
        value = freeze_instrument e.e_inst;
      })
    entries

let merge a b = a @ b

let find snap ?(labels = []) name =
  List.find_map
    (fun s -> if s.name = name && s.labels = labels then Some s.value else None)
    snap

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let prom_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text uses a smaller escape set than label values: backslash and
   newline only (a raw newline would terminate the comment mid-text). *)
let prom_help_text h =
  let buf = Buffer.create (String.length h + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    h;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v)) labels)
    ^ "}"

let value_kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_prometheus snap =
  (* Group samples of the same family (name) together, first-occurrence
     order, one HELP/TYPE header per family. *)
  let families =
    List.fold_left
      (fun acc s -> if List.mem s.name acc then acc else s.name :: acc)
      [] snap
    |> List.rev
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun family ->
      let members = List.filter (fun s -> s.name = family) snap in
      let first = List.hd members in
      if first.help <> "" then
        Printf.bprintf buf "# HELP %s %s\n" family (prom_help_text first.help);
      Printf.bprintf buf "# TYPE %s %s\n" family (value_kind first.value);
      List.iter
        (fun s ->
          match s.value with
          | Counter v | Gauge v ->
            Printf.bprintf buf "%s%s %s\n" s.name (prom_labels s.labels)
              (prom_float v)
          | Histogram { bounds; counts; sum; count } ->
            let cumulative = ref 0 in
            Array.iteri
              (fun i c ->
                cumulative := !cumulative + c;
                let le =
                  if i < Array.length bounds then prom_float bounds.(i)
                  else "+Inf"
                in
                Printf.bprintf buf "%s_bucket%s %d\n" s.name
                  (prom_labels (s.labels @ [ ("le", le) ]))
                  !cumulative)
              counts;
            Printf.bprintf buf "%s_sum%s %s\n" s.name (prom_labels s.labels)
              (prom_float sum);
            Printf.bprintf buf "%s_count%s %d\n" s.name (prom_labels s.labels)
              count)
        members)
    families;
  Buffer.contents buf

let to_jsonl snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels) in
      let fields =
        [ ("metric", Json.String s.name); ("labels", labels);
          ("type", Json.String (value_kind s.value)) ]
        @
        match s.value with
        | Counter v | Gauge v -> [ ("value", Json.Float v) ]
        | Histogram { bounds; counts; sum; count } ->
          [
            ("sum", Json.Float sum);
            ("count", Json.Int count);
            ( "buckets",
              Json.List
                (Array.to_list
                   (Array.mapi
                      (fun i c ->
                        let le =
                          if i < Array.length bounds then Json.Float bounds.(i)
                          else Json.String "+Inf"
                        in
                        Json.Obj [ ("le", le); ("count", Json.Int c) ])
                      counts)) );
          ]
      in
      Buffer.add_string buf (Json.to_string (Json.Obj fields));
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf
