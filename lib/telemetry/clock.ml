external now_ns : unit -> (int64[@unboxed])
  = "accals_monotonic_ns_byte" "accals_monotonic_ns"
[@@noalloc]

external cpu_ns : unit -> (int64[@unboxed])
  = "accals_process_cputime_ns_byte" "accals_process_cputime_ns"
[@@noalloc]

let now () = Int64.to_float (now_ns ()) *. 1e-9

let cpu () = Int64.to_float (cpu_ns ()) *. 1e-9

let ns_to_us ns = Int64.to_float ns /. 1e3
