/* Monotonic clock for the telemetry subsystem.
 *
 * CLOCK_MONOTONIC never steps backwards (NTP slews it but cannot jump it),
 * which is what makes span durations and phase timings trustworthy. The
 * gettimeofday fallback only exists for platforms without POSIX clocks. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>
#include <sys/time.h>

int64_t accals_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
  }
}

CAMLprim value accals_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(accals_monotonic_ns(unit));
}
