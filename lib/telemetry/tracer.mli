(** Hierarchical span tracer emitting Chrome trace-event JSON.

    Spans are recorded as "X" (complete) events with microsecond [ts] and
    [dur] taken from the monotonic {!Clock}; point-in-time marks are "i"
    (instant) events. The output is the array form of the Chrome
    trace-event format, loadable in Perfetto or [chrome://tracing].

    Threads: each domain registers a small integer [tid] through
    {!set_tid} (the pool assigns worker [i] tid [i+1]; the main domain is
    tid 0). Thread-name metadata ("M") events are emitted on export so
    Perfetto shows "main" / "worker-N" lanes.

    The tracer never reorders or drops events and is safe to use from any
    domain (one mutex around the event list; spans themselves are plain
    values so nesting needs no shared state). *)

type t

type span
(** An open span: created by {!begin_span}, closed by {!end_span}. The
    span remembers its tracer, so it stays valid even if the ambient
    telemetry handle changes mid-span. *)

val create : unit -> t

val set_tid : int -> unit
(** Register the calling domain's thread id for subsequent events.
    Defaults to 0 (main). *)

val begin_span :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> span

val end_span : span -> unit
(** Record the complete event. Calling [end_span] twice on the same span
    records the event twice — callers close each span exactly once
    (typically via [Fun.protect]). *)

val with_span :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk; the span is closed even if the
    thunk raises. *)

val instant :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Record an "i" (instant) event at the current time. *)

val event_count : t -> int
(** Number of span/instant events recorded so far (metadata events not
    included). *)

val to_json : t -> Json.t
(** The full trace as a Chrome trace-event array: thread-name metadata
    events first, then all recorded events sorted by timestamp. *)

val epoch_us : t -> float
(** The tracer's creation time in microseconds on the monotonic clock —
    the offset to pass to {!events_json} to rebase its relative
    timestamps onto absolute monotonic time. *)

val events_json :
  ?ts_offset_us:float ->
  ?tid_offset:int ->
  ?pid:int ->
  ?thread_name:(int -> string) ->
  t ->
  Json.t list
(** Export for merging into a host timeline: thread-name metadata plus
    all events, with [ts_offset_us] added to every timestamp,
    [tid_offset] added to every lane id, [pid] overriding the process id
    and [thread_name] renaming lanes (it receives the original tid).
    Used by the daemon to graft a job's engine trace onto the
    scheduler's lifecycle spans as one Chrome trace. *)

val write : t -> string -> unit
(** Write [to_json] to a file (pretty-printed). *)
