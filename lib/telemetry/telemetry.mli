(** Ambient telemetry handle: one place the whole runtime reports to.

    The synthesis engine, pool, estimator, checkpoint writer and audit
    ladder all talk to the handle installed by {!install} — no telemetry
    parameter threads through their APIs. When nothing is installed every
    call is a no-op (the disabled handle has no tracer, no progress, no
    event stream, and a throwaway metrics registry), so instrumented code
    costs almost nothing in normal runs.

    Determinism contract: the handle only records. No synthesis decision
    ever reads it back, so enabling any combination of tracer / metrics /
    progress / events cannot change BLIF output, round traces,
    checkpoints or reports. *)

type t

val make :
  ?tracer:Tracer.t ->
  ?progress:Progress.t ->
  ?events:out_channel ->
  ?on_event:(Json.t -> unit) ->
  ?on_progress:
    (round:int -> max_rounds:int -> error:float -> area:float -> unit) ->
  unit ->
  t
(** [events] is a JSONL stream: one compact JSON object per
    {!event}, flushed per line. The channel is owned by the caller.
    [on_event] is an in-process sink called with the same object (after
    the channel write, if both are set) — the daemon uses it to route a
    job's engine events onto that job's event log. [on_progress] is the
    in-process analogue of the stderr {!Progress} heartbeat. Sinks run
    on the emitting domain and must be thread-safe. *)

val disabled : t
(** No tracer, no progress, no events; metrics go to a registry nobody
    exports. This is the installed handle at startup. *)

val install : t -> unit
val reset : unit -> unit
(** Reinstall {!disabled}. *)

val get : unit -> t
(** The effective handle: the calling domain's local override when one
    is set (see {!with_handle} / {!set_local}), the globally installed
    handle otherwise. *)

(** {1 Domain-local override}

    The daemon runs several jobs concurrently in separate worker
    domains; a single global handle would interleave their traces. A
    domain-local override scopes a handle to one domain, and
    [Pool.create] captures the creating domain's effective handle for
    its workers, so a job's whole engine — orchestrator and pool
    workers — reports to that job's handle. *)

val with_handle : t -> (unit -> 'a) -> 'a
(** Run a thunk with [t] as the calling domain's effective handle; the
    previous override is restored afterwards (even on raise). *)

val set_local : t -> unit
(** Set the calling domain's override without scoping — used by pool
    workers at domain startup. *)

val clear_local : unit -> unit

(** {1 Tracing} *)

val tracing : unit -> bool
(** True when the installed handle has a tracer. *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run a thunk under a span on the ambient tracer; just the thunk when
    tracing is off. *)

type span
(** An open ambient span — [None]-like when tracing is off. Carries its
    tracer, so it closes correctly even if the handle changes mid-span. *)

val begin_span : ?cat:string -> ?args:(string * Json.t) list -> string -> span
val end_span : span -> unit

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** {1 Metrics} *)

val metrics : unit -> Metrics.t
(** The installed handle's registry (per-run when installed by the CLI;
    a throwaway on the disabled handle). *)

val count : ?labels:Metrics.labels -> ?help:string -> string -> int -> unit
(** Add to a counter in the ambient registry. *)

val countf : ?labels:Metrics.labels -> ?help:string -> string -> float -> unit
val gauge_set : ?labels:Metrics.labels -> ?help:string -> string -> float -> unit

(** {1 Events and progress} *)

val event : (unit -> Json.t) -> unit
(** Append one line to the JSONL event stream if one is attached; the
    thunk is not evaluated otherwise. *)

val progress_round :
  round:int ->
  max_rounds:int ->
  error:float ->
  threshold:float ->
  area:float ->
  unit

val progress_finish : unit -> unit
