(** Metrics registry: named counters, gauges and fixed-bucket histograms
    with Prometheus text-exposition and JSONL exporters.

    A registry is an instantiable value, not a process singleton: the
    parallel runtime attaches one registry per pool (work accounting must
    stay per-pool), the ambient {!Telemetry} handle carries one for
    run-scoped metrics, and their snapshots are merged for export.

    Instruments are registered idempotently by (name, labels): asking for
    the same counter twice returns the same cell, so call sites do not
    need to thread handles around. Registration order is preserved in
    snapshots — the engine's phase list keeps its first-recorded order.

    Thread-safety: counter increments are [Atomic]-backed and safe from
    any domain; float accumulation, gauges and histogram sums take a
    per-instrument mutex (all are off the per-task hot path).

    Determinism contract: a registry only ever observes — nothing in the
    synthesis flow reads a metric back to make a decision, so recording
    can never change a result. *)

type labels = (string * string) list

(** {1 Instruments} *)

type counter
(** Monotonically non-decreasing. Holds an integer part (atomic, cheap)
    and a float part (mutex-guarded, for seconds/bytes accumulation). *)

type gauge
type histogram

type t
(** A registry. *)

val create : unit -> t

val valid_metric_name : string -> bool
(** Prometheus metric-name grammar: [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val valid_label_name : string -> bool
(** Prometheus label-name grammar: [[a-zA-Z_][a-zA-Z0-9_]*] (no colons). *)

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
(** Register (or fetch) a counter. Raises [Invalid_argument] if the
    (name, labels) pair is already registered as a different instrument
    kind, if the metric name is not a valid Prometheus identifier, or if
    any label name is invalid (registration-time rejection keeps a single
    bad name from poisoning the whole exposition). *)

val incr : counter -> unit
val add : counter -> int -> unit

val addf : counter -> float -> unit
(** Add a non-negative float amount (negative amounts raise
    [Invalid_argument]: counters never decrease). *)

val counter_value : counter -> float

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t -> ?help:string -> ?labels:labels -> buckets:float array -> string -> histogram
(** [buckets] are the upper bounds of the fixed buckets, strictly
    increasing; an implicit [+Inf] bucket is always appended. Raises
    [Invalid_argument] on an empty or unsorted bound array. *)

val observe : histogram -> float -> unit

(** {1 Snapshots and export} *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of {
      bounds : float array;  (** finite upper bounds, ascending *)
      counts : int array;  (** per-bucket (non-cumulative); length = bounds + 1, last is +Inf *)
      sum : float;
      count : int;
    }

type sample = {
  name : string;
  labels : labels;
  help : string;
  value : value;
}

type snapshot = sample list
(** Registration order. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Concatenation — the inputs are expected to use disjoint (name, labels)
    spaces (per-pool vs ambient registries do by construction). *)

val find : snapshot -> ?labels:labels -> string -> value option

val to_prometheus : snapshot -> string
(** Prometheus text exposition format (version 0.0.4): one [# HELP] and
    [# TYPE] line per family, samples grouped by family, histograms
    expanded to cumulative [_bucket{le=...}] plus [_sum]/[_count].
    Label values are escaped (backslash, double-quote, newline), HELP
    text escapes backslash and newline, so arbitrary strings round-trip
    safely. *)

val to_jsonl : snapshot -> string
(** One JSON object per line, one line per sample:
    [{"metric": name, "labels": {...}, "type": ..., ...}]. *)
