type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : string;  (* "X" or "i" *)
  ev_ts : int64;  (* ns since tracer epoch *)
  ev_dur : int64;  (* ns; 0 for instants *)
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

type t = {
  epoch : int64;
  mutex : Mutex.t;
  mutable events : ev list;  (* newest first *)
  mutable tids : int list;  (* every tid seen, for thread-name metadata *)
}

type span = {
  s_tracer : t;
  s_name : string;
  s_cat : string;
  s_args : (string * Json.t) list;
  s_start : int64;
  s_tid : int;
}

let tid_key = Domain.DLS.new_key (fun () -> 0)
let set_tid tid = Domain.DLS.set tid_key tid
let current_tid () = Domain.DLS.get tid_key

let create () =
  { epoch = Clock.now_ns (); mutex = Mutex.create (); events = []; tids = [ 0 ] }

let push t ev =
  Mutex.lock t.mutex;
  t.events <- ev :: t.events;
  if not (List.mem ev.ev_tid t.tids) then t.tids <- ev.ev_tid :: t.tids;
  Mutex.unlock t.mutex

let begin_span t ?(cat = "") ?(args = []) name =
  {
    s_tracer = t;
    s_name = name;
    s_cat = cat;
    s_args = args;
    s_start = Int64.sub (Clock.now_ns ()) t.epoch;
    s_tid = current_tid ();
  }

let end_span s =
  let t = s.s_tracer in
  let now = Int64.sub (Clock.now_ns ()) t.epoch in
  push t
    {
      ev_name = s.s_name;
      ev_cat = s.s_cat;
      ev_ph = "X";
      ev_ts = s.s_start;
      ev_dur = Int64.max 0L (Int64.sub now s.s_start);
      ev_tid = s.s_tid;
      ev_args = s.s_args;
    }

let with_span t ?cat ?args name f =
  let s = begin_span t ?cat ?args name in
  Fun.protect ~finally:(fun () -> end_span s) f

let instant t ?(cat = "") ?(args = []) name =
  push t
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = "i";
      ev_ts = Int64.sub (Clock.now_ns ()) t.epoch;
      ev_dur = 0L;
      ev_tid = current_tid ();
      ev_args = args;
    }

let event_count t =
  Mutex.lock t.mutex;
  let n = List.length t.events in
  Mutex.unlock t.mutex;
  n

let pid = lazy (Unix.getpid ())

let ev_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("ph", Json.String ev.ev_ph);
      ("ts", Json.Float (Clock.ns_to_us ev.ev_ts));
      ("pid", Json.Int (Lazy.force pid));
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let base = if ev.ev_cat = "" then base else base @ [ ("cat", Json.String ev.ev_cat) ] in
  let base =
    if ev.ev_ph = "X" then base @ [ ("dur", Json.Float (Clock.ns_to_us ev.ev_dur)) ]
    else base @ [ ("s", Json.String "t") ]
  in
  let base =
    if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ]
  in
  Json.Obj base

let thread_name_json tid =
  let name = if tid = 0 then "main" else Printf.sprintf "worker-%d" tid in
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int (Lazy.force pid));
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_json t =
  Mutex.lock t.mutex;
  let events = t.events in
  let tids = List.sort compare t.tids in
  Mutex.unlock t.mutex;
  let events =
    List.stable_sort (fun a b -> Int64.compare a.ev_ts b.ev_ts) (List.rev events)
  in
  Json.List (List.map thread_name_json tids @ List.map ev_json events)

let epoch_us t = Clock.ns_to_us t.epoch

let default_thread_name tid =
  if tid = 0 then "main" else Printf.sprintf "worker-%d" tid

let events_json ?(ts_offset_us = 0.0) ?(tid_offset = 0) ?pid:pid_override
    ?thread_name t =
  (* Re-timed / re-laned export for merging this tracer's events into a
     larger timeline (a scheduler's per-job trace): [ts_offset_us] shifts
     relative timestamps onto the host timeline (pass [epoch_us] to get
     absolute monotonic time), [tid_offset] relocates the lanes so they
     do not collide with the host's, and [thread_name] renames them
     (receives the original, un-offset tid). *)
  let name_of = Option.value thread_name ~default:default_thread_name in
  let p = match pid_override with Some p -> p | None -> Lazy.force pid in
  Mutex.lock t.mutex;
  let events = t.events in
  let tids = List.sort compare t.tids in
  Mutex.unlock t.mutex;
  let events =
    List.stable_sort (fun a b -> Int64.compare a.ev_ts b.ev_ts) (List.rev events)
  in
  let meta tid =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int p);
        ("tid", Json.Int (tid + tid_offset));
        ("args", Json.Obj [ ("name", Json.String (name_of tid)) ]);
      ]
  in
  let ev_json ev =
    let base =
      [
        ("name", Json.String ev.ev_name);
        ("ph", Json.String ev.ev_ph);
        ("ts", Json.Float (Clock.ns_to_us ev.ev_ts +. ts_offset_us));
        ("pid", Json.Int p);
        ("tid", Json.Int (ev.ev_tid + tid_offset));
      ]
    in
    let base =
      if ev.ev_cat = "" then base else base @ [ ("cat", Json.String ev.ev_cat) ]
    in
    let base =
      if ev.ev_ph = "X" then
        base @ [ ("dur", Json.Float (Clock.ns_to_us ev.ev_dur)) ]
      else base @ [ ("s", Json.String "t") ]
    in
    if ev.ev_args = [] then Json.Obj base
    else Json.Obj (base @ [ ("args", Json.Obj ev.ev_args) ])
  in
  List.map meta tids @ List.map ev_json events

let write t path = Json.write_file path (to_json t)
