type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.17g" x

let rec to_buffer_at buf indent v =
  let pretty = indent >= 0 in
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_str x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (indent + 1);
        to_buffer_at buf (if pretty then indent + 1 else indent) item)
      items;
    nl ();
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (indent + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if pretty then "\": " else "\":");
        to_buffer_at buf (if pretty then indent + 1 else indent) item)
      fields;
    nl ();
    pad indent;
    Buffer.add_char buf '}'

let to_buffer buf v = to_buffer_at buf (-1) v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  to_buffer_at buf (if pretty then 0 else -1) v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  (try
     output_string oc (to_string ~pretty:true v);
     output_char oc '\n'
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parser: straightforward recursive descent over the string. *)

exception Parse_error of string

let default_max_depth = 512

let parse_exn ?(max_depth = default_max_depth) ?max_bytes s =
  let n = String.length s in
  (match max_bytes with
   | Some limit when n > limit ->
     raise
       (Parse_error
          (Printf.sprintf "payload too large: %d bytes (limit %d)" n limit))
   | _ -> ());
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (* Exactly four hex digits — [int_of_string "0x..."] is too
              lenient for untrusted input (it accepts underscores and an
              empty digit string would slip through on short tails). *)
           String.iter
             (function
               | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
               | _ -> fail "bad \\u escape %s" hex)
             hex;
           let code = int_of_string ("0x" ^ hex) in
           (* Encode the code point as UTF-8; surrogate pairs are not
              recombined (the validators never feed us any). *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail "bad escape \\%c" c);
        go ()
      end
      else if Char.code c < 0x20 then
        (* RFC 8259: control characters must be escaped.  The printer
           always escapes them, so rejecting raw ones loses nothing and
           closes a smuggling channel on untrusted input. *)
        fail "unescaped control character 0x%02x in string" (Char.code c)
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "malformed number";
    while is_digit () do
      advance ()
    done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then fail "malformed number";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       fractional := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       if not (is_digit ()) then fail "malformed exponent";
       while is_digit () do
         advance ()
       done
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      (* The depth limit bounds both this parser's recursion (stack
         safety on adversarial input) and what a hostile client can make
         downstream consumers walk. *)
      if depth >= max_depth then fail "nesting deeper than %d" max_depth;
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '{' ->
      if depth >= max_depth then fail "nesting deeper than %d" max_depth;
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_exn ?max_depth ?max_bytes s =
  try parse_exn ?max_depth ?max_bytes s
  with Parse_error msg -> failwith ("Json.parse: " ^ msg)

let parse ?max_depth ?max_bytes s =
  match parse_exn ?max_depth ?max_bytes s with
  | v -> Ok v
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

let number_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None
