(* A trace id is 16 lowercase hex digits (64 bits) — long enough that
   independent clients never collide, short enough to paste into a
   Perfetto query. Minted from the system entropy pool so ids are not
   guessable from watching one's own submissions; the fallback only
   matters on systems without /dev/urandom. *)

let length = 16

let is_valid id =
  String.length id = length
  && String.for_all
       (fun c ->
         match c with 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       id

let hex_of_bytes s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Printf.bprintf buf "%02x" (Char.code c)) s;
  Buffer.contents buf

let mint () =
  match
    let ic = open_in_bin "/dev/urandom" in
    let s = really_input_string ic (length / 2) in
    close_in ic;
    s
  with
  | s -> hex_of_bytes s
  | exception Sys_error _ | exception End_of_file ->
    (* Entropy-poor fallback: clock bits and the pid, hashed. Uniqueness
       per machine is all callers rely on (ids only group spans). *)
    let a = Hashtbl.hash (Clock.now_ns (), Unix.getpid ()) land 0xFFFFFFFF in
    let b = Hashtbl.hash (Unix.gettimeofday (), a) land 0xFFFFFFFF in
    Printf.sprintf "%08x%08x" a b

let normalize id =
  let lowered = String.lowercase_ascii id in
  if is_valid lowered then Some lowered else None
