/* Process CPU time for the sampling profiler.
 *
 * CLOCK_PROCESS_CPUTIME_ID sums the CPU time of every thread (OCaml
 * domain) in the process, which is the denominator the profiler's
 * overhead gate and cpu-mode sample rate are judged against. The
 * getrusage fallback only exists for platforms without POSIX clocks. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>
#include <sys/time.h>
#include <sys/resource.h>

int64_t accals_process_cputime_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
      return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
  }
#endif
  {
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return (int64_t)(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) * 1000000000
         + (int64_t)(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) * 1000;
  }
}

CAMLprim value accals_process_cputime_ns_byte(value unit)
{
  return caml_copy_int64(accals_process_cputime_ns(unit));
}
