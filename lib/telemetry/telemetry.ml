type t = {
  tracer : Tracer.t option;
  metrics : Metrics.t;
  progress : Progress.t option;
  events : out_channel option;
  events_mutex : Mutex.t;
  on_event : (Json.t -> unit) option;
  on_progress : (round:int -> max_rounds:int -> error:float -> area:float -> unit) option;
}

let make ?tracer ?progress ?events ?on_event ?on_progress () =
  {
    tracer;
    metrics = Metrics.create ();
    progress;
    events;
    events_mutex = Mutex.create ();
    on_event;
    on_progress;
  }

let disabled = make ()
let current = Atomic.make disabled

(* A domain-local override shadows the global handle: the daemon runs
   several jobs concurrently in separate domains, and each needs its own
   tracer/event sink without the jobs seeing each other's. The override
   is inherited explicitly (Pool.create captures the creating domain's
   handle for its workers); it is not ambient across Domain.spawn. *)
let local : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Atomic.set current t
let reset () = Atomic.set current disabled

let get () =
  match Domain.DLS.get local with Some t -> t | None -> Atomic.get current

let set_local t = Domain.DLS.set local (Some t)
let clear_local () = Domain.DLS.set local None

let with_handle t f =
  let prev = Domain.DLS.get local in
  Domain.DLS.set local (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set local prev) f

(* ------------------------------------------------------------------ *)
(* Tracing *)

let tracing () = (get ()).tracer <> None

let with_span ?cat ?args name f =
  match (get ()).tracer with
  | None -> f ()
  | Some tr -> Tracer.with_span tr ?cat ?args name f

type span = Tracer.span option

let begin_span ?cat ?args name =
  match (get ()).tracer with
  | None -> None
  | Some tr -> Some (Tracer.begin_span tr ?cat ?args name)

let end_span = function None -> () | Some s -> Tracer.end_span s

let instant ?cat ?args name =
  match (get ()).tracer with
  | None -> ()
  | Some tr -> Tracer.instant tr ?cat ?args name

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics () = (get ()).metrics

let count ?labels ?help name n =
  Metrics.add (Metrics.counter (metrics ()) ?help ?labels name) n

let countf ?labels ?help name x =
  Metrics.addf (Metrics.counter (metrics ()) ?help ?labels name) x

let gauge_set ?labels ?help name x =
  Metrics.set (Metrics.gauge (metrics ()) ?help ?labels name) x

(* ------------------------------------------------------------------ *)
(* Events and progress *)

let event mk =
  let t = get () in
  if t.events <> None || t.on_event <> None then begin
    let v = mk () in
    (match t.events with
     | None -> ()
     | Some oc ->
       let line = Json.to_string v in
       Mutex.lock t.events_mutex;
       output_string oc line;
       output_char oc '\n';
       flush oc;
       Mutex.unlock t.events_mutex);
    match t.on_event with None -> () | Some sink -> sink v
  end

let progress_round ~round ~max_rounds ~error ~threshold ~area =
  let t = get () in
  (match t.progress with
   | None -> ()
   | Some p -> Progress.round p ~round ~max_rounds ~error ~threshold ~area);
  match t.on_progress with
  | None -> ()
  | Some sink -> sink ~round ~max_rounds ~error ~area

let progress_finish () =
  match (get ()).progress with None -> () | Some p -> Progress.finish p
