type t = {
  tracer : Tracer.t option;
  metrics : Metrics.t;
  progress : Progress.t option;
  events : out_channel option;
  events_mutex : Mutex.t;
}

let make ?tracer ?progress ?events () =
  { tracer; metrics = Metrics.create (); progress; events; events_mutex = Mutex.create () }

let disabled = make ()
let current = Atomic.make disabled
let install t = Atomic.set current t
let reset () = Atomic.set current disabled
let get () = Atomic.get current

(* ------------------------------------------------------------------ *)
(* Tracing *)

let tracing () = (Atomic.get current).tracer <> None

let with_span ?cat ?args name f =
  match (Atomic.get current).tracer with
  | None -> f ()
  | Some tr -> Tracer.with_span tr ?cat ?args name f

type span = Tracer.span option

let begin_span ?cat ?args name =
  match (Atomic.get current).tracer with
  | None -> None
  | Some tr -> Some (Tracer.begin_span tr ?cat ?args name)

let end_span = function None -> () | Some s -> Tracer.end_span s

let instant ?cat ?args name =
  match (Atomic.get current).tracer with
  | None -> ()
  | Some tr -> Tracer.instant tr ?cat ?args name

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics () = (Atomic.get current).metrics

let count ?labels ?help name n =
  Metrics.add (Metrics.counter (metrics ()) ?help ?labels name) n

let countf ?labels ?help name x =
  Metrics.addf (Metrics.counter (metrics ()) ?help ?labels name) x

let gauge_set ?labels ?help name x =
  Metrics.set (Metrics.gauge (metrics ()) ?help ?labels name) x

(* ------------------------------------------------------------------ *)
(* Events and progress *)

let event mk =
  let t = Atomic.get current in
  match t.events with
  | None -> ()
  | Some oc ->
    let line = Json.to_string (mk ()) in
    Mutex.lock t.events_mutex;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.events_mutex

let progress_round ~round ~max_rounds ~error ~threshold ~area =
  match (Atomic.get current).progress with
  | None -> ()
  | Some p -> Progress.round p ~round ~max_rounds ~error ~threshold ~area

let progress_finish () =
  match (Atomic.get current).progress with
  | None -> ()
  | Some p -> Progress.finish p
