external cputime_ns : unit -> (int64[@unboxed])
  = "accals_process_cputime_ns_byte" "accals_process_cputime_ns"
[@@noalloc]

type mode = Cpu | Wall

let mode_name = function Cpu -> "cpu" | Wall -> "wall"

let mode_of_string = function
  | "cpu" -> Some Cpu
  | "wall" -> Some Wall
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Worker phase labels.

   OCaml 5 delivers signals to domain 0 at safepoints, so the handler
   can capture a real callstack only for the domain it runs on. Worker
   domains instead publish a phase label ("simulate", "select", steal /
   idle states ...) into a fixed slot indexed by their Tracer tid; the
   handler snapshots the slots lock-free with Atomic reads. The slots
   are immutable-string atomics — no tearing, no locks, safe from a
   signal handler. *)

let max_labels = 128
let labels = Array.init max_labels (fun _ -> Atomic.make "")

let set_label tid label =
  if tid >= 0 && tid < max_labels then Atomic.set labels.(tid) label

let clear_label tid = set_label tid ""

let label_pairs () =
  let rec go i acc =
    if i < 0 then acc
    else
      let l = Atomic.get labels.(i) in
      go (i - 1) (if l = "" then acc else (i, l) :: acc)
  in
  go (max_labels - 1) []

(* ------------------------------------------------------------------ *)

type sample = {
  sm_stack : Printexc.raw_backtrace;  (* the handling domain's stack *)
  sm_labels : (int * string) list;  (* (tid, phase) for busy workers *)
}

type t = {
  mode : mode;
  hz : int;
  max_samples : int;
  (* Sample fields are touched only by the signal handler and by [stop]
     after the handler is uninstalled — both on domain 0 — so they need
     no lock (and must not take one: a handler blocking on a mutex its
     own domain holds would deadlock). *)
  mutable samples : sample list;  (* newest first *)
  mutable n_samples : int;
  mutable ticks : int;
  mutable dropped : int;
  (* Allocation-rate sampler: a Gc alarm may fire on any domain, so its
     points are mutex-guarded. The signal handler never touches them. *)
  alloc_mutex : Mutex.t;
  mutable alloc_points : (float * float) list;  (* (monotonic s, cum words) *)
  mutable alarm : Gc.alarm option;
  mutable prev_handler : Sys.signal_behavior option;
  mutable running : bool;
  start_ns : int64;
  mutable stop_ns : int64;
  start_cpu_ns : int64;
  mutable stop_cpu_ns : int64;
  start_words : float;
  mutable stop_words : float;
}

(* The interval timer and signal disposition are process-global, so at
   most one profiler runs at a time. *)
let active : t option ref = ref None

let allocated_words () =
  let st = Gc.quick_stat () in
  st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words

let signal_of_mode = function Cpu -> Sys.sigprof | Wall -> Sys.sigalrm
let itimer_of_mode = function Cpu -> Unix.ITIMER_PROF | Wall -> Unix.ITIMER_REAL

let tick t _signo =
  if t.running then begin
    t.ticks <- t.ticks + 1;
    if t.n_samples >= t.max_samples then t.dropped <- t.dropped + 1
    else begin
      let sm =
        { sm_stack = Printexc.get_callstack 48; sm_labels = label_pairs () }
      in
      t.samples <- sm :: t.samples;
      t.n_samples <- t.n_samples + 1
    end
  end

let gc_alarm t () =
  let point = (Clock.now (), allocated_words ()) in
  Mutex.lock t.alloc_mutex;
  t.alloc_points <- point :: t.alloc_points;
  Mutex.unlock t.alloc_mutex

let start ?(hz = 97) ?(mode = Cpu) ?(max_samples = 200_000) () =
  if hz <= 0 || hz > 10_000 then
    invalid_arg "Profiler.start: hz must be in 1..10000";
  (match !active with
   | Some _ -> invalid_arg "Profiler.start: a profiler is already running"
   | None -> ());
  let t =
    {
      mode;
      hz;
      max_samples;
      samples = [];
      n_samples = 0;
      ticks = 0;
      dropped = 0;
      alloc_mutex = Mutex.create ();
      alloc_points = [];
      alarm = None;
      prev_handler = None;
      running = true;
      start_ns = Clock.now_ns ();
      stop_ns = 0L;
      start_cpu_ns = cputime_ns ();
      stop_cpu_ns = 0L;
      start_words = allocated_words ();
      stop_words = 0.0;
    }
  in
  active := Some t;
  t.alarm <- Some (Gc.create_alarm (gc_alarm t));
  t.prev_handler <-
    Some (Sys.signal (signal_of_mode mode) (Sys.Signal_handle (tick t)));
  let interval = 1.0 /. float_of_int hz in
  ignore
    (Unix.setitimer (itimer_of_mode mode)
       { Unix.it_interval = interval; it_value = interval });
  t

let stop t =
  if t.running then begin
    (* Disarm the timer before restoring the handler, so no tick arrives
       for a disposition we no longer own. A signal already queued runs
       the previous handler — [t.running] also gates the tick body. *)
    ignore
      (Unix.setitimer (itimer_of_mode t.mode)
         { Unix.it_interval = 0.0; it_value = 0.0 });
    (match t.prev_handler with
     | Some h -> Sys.set_signal (signal_of_mode t.mode) h
     | None -> ());
    (match t.alarm with Some a -> Gc.delete_alarm a | None -> ());
    t.running <- false;
    t.stop_ns <- Clock.now_ns ();
    t.stop_cpu_ns <- cputime_ns ();
    t.stop_words <- allocated_words ();
    active := None
  end

let ticks t = t.ticks
let sample_count t = t.n_samples
let dropped t = t.dropped

(* ------------------------------------------------------------------ *)
(* Folded-stack output (Brendan Gregg's flamegraph input format):
   "frame;frame;...;frame count", root first. Frame names are sanitized
   because space and semicolon are the format's delimiters. *)

let sanitize_frame s =
  String.map (fun c -> match c with ' ' -> '_' | ';' -> ':' | c -> c) s

let frames_of_stack bt =
  match Printexc.backtrace_slots bt with
  | None -> [ "[no-debug-info]" ]
  | Some slots ->
    let names =
      Array.to_list slots
      |> List.filter_map (fun slot ->
             match Printexc.Slot.name slot with
             | Some n -> Some (sanitize_frame n)
             | None -> (
               match Printexc.Slot.location slot with
               | Some l ->
                 Some
                   (sanitize_frame
                      (Printf.sprintf "%s:%d" l.Printexc.filename
                         l.Printexc.line_number))
               | None -> None))
    in
    if names = [] then [ "[unknown]" ] else names

let folded t =
  let tbl = Hashtbl.create 64 in
  let bump key =
    Hashtbl.replace tbl key
      (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)
  in
  List.iter
    (fun sm ->
      (* get_callstack yields innermost first; folded wants root first. *)
      bump ("main;" ^ String.concat ";" (List.rev (frames_of_stack sm.sm_stack)));
      List.iter
        (fun (tid, label) ->
          bump (Printf.sprintf "worker-%d;%s" tid (sanitize_frame label)))
        sm.sm_labels)
    t.samples;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let rows = List.sort compare rows in
  let buf = Buffer.create 1024 in
  List.iter (fun (k, v) -> Printf.bprintf buf "%s %d\n" k v) rows;
  Buffer.contents buf

let write_folded t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (folded t))

let summary t =
  let stop_ns = if t.stop_ns = 0L then Clock.now_ns () else t.stop_ns in
  let stop_cpu = if t.stop_cpu_ns = 0L then cputime_ns () else t.stop_cpu_ns in
  let stop_words = if t.running then allocated_words () else t.stop_words in
  let wall_s = Int64.to_float (Int64.sub stop_ns t.start_ns) *. 1e-9 in
  let cpu_s = Int64.to_float (Int64.sub stop_cpu t.start_cpu_ns) *. 1e-9 in
  let words = stop_words -. t.start_words in
  Mutex.lock t.alloc_mutex;
  let gc_points = List.length t.alloc_points in
  Mutex.unlock t.alloc_mutex;
  Json.Obj
    [
      ("mode", Json.String (mode_name t.mode));
      ("hz", Json.Int t.hz);
      ("ticks", Json.Int t.ticks);
      ("samples", Json.Int t.n_samples);
      ("dropped", Json.Int t.dropped);
      ("wall_s", Json.Float wall_s);
      ("cpu_s", Json.Float cpu_s);
      ("alloc_words", Json.Float words);
      ( "alloc_words_per_s",
        Json.Float (if wall_s > 0.0 then words /. wall_s else 0.0) );
      ("gc_major_cycles", Json.Int gc_points);
    ]
