type t = {
  out : out_channel;
  min_interval : float;
  start : float;
  mutable last_paint : float;
  mutable painted_width : int;
  mutable pending : string;  (* most recent line, painted or not *)
  mutex : Mutex.t;
}

let create ?(min_interval = 0.1) ?(out = stderr) () =
  let now = Clock.now () in
  {
    out;
    min_interval;
    start = now;
    last_paint = 0.0;
    painted_width = 0;
    pending = "";
    mutex = Mutex.create ();
  }

let paint t line =
  (* Pad with spaces so a shorter line fully overwrites a longer one. *)
  let padded =
    if String.length line >= t.painted_width then line
    else line ^ String.make (t.painted_width - String.length line) ' '
  in
  Printf.fprintf t.out "\r%s%!" padded;
  t.painted_width <- String.length line

let eta ~elapsed ~round ~max_rounds =
  if round <= 0 || max_rounds <= round then None
  else
    let per_round = elapsed /. float_of_int round in
    Some (per_round *. float_of_int (max_rounds - round))

let fmt_seconds s =
  if s < 60.0 then Printf.sprintf "%.0fs" s
  else if s < 3600.0 then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let round t ~round ~max_rounds ~error ~threshold ~area =
  Mutex.lock t.mutex;
  let now = Clock.now () in
  let elapsed = now -. t.start in
  let line =
    let eta_str =
      match eta ~elapsed ~round ~max_rounds with
      | Some s -> Printf.sprintf " eta %s" (fmt_seconds s)
      | None -> ""
    in
    Printf.sprintf "round %d/%d  err %.6f/%.6f  area %.1f  %s%s" round
      max_rounds error threshold area (fmt_seconds elapsed) eta_str
  in
  t.pending <- line;
  if now -. t.last_paint >= t.min_interval then begin
    paint t line;
    t.last_paint <- now
  end;
  Mutex.unlock t.mutex

let finish t =
  Mutex.lock t.mutex;
  if t.pending <> "" then begin
    paint t t.pending;
    output_char t.out '\n';
    flush t.out
  end;
  Mutex.unlock t.mutex
