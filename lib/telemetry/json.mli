(** Minimal JSON tree, printer and parser.

    The telemetry subsystem emits several JSON artifacts (Chrome trace
    files, JSONL event streams, [--json] reports, bench summaries) and the
    test suite parses them back for schema validation — all through this
    one module, so the repo needs no external JSON dependency.

    Printing is deterministic: object fields keep their construction
    order, floats print via [%.17g] (round-trippable), and non-finite
    floats print as [null] (JSON has no NaN/infinity). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact one-line encoding by default; [~pretty:true] indents with two
    spaces per level (stable, diff-friendly). *)

val to_buffer : Buffer.t -> t -> unit

val write_file : string -> t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline. *)

val escape : string -> string
(** The JSON string-literal encoding of a string, without quotes. *)

(** {1 Parsing}

    The parser is strict enough for untrusted input (the [accals serve]
    daemon parses request bodies with it): no trailing garbage, no
    comments, no trailing commas, exactly four hex digits per [\u]
    escape, and raw control characters inside strings are rejected
    (RFC 8259 requires them escaped; the printer always escapes them). *)

val default_max_depth : int
(** Nesting limit applied when [max_depth] is not given (512). *)

val parse : ?max_depth:int -> ?max_bytes:int -> string -> (t, string) result
(** Strict JSON parser. Numbers without [.], [e] or [E] that fit in an
    OCaml [int] parse as [Int], everything else as [Float].

    [max_depth] (default {!default_max_depth}) bounds array/object
    nesting — it protects the parser's own recursion and every
    downstream consumer from adversarially deep documents. [max_bytes]
    (default: unlimited) rejects oversized payloads before any parsing
    work is done; servers should set it from their request-size
    policy. *)

val parse_exn : ?max_depth:int -> ?max_bytes:int -> string -> t
(** Raises [Failure] with the parse error. *)

(** {1 Accessors (for tests and validators)} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list_opt : t -> t list option
val string_opt : t -> string option
val int_opt : t -> int option

val number_opt : t -> float option
(** [Int] or [Float] as a float. *)
