(** Minimal JSON tree, printer and parser.

    The telemetry subsystem emits several JSON artifacts (Chrome trace
    files, JSONL event streams, [--json] reports, bench summaries) and the
    test suite parses them back for schema validation — all through this
    one module, so the repo needs no external JSON dependency.

    Printing is deterministic: object fields keep their construction
    order, floats print via [%.17g] (round-trippable), and non-finite
    floats print as [null] (JSON has no NaN/infinity). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact one-line encoding by default; [~pretty:true] indents with two
    spaces per level (stable, diff-friendly). *)

val to_buffer : Buffer.t -> t -> unit

val write_file : string -> t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline. *)

val escape : string -> string
(** The JSON string-literal encoding of a string, without quotes. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Strict JSON parser (no trailing garbage, no comments, no trailing
    commas). Numbers without [.], [e] or [E] that fit in an OCaml [int]
    parse as [Int], everything else as [Float]. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

(** {1 Accessors (for tests and validators)} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list_opt : t -> t list option
val string_opt : t -> string option
val int_opt : t -> int option

val number_opt : t -> float option
(** [Int] or [Float] as a float. *)
