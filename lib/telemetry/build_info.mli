(** Build/runtime identity for health responses and report headers.

    Ties observability artifacts (traces, incidents, reports) back to
    the binary that produced them. *)

val version : string
(** The accals release version. *)

val commit : string
(** Source commit id, from [ACCALS_BUILD_COMMIT] in the environment at
    process start (CI exports it); ["unknown"] for local builds. *)

val ocaml : string
(** Compiler version the binary was built with. *)

val identity : unit -> string
(** One-line human-readable identity string. *)

val to_json : unit -> Json.t
(** [{"version": ..., "commit": ..., "ocaml": ..., "word_size": ...}] *)
