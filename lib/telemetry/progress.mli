(** Live progress heartbeat on stderr.

    Renders a single updating line (round, error, area, ETA) to stderr,
    carriage-return overwritten, throttled so tight round loops do not
    flood the terminal. Writes only to stderr — stdout contracts (BLIF
    output, report blocks, the resume notice CI greps for) are never
    touched.

    The final state is flushed with a newline by {!finish} so the last
    heartbeat survives in scroll-back. *)

type t

val create : ?min_interval:float -> ?out:out_channel -> unit -> t
(** [min_interval] (seconds, default 0.1) is the minimum spacing between
    repaints; [out] defaults to stderr. *)

val round :
  t ->
  round:int ->
  max_rounds:int ->
  error:float ->
  threshold:float ->
  area:float ->
  unit
(** Report the state after a synthesis round. ETA is estimated from the
    observed per-round pace against [max_rounds] (or against the error
    budget when error dominates). *)

val finish : t -> unit
(** Paint the final state followed by a newline. Safe to call when no
    round was ever reported. *)
