open Accals_network
open Accals_circuits
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- FIR --- *)

let fir_env taps width samples =
  List.concat (List.mapi (fun i v -> Test_util.bus_env (Printf.sprintf "x%d" i) v width) samples)
  |> fun env -> env @ [ ("", false) ] |> List.filter (fun (n, _) -> n <> "")
  |> fun env -> env |> fun e -> ignore taps; e

let test_fir_basic () =
  let coefficients = [ 1; 2; 3 ] in
  let net = Dsp.fir_filter ~coefficients ~width:4 in
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    let samples = List.init 3 (fun _ -> Prng.int rng 16) in
    let env = fir_env 3 4 samples in
    let outs = Test_util.eval_named net env in
    let expected =
      List.fold_left2 (fun acc c x -> acc + (c * x)) 0 coefficients samples
    in
    check_int "fir" expected (Test_util.out_int ~prefix:"y" net outs)
  done

let test_fir_gaussian_kernel () =
  (* 5-tap binomial smoothing kernel 1 4 6 4 1. *)
  let coefficients = [ 1; 4; 6; 4; 1 ] in
  let net = Dsp.fir_filter ~coefficients ~width:6 in
  let rng = Prng.create 9 in
  for _ = 1 to 60 do
    let samples = List.init 5 (fun _ -> Prng.int rng 64) in
    let outs = Test_util.eval_named net (fir_env 5 6 samples) in
    let expected =
      List.fold_left2 (fun acc c x -> acc + (c * x)) 0 coefficients samples
    in
    check_int "gaussian" expected (Test_util.out_int ~prefix:"y" net outs)
  done

let test_fir_zero_coefficient () =
  let net = Dsp.fir_filter ~coefficients:[ 0; 5 ] ~width:4 in
  let outs = Test_util.eval_named net (fir_env 2 4 [ 15; 3 ]) in
  check_int "zero tap ignored" 15 (Test_util.out_int ~prefix:"y" net outs)

let test_fir_rejects_negative () =
  check "rejected" true
    (try ignore (Dsp.fir_filter ~coefficients:[ 1; -2 ] ~width:4); false
     with Invalid_argument _ -> true)

(* --- float adder --- *)

let eb = 4
let mb = 4

(* Software reference with truncating alignment/normalization. *)
let float_add_reference (ea, ma) (eb_, mbv) =
  if ea = 0 && ma = 0 then (eb_, mbv)
  else if eb_ = 0 && mbv = 0 then (ea, ma)
  else begin
    let siga = ma lor (1 lsl mb) and sigb = mbv lor (1 lsl mb) in
    let ebig, big, small, d =
      if ea >= eb_ then (ea, siga, sigb, ea - eb_) else (eb_, sigb, siga, eb_ - ea)
    in
    let aligned = if d > mb + 1 then 0 else small lsr d in
    let sum = big + aligned in
    let e', m' =
      if sum lsr (mb + 1) = 1 then (ebig + 1, (sum lsr 1) land ((1 lsl mb) - 1))
      else (ebig, sum land ((1 lsl mb) - 1))
    in
    if e' >= 1 lsl eb then ((1 lsl eb) - 1, (1 lsl mb) - 1) else (e', m')
  end

let adder = lazy (Dsp.float_adder ~exp_bits:eb ~mantissa_bits:mb)

let run_adder (ea, ma) (eb_, mbv) =
  let net = Lazy.force adder in
  let env =
    Test_util.bus_env "ae" ea eb @ Test_util.bus_env "am" ma mb
    @ Test_util.bus_env "be" eb_ eb
    @ Test_util.bus_env "bm" mbv mb
  in
  let outs = Test_util.eval_named net env in
  (Test_util.out_int ~prefix:"e" net outs, Test_util.out_int ~prefix:"m" net outs)

let test_fadd_zero_identity () =
  let cases = [ (3, 5); (0, 1); (15, 15); (7, 0) ] in
  List.iter
    (fun v ->
      check "a + 0 = a" true (run_adder v (0, 0) = v);
      check "0 + b = b" true (run_adder (0, 0) v = v))
    cases

let test_fadd_equal_exponents () =
  (* 1.m + 1.m' with equal exponents always carries: e+1. *)
  let got = run_adder (3, 0) (3, 0) in
  (* 1.0 + 1.0 = 2.0 -> e=4, m=0 *)
  check "double" true (got = (4, 0))

let test_fadd_random_matches_reference () =
  let rng = Prng.create 31 in
  for _ = 1 to 500 do
    let a = (Prng.int rng 16, Prng.int rng 16) in
    let b = (Prng.int rng 16, Prng.int rng 16) in
    let expected = float_add_reference a b in
    let got = run_adder a b in
    if got <> expected then
      Alcotest.failf "fadd (%d,%d)+(%d,%d): expected (%d,%d), got (%d,%d)"
        (fst a) (snd a) (fst b) (snd b) (fst expected) (snd expected) (fst got)
        (snd got)
  done

let test_fadd_saturates () =
  (* max exponent + carry saturates. *)
  let got = run_adder (15, 15) (15, 15) in
  check "saturated" true (got = (15, 15))

let test_fadd_alignment_flush () =
  (* Tiny operand is entirely shifted out: big survives unchanged. *)
  let got = run_adder (15, 8) (1, 3) in
  check "flushed" true (got = (15, 8))

(* The DSP circuits are valid engine substrates. *)
let test_engine_on_dsp () =
  let fir = Dsp.fir_filter ~coefficients:[ 1; 4; 6; 4; 1 ] ~width:4 in
  let r =
    Accals.Engine.run fir ~metric:Accals_metrics.Metric.Nmed ~error_bound:0.002
  in
  check "bound" true (r.Accals.Engine.error <= 0.002);
  Network.validate r.Accals.Engine.approximate

let suite =
  [
    ( "fir",
      [
        Alcotest.test_case "dot product" `Quick test_fir_basic;
        Alcotest.test_case "gaussian kernel" `Quick test_fir_gaussian_kernel;
        Alcotest.test_case "zero coefficient" `Quick test_fir_zero_coefficient;
        Alcotest.test_case "negative rejected" `Quick test_fir_rejects_negative;
      ] );
    ( "float adder",
      [
        Alcotest.test_case "zero identity" `Quick test_fadd_zero_identity;
        Alcotest.test_case "equal exponents" `Quick test_fadd_equal_exponents;
        Alcotest.test_case "matches reference" `Quick test_fadd_random_matches_reference;
        Alcotest.test_case "exponent saturation" `Quick test_fadd_saturates;
        Alcotest.test_case "alignment flush" `Quick test_fadd_alignment_flush;
      ] );
    ( "dsp engine",
      [ Alcotest.test_case "approximable" `Quick test_engine_on_dsp ] );
  ]
