open Accals_network
module Truth = Accals_twolevel.Truth
module Qm = Accals_twolevel.Qm
module Sop_synth = Accals_twolevel.Sop_synth
module Cut_enum = Accals_twolevel.Cut_enum
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Truth --- *)

let test_truth_var () =
  (* var 0 over 2 vars: minterms 1 and 3. *)
  check_int "var0" 0b1010 (Truth.var 2 0);
  check_int "var1" 0b1100 (Truth.var 2 1);
  check "get" true (Truth.get (Truth.var 2 0) 1);
  check "get off" false (Truth.get (Truth.var 2 0) 2)

let test_truth_ops () =
  let a = Truth.var 2 0 and b = Truth.var 2 1 in
  check_int "and" 0b1000 (Truth.eval_op 2 Gate.And [| a; b |]);
  check_int "or" 0b1110 (Truth.eval_op 2 Gate.Or [| a; b |]);
  check_int "xor" 0b0110 (Truth.eval_op 2 Gate.Xor [| a; b |]);
  check_int "nand" 0b0111 (Truth.eval_op 2 Gate.Nand [| a; b |]);
  check_int "not" 0b0101 (Truth.eval_op 2 Gate.Not [| a |]);
  check_int "const1" 0b1111 (Truth.eval_op 2 (Gate.Const true) [||])

let test_truth_mux () =
  let s = Truth.var 3 0 and a = Truth.var 3 1 and b = Truth.var 3 2 in
  let m = Truth.eval_op 3 Gate.Mux [| s; a; b |] in
  for row = 0 to 7 do
    let sv = row land 1 = 1 and av = row lsr 1 land 1 = 1 and bv = row lsr 2 land 1 = 1 in
    check "mux row" (if sv then av else bv) (Truth.get m row)
  done

let test_truth_of_cone () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let c = Network.add_input t "c" in
  let ab = Network.add_node t Gate.And [| a; b |] in
  let f = Network.add_node t Gate.Xor [| ab; c |] in
  Network.set_outputs t [| ("f", f) |];
  let truth = Truth.of_cone t ~leaves:[| a; b; c |] ~root:f in
  for row = 0 to 7 do
    let ins = Test_util.bits_of_int row 3 in
    check "cone row" (Network.eval t ins).(0) (Truth.get truth row)
  done

let test_truth_of_cone_intermediate_leaves () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let ab = Network.add_node t Gate.And [| a; b |] in
  let nab = Network.add_node t Gate.Not [| ab |] in
  Network.set_outputs t [| ("f", nab) |];
  (* Leaves = {ab}: f = NOT x0. *)
  check_int "not" 0b01 (Truth.of_cone t ~leaves:[| ab |] ~root:nab)

let test_truth_of_cone_escape () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let ab = Network.add_node t Gate.And [| a; b |] in
  Network.set_outputs t [| ("f", ab) |];
  check "escape detected" true
    (try ignore (Truth.of_cone t ~leaves:[| a |] ~root:ab); false
     with Invalid_argument _ -> true)

(* --- QM --- *)

let brute_force_check vars on dc cubes =
  (* Cover must contain all of on, nothing outside on|dc. *)
  let t = Qm.cubes_truth ~vars cubes in
  let ok = ref true in
  for m = 0 to Truth.rows vars - 1 do
    if Truth.get on m && not (Truth.get t m) then ok := false;
    if Truth.get t m && not (Truth.get on m || Truth.get dc m) then ok := false
  done;
  !ok

let test_qm_simple () =
  (* f = a (vars a,b): on = {1,3} *)
  let cubes = Qm.minimize ~vars:2 ~on:0b1010 () in
  check "covers" true (brute_force_check 2 0b1010 0 cubes);
  check_int "one cube" 1 (List.length cubes);
  check_int "one literal" 1 (Qm.literal_cost cubes)

let test_qm_xor () =
  (* xor needs two 2-literal cubes *)
  let cubes = Qm.minimize ~vars:2 ~on:0b0110 () in
  check "covers" true (brute_force_check 2 0b0110 0 cubes);
  check_int "two cubes" 2 (List.length cubes);
  check_int "four literals" 4 (Qm.literal_cost cubes)

let test_qm_tautology () =
  let cubes = Qm.minimize ~vars:3 ~on:0xFF () in
  check_int "single universal cube" 1 (List.length cubes);
  check_int "zero literals" 0 (Qm.literal_cost cubes)

let test_qm_empty () =
  Alcotest.(check (list reject)) "empty" []
    (List.map (fun _ -> Alcotest.fail "no cubes") (Qm.minimize ~vars:3 ~on:0 ()))

let test_qm_dont_care_helps () =
  (* on = {0}, dc = {1}: with dc, one 1-literal cube (~b) suffices over
     vars a,b; without it, the cube ~a~b needs 2 literals. *)
  let without = Qm.minimize ~vars:2 ~on:0b0001 () in
  let with_dc = Qm.minimize ~vars:2 ~on:0b0001 ~dc:0b0010 () in
  check "both cover" true
    (brute_force_check 2 0b0001 0 without && brute_force_check 2 0b0001 0b0010 with_dc);
  check "dc not worse" true (Qm.literal_cost with_dc <= Qm.literal_cost without);
  check_int "dc cost" 1 (Qm.literal_cost with_dc)

let prop_qm_random =
  Test_util.qcheck_case ~count:300 "qm covers random functions"
    QCheck2.Gen.(triple (int_range 1 4) (int_range 0 0xFFFF) (int_range 0 0xFFFF))
    (fun (vars, on_raw, dc_raw) ->
      let m = Truth.mask vars in
      let on = on_raw land m in
      let dc = dc_raw land m land lnot on in
      let cubes = Qm.minimize ~vars ~on ~dc () in
      brute_force_check vars on dc cubes)

let prop_qm_no_worse_than_minterms =
  Test_util.qcheck_case ~count:200 "qm not worse than raw minterm cover"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 1 0xFFFF))
    (fun (vars, on_raw) ->
      let on = on_raw land Truth.mask vars in
      if on = 0 then true
      else begin
        let cubes = Qm.minimize ~vars ~on () in
        Qm.literal_cost cubes <= vars * Truth.ones vars on
      end)

(* --- Sop_synth --- *)

let test_sop_build_matches_truth () =
  let rng = Prng.create 99 in
  for _ = 1 to 50 do
    let vars = 2 + Prng.int rng 3 in
    let on = Prng.int rng (Truth.mask vars + 1) in
    let cubes = Qm.minimize ~vars ~on () in
    let t = Network.create () in
    let leaves = Array.init vars (fun i -> Network.add_input t (Printf.sprintf "x%d" i)) in
    let root = Sop_synth.build t ~leaves cubes in
    Network.set_outputs t [| ("f", root) |];
    for row = 0 to Truth.rows vars - 1 do
      let ins = Test_util.bits_of_int row vars in
      check "sop row" (Truth.get on row) (Network.eval t ins).(0)
    done
  done

let test_sop_build_constants () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let zero = Sop_synth.build t ~leaves:[| a |] [] in
  let one = Sop_synth.build t ~leaves:[| a |] [ { Qm.mask = 0; value = 0 } ] in
  Network.set_outputs t [| ("z", zero); ("o", one) |];
  Alcotest.(check (array bool)) "consts" [| false; true |] (Network.eval t [| true |])

let test_sop_estimated_area_not_understated () =
  (* estimated_area should be >= the real post-build area of the new nodes. *)
  let rng = Prng.create 7 in
  for _ = 1 to 30 do
    let vars = 2 + Prng.int rng 3 in
    let on = Prng.int rng (Truth.mask vars + 1) in
    let cubes = Qm.minimize ~vars ~on () in
    let t = Network.create () in
    let leaves = Array.init vars (fun i -> Network.add_input t (Printf.sprintf "x%d" i)) in
    let before = Network.num_nodes t in
    let root = Sop_synth.build t ~leaves cubes in
    Network.set_outputs t [| ("f", root) |];
    let added = ref 0.0 in
    for id = before to Network.num_nodes t - 1 do
      added := !added +. Cost.gate_area (Network.op t id) (Array.length (Network.fanins t id))
    done;
    check "estimate covers build" true (Sop_synth.estimated_area cubes +. 1e-9 >= !added)
  done

(* --- Cut enumeration --- *)

let test_cuts_are_cuts () =
  let net = Accals_circuits.Bench_suite.load "mtp8" in
  let order = Structure.topo_order net in
  let cuts = Cut_enum.enumerate net ~order ~k:4 ~per_node:4 in
  let live = Structure.live_set net in
  let total = ref 0 in
  for id = 0 to Network.num_nodes net - 1 do
    if live.(id) then
      List.iter
        (fun leaves ->
          incr total;
          check "cut property" true (Cut_enum.is_cut net ~root:id ~leaves);
          check "cut size" true (Array.length leaves <= 4))
        cuts.(id)
  done;
  check "found cuts" true (!total > 100)

let test_cut_function_matches_node () =
  (* For every enumerated cut of a small circuit, the cut function evaluated
     on the leaf values equals the node value. *)
  let net = Accals_circuits.Adders.ripple_carry ~width:3 in
  let order = Structure.topo_order net in
  let cuts = Cut_enum.enumerate net ~order ~k:4 ~per_node:6 in
  let inputs = Network.inputs net in
  let k = Array.length inputs in
  let live = Structure.live_set net in
  (* Evaluate all nodes for each input vector via signatures. *)
  let patterns = Sim.exhaustive k in
  let sigs = Sim.run net patterns ~order in
  for id = 0 to Network.num_nodes net - 1 do
    if live.(id) && not (Network.is_input net id) then
      List.iter
        (fun leaves ->
          if Array.length leaves <= Truth.max_vars then begin
            let truth = Truth.of_cone net ~leaves ~root:id in
            for p = 0 to patterns.Sim.count - 1 do
              let minterm = ref 0 in
              Array.iteri
                (fun i leaf ->
                  if Accals_bitvec.Bitvec.get sigs.(leaf) p then
                    minterm := !minterm lor (1 lsl i))
                leaves;
              check "cut function" (Accals_bitvec.Bitvec.get sigs.(id) p)
                (Truth.get truth !minterm)
            done
          end)
        cuts.(id)
  done

let test_trivial_cut_excluded () =
  let net = Accals_circuits.Adders.ripple_carry ~width:2 in
  let order = Structure.topo_order net in
  let cuts = Cut_enum.enumerate net ~order ~k:4 ~per_node:8 in
  Array.iteri
    (fun id cs ->
      List.iter (fun leaves -> check "no trivial cut" false (leaves = [| id |])) cs)
    cuts

(* --- Sop LAC end-to-end --- *)

let test_sop_lac_exact_preserves_function () =
  (* An exact SOP rewrite (no don't-cares beyond the function itself) must
     preserve the circuit function. *)
  let net = Accals_circuits.Adders.ripple_carry ~width:3 in
  let order = Structure.topo_order net in
  let cuts = Cut_enum.enumerate net ~order ~k:4 ~per_node:4 in
  let live = Structure.live_set net in
  let tried = ref 0 in
  for id = 0 to Network.num_nodes net - 1 do
    if live.(id) && not (Network.is_input net id) && cuts.(id) <> [] then begin
      match cuts.(id) with
      | leaves :: _ when Array.length leaves >= 2 ->
        incr tried;
        let truth = Truth.of_cone net ~leaves ~root:id in
        let cubes = Qm.minimize ~vars:(Array.length leaves) ~on:truth () in
        let copy = Network.copy net in
        let lac =
          Accals_lac.Lac.make ~target:id
            (Accals_lac.Lac.Sop { leaves; cubes })
            ~area_gain:1.0
        in
        Accals_lac.Lac.apply copy lac;
        for v = 0 to 127 do
          let ins = Test_util.bits_of_int v 7 in
          Alcotest.(check (array bool)) "function preserved"
            (Network.eval net ins) (Network.eval copy ins)
        done
      | _ -> ()
    end
  done;
  check "exercised" true (!tried > 3)

let suite =
  [
    ( "truth tables",
      [
        Alcotest.test_case "projections" `Quick test_truth_var;
        Alcotest.test_case "operators" `Quick test_truth_ops;
        Alcotest.test_case "mux" `Quick test_truth_mux;
        Alcotest.test_case "of_cone" `Quick test_truth_of_cone;
        Alcotest.test_case "of_cone intermediate leaves" `Quick
          test_truth_of_cone_intermediate_leaves;
        Alcotest.test_case "of_cone escape" `Quick test_truth_of_cone_escape;
      ] );
    ( "quine-mccluskey",
      [
        Alcotest.test_case "single literal" `Quick test_qm_simple;
        Alcotest.test_case "xor" `Quick test_qm_xor;
        Alcotest.test_case "tautology" `Quick test_qm_tautology;
        Alcotest.test_case "empty function" `Quick test_qm_empty;
        Alcotest.test_case "don't cares help" `Quick test_qm_dont_care_helps;
        prop_qm_random;
        prop_qm_no_worse_than_minterms;
      ] );
    ( "sop synthesis",
      [
        Alcotest.test_case "build matches truth" `Quick test_sop_build_matches_truth;
        Alcotest.test_case "constants" `Quick test_sop_build_constants;
        Alcotest.test_case "area estimate covers build" `Quick
          test_sop_estimated_area_not_understated;
      ] );
    ( "cut enumeration",
      [
        Alcotest.test_case "cut property holds" `Quick test_cuts_are_cuts;
        Alcotest.test_case "cut functions match" `Slow test_cut_function_matches_node;
        Alcotest.test_case "trivial cut excluded" `Quick test_trivial_cut_excluded;
      ] );
    ( "sop lac",
      [
        Alcotest.test_case "exact rewrite preserves function" `Quick
          test_sop_lac_exact_preserves_function;
      ] );
  ]
