open Accals_network
module Engine = Accals.Engine
module Trace = Accals.Trace
module Metric = Accals_metrics.Metric
module Seals = Accals_baselines.Seals
module Amosa = Accals_baselines.Amosa
module Evaluate = Accals_esterr.Evaluate

let check = Alcotest.(check bool)

let fixture = lazy (Accals_circuits.Bench_suite.load "alu4")

let test_seals_respects_bound () =
  let net = Lazy.force fixture in
  let r = Seals.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  check "bound" true (r.Engine.error <= 0.03);
  check "area reduced or equal" true (r.Engine.area_ratio <= 1.0 +. 1e-9);
  Network.validate r.Engine.approximate

let test_seals_single_rounds () =
  let net = Lazy.force fixture in
  let r = Seals.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  check "all rounds single" true
    (List.for_all
       (fun round -> round.Trace.mode = Trace.Single && round.Trace.applied = 1)
       r.Engine.rounds)

let test_seals_deterministic () =
  let net = Lazy.force fixture in
  let a = Seals.run net ~metric:Metric.Error_rate ~error_bound:0.02 in
  let b = Seals.run net ~metric:Metric.Error_rate ~error_bound:0.02 in
  Alcotest.(check (float 0.0)) "same area" a.Engine.area_ratio b.Engine.area_ratio

let test_seals_verified_independently () =
  let net = Lazy.force fixture in
  let config = Accals.Config.for_network net in
  let patterns =
    Sim.for_network ~seed:config.Accals.Config.seed
      ~count:config.Accals.Config.samples
      ~exhaustive_limit:config.Accals.Config.exhaustive_limit net
  in
  let r = Seals.run ~config ~patterns net ~metric:Metric.Nmed ~error_bound:0.002 in
  let golden = Evaluate.output_signatures net patterns in
  let e = Evaluate.actual_error r.Engine.approximate patterns ~golden Metric.Nmed in
  Alcotest.(check (float 1e-12)) "error matches" r.Engine.error e

let test_accals_not_slower_than_seals_rounds () =
  (* The whole point: AccALS needs no more rounds than SEALS. *)
  let net = Accals_circuits.Bench_suite.load "c880" in
  let acc = Engine.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  let seals = Seals.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  check "fewer or equal rounds" true
    (List.length acc.Engine.rounds <= List.length seals.Engine.rounds)

let test_amosa_respects_bound () =
  let net = Lazy.force fixture in
  let r = Amosa.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  check "bound" true (r.Amosa.report.Engine.error <= 0.03);
  Network.validate r.Amosa.report.Engine.approximate

let test_amosa_archive_pareto () =
  let net = Lazy.force fixture in
  let r = Amosa.run net ~metric:Metric.Error_rate ~error_bound:0.05 in
  let archive = r.Amosa.archive in
  check "nonempty archive" true (archive <> []);
  (* No point dominates another. *)
  let dominates (e1, a1) (e2, a2) =
    e1 <= e2 && a1 <= a2 && (e1 < e2 || a1 < a2)
  in
  let rec pairwise = function
    | [] -> true
    | p :: rest ->
      List.for_all (fun q -> (not (dominates p q)) && not (dominates q p)) rest
      && pairwise rest
  in
  check "pareto front" true (pairwise archive)

let test_amosa_deterministic () =
  let net = Lazy.force fixture in
  let a = Amosa.run net ~metric:Metric.Error_rate ~error_bound:0.02 in
  let b = Amosa.run net ~metric:Metric.Error_rate ~error_bound:0.02 in
  Alcotest.(check (float 0.0)) "same area"
    a.Amosa.report.Engine.area_ratio b.Amosa.report.Engine.area_ratio

let suite =
  [
    ( "seals",
      [
        Alcotest.test_case "respects bound" `Quick test_seals_respects_bound;
        Alcotest.test_case "single-LAC rounds" `Quick test_seals_single_rounds;
        Alcotest.test_case "deterministic" `Quick test_seals_deterministic;
        Alcotest.test_case "independently verified" `Quick test_seals_verified_independently;
        Alcotest.test_case "AccALS rounds <= SEALS rounds" `Quick
          test_accals_not_slower_than_seals_rounds;
      ] );
    ( "amosa",
      [
        Alcotest.test_case "respects bound" `Quick test_amosa_respects_bound;
        Alcotest.test_case "archive is a pareto front" `Quick test_amosa_archive_pareto;
        Alcotest.test_case "deterministic" `Quick test_amosa_deterministic;
      ] );
  ]
