open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Shared fixture: a loaded small multiplier with its round context. *)
let fixture =
  lazy
    (let net = Accals_circuits.Bench_suite.load "mtp8" in
     let patterns = Sim.for_network ~seed:1 ~count:1024 ~exhaustive_limit:10 net in
     let ctx = Round_ctx.create net patterns in
     (net, patterns, ctx))

let test_kinds_definitions () =
  let l = Lac.make ~target:5 Lac.Const0 ~area_gain:1.0 in
  check "const0 def" true (Lac.new_definition l = (Gate.Const false, [||]));
  let l = Lac.make ~target:5 (Lac.Wire 3) ~area_gain:1.0 in
  check "wire def" true (Lac.new_definition l = (Gate.Buf, [| 3 |]));
  let l = Lac.make ~target:5 (Lac.Inv_wire 3) ~area_gain:1.0 in
  check "inv def" true (Lac.new_definition l = (Gate.Not, [| 3 |]));
  let l = Lac.make ~target:5 (Lac.Gate2 (Gate.Or, 1, 2)) ~area_gain:1.0 in
  check "gate2 def" true (Lac.new_definition l = (Gate.Or, [| 1; 2 |]))

let test_substitute_nodes () =
  check "const sns" true
    (Lac.substitute_nodes (Lac.make ~target:5 Lac.Const1 ~area_gain:1.0) = []);
  check "wire sns" true
    (Lac.substitute_nodes (Lac.make ~target:5 (Lac.Wire 3) ~area_gain:1.0) = [ 3 ]);
  check "pair sns" true
    (Lac.substitute_nodes
       (Lac.make ~target:5 (Lac.Gate2 (Gate.And, 1, 2)) ~area_gain:1.0)
     = [ 1; 2 ])

let test_conflicts_type1 () =
  (* Same TN. *)
  let a = Lac.make ~target:4 (Lac.Wire 2) ~area_gain:1.0 in
  let b = Lac.make ~target:4 (Lac.Gate2 (Gate.And, 1, 3)) ~area_gain:1.0 in
  check "type 1" true (Lac.conflicts a b)

let test_conflicts_type2 () =
  (* SN of one is the TN of the other: the paper's Fig. 2 example. *)
  let a = Lac.make ~target:3 (Lac.Wire 1) ~area_gain:1.0 in
  let b = Lac.make ~target:4 (Lac.Gate2 (Gate.And, 1, 3)) ~area_gain:1.0 in
  check "type 2" true (Lac.conflicts a b);
  check "symmetric" true (Lac.conflicts b a)

let test_no_conflict () =
  let a = Lac.make ~target:3 (Lac.Wire 1) ~area_gain:1.0 in
  let b = Lac.make ~target:6 (Lac.Wire 5) ~area_gain:1.0 in
  check "independent lacs" false (Lac.conflicts a b)

let test_paper_example_conflicts () =
  (* Fig. 2 / Example 3: 6 LACs, expected selected set {T1, T3, T5, T6}
     given ascending weights in index order. *)
  let mk target kind delta =
    Lac.with_delta (Lac.make ~target kind ~area_gain:1.0) delta
  in
  let t1 = mk 3 (Lac.Wire 1) 0.01 in
  let t2 = mk 4 (Lac.Gate2 (Gate.And, 1, 3)) 0.02 in
  let t3 = mk 4 (Lac.Wire 2) 0.03 in
  let t4 = mk 5 (Lac.Gate2 (Gate.And, 3, 4)) 0.04 in
  let t5 = mk 6 (Lac.Wire 5) 0.05 in
  let t6 = mk 7 (Lac.Gate2 (Gate.And, 8, 9)) 0.06 in
  let sol, targets =
    Accals.Conflict_graph.find_and_solve [ t1; t2; t3; t4; t5; t6 ]
  in
  check_int "solution size" 4 (List.length sol);
  Alcotest.(check (list int)) "targets" [ 3; 4; 6; 7 ] (List.sort compare targets)

let test_apply_cycle_guard () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let x = Network.add_node t Gate.Not [| a |] in
  let y = Network.add_node t Gate.Not [| x |] in
  Network.set_outputs t [| ("y", y) |];
  (* y <- Buf x is fine; x <- Buf y closes a cycle. *)
  let bad = Lac.make ~target:x (Lac.Wire y) ~area_gain:1.0 in
  check "cycle rejected" true
    (try Lac.apply t bad; false with Network.Cycle _ -> true)

let test_apply_many_skips_cycles () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let x = Network.add_node t Gate.Not [| a |] in
  let y = Network.add_node t Gate.Not [| x |] in
  let z = Network.add_node t Gate.And [| x; y |] in
  Network.set_outputs t [| ("z", z) |];
  (* First LAC rewires y <- wire(a); second then tries x <- wire(y):
     after the first, y no longer depends on x, so both succeed. But
     x <- wire(z) must always be skipped. *)
  let l1 = Lac.make ~target:y (Lac.Wire a) ~area_gain:1.0 in
  let l2 = Lac.make ~target:x (Lac.Wire z) ~area_gain:1.0 in
  let applied, skipped = Lac.apply_many t [ l1; l2 ] in
  check_int "applied" 1 (List.length applied);
  check_int "skipped" 1 (List.length skipped);
  Network.validate t

let test_candidate_positive_gain () =
  let _, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  check "nonempty" true (cands <> []);
  List.iter
    (fun lac -> check "positive gain" true (lac.Lac.area_gain > 0.0))
    cands

let test_candidate_targets_live_gates () =
  let net, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  List.iter
    (fun lac ->
      check "live" true ctx.Round_ctx.live.(lac.Lac.target);
      check "not an input" true (not (Network.is_input net lac.Lac.target)))
    cands

let test_candidates_acyclic_individually () =
  let net, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  (* Every candidate must be applicable in isolation. *)
  List.iter
    (fun lac ->
      let copy = Network.copy net in
      Lac.apply copy lac;
      Network.validate copy)
    cands

let test_candidate_gain_is_real () =
  (* Applying a single LAC then sweeping reduces area by at least ~the
     advertised gain (sweep can find more). *)
  let net, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let area0 = Cost.area net in
  let rec take n = function
    | [] -> []
    | x :: r -> if n = 0 then [] else x :: take (n - 1) r
  in
  List.iter
    (fun lac ->
      let copy = Network.copy net in
      Lac.apply copy lac;
      Cleanup.sweep copy;
      let saved = area0 -. Cost.area copy in
      if saved +. 1e-6 < lac.Lac.area_gain then
        Alcotest.failf "gain overstated for %s: claimed %.1f, got %.1f"
          (Lac.describe lac) lac.Lac.area_gain saved)
    (take 100 cands)

let test_apply_preserves_validity () =
  let net, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let copy = Network.copy net in
  let sorted =
    List.sort (fun a b -> compare a.Lac.target b.Lac.target) cands
  in
  (* Apply a spread of non-conflicting LACs. *)
  let chosen, _ =
    List.fold_left
      (fun (acc, seen) lac ->
        let sns = Lac.substitute_nodes lac in
        let clash =
          List.mem lac.Lac.target seen
          || List.exists (fun s -> List.mem s seen) sns
        in
        if clash then (acc, seen) else (lac :: acc, (lac.Lac.target :: sns) @ seen))
      ([], []) sorted
  in
  let _, _ = Lac.apply_many copy (List.rev chosen) in
  Network.validate copy

let test_describe () =
  let l =
    Lac.with_delta
      (Lac.make ~target:7 (Lac.Gate2 (Gate.Or, 2, 3)) ~area_gain:3.0)
      0.5
  in
  check "mentions target" true
    (let s = Lac.describe l in
     String.length s > 0
     &&
     let contains needle =
       let n = String.length needle and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
       go 0
     in
     contains "7" && contains "or2")

let test_round_ctx_consistency () =
  let net, patterns, ctx = Lazy.force fixture in
  check_int "order covers live nodes"
    (Array.length ctx.Round_ctx.order)
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ctx.Round_ctx.live);
  (* Signatures of outputs match a fresh evaluation. *)
  let fresh = Accals_esterr.Evaluate.output_signatures net patterns in
  Array.iteri
    (fun i bv -> check "output sig" true (Bitvec.equal bv fresh.(i)))
    (Round_ctx.output_sigs ctx)

let suite =
  [
    ( "lac",
      [
        Alcotest.test_case "kind definitions" `Quick test_kinds_definitions;
        Alcotest.test_case "substitute nodes" `Quick test_substitute_nodes;
        Alcotest.test_case "type-1 conflict" `Quick test_conflicts_type1;
        Alcotest.test_case "type-2 conflict" `Quick test_conflicts_type2;
        Alcotest.test_case "no conflict" `Quick test_no_conflict;
        Alcotest.test_case "paper example 3/4" `Quick test_paper_example_conflicts;
        Alcotest.test_case "apply cycle guard" `Quick test_apply_cycle_guard;
        Alcotest.test_case "apply_many skips cycles" `Quick test_apply_many_skips_cycles;
        Alcotest.test_case "describe" `Quick test_describe;
      ] );
    ( "candidate generation",
      [
        Alcotest.test_case "positive gains" `Quick test_candidate_positive_gain;
        Alcotest.test_case "targets live gates" `Quick test_candidate_targets_live_gates;
        Alcotest.test_case "individually applicable" `Slow test_candidates_acyclic_individually;
        Alcotest.test_case "gains not overstated" `Slow test_candidate_gain_is_real;
        Alcotest.test_case "bulk apply stays valid" `Quick test_apply_preserves_validity;
        Alcotest.test_case "round context consistency" `Quick test_round_ctx_consistency;
      ] );
  ]
