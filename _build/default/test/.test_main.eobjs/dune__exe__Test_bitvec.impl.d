test/test_bitvec.ml: Accals_bitvec Alcotest Array List QCheck2 Test_util
