test/test_lac.ml: Accals Accals_bitvec Accals_circuits Accals_esterr Accals_lac Accals_network Alcotest Array Candidate_gen Cleanup Cost Gate Lac Lazy List Network Round_ctx Sim String
