test/test_metrics.ml: Accals_bitvec Accals_metrics Alcotest Array List QCheck2 Test_util
