test/test_aig.ml: Accals_aig Accals_bitvec Accals_circuits Accals_network Alcotest Array Cost Filename List Network Sys Test_util
