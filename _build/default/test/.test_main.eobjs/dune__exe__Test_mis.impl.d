test/test_mis.ml: Accals_bitvec Accals_mis Alcotest List Printf
