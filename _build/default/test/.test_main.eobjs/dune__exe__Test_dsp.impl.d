test/test_dsp.ml: Accals Accals_bitvec Accals_circuits Accals_metrics Accals_network Alcotest Dsp Lazy List Network Printf Test_util
