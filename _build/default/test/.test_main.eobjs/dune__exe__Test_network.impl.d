test/test_network.ml: Accals_bitvec Accals_circuits Accals_network Alcotest Array Cleanup Cost Gate List Network QCheck2 Random_logic Sim Structure Test_util
