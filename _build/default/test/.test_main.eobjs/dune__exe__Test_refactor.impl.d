test/test_refactor.ml: Accals Accals_bitvec Accals_circuits Accals_metrics Accals_network Accals_twolevel Alcotest Array Cleanup Cost Filename Gate List Network String Sys Test_util
