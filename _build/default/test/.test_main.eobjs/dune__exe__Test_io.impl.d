test/test_io.ml: Accals_bitvec Accals_circuits Accals_io Accals_network Adders Alcotest Array Filename Gate List Network Random_logic String Sys Test_util
