test/test_core.ml: Accals Accals_analysis Accals_circuits Accals_esterr Accals_lac Accals_metrics Accals_mis Accals_network Alcotest Array Gate Lac Lazy List Network QCheck2 Round_ctx Sim Test_util
