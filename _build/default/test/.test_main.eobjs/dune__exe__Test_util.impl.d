test/test_util.ml: Accals_network Array List Network Printf QCheck2 QCheck_alcotest String
