test/test_twolevel.ml: Accals_bitvec Accals_circuits Accals_lac Accals_network Accals_twolevel Alcotest Array Cost Gate List Network Printf QCheck2 Sim Structure Test_util
