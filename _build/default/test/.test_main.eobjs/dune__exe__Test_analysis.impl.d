test/test_analysis.ml: Accals Accals_analysis Accals_circuits Accals_metrics Accals_network Alcotest Array Gate List Network
