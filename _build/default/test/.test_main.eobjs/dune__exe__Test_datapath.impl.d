test/test_datapath.ml: Accals Accals_bitvec Accals_circuits Accals_metrics Accals_network Adders Alcotest Array Cost Datapath List Multipliers Network Printf Test_util
