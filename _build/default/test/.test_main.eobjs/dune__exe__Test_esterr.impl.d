test/test_esterr.ml: Accals_bitvec Accals_circuits Accals_esterr Accals_lac Accals_metrics Accals_network Alcotest Array Candidate_gen Float Gate Lac List Network Round_ctx Sim
