test/test_baselines.ml: Accals Accals_baselines Accals_circuits Accals_esterr Accals_metrics Accals_network Alcotest Lazy List Network Sim
