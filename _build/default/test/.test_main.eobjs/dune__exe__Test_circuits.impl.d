test/test_circuits.ml: Accals_bitvec Accals_circuits Accals_network Adders Alcotest Alu Array Bench_suite Cost Divider Ecc List Multipliers Network Printf Random_logic Test_util Unary_fns
