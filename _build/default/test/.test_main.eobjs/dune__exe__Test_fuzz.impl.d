test/test_fuzz.ml: Accals Accals_bitvec Accals_circuits Accals_metrics Accals_network Accals_twolevel Alcotest Array Cleanup Cost Gate Network Random_logic Structure Test_util
