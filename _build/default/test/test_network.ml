open Accals_network
open Accals_circuits
module Bitvec = Accals_bitvec.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small reference circuit: f = (a AND b) XOR c, g = NOT (a OR c). *)
let small_net () =
  let t = Network.create ~name:"small" () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let c = Network.add_input t "c" in
  let ab = Network.add_node t Gate.And [| a; b |] in
  let f = Network.add_node t Gate.Xor [| ab; c |] in
  let aoc = Network.add_node t Gate.Or [| a; c |] in
  let g = Network.add_node t Gate.Not [| aoc |] in
  Network.set_outputs t [| ("f", f); ("g", g) |];
  (t, a, b, c, ab, f, aoc, g)

let test_eval () =
  let t, _, _, _, _, _, _, _ = small_net () in
  let cases =
    [
      ([| false; false; false |], [| false; true |]);
      ([| true; true; false |], [| true; false |]);
      ([| true; true; true |], [| false; false |]);
      ([| false; false; true |], [| true; false |]);
    ]
  in
  List.iter
    (fun (ins, outs) ->
      Alcotest.(check (array bool)) "eval" outs (Network.eval t ins))
    cases

let test_gate_eval_ops () =
  let open Gate in
  check "and" true (eval And [| true; true; true |]);
  check "and f" false (eval And [| true; false |]);
  check "nand" true (eval Nand [| true; false |]);
  check "or" true (eval Or [| false; true |]);
  check "nor" true (eval Nor [| false; false |]);
  check "xor odd" true (eval Xor [| true; true; true |]);
  check "xor even" false (eval Xor [| true; true |]);
  check "xnor" true (eval Xnor [| true; true |]);
  check "mux sel" true (eval Mux [| true; true; false |]);
  check "mux unsel" false (eval Mux [| false; true; false |]);
  check "not" false (eval Not [| true |]);
  check "buf" true (eval Buf [| true |]);
  check "const" true (eval (Const true) [||])

let test_gate_arity_violation () =
  Alcotest.check_raises "bad arity" (Invalid_argument "Gate.eval: arity violation")
    (fun () -> ignore (Gate.eval Gate.Not [| true; false |]))

let test_replace_cycle_detected () =
  let t, _, _, _, ab, f, _, _ = small_net () in
  (* Making ab depend on f closes a cycle. *)
  check "raises" true
    (try
       Network.replace t ab Gate.And [| f; f |];
       false
     with Network.Cycle _ -> true)

let test_replace_semantics () =
  let t, a, _, c, _, f, _, _ = small_net () in
  (* Replace f with Buf a: output f now follows a. *)
  Network.replace t f Gate.Buf [| a |];
  let outs = Network.eval t [| true; false; true |] in
  check "f = a" true outs.(0);
  ignore c

let test_replace_input_rejected () =
  let t, a, _, _, _, _, _, _ = small_net () in
  check "reject input replace" true
    (try
       Network.replace t a (Gate.Const true) [||];
       false
     with Invalid_argument _ -> true)

let test_reaches () =
  let t, a, _, _, ab, f, _, g = small_net () in
  check "a reaches f" true (Network.reaches t ~src:a ~dst:f);
  check "ab reaches f" true (Network.reaches t ~src:ab ~dst:f);
  check "f does not reach g" false (Network.reaches t ~src:f ~dst:g);
  check "self" true (Network.reaches t ~src:f ~dst:f)

let test_copy_independent () =
  let t, _, _, _, _, f, _, _ = small_net () in
  let t2 = Network.copy t in
  Network.replace t2 f (Gate.Const true) [||];
  let outs = Network.eval t [| false; false; false |] in
  check "original unchanged" false outs.(0)

let test_validate_ok () =
  let t, _, _, _, _, _, _, _ = small_net () in
  Network.validate t

let test_topo_order () =
  let t, _, _, _, _, _, _, _ = small_net () in
  let order = Structure.topo_order t in
  let pos = Array.make (Network.num_nodes t) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  Array.iter
    (fun id ->
      Array.iter
        (fun fanin ->
          check "fanin before node" true (pos.(fanin) >= 0 && pos.(fanin) < pos.(id)))
        (Network.fanins t id))
    order

let test_live_set () =
  let t, _, _, _, _, f, _, _ = small_net () in
  (* Add a dangling node: not live. *)
  let d = Network.add_node t Gate.Not [| f |] in
  let live = Structure.live_set t in
  check "dangling dead" false live.(d);
  check "output live" true live.(f)

let test_levels () =
  let t, a, _, _, ab, f, _, _ = small_net () in
  let lvl = Structure.levels t in
  check_int "input level" 0 lvl.(a);
  check_int "ab level" 1 lvl.(ab);
  check_int "f level" 2 lvl.(f)

let test_fanouts () =
  let t, a, _, _, ab, _, aoc, _ = small_net () in
  let fo = Structure.fanouts t in
  let a_fanouts = Array.to_list fo.(a) in
  check "a feeds ab" true (List.mem ab a_fanouts);
  check "a feeds aoc" true (List.mem aoc a_fanouts)

let test_tfo () =
  let t, a, _, _, ab, f, aoc, g = small_net () in
  let fo = Structure.fanouts t in
  let tfo = Structure.tfo_set t ~fanouts:fo a in
  List.iter (fun id -> check "tfo member" true (Bitvec.get tfo id)) [ a; ab; f; aoc; g ]

let test_shortest_path () =
  let t, a, _, _, _, f, _, _ = small_net () in
  let fo = Structure.fanouts t in
  Alcotest.(check (option int)) "a to f" (Some 2)
    (Structure.shortest_path_bounded t ~fanouts:fo ~src:a ~dst:f ~limit:10);
  Alcotest.(check (option int)) "bounded out" None
    (Structure.shortest_path_bounded t ~fanouts:fo ~src:a ~dst:f ~limit:1)

let test_mffc () =
  let t, _, _, _, ab, f, _, _ = small_net () in
  let live = Structure.live_set t in
  let counts = Structure.fanout_counts t ~live in
  let m = Structure.mffc t ~fanout_counts:counts ~live f in
  (* ab only feeds f, so it is inside f's MFFC. *)
  check "f in own mffc" true (List.mem f m);
  check "ab in f's mffc" true (List.mem ab m)

let test_mffc_shared_node_excluded () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let shared = Network.add_node t Gate.And [| a; b |] in
  let x = Network.add_node t Gate.Not [| shared |] in
  let y = Network.add_node t Gate.Buf [| shared |] in
  Network.set_outputs t [| ("x", x); ("y", y) |];
  let live = Structure.live_set t in
  let counts = Structure.fanout_counts t ~live in
  let m = Structure.mffc t ~fanout_counts:counts ~live x in
  check "shared not in mffc" false (List.mem shared m)

(* Cleanup tests *)

let test_cleanup_const_prop () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let zero = Network.add_node t (Gate.Const false) [||] in
  let an = Network.add_node t Gate.And [| a; zero |] in
  let f = Network.add_node t Gate.Or [| an; a |] in
  Network.set_outputs t [| ("f", f) |];
  Cleanup.sweep t;
  (* f = (a AND 0) OR a = a *)
  let outs = Network.eval t [| true |] in
  check "still a" true outs.(0);
  let outs = Network.eval t [| false |] in
  check "still a (0)" false outs.(0)

let test_cleanup_buffer_chain () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b1 = Network.add_node t Gate.Buf [| a |] in
  let b2 = Network.add_node t Gate.Buf [| b1 |] in
  let b3 = Network.add_node t Gate.Buf [| b2 |] in
  Network.set_outputs t [| ("f", b3) |];
  Cleanup.sweep t;
  Alcotest.(check int) "output driver resolved" a (Network.outputs t).(0)

let test_cleanup_double_negation () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let n1 = Network.add_node t Gate.Not [| a |] in
  let n2 = Network.add_node t Gate.Not [| n1 |] in
  let f = Network.add_node t Gate.And [| n2; a |] in
  Network.set_outputs t [| ("f", f) |];
  Cleanup.sweep t;
  check "f follows a" true (Network.eval t [| true |]).(0);
  check "f follows a (0)" false (Network.eval t [| false |]).(0)

let test_cleanup_complement_pair () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let na = Network.add_node t Gate.Not [| a |] in
  let f = Network.add_node t Gate.And [| a; na |] in
  Network.set_outputs t [| ("f", f) |];
  Cleanup.sweep t;
  check "a and ~a is 0" false (Network.eval t [| true |]).(0);
  check "a and ~a is 0 (2)" false (Network.eval t [| false |]).(0);
  Alcotest.(check string) "became const0" "const0"
    (Gate.to_string (Network.op t (Network.outputs t).(0)))

let test_cleanup_xor_pairs () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let x = Network.add_node t Gate.Xor [| a; a; b |] in
  Network.set_outputs t [| ("f", x) |];
  Cleanup.sweep t;
  (* a xor a xor b = b *)
  check "reduces to b" true (Network.eval t [| true; true |]).(0);
  check "reduces to b (2)" false (Network.eval t [| true; false |]).(0)

let test_compact_preserves_function () =
  let t, _, _, _, _, f, _, _ = small_net () in
  ignore (Network.add_node t Gate.Not [| f |]);
  (* dead *)
  let c = Cleanup.compact t in
  check_int "dead removed" (Network.num_nodes t - 1) (Network.num_nodes c);
  for v = 0 to 7 do
    let ins = Test_util.bits_of_int v 3 in
    Alcotest.(check (array bool))
      "same function" (Network.eval t ins) (Network.eval c ins)
  done

(* Random-network property: cleanup preserves every output function. *)
let gen_random_net_seed = QCheck2.Gen.int_range 0 10000

let build_random_net seed =
  Random_logic.make ~name:"rand" ~inputs:6 ~outputs:4 ~gates:40 ~seed

let prop_cleanup_preserves =
  Test_util.qcheck_case ~count:50 "cleanup preserves functions" gen_random_net_seed
    (fun seed ->
      let t = build_random_net seed in
      let t' = Network.copy t in
      Cleanup.sweep t';
      let ok = ref true in
      for v = 0 to 63 do
        let ins = Test_util.bits_of_int v 6 in
        if Network.eval t ins <> Network.eval t' ins then ok := false
      done;
      !ok)

let prop_compact_preserves =
  Test_util.qcheck_case ~count:50 "compact preserves functions" gen_random_net_seed
    (fun seed ->
      let t = build_random_net seed in
      let t' = Cleanup.compact t in
      let ok = ref true in
      for v = 0 to 63 do
        let ins = Test_util.bits_of_int v 6 in
        if Network.eval t ins <> Network.eval t' ins then ok := false
      done;
      !ok)

let prop_topo_valid_random =
  Test_util.qcheck_case ~count:50 "topo order valid on random nets" gen_random_net_seed
    (fun seed ->
      let t = build_random_net seed in
      let order = Structure.topo_order t in
      let pos = Array.make (Network.num_nodes t) max_int in
      Array.iteri (fun i id -> pos.(id) <- i) order;
      Array.for_all
        (fun id ->
          Array.for_all (fun f -> pos.(f) < pos.(id)) (Network.fanins t id))
        order)

(* Simulation vs eval oracle *)

let test_sim_matches_eval () =
  let t, _, _, _, _, _, _, _ = small_net () in
  let pats = Sim.exhaustive 3 in
  let order = Structure.topo_order t in
  let sigs = Sim.run t pats ~order in
  for p = 0 to 7 do
    let ins = Test_util.bits_of_int p 3 in
    let expected = Network.eval t ins in
    let got = Sim.output_values t sigs ~pattern:p in
    Alcotest.(check (array bool)) "sim = eval" expected got
  done

let prop_sim_matches_eval_random =
  Test_util.qcheck_case ~count:30 "sim = eval on random nets" gen_random_net_seed
    (fun seed ->
      let t = build_random_net seed in
      let pats = Sim.exhaustive 6 in
      let order = Structure.topo_order t in
      let sigs = Sim.run t pats ~order in
      let ok = ref true in
      for p = 0 to 63 do
        let ins = Test_util.bits_of_int p 6 in
        if Network.eval t ins <> Sim.output_values t sigs ~pattern:p then ok := false
      done;
      !ok)

let test_sim_random_patterns_deterministic () =
  let pats1 = Sim.random ~seed:9 ~count:256 5 in
  let pats2 = Sim.random ~seed:9 ~count:256 5 in
  Array.iteri
    (fun i bv -> check "same patterns" true (Bitvec.equal bv pats2.by_input.(i)))
    pats1.by_input

let test_exhaustive_pattern_layout () =
  let pats = Sim.exhaustive 3 in
  check_int "count" 8 pats.count;
  (* bit p of input i = bit i of p *)
  check "pattern 5 input 0" true (Bitvec.get pats.by_input.(0) 5);
  check "pattern 5 input 1" false (Bitvec.get pats.by_input.(1) 5);
  check "pattern 5 input 2" true (Bitvec.get pats.by_input.(2) 5)

(* Cost model *)

let test_cost_monotone () =
  let t, _, _, _, _, _, _, _ = small_net () in
  let area0 = Cost.area t in
  check "positive area" true (area0 > 0.0);
  check "positive delay" true (Cost.delay t > 0.0);
  (* Replacing a gate with a constant reduces area. *)
  let f = (Network.outputs t).(0) in
  Network.replace t f (Gate.Const false) [||];
  check "area decreased" true (Cost.area t < area0)

let test_cost_free_gates () =
  Alcotest.(check (float 0.0)) "buf free" 0.0 (Cost.gate_area Gate.Buf 1);
  Alcotest.(check (float 0.0)) "input free" 0.0 (Cost.gate_area Gate.Input 0);
  check "nary grows" true (Cost.gate_area Gate.And 4 > Cost.gate_area Gate.And 2)

let test_aig_count () =
  let t, _, _, _, _, _, _, _ = small_net () in
  (* and2 = 1, xor2 = 3, or2 = 1, not = 0 -> 5 *)
  check_int "aig nodes" 5 (Cost.aig_node_count t)

let suite =
  [
    ( "network",
      [
        Alcotest.test_case "eval reference" `Quick test_eval;
        Alcotest.test_case "gate eval ops" `Quick test_gate_eval_ops;
        Alcotest.test_case "gate arity violation" `Quick test_gate_arity_violation;
        Alcotest.test_case "replace detects cycle" `Quick test_replace_cycle_detected;
        Alcotest.test_case "replace semantics" `Quick test_replace_semantics;
        Alcotest.test_case "replace input rejected" `Quick test_replace_input_rejected;
        Alcotest.test_case "reaches" `Quick test_reaches;
        Alcotest.test_case "copy independent" `Quick test_copy_independent;
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
      ] );
    ( "structure",
      [
        Alcotest.test_case "topo order" `Quick test_topo_order;
        Alcotest.test_case "live set" `Quick test_live_set;
        Alcotest.test_case "levels" `Quick test_levels;
        Alcotest.test_case "fanouts" `Quick test_fanouts;
        Alcotest.test_case "tfo" `Quick test_tfo;
        Alcotest.test_case "shortest path bounded" `Quick test_shortest_path;
        Alcotest.test_case "mffc" `Quick test_mffc;
        Alcotest.test_case "mffc excludes shared" `Quick test_mffc_shared_node_excluded;
        prop_topo_valid_random;
      ] );
    ( "cleanup",
      [
        Alcotest.test_case "const propagation" `Quick test_cleanup_const_prop;
        Alcotest.test_case "buffer chain" `Quick test_cleanup_buffer_chain;
        Alcotest.test_case "double negation" `Quick test_cleanup_double_negation;
        Alcotest.test_case "complement pair" `Quick test_cleanup_complement_pair;
        Alcotest.test_case "xor pair removal" `Quick test_cleanup_xor_pairs;
        Alcotest.test_case "compact preserves function" `Quick test_compact_preserves_function;
        prop_cleanup_preserves;
        prop_compact_preserves;
      ] );
    ( "sim",
      [
        Alcotest.test_case "sim matches eval" `Quick test_sim_matches_eval;
        Alcotest.test_case "random patterns deterministic" `Quick
          test_sim_random_patterns_deterministic;
        Alcotest.test_case "exhaustive layout" `Quick test_exhaustive_pattern_layout;
        prop_sim_matches_eval_random;
      ] );
    ( "cost",
      [
        Alcotest.test_case "monotone" `Quick test_cost_monotone;
        Alcotest.test_case "free gates" `Quick test_cost_free_gates;
        Alcotest.test_case "aig node count" `Quick test_aig_count;
      ] );
  ]
