open Accals_network
module Aig = Accals_aig.Aig
module Aiger = Accals_aig.Aiger
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_constants_and_folding () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  check_int "a AND 0" Aig.false_ (Aig.land_ t a Aig.false_);
  check_int "a AND 1" a (Aig.land_ t a Aig.true_);
  check_int "a AND a" a (Aig.land_ t a a);
  check_int "a AND ~a" Aig.false_ (Aig.land_ t a (Aig.lnot_ a));
  check_int "double negation" a (Aig.lnot_ (Aig.lnot_ a))

let test_strashing () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  let b = Aig.add_input t "b" in
  let x = Aig.land_ t a b in
  let y = Aig.land_ t b a in
  check_int "commutative hash" x y;
  check_int "one AND built" 1 (Aig.total_ands t)

let test_eval () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  let b = Aig.add_input t "b" in
  let f = Aig.lxor_ t a b in
  let g = Aig.lnot_ (Aig.lor_ t a b) in
  Aig.set_outputs t [| ("f", f); ("g", g) |];
  let cases =
    [
      ([| false; false |], [| false; true |]);
      ([| true; false |], [| true; false |]);
      ([| true; true |], [| false; false |]);
    ]
  in
  List.iter
    (fun (ins, outs) ->
      Alcotest.(check (array bool)) "eval" outs (Aig.eval t ins))
    cases

let test_mux () =
  let t = Aig.create () in
  let s = Aig.add_input t "s" in
  let a = Aig.add_input t "a" in
  let b = Aig.add_input t "b" in
  Aig.set_outputs t [| ("m", Aig.mux t ~sel:s a b) |];
  for v = 0 to 7 do
    let ins = Test_util.bits_of_int v 3 in
    let expected = if ins.(0) then ins.(1) else ins.(2) in
    check "mux" expected (Aig.eval t ins).(0)
  done

let test_node_count_reachable_only () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  let b = Aig.add_input t "b" in
  let keep = Aig.land_ t a b in
  let _dead = Aig.land_ t a (Aig.lnot_ b) in
  Aig.set_outputs t [| ("f", keep) |];
  check_int "total" 2 (Aig.total_ands t);
  check_int "reachable" 1 (Aig.node_count t)

let test_depth () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  let b = Aig.add_input t "b" in
  let c = Aig.add_input t "c" in
  let ab = Aig.land_ t a b in
  let abc = Aig.land_ t ab c in
  Aig.set_outputs t [| ("f", abc) |];
  check_int "depth" 2 (Aig.depth t)

(* Conversion roundtrips. *)

let roundtrip_net net =
  let aig = Aig.of_network net in
  let back = Aig.to_network aig in
  let k = Array.length (Network.inputs net) in
  let rng = Prng.create 17 in
  let trials = if k <= 10 then 1 lsl k else 150 in
  let ok = ref true in
  for i = 0 to trials - 1 do
    let ins =
      if k <= 10 then Test_util.bits_of_int i k
      else Array.init k (fun _ -> Prng.bool rng)
    in
    let direct = Network.eval net ins in
    if direct <> Aig.eval aig ins then ok := false;
    if direct <> Network.eval back ins then ok := false
  done;
  !ok

let test_roundtrip_adder () =
  check "adder roundtrip" true (roundtrip_net (Accals_circuits.Adders.ripple_carry ~width:4))

let test_roundtrip_random () =
  for seed = 1 to 10 do
    let net =
      Accals_circuits.Random_logic.make ~name:"r" ~inputs:7 ~outputs:4 ~gates:60 ~seed
    in
    check "random roundtrip" true (roundtrip_net net)
  done

let test_node_count_close_to_estimate () =
  (* The real AIG size should be within 2x of Cost.aig_node_count (the
     decomposition estimate); strashing only shrinks it. *)
  let net = Accals_circuits.Bench_suite.load "mtp8" in
  let aig = Aig.of_network net in
  let estimate = Cost.aig_node_count net in
  let real = Aig.node_count aig in
  check "within range" true (real <= estimate && real * 2 >= estimate)

(* AIGER *)

let test_aiger_roundtrip () =
  let net = Accals_circuits.Adders.ripple_carry ~width:4 in
  let aig = Aig.of_network net in
  let text = Aiger.to_string aig in
  let parsed = Aiger.parse_string text in
  check_int "inputs survive" (Aig.input_count aig) (Aig.input_count parsed);
  check_int "outputs survive" (Aig.output_count aig) (Aig.output_count parsed);
  let k = Aig.input_count aig in
  for v = 0 to (1 lsl k) - 1 do
    let ins = Test_util.bits_of_int v k in
    Alcotest.(check (array bool)) "same function" (Aig.eval aig ins) (Aig.eval parsed ins)
  done

let test_aiger_preserves_names () =
  let t = Aig.create () in
  let a = Aig.add_input t "alpha" in
  let b = Aig.add_input t "beta" in
  Aig.set_outputs t [| ("gamma", Aig.land_ t a b) |];
  let parsed = Aiger.parse_string (Aiger.to_string t) in
  Alcotest.(check string) "input name" "alpha" (fst (Aig.inputs parsed).(0));
  Alcotest.(check string) "output name" "gamma" (fst (Aig.outputs parsed).(0))

let test_aiger_complemented_output () =
  let t = Aig.create () in
  let a = Aig.add_input t "a" in
  Aig.set_outputs t [| ("na", Aig.lnot_ a) |];
  let parsed = Aiger.parse_string (Aiger.to_string t) in
  check "not a" true (Aig.eval parsed [| false |]).(0);
  check "not a (2)" false (Aig.eval parsed [| true |]).(0)

let test_aiger_parse_errors () =
  List.iter
    (fun text ->
      check "rejected" true
        (try ignore (Aiger.parse_string text); false with Aiger.Parse_error _ -> true))
    [
      "";
      "aag x y z";
      "aag 1 1 1 0 0\n2\n";
      (* latches *)
      "aag 1 1 0 1 0\n3\n2\n";
      (* complemented input definition *)
      "aig 1 1 0 1 0\n2\n2\n";
      (* binary format *)
    ]

let test_aiger_file_io () =
  let aig = Aig.of_network (Accals_circuits.Adders.ripple_carry ~width:3) in
  let path = Filename.temp_file "accals" ".aag" in
  Aiger.write_file aig path;
  let parsed = Aiger.parse_file path in
  Sys.remove path;
  check_int "inputs" (Aig.input_count aig) (Aig.input_count parsed)

let suite =
  [
    ( "aig",
      [
        Alcotest.test_case "constant folding" `Quick test_constants_and_folding;
        Alcotest.test_case "structural hashing" `Quick test_strashing;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "mux" `Quick test_mux;
        Alcotest.test_case "node count reachable" `Quick test_node_count_reachable_only;
        Alcotest.test_case "depth" `Quick test_depth;
        Alcotest.test_case "adder roundtrip" `Quick test_roundtrip_adder;
        Alcotest.test_case "random roundtrips" `Quick test_roundtrip_random;
        Alcotest.test_case "count near estimate" `Quick test_node_count_close_to_estimate;
      ] );
    ( "aiger",
      [
        Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
        Alcotest.test_case "names preserved" `Quick test_aiger_preserves_names;
        Alcotest.test_case "complemented output" `Quick test_aiger_complemented_output;
        Alcotest.test_case "malformed rejected" `Quick test_aiger_parse_errors;
        Alcotest.test_case "file io" `Quick test_aiger_file_io;
      ] );
  ]
