open Accals_network
open Accals_circuits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mask w = (1 lsl w) - 1

(* --- new adders reuse the adder harness from test_circuits --- *)

let adder_env a b cin width =
  Test_util.bus_env "a" a width
  @ Test_util.bus_env "b" b width
  @ [ ("cin", cin) ]

let check_adder net width cases =
  List.iter
    (fun (a, b, cin) ->
      let outs = Test_util.eval_named net (adder_env a b cin width) in
      let s = Test_util.out_int ~prefix:"s" net outs in
      let names = Network.output_names net in
      let cout_idx =
        let rec find i = if names.(i) = "cout" then i else find (i + 1) in
        find 0
      in
      let got = s lor (if outs.(cout_idx) then 1 lsl width else 0) in
      check_int (Printf.sprintf "%d+%d+%b" a b cin)
        (a + b + if cin then 1 else 0)
        got)
    cases

let random_triples width n =
  let rng = Accals_bitvec.Prng.create 13 in
  List.init n (fun _ ->
      ( Accals_bitvec.Prng.int rng (mask width + 1),
        Accals_bitvec.Prng.int rng (mask width + 1),
        Accals_bitvec.Prng.bool rng ))

let test_carry_select () =
  check_adder (Adders.carry_select ~width:13 ()) 13 (random_triples 13 60)

let test_carry_skip () =
  check_adder (Adders.carry_skip ~width:13 ()) 13 (random_triples 13 60)

let test_carry_select_block1 () =
  check_adder (Adders.carry_select ~block:1 ~width:6 ()) 6 (random_triples 6 40)

let test_dadda_exhaustive4 () =
  let net = Multipliers.dadda ~width:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let env = Test_util.bus_env "a" a 4 @ Test_util.bus_env "b" b 4 in
      let outs = Test_util.eval_named net env in
      check_int "dadda" (a * b) (Test_util.out_int ~prefix:"p" net outs)
    done
  done

let test_dadda8_random () =
  let net = Multipliers.dadda ~width:8 in
  let rng = Accals_bitvec.Prng.create 21 in
  for _ = 1 to 40 do
    let a = Accals_bitvec.Prng.int rng 256 in
    let b = Accals_bitvec.Prng.int rng 256 in
    let env = Test_util.bus_env "a" a 8 @ Test_util.bus_env "b" b 8 in
    let outs = Test_util.eval_named net env in
    check_int "dadda8" (a * b) (Test_util.out_int ~prefix:"p" net outs)
  done

let test_dadda_smaller_than_wallace_depthwise () =
  (* The Dadda multiplier should use no more counters than Wallace. *)
  let d = Multipliers.dadda ~width:8 in
  let w = Multipliers.wallace ~width:8 in
  check "dadda not larger" true (Cost.area d <= Cost.area w +. 1.0)

let test_barrel_shifter () =
  let net = Datapath.barrel_shifter ~width:8 in
  for a = 0 to 255 do
    for s = 0 to 7 do
      let env = Test_util.bus_env "a" a 8 @ Test_util.bus_env "s" s 3 in
      let outs = Test_util.eval_named net env in
      check_int
        (Printf.sprintf "%d >> %d" a s)
        (a lsr s)
        (Test_util.out_int ~prefix:"y" net outs)
    done
  done

let test_priority_encoder () =
  let net = Datapath.priority_encoder ~width:8 in
  for x = 1 to 255 do
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x 8) in
    let e = Test_util.out_int ~prefix:"e" net outs in
    let expected =
      let rec go i = if x lsr i land 1 = 1 then i else go (i - 1) in
      go 7
    in
    check_int (Printf.sprintf "prienc %d" x) expected e
  done;
  let outs = Test_util.eval_named net (Test_util.bus_env "x" 0 8) in
  let names = Network.output_names net in
  let valid_idx =
    let rec find i = if names.(i) = "valid" then i else find (i + 1) in
    find 0
  in
  check "invalid on zero" false outs.(valid_idx)

let test_comparator () =
  let net = Datapath.comparator ~width:5 in
  for a = 0 to 31 do
    for b = 0 to 31 do
      let env = Test_util.bus_env "a" a 5 @ Test_util.bus_env "b" b 5 in
      let outs = Test_util.eval_named net env in
      let names = Network.output_names net in
      let get nm =
        let rec find i = if names.(i) = nm then outs.(i) else find (i + 1) in
        find 0
      in
      check "eq" (a = b) (get "eq");
      check "lt" (a < b) (get "lt");
      check "gt" (a > b) (get "gt")
    done
  done

let test_popcount () =
  let net = Datapath.popcount ~width:11 in
  let rng = Accals_bitvec.Prng.create 31 in
  for _ = 1 to 200 do
    let x = Accals_bitvec.Prng.int rng 2048 in
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x 11) in
    let expected =
      let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
      go x 0
    in
    check_int (Printf.sprintf "popcount %d" x) expected
      (Test_util.out_int ~prefix:"c" net outs)
  done

let test_mac () =
  let net = Datapath.multiply_accumulate ~width:5 in
  let rng = Accals_bitvec.Prng.create 41 in
  for _ = 1 to 100 do
    let a = Accals_bitvec.Prng.int rng 32 in
    let b = Accals_bitvec.Prng.int rng 32 in
    let c = Accals_bitvec.Prng.int rng 1024 in
    let env =
      Test_util.bus_env "a" a 5 @ Test_util.bus_env "b" b 5
      @ Test_util.bus_env "c" c 10
    in
    let outs = Test_util.eval_named net env in
    check_int
      (Printf.sprintf "%d*%d+%d" a b c)
      ((a * b) + c)
      (Test_util.out_int ~prefix:"p" net outs)
  done

let test_gray_roundtrip () =
  let enc = Datapath.gray_encoder ~width:6 in
  let dec = Datapath.gray_decoder ~width:6 in
  for v = 0 to 63 do
    let outs = Test_util.eval_named enc (Test_util.bus_env "b" v 6) in
    let g = Test_util.out_int ~prefix:"g" enc outs in
    check_int "gray encode" (v lxor (v lsr 1)) g;
    let outs2 = Test_util.eval_named dec (Test_util.bus_env "g" g 6) in
    check_int "gray roundtrip" v (Test_util.out_int ~prefix:"b" dec outs2)
  done

let test_gray_adjacent_differ_by_one () =
  let enc = Datapath.gray_encoder ~width:6 in
  for v = 0 to 62 do
    let g1 =
      Test_util.out_int ~prefix:"g" enc
        (Test_util.eval_named enc (Test_util.bus_env "b" v 6))
    in
    let g2 =
      Test_util.out_int ~prefix:"g" enc
        (Test_util.eval_named enc (Test_util.bus_env "b" (v + 1) 6))
    in
    let diff = g1 lxor g2 in
    check "one bit flips" true (diff <> 0 && diff land (diff - 1) = 0)
  done

let test_saturating_adder () =
  let net = Datapath.saturating_adder ~width:6 in
  let rng = Accals_bitvec.Prng.create 55 in
  for _ = 1 to 150 do
    let a = Accals_bitvec.Prng.int rng 64 in
    let b = Accals_bitvec.Prng.int rng 64 in
    let env = Test_util.bus_env "a" a 6 @ Test_util.bus_env "b" b 6 in
    let outs = Test_util.eval_named net env in
    check_int
      (Printf.sprintf "sat %d+%d" a b)
      (min 63 (a + b))
      (Test_util.out_int ~prefix:"s" net outs)
  done

(* New circuits are approximable substrates too: the engine respects bounds
   on them. *)
let test_engine_on_datapath () =
  List.iter
    (fun net ->
      let r =
        Accals.Engine.run net ~metric:Accals_metrics.Metric.Error_rate
          ~error_bound:0.02
      in
      check "bound respected" true (r.Accals.Engine.error <= 0.02);
      Network.validate r.Accals.Engine.approximate)
    [ Datapath.popcount ~width:12; Multipliers.dadda ~width:6 ]

let suite =
  [
    ( "datapath",
      [
        Alcotest.test_case "carry-select adder" `Quick test_carry_select;
        Alcotest.test_case "carry-skip adder" `Quick test_carry_skip;
        Alcotest.test_case "carry-select block=1" `Quick test_carry_select_block1;
        Alcotest.test_case "dadda exhaustive w4" `Quick test_dadda_exhaustive4;
        Alcotest.test_case "dadda random w8" `Quick test_dadda8_random;
        Alcotest.test_case "dadda vs wallace area" `Quick
          test_dadda_smaller_than_wallace_depthwise;
        Alcotest.test_case "barrel shifter" `Slow test_barrel_shifter;
        Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
        Alcotest.test_case "comparator" `Quick test_comparator;
        Alcotest.test_case "popcount" `Quick test_popcount;
        Alcotest.test_case "multiply-accumulate" `Quick test_mac;
        Alcotest.test_case "gray roundtrip" `Quick test_gray_roundtrip;
        Alcotest.test_case "gray adjacency" `Quick test_gray_adjacent_differ_by_one;
        Alcotest.test_case "saturating adder" `Quick test_saturating_adder;
        Alcotest.test_case "engine on new circuits" `Quick test_engine_on_datapath;
      ] );
  ]
