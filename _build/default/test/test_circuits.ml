open Accals_network
open Accals_circuits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- adders --- *)

let adder_env a b cin width =
  Test_util.bus_env "a" a width
  @ Test_util.bus_env "b" b width
  @ [ ("cin", cin) ]

let adder_result net outs width =
  let s = Test_util.out_int ~prefix:"s" net outs in
  let cout_idx =
    let names = Network.output_names net in
    let rec find i = if names.(i) = "cout" then i else find (i + 1) in
    find 0
  in
  s lor (if outs.(cout_idx) then 1 lsl width else 0)

let check_adder make width cases =
  let net = make ~width in
  List.iter
    (fun (a, b, cin) ->
      let outs = Test_util.eval_named net (adder_env a b cin width) in
      let expected = a + b + if cin then 1 else 0 in
      check_int
        (Printf.sprintf "%d+%d+%b" a b cin)
        expected
        (adder_result net outs width))
    cases

let mask w = (1 lsl w) - 1

let random_adder_cases width n =
  let rng = Accals_bitvec.Prng.create 77 in
  List.init n (fun _ ->
      ( Accals_bitvec.Prng.int rng (mask width + 1),
        Accals_bitvec.Prng.int rng (mask width + 1),
        Accals_bitvec.Prng.bool rng ))

let fixed_cases width =
  [ (0, 0, false); (mask width, 1, false); (mask width, mask width, true);
    (1, 0, true); (mask width / 2, mask width / 2, false) ]

let test_ripple () = check_adder Adders.ripple_carry 8 (fixed_cases 8)
let test_ripple_random () =
  check_adder Adders.ripple_carry 16 (random_adder_cases 16 40)

let test_cla () = check_adder Adders.carry_lookahead 8 (fixed_cases 8)
let test_cla_random () =
  check_adder Adders.carry_lookahead 16 (random_adder_cases 16 40)
let test_cla_odd_width () = check_adder Adders.carry_lookahead 10 (fixed_cases 10)

let test_ksa () = check_adder Adders.kogge_stone 8 (fixed_cases 8)
let test_ksa_random () =
  check_adder Adders.kogge_stone 16 (random_adder_cases 16 40)
let test_ksa_width32 () =
  check_adder Adders.kogge_stone 32 (random_adder_cases 32 10)

(* Adders agree with each other exhaustively at small width. *)
let test_adders_agree_exhaustive () =
  let nets =
    [ Adders.ripple_carry ~width:4; Adders.carry_lookahead ~width:4;
      Adders.kogge_stone ~width:4 ]
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun net ->
          let outs = Test_util.eval_named net (adder_env a b false 4) in
          check_int "agree" (a + b) (adder_result net outs 4))
        nets
    done
  done

(* --- multipliers --- *)

let mult_env a b width =
  Test_util.bus_env "a" a width @ Test_util.bus_env "b" b width

let check_mult make width cases =
  let net = make ~width in
  List.iter
    (fun (a, b) ->
      let outs = Test_util.eval_named net (mult_env a b width) in
      check_int (Printf.sprintf "%d*%d" a b) (a * b)
        (Test_util.out_int ~prefix:"p" net outs))
    cases

let random_pairs width n =
  let rng = Accals_bitvec.Prng.create 99 in
  List.init n (fun _ ->
      (Accals_bitvec.Prng.int rng (mask width + 1),
       Accals_bitvec.Prng.int rng (mask width + 1)))

let test_array_mult_exhaustive4 () =
  let net = Multipliers.array_multiplier ~width:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let outs = Test_util.eval_named net (mult_env a b 4) in
      check_int "array mult" (a * b) (Test_util.out_int ~prefix:"p" net outs)
    done
  done

let test_wallace_exhaustive4 () =
  let net = Multipliers.wallace ~width:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let outs = Test_util.eval_named net (mult_env a b 4) in
      check_int "wallace" (a * b) (Test_util.out_int ~prefix:"p" net outs)
    done
  done

let test_array_mult8_random () =
  check_mult Multipliers.array_multiplier 8 (random_pairs 8 30)

let test_wallace8_random () = check_mult Multipliers.wallace 8 (random_pairs 8 30)

let test_square () =
  let net = Multipliers.square ~width:6 in
  for a = 0 to 63 do
    let outs = Test_util.eval_named net (Test_util.bus_env "a" a 6) in
    check_int "square" (a * a) (Test_util.out_int ~prefix:"p" net outs)
  done

(* --- divider --- *)

let test_divider () =
  let net = Divider.restoring ~dividend_width:8 ~divisor_width:4 in
  for n = 0 to 255 do
    for d = 1 to 15 do
      let env = Test_util.bus_env "n" n 8 @ Test_util.bus_env "d" d 4 in
      let outs = Test_util.eval_named net env in
      check_int (Printf.sprintf "%d/%d q" n d) (n / d)
        (Test_util.out_int ~prefix:"q" net outs);
      check_int (Printf.sprintf "%d mod %d" n d) (n mod d)
        (Test_util.out_int ~prefix:"r" net outs)
    done
  done

let test_divider_by_zero_total () =
  let net = Divider.restoring ~dividend_width:8 ~divisor_width:4 in
  let env = Test_util.bus_env "n" 100 8 @ Test_util.bus_env "d" 0 4 in
  let outs = Test_util.eval_named net env in
  check_int "q all ones" 255 (Test_util.out_int ~prefix:"q" net outs)

(* --- sqrt --- *)

let test_sqrt () =
  let net = Unary_fns.sqrt_restoring ~width:12 in
  let rng = Accals_bitvec.Prng.create 3 in
  for _ = 1 to 200 do
    let x = Accals_bitvec.Prng.int rng 4096 in
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x 12) in
    let r = Test_util.out_int ~prefix:"r" net outs in
    let m = Test_util.out_int ~prefix:"m" net outs in
    check_int (Printf.sprintf "isqrt %d" x) (int_of_float (sqrt (float_of_int x))) r;
    check_int (Printf.sprintf "rem %d" x) (x - (r * r)) m
  done

let test_sqrt_exhaustive_small () =
  let net = Unary_fns.sqrt_restoring ~width:8 in
  for x = 0 to 255 do
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x 8) in
    let r = Test_util.out_int ~prefix:"r" net outs in
    check "floor sqrt" true (r * r <= x && (r + 1) * (r + 1) > x)
  done

(* --- log2 --- *)

let test_log2 () =
  let net = Unary_fns.log2 ~width:16 ~fraction_bits:4 in
  let rng = Accals_bitvec.Prng.create 4 in
  for _ = 1 to 200 do
    let x = 1 + Accals_bitvec.Prng.int rng 65535 in
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x 16) in
    let e = Test_util.out_int ~prefix:"e" net outs in
    let expected_e =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
      go 0 x
    in
    check_int (Printf.sprintf "log2 %d" x) expected_e e;
    (* fraction = bits right after the leading one *)
    let f = Test_util.out_int ~prefix:"f" net outs in
    let normalized = x lsl (15 - expected_e) in
    let expected_f = normalized lsr 11 land 15 in
    check_int (Printf.sprintf "frac %d" x) expected_f f
  done

let test_log2_zero_invalid () =
  let net = Unary_fns.log2 ~width:16 ~fraction_bits:4 in
  let outs = Test_util.eval_named net (Test_util.bus_env "x" 0 16) in
  let names = Network.output_names net in
  let valid_idx =
    let rec find i = if names.(i) = "valid" then i else find (i + 1) in
    find 0
  in
  check "invalid on zero" false outs.(valid_idx)

(* --- sin --- *)

let test_sin_parabola () =
  let width = 8 in
  let net = Unary_fns.sin_parabola ~width in
  for x = 0 to 255 do
    let outs = Test_util.eval_named net (Test_util.bus_env "x" x width) in
    let y = Test_util.out_int ~prefix:"y" net outs in
    (* Matches the spec y = floor(4 * x * (2^w - 1 - x) / 2^w) *)
    let product = x * (255 - x) in
    let expected = product * 4 / 256 mod 256 in
    check_int (Printf.sprintf "sin %d" x) expected y
  done

(* --- alu --- *)

let alu_env a b op width sel_bits =
  Test_util.bus_env "a" a width
  @ Test_util.bus_env "b" b width
  @ Test_util.bus_env "op" op sel_bits

let test_alu8_ops () =
  let width = 8 in
  let net = Alu.make ~width ~name:"alu_test" () in
  let rng = Accals_bitvec.Prng.create 12 in
  let sign_bit = 1 lsl (width - 1) in
  let to_signed v = if v land sign_bit <> 0 then v - (1 lsl width) else v in
  for _ = 1 to 100 do
    let a = Accals_bitvec.Prng.int rng 256 in
    let b = Accals_bitvec.Prng.int rng 256 in
    let op = Accals_bitvec.Prng.int rng 8 in
    let outs = Test_util.eval_named net (alu_env a b op width 3) in
    let r = Test_util.out_int ~prefix:"r" net outs in
    let expected =
      match op with
      | 0 -> a land b
      | 1 -> a lor b
      | 2 -> a lxor b
      | 3 -> lnot (a lor b) land 255
      | 4 -> (a + b) land 255
      | 5 -> (a - b) land 255
      | 6 -> if to_signed a < to_signed b then 1 else 0
      | _ -> b
    in
    check_int (Printf.sprintf "alu op%d %d %d" op a b) expected r
  done

let test_alu_zero_flag () =
  let net = Alu.make ~width:8 ~name:"alu_test" () in
  let outs = Test_util.eval_named net (alu_env 0 0 0 8 3) in
  let names = Network.output_names net in
  let zero_idx =
    let rec find i = if names.(i) = "zero" then i else find (i + 1) in
    find 0
  in
  check "zero flag" true outs.(zero_idx)

let test_alu4_ops () =
  let net = Alu.make ~width:4 ~ops:4 ~name:"alu2_test" () in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for op = 0 to 3 do
        let outs = Test_util.eval_named net (alu_env a b op 4 2) in
        let r = Test_util.out_int ~prefix:"r" net outs in
        let expected =
          match op with
          | 0 -> a land b
          | 1 -> a lor b
          | 2 -> (a + b) land 15
          | _ -> (a - b) land 15
        in
        check_int "alu4" expected r
      done
    done
  done

(* --- ECC --- *)

let encode_hamming data_bits data =
  (* Reference software encoder matching Ecc's layout. *)
  let r = Ecc.check_bit_count data_bits in
  let total = data_bits + r in
  let word = Array.make (total + 1) false in
  let d = ref 0 in
  for pos = 1 to total do
    if pos land (pos - 1) <> 0 then begin
      word.(pos) <- data lsr !d land 1 = 1;
      incr d
    end
  done;
  for i = 0 to r - 1 do
    let parity = ref false in
    for pos = 1 to total do
      if pos lsr i land 1 = 1 && pos <> 1 lsl i then
        if word.(pos) then parity := not !parity
    done;
    word.(1 lsl i) <- !parity
  done;
  let checks = Array.init r (fun i -> word.(1 lsl i)) in
  let overall = Array.fold_left (fun acc b -> acc <> b) false word in
  (word, checks, overall)

let ecc_env data_bits data checks pall =
  Test_util.bus_env "d" data data_bits
  @ List.mapi (fun i b -> (Printf.sprintf "c%d" i, b)) (Array.to_list checks)
  @ [ ("pall", pall) ]

let test_ecc_no_error () =
  let data_bits = 8 in
  let net = Ecc.secded_decoder ~data_bits in
  let rng = Accals_bitvec.Prng.create 21 in
  for _ = 1 to 50 do
    let data = Accals_bitvec.Prng.int rng 256 in
    let _, checks, overall = encode_hamming data_bits data in
    let outs = Test_util.eval_named net (ecc_env data_bits data checks overall) in
    check_int "data passes" data (Test_util.out_int ~prefix:"q" net outs);
    let names = Network.output_names net in
    Array.iteri
      (fun i nm ->
        if nm = "single_err" || nm = "double_err" then
          check (nm ^ " clear") false outs.(i))
      names
  done

let test_ecc_single_error_corrected () =
  let data_bits = 8 in
  let net = Ecc.secded_decoder ~data_bits in
  let rng = Accals_bitvec.Prng.create 22 in
  for _ = 1 to 50 do
    let data = Accals_bitvec.Prng.int rng 256 in
    let _, checks, overall = encode_hamming data_bits data in
    (* Flip one data bit. *)
    let flip = Accals_bitvec.Prng.int rng data_bits in
    let corrupted = data lxor (1 lsl flip) in
    let outs = Test_util.eval_named net (ecc_env data_bits corrupted checks overall) in
    check_int "corrected" data (Test_util.out_int ~prefix:"q" net outs)
  done

(* --- random logic / pla --- *)

let test_random_logic_deterministic () =
  let a = Random_logic.make ~name:"r" ~inputs:8 ~outputs:4 ~gates:60 ~seed:5 in
  let b = Random_logic.make ~name:"r" ~inputs:8 ~outputs:4 ~gates:60 ~seed:5 in
  for v = 0 to 255 do
    let ins = Test_util.bits_of_int v 8 in
    Alcotest.(check (array bool)) "same function" (Network.eval a ins) (Network.eval b ins)
  done

let test_random_logic_valid () =
  let t = Random_logic.make ~name:"r" ~inputs:10 ~outputs:6 ~gates:200 ~seed:9 in
  Network.validate t;
  check_int "outputs" 6 (Array.length (Network.outputs t))

let test_pla_valid () =
  let t = Random_logic.pla ~name:"p" ~inputs:12 ~outputs:5 ~terms:30 ~seed:3 in
  Network.validate t;
  check_int "outputs" 5 (Array.length (Network.outputs t))

(* --- bench suite --- *)

let test_bench_suite_all_load () =
  List.iter
    (fun (name, _) ->
      let t = Bench_suite.load name in
      Network.validate t;
      check (name ^ " nonempty") true (Cost.area t > 0.0))
    Bench_suite.all

let test_bench_suite_load_preserves_rca () =
  let raw = Bench_suite.build "rca32" in
  let opt = Bench_suite.load "rca32" in
  let rng = Accals_bitvec.Prng.create 8 in
  for _ = 1 to 20 do
    let v = Array.init (Array.length (Network.inputs raw)) (fun _ ->
        Accals_bitvec.Prng.bool rng)
    in
    Alcotest.(check (array bool)) "same" (Network.eval raw v) (Network.eval opt v)
  done

let test_bench_suite_unknown () =
  check "unknown raises" true
    (try ignore (Bench_suite.build "nonesuch"); false with Not_found -> true)

let test_bench_categories () =
  check_int "iscas group" 9 (List.length (Bench_suite.category_circuits Bench_suite.Iscas_small));
  check_int "epfl group" 5 (List.length (Bench_suite.category_circuits Bench_suite.Epfl));
  check_int "lgsynt group" 4 (List.length (Bench_suite.category_circuits Bench_suite.Lgsynt91))

let suite =
  [
    ( "adders",
      [
        Alcotest.test_case "ripple fixed" `Quick test_ripple;
        Alcotest.test_case "ripple random 16" `Quick test_ripple_random;
        Alcotest.test_case "cla fixed" `Quick test_cla;
        Alcotest.test_case "cla random 16" `Quick test_cla_random;
        Alcotest.test_case "cla odd width" `Quick test_cla_odd_width;
        Alcotest.test_case "kogge-stone fixed" `Quick test_ksa;
        Alcotest.test_case "kogge-stone random 16" `Quick test_ksa_random;
        Alcotest.test_case "kogge-stone width 32" `Quick test_ksa_width32;
        Alcotest.test_case "all agree exhaustive w4" `Slow test_adders_agree_exhaustive;
      ] );
    ( "multipliers",
      [
        Alcotest.test_case "array exhaustive w4" `Quick test_array_mult_exhaustive4;
        Alcotest.test_case "wallace exhaustive w4" `Quick test_wallace_exhaustive4;
        Alcotest.test_case "array random w8" `Quick test_array_mult8_random;
        Alcotest.test_case "wallace random w8" `Quick test_wallace8_random;
        Alcotest.test_case "square exhaustive w6" `Quick test_square;
      ] );
    ( "divider",
      [
        Alcotest.test_case "exhaustive 8/4" `Slow test_divider;
        Alcotest.test_case "division by zero total" `Quick test_divider_by_zero_total;
      ] );
    ( "unary functions",
      [
        Alcotest.test_case "sqrt random w12" `Quick test_sqrt;
        Alcotest.test_case "sqrt exhaustive w8" `Quick test_sqrt_exhaustive_small;
        Alcotest.test_case "log2 random w16" `Quick test_log2;
        Alcotest.test_case "log2 invalid on zero" `Quick test_log2_zero_invalid;
        Alcotest.test_case "sin parabola exhaustive w8" `Quick test_sin_parabola;
      ] );
    ( "alu",
      [
        Alcotest.test_case "alu8 ops random" `Quick test_alu8_ops;
        Alcotest.test_case "zero flag" `Quick test_alu_zero_flag;
        Alcotest.test_case "alu4 exhaustive" `Slow test_alu4_ops;
      ] );
    ( "ecc",
      [
        Alcotest.test_case "clean word passes" `Quick test_ecc_no_error;
        Alcotest.test_case "single error corrected" `Quick test_ecc_single_error_corrected;
      ] );
    ( "random logic",
      [
        Alcotest.test_case "deterministic" `Quick test_random_logic_deterministic;
        Alcotest.test_case "valid" `Quick test_random_logic_valid;
        Alcotest.test_case "pla valid" `Quick test_pla_valid;
      ] );
    ( "bench suite",
      [
        Alcotest.test_case "all circuits load" `Quick test_bench_suite_all_load;
        Alcotest.test_case "load preserves function" `Quick test_bench_suite_load_preserves_rca;
        Alcotest.test_case "unknown name" `Quick test_bench_suite_unknown;
        Alcotest.test_case "categories" `Quick test_bench_categories;
      ] );
  ]
