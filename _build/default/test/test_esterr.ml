open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Criticality = Accals_esterr.Criticality

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let fixture name samples =
  let net = Accals_circuits.Bench_suite.load name in
  let patterns = Sim.for_network ~seed:3 ~count:samples ~exhaustive_limit:12 net in
  let ctx = Round_ctx.create net patterns in
  let golden = Round_ctx.output_sigs ctx in
  (net, patterns, ctx, golden)

let test_base_error_zero () =
  let _, _, ctx, golden = fixture "mtp8" 512 in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  checkf "unmodified circuit has zero error" 0.0 (Estimator.base_error est)

let test_candidate_signature_wire () =
  let _, _, ctx, golden = fixture "mtp8" 512 in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let v = ctx.Round_ctx.order.(Array.length ctx.Round_ctx.order - 1) in
  let target = ctx.Round_ctx.order.(Array.length ctx.Round_ctx.order - 2) in
  let lac = Lac.make ~target (Lac.Wire v) ~area_gain:1.0 in
  let s = Estimator.candidate_signature est lac in
  check "wire signature" true (Bitvec.equal s ctx.Round_ctx.sigs.(v))

(* The central estimator property: for a single LAC, the exact-on-samples
   ΔE equals the measured error change of actually applying the LAC. *)
let delta_matches_actual name metric samples =
  let net, patterns, ctx, golden = fixture name samples in
  let est = Estimator.create ctx ~golden ~metric in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let scored = Estimator.score est ~shortlist:60 cands in
  List.iter
    (fun lac ->
      let copy = Network.copy net in
      Lac.apply copy lac;
      let actual = Evaluate.actual_error copy patterns ~golden metric in
      let expected = Estimator.base_error est +. lac.Lac.delta_error in
      if abs_float (actual -. expected) > 1e-9 then
        Alcotest.failf "ΔE mismatch for %s: estimated %.6f actual %.6f"
          (Lac.describe lac) expected actual)
    scored

let test_delta_exact_er () = delta_matches_actual "mtp8" Metric.Error_rate 512
let test_delta_exact_nmed () = delta_matches_actual "mtp8" Metric.Nmed 512
let test_delta_exact_mred () = delta_matches_actual "mtp8" Metric.Mred 512
let test_delta_exact_alu () = delta_matches_actual "alu4" Metric.Error_rate 512

let test_score_sorted () =
  let _, _, ctx, golden = fixture "wal8" 512 in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let scored = Estimator.score est ~shortlist:80 cands in
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      a.Lac.delta_error <= b.Lac.delta_error && ascending rest
    | _ -> true
  in
  check "sorted ascending" true (ascending scored);
  check "all scored" true
    (List.for_all (fun l -> not (Float.is_nan l.Lac.delta_error)) scored)

let test_evaluations_counted () =
  let _, _, ctx, golden = fixture "alu4" 512 in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let _ = Estimator.score est ~shortlist:30 cands in
  check "evaluations recorded" true (Estimator.evaluations est > 0);
  check "bounded by shortlist" true (Estimator.evaluations est <= 30)

let test_estimator_does_not_corrupt_state () =
  (* Repeated exact_delta calls on the same estimator must agree. *)
  let _, _, ctx, golden = fixture "alu4" 512 in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  match cands with
  | first :: second :: _ ->
    let d1 = Estimator.exact_delta est first in
    let _ = Estimator.exact_delta est second in
    let d1' = Estimator.exact_delta est first in
    checkf "repeatable" d1 d1'
  | _ -> Alcotest.fail "expected candidates"

(* Criticality sanity: a PO driver is fully critical; masks are subsets of
   the full pattern set. *)
let test_criticality_po_full () =
  let net, patterns, ctx, _ = fixture "c880" 512 in
  let crit = Criticality.masks ctx in
  Array.iter
    (fun id ->
      Alcotest.(check int)
        "po fully critical" patterns.Sim.count
        (Bitvec.popcount crit.(id)))
    (Network.outputs net)

let test_criticality_buffer_transparent () =
  (* x -> not -> out: the input of the chain is critical everywhere. *)
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let x = Network.add_node t Gate.Not [| a |] in
  let y = Network.add_node t Gate.Not [| x |] in
  Network.set_outputs t [| ("y", y) |];
  let patterns = Sim.exhaustive 1 in
  let ctx = Round_ctx.create t patterns in
  let crit = Criticality.masks ctx in
  Alcotest.(check int) "chain critical" 2 (Bitvec.popcount crit.(x))

let test_criticality_and_gating () =
  (* out = a AND b: a is critical exactly where b = 1. *)
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let o = Network.add_node t Gate.And [| a; b |] in
  Network.set_outputs t [| ("o", o) |];
  let patterns = Sim.exhaustive 2 in
  let ctx = Round_ctx.create t patterns in
  let crit = Criticality.masks ctx in
  check "a critical iff b" true (Bitvec.equal crit.(a) ctx.Round_ctx.sigs.(b))

let test_criticality_mux_select () =
  (* out = sel ? a : b — a is critical where sel=1, b where sel=0. *)
  let t = Network.create () in
  let sel = Network.add_input t "sel" in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let o = Network.add_node t Gate.Mux [| sel; a; b |] in
  Network.set_outputs t [| ("o", o) |];
  let ctx = Round_ctx.create t (Sim.exhaustive 3) in
  let crit = Criticality.masks ctx in
  check "a critical on sel" true (Bitvec.equal crit.(a) ctx.Round_ctx.sigs.(sel));
  check "b critical on ~sel" true
    (Bitvec.equal crit.(b) (Bitvec.lognot ctx.Round_ctx.sigs.(sel)))

let test_actual_error_identity () =
  let net, patterns, _, golden = fixture "cla32" 256 in
  checkf "self error zero" 0.0
    (Evaluate.actual_error net patterns ~golden Metric.Error_rate)

let test_actual_error_detects_change () =
  let net, patterns, _, golden = fixture "cla32" 256 in
  let copy = Network.copy net in
  let out0 = (Network.outputs copy).(0) in
  Network.replace copy out0 (Gate.Const true) [||];
  check "error detected" true
    (Evaluate.actual_error copy patterns ~golden Metric.Error_rate > 0.0)

let suite =
  [
    ( "estimator",
      [
        Alcotest.test_case "base error zero" `Quick test_base_error_zero;
        Alcotest.test_case "wire candidate signature" `Quick test_candidate_signature_wire;
        Alcotest.test_case "ΔE exact under ER" `Quick test_delta_exact_er;
        Alcotest.test_case "ΔE exact under NMED" `Quick test_delta_exact_nmed;
        Alcotest.test_case "ΔE exact under MRED" `Quick test_delta_exact_mred;
        Alcotest.test_case "ΔE exact on alu4" `Quick test_delta_exact_alu;
        Alcotest.test_case "score sorted and complete" `Quick test_score_sorted;
        Alcotest.test_case "evaluation accounting" `Quick test_evaluations_counted;
        Alcotest.test_case "scratch state clean" `Quick test_estimator_does_not_corrupt_state;
      ] );
    ( "criticality",
      [
        Alcotest.test_case "PO fully critical" `Quick test_criticality_po_full;
        Alcotest.test_case "inverter chain transparent" `Quick test_criticality_buffer_transparent;
        Alcotest.test_case "AND gating" `Quick test_criticality_and_gating;
        Alcotest.test_case "MUX select" `Quick test_criticality_mux_select;
      ] );
    ( "evaluate",
      [
        Alcotest.test_case "identity" `Quick test_actual_error_identity;
        Alcotest.test_case "detects change" `Quick test_actual_error_detects_change;
      ] );
  ]
