(* Tests for the extension features: MED/WCE metrics, Gate3 and SOP LAC
   kinds, the approximate estimation mode, the ablation config switches,
   structural hashing, and the global SASIMI candidate search. *)

open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric
module Estimator = Accals_esterr.Estimator
module Evaluate = Accals_esterr.Evaluate
module Config = Accals.Config
module Engine = Accals.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- MED / WCE metric kinds --- *)

let sigs_of_values width values =
  let n = List.length values in
  let sigs = Array.init width (fun _ -> Bitvec.create n) in
  List.iteri
    (fun p v ->
      for b = 0 to width - 1 do
        if v lsr b land 1 = 1 then Bitvec.set sigs.(b) p true
      done)
    values;
  sigs

let test_med_kind () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  checkf "med via kind" 1.75 (Metric.measure Metric.Med ~golden ~approx);
  checkf "wce via kind" 4.0 (Metric.measure Metric.Wce ~golden ~approx)

let test_med_wce_prepared () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  List.iter
    (fun kind ->
      let prepared = Metric.prepare kind ~golden in
      checkf
        (Metric.kind_to_string kind)
        (Metric.measure kind ~golden ~approx)
        (Metric.measure_prepared prepared ~approx))
    [ Metric.Med; Metric.Wce; Metric.Nmed; Metric.Mred; Metric.Error_rate ]

let test_new_kind_strings () =
  check "med roundtrip" true (Metric.kind_of_string "MED" = Some Metric.Med);
  check "wce roundtrip" true (Metric.kind_of_string "wce" = Some Metric.Wce)

let test_engine_under_med () =
  let net = Accals_circuits.Bench_suite.load "rca32" in
  let r = Engine.run net ~metric:Metric.Med ~error_bound:1000.0 in
  check "bound respected" true (r.Engine.error <= 1000.0);
  check "area reduced" true (r.Engine.area_ratio < 1.0)

(* --- Gate3 and SOP LAC kinds --- *)

let fixture =
  lazy
    (let net = Accals_circuits.Bench_suite.load "mtp8" in
     let patterns = Sim.for_network ~seed:1 ~count:1024 ~exhaustive_limit:10 net in
     let ctx = Round_ctx.create net patterns in
     (net, patterns, ctx))

let test_gate3_definition () =
  let l = Lac.make ~target:9 (Lac.Gate3 (Gate.Mux, 1, 2, 3)) ~area_gain:1.0 in
  check "mux3 def" true (Lac.new_definition l = (Gate.Mux, [| 1; 2; 3 |]));
  Alcotest.(check (list int)) "sns" [ 1; 2; 3 ] (Lac.substitute_nodes l)

let test_candidates_include_new_kinds () =
  (* c880 has positive-gain 3-input resubstitutions; mtp8 (very shared after
     strash) has SOP rewrites. *)
  let c880 = Accals_circuits.Bench_suite.load "c880" in
  let patterns = Sim.for_network ~seed:1 ~count:1024 ~exhaustive_limit:10 c880 in
  let ctx880 = Round_ctx.create c880 patterns in
  let cands880 = Candidate_gen.generate ctx880 Candidate_gen.default_config in
  let has cands pred = List.exists (fun l -> pred l.Lac.kind) cands in
  check "has gate3" true
    (has cands880 (function Lac.Gate3 _ -> true | Lac.Const0 | Lac.Const1
        | Lac.Wire _ | Lac.Inv_wire _ | Lac.Gate2 _ | Lac.Sop _ -> false));
  let _, _, ctx = Lazy.force fixture in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  check "has sop" true
    (has cands (function Lac.Sop _ -> true | Lac.Const0 | Lac.Const1
        | Lac.Wire _ | Lac.Inv_wire _ | Lac.Gate2 _ | Lac.Gate3 _ -> false))

let test_sop_disabled_by_config () =
  let _, _, ctx = Lazy.force fixture in
  let config =
    { Candidate_gen.default_config with
      Candidate_gen.sops_per_target = 0; triples_per_target = 0 }
  in
  let cands = Candidate_gen.generate ctx config in
  check "no sop/gate3" true
    (List.for_all
       (fun l ->
         match l.Lac.kind with
         | Lac.Sop _ | Lac.Gate3 _ -> false
         | Lac.Const0 | Lac.Const1 | Lac.Wire _ | Lac.Inv_wire _ | Lac.Gate2 _ -> true)
       cands)

let test_delta_exact_includes_sop_and_gate3 () =
  (* The central exactness property must hold for the new kinds too. *)
  let net, patterns, ctx = Lazy.force fixture in
  let golden = Round_ctx.output_sigs ctx in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let interesting =
    List.filter
      (fun l ->
        match l.Lac.kind with
        | Lac.Sop _ | Lac.Gate3 _ -> true
        | Lac.Const0 | Lac.Const1 | Lac.Wire _ | Lac.Inv_wire _ | Lac.Gate2 _ -> false)
      cands
  in
  check "enough new-kind candidates" true (List.length interesting > 10);
  let rec take n = function
    | [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r
  in
  List.iter
    (fun lac ->
      let delta = Estimator.exact_delta est lac in
      let copy = Network.copy net in
      match Lac.apply copy lac with
      | exception Network.Cycle _ -> ()
      | () ->
        let actual = Evaluate.actual_error copy patterns ~golden Metric.Error_rate in
        if abs_float (actual -. delta) > 1e-9 then
          Alcotest.failf "ΔE mismatch for %s: est %.6f actual %.6f"
            (Lac.describe lac) delta actual)
    (take 40 interesting)

let test_sop_conflicts_via_leaves () =
  let sop =
    Lac.make ~target:9
      (Lac.Sop { Lac.leaves = [| 4; 5 |]; cubes = [ { Accals_twolevel.Qm.mask = 3; value = 3 } ] })
      ~area_gain:1.0
  in
  let other = Lac.make ~target:5 (Lac.Wire 2) ~area_gain:1.0 in
  check "leaf is other's target" true (Lac.conflicts sop other)

(* --- approximate estimation mode --- *)

let test_approximate_mode_scores () =
  let _, _, ctx = Lazy.force fixture in
  let golden = Round_ctx.output_sigs ctx in
  let est = Estimator.create ctx ~golden ~metric:Metric.Error_rate in
  let cands = Candidate_gen.generate ctx Candidate_gen.default_config in
  let scored = Estimator.score ~mode:Estimator.Approximate est ~shortlist:50 cands in
  check "no exact evaluations" true (Estimator.evaluations est = 0);
  check "all scored" true
    (List.for_all (fun l -> not (Float.is_nan l.Lac.delta_error)) scored)

let test_engine_with_approx_estimation () =
  let net = Accals_circuits.Bench_suite.load "alu4" in
  let config =
    { (Config.for_network net) with Config.exact_estimation = false }
  in
  let r = Engine.run ~config net ~metric:Metric.Error_rate ~error_bound:0.03 in
  (* The engine measures actual errors each round, so the bound holds even
     with sloppy estimation. *)
  check "bound respected" true (r.Engine.error <= 0.03);
  Network.validate r.Engine.approximate

(* --- ablation switches --- *)

let test_ablation_switches_run () =
  let net = Accals_circuits.Bench_suite.load "alu4" in
  List.iter
    (fun tweak ->
      let config = tweak (Config.for_network net) in
      let r = Engine.run ~config net ~metric:Metric.Error_rate ~error_bound:0.03 in
      check "bound" true (r.Engine.error <= 0.03);
      check "not larger" true (r.Engine.area_ratio <= 1.0 +. 1e-9))
    [
      (fun c -> { c with Config.use_mis = false });
      (fun c -> { c with Config.use_random_comparison = false });
      (fun c -> { c with Config.use_improvement_1 = false });
      (fun c -> { c with Config.use_improvement_2 = false });
    ]

let test_no_random_comparison_always_indp () =
  let net = Accals_circuits.Bench_suite.load "mtp8" in
  let config =
    { (Config.for_network net) with Config.use_random_comparison = false }
  in
  let r = Engine.run ~config net ~metric:Metric.Error_rate ~error_bound:0.03 in
  check "rand sets empty" true
    (List.for_all (fun round -> round.Accals.Trace.rand_count = 0) r.Engine.rounds)

(* --- strash --- *)

let test_strash_merges_duplicates () =
  let t = Network.create () in
  let a = Network.add_input t "a" in
  let b = Network.add_input t "b" in
  let x1 = Network.add_node t Gate.And [| a; b |] in
  let x2 = Network.add_node t Gate.And [| b; a |] in
  (* commutative duplicate *)
  let y = Network.add_node t Gate.Xor [| x1; x2 |] in
  Network.set_outputs t [| ("y", y) |];
  Cleanup.strash t;
  Cleanup.sweep t;
  (* x1 xor x2 = 0 after merging. *)
  check "const after merge" true
    (match Network.op t (Network.outputs t).(0) with
     | Gate.Const false -> true
     | Gate.Const true | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or
     | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux -> false)

let test_strash_preserves_function () =
  let rng = Accals_bitvec.Prng.create 77 in
  for seed = 1 to 20 do
    let t =
      Accals_circuits.Random_logic.make ~name:"s" ~inputs:6 ~outputs:4 ~gates:50
        ~seed
    in
    let t' = Network.copy t in
    Cleanup.strash t';
    Cleanup.sweep t';
    for _ = 1 to 30 do
      let v = Array.init 6 (fun _ -> Accals_bitvec.Prng.bool rng) in
      Alcotest.(check (array bool)) "same" (Network.eval t v) (Network.eval t' v)
    done
  done

let test_strash_reduces_multiplier () =
  let raw = Accals_circuits.Multipliers.array_multiplier ~width:6 in
  let before = Cost.area raw in
  Cleanup.sweep raw;
  Cleanup.strash raw;
  Cleanup.sweep raw;
  check "area reduced" true (Cost.area raw < before)

(* --- global similarity wires --- *)

let test_global_wires_disabled () =
  (* With global_wires = 0 the candidate set is no larger. *)
  let _, _, ctx = Lazy.force fixture in
  let base = Candidate_gen.default_config in
  let without = { base with Candidate_gen.global_wires = 0 } in
  let n_with = List.length (Candidate_gen.generate ctx base) in
  let n_without = List.length (Candidate_gen.generate ctx without) in
  check "global adds candidates" true (n_with >= n_without)

let suite =
  [
    ( "metric extensions",
      [
        Alcotest.test_case "MED and WCE kinds" `Quick test_med_kind;
        Alcotest.test_case "prepared matches direct" `Quick test_med_wce_prepared;
        Alcotest.test_case "kind strings" `Quick test_new_kind_strings;
        Alcotest.test_case "engine under MED" `Quick test_engine_under_med;
      ] );
    ( "lac extensions",
      [
        Alcotest.test_case "gate3 definition" `Quick test_gate3_definition;
        Alcotest.test_case "candidates include new kinds" `Quick
          test_candidates_include_new_kinds;
        Alcotest.test_case "sop disabled by config" `Quick test_sop_disabled_by_config;
        Alcotest.test_case "ΔE exact for new kinds" `Quick
          test_delta_exact_includes_sop_and_gate3;
        Alcotest.test_case "sop conflicts via leaves" `Quick test_sop_conflicts_via_leaves;
      ] );
    ( "estimation modes",
      [
        Alcotest.test_case "approximate mode scores" `Quick test_approximate_mode_scores;
        Alcotest.test_case "engine with approx estimation" `Quick
          test_engine_with_approx_estimation;
      ] );
    ( "ablation switches",
      [
        Alcotest.test_case "all variants run" `Quick test_ablation_switches_run;
        Alcotest.test_case "no-random means no L_rand" `Quick
          test_no_random_comparison_always_indp;
      ] );
    ( "strash",
      [
        Alcotest.test_case "merges commutative duplicates" `Quick
          test_strash_merges_duplicates;
        Alcotest.test_case "preserves functions" `Quick test_strash_preserves_function;
        Alcotest.test_case "reduces multiplier" `Quick test_strash_reduces_multiplier;
      ] );
    ( "global wires",
      [ Alcotest.test_case "toggle" `Quick test_global_wires_disabled ] );
  ]
