(* Shared helpers for the test suites. *)
open Accals_network

let bits_of_int v w = Array.init w (fun i -> v lsr i land 1 = 1)

let int_of_bits bits =
  Array.fold_left
    (fun (acc, i) b -> ((acc lor (if b then 1 lsl i else 0)), i + 1))
    (0, 0) bits
  |> fst

(* Evaluate a network with input values given by name. *)
let eval_named net env =
  let values =
    Array.map
      (fun nm ->
        match List.assoc_opt nm env with
        | Some b -> b
        | None -> false)
      (Network.input_names net)
  in
  Network.eval net values

(* Environment binding bus [name]0..[name]{w-1} to the bits of [v]. *)
let bus_env name v w =
  List.init w (fun i -> (Printf.sprintf "%s%d" name i, v lsr i land 1 = 1))

let out_int ?(prefix = "") net outs =
  (* Integer value of outputs whose name starts with [prefix], ordered by
     their numeric suffix. *)
  let names = Network.output_names net in
  let indexed = ref [] in
  Array.iteri
    (fun i nm ->
      if prefix = "" || (String.length nm > String.length prefix
                         && String.sub nm 0 (String.length prefix) = prefix)
      then
        let suffix = String.sub nm (String.length prefix)
                       (String.length nm - String.length prefix) in
        match int_of_string_opt suffix with
        | Some k -> indexed := (k, outs.(i)) :: !indexed
        | None -> ())
    names;
  List.fold_left
    (fun acc (k, b) -> if b then acc lor (1 lsl k) else acc)
    0 !indexed

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
