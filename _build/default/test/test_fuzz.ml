(* Stress test of the whole substrate stack: random mutation sequences
   through the public API must keep the network valid, and the optimization
   passes must preserve functions through arbitrary intermediate shapes. *)

open Accals_network
open Accals_circuits
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)

(* Apply [steps] random function-changing replacements with the cycle guard,
   interleaved with cleanup passes; the network must stay structurally valid
   throughout. *)
let random_mutations rng net steps =
  let pick_live () =
    let live = Structure.live_set net in
    let ids = ref [] in
    for id = 0 to Network.num_nodes net - 1 do
      if live.(id) && not (Network.is_input net id) then ids := id :: !ids
    done;
    match !ids with
    | [] -> None
    | ids ->
      let arr = Array.of_list ids in
      Some arr.(Prng.int rng (Array.length arr))
  in
  for step = 1 to steps do
    (match pick_live () with
     | None -> ()
     | Some target -> (
       let any_node () = Prng.int rng (Network.num_nodes net) in
       let attempt =
         match Prng.int rng 5 with
         | 0 -> (Gate.Const (Prng.bool rng), [||])
         | 1 -> (Gate.Buf, [| any_node () |])
         | 2 -> (Gate.Not, [| any_node () |])
         | 3 -> (Gate.And, [| any_node (); any_node () |])
         | _ -> (Gate.Xor, [| any_node (); any_node () |])
       in
       match Network.replace net target (fst attempt) (snd attempt) with
       | () -> ()
       | exception Network.Cycle _ -> ()
       | exception Invalid_argument _ -> ()));
    if step mod 7 = 0 then Cleanup.sweep net;
    if step mod 13 = 0 then Cleanup.strash net
  done;
  Network.validate net

let test_mutation_storm () =
  let rng = Prng.create 20260704 in
  for seed = 1 to 8 do
    let net =
      Random_logic.make ~name:"fuzz" ~inputs:6 ~outputs:4 ~gates:40 ~seed
    in
    random_mutations rng net 120;
    (* Still a sane circuit: simulate and compact it. *)
    let compacted = Cleanup.compact net in
    Network.validate compacted;
    for v = 0 to 63 do
      let ins = Test_util.bits_of_int v 6 in
      Alcotest.(check (array bool)) "compact consistent"
        (Network.eval net ins) (Network.eval compacted ins)
    done
  done

(* Optimization pipeline stress: the full sweep/strash/refactor pipeline on
   arbitrary mutated circuits preserves functions. *)
let test_pipeline_after_mutation () =
  let rng = Prng.create 7 in
  for seed = 1 to 5 do
    let net =
      Random_logic.make ~name:"fuzz" ~inputs:6 ~outputs:3 ~gates:50 ~seed
    in
    random_mutations rng net 40;
    let frozen = Cleanup.compact net in
    let optimized = Network.copy frozen in
    Cleanup.sweep optimized;
    Cleanup.strash optimized;
    Cleanup.sweep optimized;
    ignore (Accals_twolevel.Refactor.run optimized);
    Cleanup.sweep optimized;
    Network.validate optimized;
    check "area not larger" true (Cost.area optimized <= Cost.area frozen +. 1e-6);
    for v = 0 to 63 do
      let ins = Test_util.bits_of_int v 6 in
      Alcotest.(check (array bool)) "pipeline preserves"
        (Network.eval frozen ins) (Network.eval optimized ins)
    done
  done

(* The engine itself on mutated inputs: report must be coherent. *)
let test_engine_on_mutated () =
  let rng = Prng.create 99 in
  for seed = 1 to 3 do
    let net =
      Random_logic.make ~name:"fuzz" ~inputs:7 ~outputs:4 ~gates:60 ~seed
    in
    random_mutations rng net 30;
    let net = Cleanup.compact net in
    if Cost.area net > 0.0 then begin
      let r =
        Accals.Engine.run net ~metric:Accals_metrics.Metric.Error_rate
          ~error_bound:0.03
      in
      check "bound" true (r.Accals.Engine.error <= 0.03);
      Network.validate r.Accals.Engine.approximate
    end
  done

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "mutation storm" `Quick test_mutation_storm;
        Alcotest.test_case "pipeline after mutation" `Quick test_pipeline_after_mutation;
        Alcotest.test_case "engine on mutated" `Quick test_engine_on_mutated;
      ] );
  ]
