module Bitvec = Accals_bitvec.Bitvec
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_zero () =
  let v = Bitvec.create 100 in
  check_int "length" 100 (Bitvec.length v);
  check_int "popcount" 0 (Bitvec.popcount v);
  check "is_zero" true (Bitvec.is_zero v)

let test_set_get () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0 true;
  Bitvec.set v 61 true;
  Bitvec.set v 62 true;
  Bitvec.set v 129 true;
  check "bit 0" true (Bitvec.get v 0);
  check "bit 1" false (Bitvec.get v 1);
  check "bit 61" true (Bitvec.get v 61);
  check "bit 62" true (Bitvec.get v 62);
  check "bit 129" true (Bitvec.get v 129);
  check_int "popcount" 4 (Bitvec.popcount v);
  Bitvec.set v 61 false;
  check "cleared" false (Bitvec.get v 61);
  check_int "popcount after clear" 3 (Bitvec.popcount v)

let test_fill () =
  let v = Bitvec.create 65 in
  Bitvec.fill v true;
  check_int "all ones" 65 (Bitvec.popcount v);
  Bitvec.fill v false;
  check_int "all zero" 0 (Bitvec.popcount v)

let test_fill_word_boundary () =
  let v = Bitvec.create 124 in
  (* exactly two words *)
  Bitvec.fill v true;
  check_int "all ones at boundary" 124 (Bitvec.popcount v)

let test_lognot_padding () =
  let v = Bitvec.create 70 in
  let n = Bitvec.lognot v in
  check_int "not of zero" 70 (Bitvec.popcount n);
  let nn = Bitvec.lognot n in
  check "double negation" true (Bitvec.is_zero nn)

let test_equal () =
  let a = Bitvec.create 90 and b = Bitvec.create 90 in
  Bitvec.set a 3 true;
  check "different" false (Bitvec.equal a b);
  Bitvec.set b 3 true;
  check "equal" true (Bitvec.equal a b)

let test_hamming () =
  let a = Bitvec.create 200 and b = Bitvec.create 200 in
  Bitvec.set a 0 true;
  Bitvec.set a 199 true;
  Bitvec.set b 199 true;
  Bitvec.set b 100 true;
  check_int "hamming" 2 (Bitvec.hamming a b)

let test_blit_copy () =
  let a = Bitvec.create 64 in
  Bitvec.set a 10 true;
  let b = Bitvec.copy a in
  check "copy equal" true (Bitvec.equal a b);
  Bitvec.set b 11 true;
  check "copy independent" false (Bitvec.equal a b);
  let c = Bitvec.create 64 in
  Bitvec.blit ~src:b ~dst:c;
  check "blit equal" true (Bitvec.equal b c)

let test_mux () =
  let n = 64 in
  let sel = Bitvec.create n and a = Bitvec.create n and b = Bitvec.create n in
  let dst = Bitvec.create n in
  Bitvec.set sel 1 true;
  Bitvec.fill a true;
  (* dst = sel ? a : b = sel *)
  Bitvec.mux_into ~sel a b ~dst;
  check "mux selects a" true (Bitvec.equal dst sel)

let test_iter_set () =
  let v = Bitvec.create 200 in
  let expected = [ 0; 5; 61; 62; 63; 124; 199 ] in
  List.iter (fun i -> Bitvec.set v i true) expected;
  let seen = ref [] in
  Bitvec.iter_set v (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter_set ascending" expected (List.rev !seen)

let test_bool_array_roundtrip () =
  let a = Array.init 77 (fun i -> i mod 3 = 0) in
  let v = Bitvec.of_bool_array a in
  Alcotest.(check (array bool)) "roundtrip" a (Bitvec.to_bool_array v)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.bits62 a) (Prng.bits62 b)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    check "in range" true (v >= 0 && v < 10)
  done

let test_prng_float_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* Property tests *)

let gen_bits = QCheck2.Gen.(list_size (int_range 1 300) bool)

let vec_of_list l = Bitvec.of_bool_array (Array.of_list l)

let prop_demorgan =
  Test_util.qcheck_case "demorgan" QCheck2.Gen.(pair gen_bits gen_bits)
    (fun (la, lb) ->
      let n = min (List.length la) (List.length lb) in
      let trim l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let a = Bitvec.of_bool_array (trim la) and b = Bitvec.of_bool_array (trim lb) in
      Bitvec.equal
        (Bitvec.lognot (Bitvec.logand a b))
        (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)))

let prop_xor_self =
  Test_util.qcheck_case "xor with self is zero" gen_bits (fun l ->
      let v = vec_of_list l in
      Bitvec.is_zero (Bitvec.logxor v v))

let prop_popcount_matches =
  Test_util.qcheck_case "popcount matches list count" gen_bits (fun l ->
      Bitvec.popcount (vec_of_list l) = List.length (List.filter (fun b -> b) l))

let prop_hamming_triangle =
  Test_util.qcheck_case "hamming = popcount of xor" QCheck2.Gen.(pair gen_bits gen_bits)
    (fun (la, lb) ->
      let n = min (List.length la) (List.length lb) in
      let trim l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let a = Bitvec.of_bool_array (trim la) and b = Bitvec.of_bool_array (trim lb) in
      Bitvec.hamming a b = Bitvec.popcount (Bitvec.logxor a b))

let prop_get_after_of_bool_array =
  Test_util.qcheck_case "get matches source list" gen_bits (fun l ->
      let v = vec_of_list l in
      List.for_all (fun i -> Bitvec.get v i = List.nth l i)
        (List.init (List.length l) (fun i -> i)))

let suite =
  [
    ( "bitvec",
      [
        Alcotest.test_case "create zero" `Quick test_create_zero;
        Alcotest.test_case "set/get across words" `Quick test_set_get;
        Alcotest.test_case "fill" `Quick test_fill;
        Alcotest.test_case "fill at word boundary" `Quick test_fill_word_boundary;
        Alcotest.test_case "lognot keeps padding zero" `Quick test_lognot_padding;
        Alcotest.test_case "equal" `Quick test_equal;
        Alcotest.test_case "hamming" `Quick test_hamming;
        Alcotest.test_case "blit and copy" `Quick test_blit_copy;
        Alcotest.test_case "mux" `Quick test_mux;
        Alcotest.test_case "iter_set" `Quick test_iter_set;
        Alcotest.test_case "bool array roundtrip" `Quick test_bool_array_roundtrip;
        prop_demorgan;
        prop_xor_self;
        prop_popcount_matches;
        prop_hamming_triangle;
        prop_get_after_of_bool_array;
      ] );
    ( "prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "int bounds" `Quick test_prng_bounds;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      ] );
  ]
