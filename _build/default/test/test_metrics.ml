module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric

let checkf = Alcotest.(check (float 1e-9))

(* Build output signatures from explicit per-pattern integer values. *)
let sigs_of_values width values =
  let n = List.length values in
  let sigs = Array.init width (fun _ -> Bitvec.create n) in
  List.iteri
    (fun p v ->
      for b = 0 to width - 1 do
        if v lsr b land 1 = 1 then Bitvec.set sigs.(b) p true
      done)
    values;
  sigs

let test_er_basic () =
  let golden = sigs_of_values 4 [ 1; 2; 3; 4 ] in
  let approx = sigs_of_values 4 [ 1; 2; 5; 4 ] in
  checkf "one of four wrong" 0.25 (Metric.error_rate ~golden ~approx)

let test_er_identical () =
  let golden = sigs_of_values 4 [ 7; 0; 15; 9 ] in
  checkf "identical" 0.0 (Metric.error_rate ~golden ~approx:golden)

let test_er_all_wrong () =
  let golden = sigs_of_values 2 [ 0; 0; 0; 0 ] in
  let approx = sigs_of_values 2 [ 1; 2; 3; 1 ] in
  checkf "all wrong" 1.0 (Metric.error_rate ~golden ~approx)

let test_med () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  (* distances 2,0,1,4 -> mean 1.75 *)
  checkf "med" 1.75 (Metric.med ~golden ~approx)

let test_nmed () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  checkf "nmed" (1.75 /. 15.0) (Metric.nmed ~golden ~approx)

let test_mred () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  (* relative: 2/10, 0/5, 1/max(1,0)=1, 4/8 -> mean (0.2+0+1+0.5)/4 *)
  checkf "mred" (1.7 /. 4.0) (Metric.mred ~golden ~approx)

let test_wce () =
  let golden = sigs_of_values 4 [ 10; 5; 0; 8 ] in
  let approx = sigs_of_values 4 [ 8; 5; 1; 12 ] in
  checkf "wce" 4.0 (Metric.worst_case_error ~golden ~approx)

let test_output_value () =
  let sigs = sigs_of_values 4 [ 13 ] in
  Alcotest.(check int) "value" 13 (Metric.output_value sigs ~pattern:0)

let test_kind_strings () =
  Alcotest.(check string) "er" "ER" (Metric.kind_to_string Metric.Error_rate);
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun k -> Metric.kind_of_string (Metric.kind_to_string k) = Some k)
       [ Metric.Error_rate; Metric.Nmed; Metric.Mred ]);
  Alcotest.(check bool) "unknown" true (Metric.kind_of_string "XYZ" = None)

let test_mismatch_rejected () =
  let golden = sigs_of_values 4 [ 1; 2 ] in
  let approx = sigs_of_values 3 [ 1; 2 ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Metric.error_rate ~golden ~approx); false
     with Invalid_argument _ -> true)

(* Properties *)

let gen_values = QCheck2.Gen.(pair (list_size (int_range 1 60) (int_range 0 255))
                                 (list_size (int_range 1 60) (int_range 0 255)))

let paired (la, lb) =
  let n = min (List.length la) (List.length lb) in
  let take l = List.filteri (fun i _ -> i < n) l in
  (take la, take lb)

let prop_er_bounds =
  Test_util.qcheck_case "ER in [0,1]" gen_values (fun pair ->
      let la, lb = paired pair in
      let g = sigs_of_values 8 la and a = sigs_of_values 8 lb in
      let er = Metric.error_rate ~golden:g ~approx:a in
      er >= 0.0 && er <= 1.0)

let prop_zero_iff_equal =
  Test_util.qcheck_case "metrics zero on identical" QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 255))
    (fun l ->
      let g = sigs_of_values 8 l in
      Metric.error_rate ~golden:g ~approx:g = 0.0
      && Metric.nmed ~golden:g ~approx:g = 0.0
      && Metric.mred ~golden:g ~approx:g = 0.0)

let prop_nmed_le_one =
  Test_util.qcheck_case "NMED in [0,1]" gen_values (fun pair ->
      let la, lb = paired pair in
      let g = sigs_of_values 8 la and a = sigs_of_values 8 lb in
      let v = Metric.nmed ~golden:g ~approx:a in
      v >= 0.0 && v <= 1.0)

let prop_er_symmetric =
  Test_util.qcheck_case "ER symmetric" gen_values (fun pair ->
      let la, lb = paired pair in
      let g = sigs_of_values 8 la and a = sigs_of_values 8 lb in
      Metric.error_rate ~golden:g ~approx:a = Metric.error_rate ~golden:a ~approx:g)

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "ER basic" `Quick test_er_basic;
        Alcotest.test_case "ER identical" `Quick test_er_identical;
        Alcotest.test_case "ER all wrong" `Quick test_er_all_wrong;
        Alcotest.test_case "MED" `Quick test_med;
        Alcotest.test_case "NMED" `Quick test_nmed;
        Alcotest.test_case "MRED" `Quick test_mred;
        Alcotest.test_case "worst-case error" `Quick test_wce;
        Alcotest.test_case "output value" `Quick test_output_value;
        Alcotest.test_case "kind strings" `Quick test_kind_strings;
        Alcotest.test_case "mismatch rejected" `Quick test_mismatch_rejected;
        prop_er_bounds;
        prop_zero_iff_equal;
        prop_nmed_le_one;
        prop_er_symmetric;
      ] );
  ]
