open Accals_network
module Exhaustive = Accals_analysis.Exhaustive
module Confidence = Accals_analysis.Confidence
module Metric = Accals_metrics.Metric
module Engine = Accals.Engine
module Pareto = Accals.Pareto

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_identical_networks () =
  let net = Accals_circuits.Adders.ripple_carry ~width:4 in
  let r = Exhaustive.compare_networks ~golden:net ~approx:(Network.copy net) in
  checkf "er" 0.0 r.Exhaustive.error_rate;
  checkf "med" 0.0 r.Exhaustive.mean_error_distance;
  checkf "wce" 0.0 r.Exhaustive.worst_case_error;
  Alcotest.(check int) "vectors" (1 lsl 9) r.Exhaustive.vectors

let test_known_error () =
  (* Flip the LSB output: every vector wrong, distance always 1. *)
  let golden = Accals_circuits.Adders.ripple_carry ~width:3 in
  let approx = Network.copy golden in
  let s0 = (Network.outputs approx).(0) in
  let replacement = Network.add_node approx Gate.Not [| s0 |] in
  let outs =
    Array.mapi
      (fun i id -> ((Network.output_names approx).(i), if i = 0 then replacement else id))
      (Network.outputs approx)
  in
  Network.set_outputs approx outs;
  let r = Exhaustive.compare_networks ~golden ~approx in
  checkf "er all wrong" 1.0 r.Exhaustive.error_rate;
  checkf "med is 1" 1.0 r.Exhaustive.mean_error_distance;
  checkf "wce is 1" 1.0 r.Exhaustive.worst_case_error

let test_chunking_crosses_boundaries () =
  (* 15 inputs forces multiple chunks (chunk = 2^13). *)
  let golden = Accals_circuits.Adders.ripple_carry ~width:7 in
  let approx = Network.copy golden in
  let r = Exhaustive.compare_networks ~golden ~approx in
  Alcotest.(check int) "vectors" (1 lsl 15) r.Exhaustive.vectors;
  checkf "still equal" 0.0 r.Exhaustive.error_rate

let test_exhaustive_matches_sampled_estimate () =
  (* The engine's sampled error and the exhaustive error agree when the
     pattern set itself is exhaustive. *)
  let net = Accals_circuits.Multipliers.array_multiplier ~width:4 in
  let report = Engine.run net ~metric:Metric.Error_rate ~error_bound:0.03 in
  let r =
    Exhaustive.compare_networks ~golden:net ~approx:report.Engine.approximate
  in
  checkf "sampled = exhaustive (8 PIs)" report.Engine.error r.Exhaustive.error_rate

let test_interface_mismatch () =
  let a = Accals_circuits.Adders.ripple_carry ~width:3 in
  let b = Accals_circuits.Adders.ripple_carry ~width:4 in
  check "rejected" true
    (try ignore (Exhaustive.compare_networks ~golden:a ~approx:b); false
     with Invalid_argument _ -> true)

let test_value_dispatch () =
  let net = Accals_circuits.Adders.ripple_carry ~width:3 in
  let r = Exhaustive.compare_networks ~golden:net ~approx:(Network.copy net) in
  List.iter
    (fun kind -> checkf (Metric.kind_to_string kind) 0.0 (Exhaustive.value r kind))
    [ Metric.Error_rate; Metric.Med; Metric.Nmed; Metric.Mred; Metric.Wce ]

(* Confidence *)

let test_wilson_basic () =
  let low, high = Confidence.wilson_interval ~errors:0 ~samples:1000 ~confidence:0.95 in
  checkf "zero errors low" 0.0 low;
  check "zero errors high small" true (high < 0.01);
  let low, high = Confidence.wilson_interval ~errors:500 ~samples:1000 ~confidence:0.95 in
  check "centered" true (low < 0.5 && 0.5 < high);
  check "tight" true (high -. low < 0.07)

let test_wilson_monotone_in_samples () =
  let _, h1 = Confidence.wilson_interval ~errors:10 ~samples:100 ~confidence:0.95 in
  let _, h2 = Confidence.wilson_interval ~errors:100 ~samples:1000 ~confidence:0.95 in
  check "more samples, tighter" true (h2 < h1)

let test_wilson_bounds () =
  List.iter
    (fun (errors, samples) ->
      let low, high =
        Confidence.wilson_interval ~errors ~samples ~confidence:0.99
      in
      check "ordered" true (0.0 <= low && low <= high && high <= 1.0))
    [ (0, 10); (10, 10); (3, 17); (1, 2048) ]

let test_samples_for_resolution () =
  let n = Confidence.samples_for_resolution ~error_rate:0.001 ~confidence:0.95 in
  (* Around 3/e ~ 3000. *)
  check "ballpark" true (n > 2000 && n < 4000);
  (* Sanity: detecting 0.03% ER needs ~10k samples - the quantization note
     in EXPERIMENTS.md. *)
  let n2 = Confidence.samples_for_resolution ~error_rate:0.0003 ~confidence:0.95 in
  check "small rates need many samples" true (n2 > 9000)

(* Pareto *)

let test_pareto_sweep_monotone () =
  let net = Accals_circuits.Bench_suite.load "mtp8" in
  let results =
    Pareto.sweep net ~metric:Metric.Error_rate ~bounds:[ 0.001; 0.01; 0.05 ]
  in
  Alcotest.(check int) "three points" 3 (List.length results);
  List.iter
    (fun (bound, r) -> check "bound respected" true (r.Engine.error <= bound))
    results;
  let areas = List.map (fun (_, r) -> r.Engine.area_ratio) results in
  match areas with
  | [ a1; _; a3 ] -> check "looser bound helps" true (a3 <= a1 +. 1e-9)
  | _ -> Alcotest.fail "expected three"

let test_frontier () =
  let pts = [ (0.1, 0.5); (0.05, 0.9); (0.2, 0.4); (0.15, 0.6); (0.0, 1.0) ] in
  let f = Pareto.frontier pts in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "non-dominated, sorted"
    [ (0.0, 1.0); (0.05, 0.9); (0.1, 0.5); (0.2, 0.4) ]
    f

let test_frontier_empty () =
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "empty" [] (Pareto.frontier [])

let suite =
  [
    ( "exhaustive",
      [
        Alcotest.test_case "identical networks" `Quick test_identical_networks;
        Alcotest.test_case "known error" `Quick test_known_error;
        Alcotest.test_case "chunk boundaries" `Quick test_chunking_crosses_boundaries;
        Alcotest.test_case "matches sampled on 8 PIs" `Quick
          test_exhaustive_matches_sampled_estimate;
        Alcotest.test_case "interface mismatch" `Quick test_interface_mismatch;
        Alcotest.test_case "value dispatch" `Quick test_value_dispatch;
      ] );
    ( "confidence",
      [
        Alcotest.test_case "wilson basics" `Quick test_wilson_basic;
        Alcotest.test_case "monotone in samples" `Quick test_wilson_monotone_in_samples;
        Alcotest.test_case "interval bounds" `Quick test_wilson_bounds;
        Alcotest.test_case "samples for resolution" `Quick test_samples_for_resolution;
      ] );
    ( "pareto",
      [
        Alcotest.test_case "sweep monotone" `Quick test_pareto_sweep_monotone;
        Alcotest.test_case "frontier" `Quick test_frontier;
        Alcotest.test_case "frontier empty" `Quick test_frontier_empty;
      ] );
  ]
