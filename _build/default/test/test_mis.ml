module Graph = Accals_mis.Graph
module Mis = Accals_mis.Mis
module Prng = Accals_bitvec.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let path n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  g

let cycle n =
  let g = path n in
  Graph.add_edge g (n - 1) 0;
  g

let complete n =
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Graph.add_edge g i j
    done
  done;
  g

let test_graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 1;
  (* duplicate ignored *)
  Graph.add_edge g 2 2;
  (* self-loop ignored *)
  check_int "edges" 1 (Graph.edge_count g);
  check "connected" true (Graph.connected g 0 1);
  check "symmetric" true (Graph.connected g 1 0);
  check_int "degree" 1 (Graph.degree g 0);
  check "independent" true (Graph.is_independent g [ 1; 2; 3 ]);
  check "dependent" false (Graph.is_independent g [ 0; 1 ])

let test_exact_path () =
  (* MIS of a path of n vertices has size ceil(n/2). *)
  List.iter
    (fun n ->
      let s = Mis.solve_exact (path n) in
      check_int (Printf.sprintf "path %d" n) ((n + 1) / 2) (List.length s);
      check "independent" true (Graph.is_independent (path n) s))
    [ 1; 2; 3; 5; 8; 12 ]

let test_exact_cycle () =
  (* MIS of a cycle of n has size floor(n/2). *)
  List.iter
    (fun n ->
      let s = Mis.solve_exact (cycle n) in
      check_int (Printf.sprintf "cycle %d" n) (n / 2) (List.length s))
    [ 3; 4; 7; 10 ]

let test_exact_complete () =
  let s = Mis.solve_exact (complete 8) in
  check_int "complete graph" 1 (List.length s)

let test_exact_empty_graph () =
  let g = Graph.create 9 in
  check_int "no edges: everything" 9 (List.length (Mis.solve_exact g))

let test_greedy_independent () =
  let g = cycle 30 in
  let s = Mis.greedy g in
  check "greedy independent" true (Graph.is_independent g s)

let test_solve_matches_exact_on_small () =
  (* On random small graphs, solve (exact branch) equals optimum. *)
  let rng = Prng.create 17 in
  for _ = 1 to 30 do
    let n = 6 + Prng.int rng 12 in
    let g = Graph.create n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Prng.float rng < 0.25 then Graph.add_edge g i j
      done
    done;
    let s = Mis.solve g in
    check "independent" true (Graph.is_independent g s);
    check_int "optimal" (List.length (Mis.solve_exact g)) (List.length s)
  done

let test_heuristic_near_optimal_random () =
  (* Larger random graphs: heuristic within 15% of exact (computed on up to
     24 vertices to keep B&B cheap). *)
  let rng = Prng.create 23 in
  for _ = 1 to 10 do
    let n = 24 in
    let g = Graph.create n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Prng.float rng < 0.2 then Graph.add_edge g i j
      done
    done;
    let exact = List.length (Mis.solve_exact g) in
    (* Force the heuristic path by calling greedy+improve via solve on a
       padded graph? Instead call greedy directly and require ratio. *)
    let heur = List.length (Mis.greedy g) in
    check "greedy within 25%" true (float_of_int heur >= 0.75 *. float_of_int exact)
  done

let test_solve_large_path () =
  let n = 200 in
  let g = path n in
  let s = Mis.solve g in
  check "independent" true (Graph.is_independent g s);
  (* local search should recover the optimum on a path *)
  check "near optimal" true (List.length s >= (n / 2) - 4)

let test_solve_deterministic () =
  let g = cycle 101 in
  let a = Mis.solve ~seed:9 g in
  let b = Mis.solve ~seed:9 g in
  check "deterministic" true (a = b)

let suite =
  [
    ( "mis",
      [
        Alcotest.test_case "graph basics" `Quick test_graph_basics;
        Alcotest.test_case "exact on paths" `Quick test_exact_path;
        Alcotest.test_case "exact on cycles" `Quick test_exact_cycle;
        Alcotest.test_case "exact on complete" `Quick test_exact_complete;
        Alcotest.test_case "exact on edgeless" `Quick test_exact_empty_graph;
        Alcotest.test_case "greedy independent" `Quick test_greedy_independent;
        Alcotest.test_case "solve optimal on small" `Quick test_solve_matches_exact_on_small;
        Alcotest.test_case "greedy near optimal" `Quick test_heuristic_near_optimal_random;
        Alcotest.test_case "solve large path" `Quick test_solve_large_path;
        Alcotest.test_case "deterministic" `Quick test_solve_deterministic;
      ] );
  ]
