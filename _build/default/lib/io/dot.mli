(** Graphviz DOT export for debugging and documentation. *)

open Accals_network

val to_string : ?highlight:int list -> Network.t -> string
(** [highlight] nodes are drawn filled (e.g. LAC targets). *)

val write_file : ?highlight:int list -> Network.t -> string -> unit
