lib/io/dot.ml: Accals_network Array Buffer Gate Hashtbl List Network Printf Structure
