lib/io/blif.mli: Accals_network Network
