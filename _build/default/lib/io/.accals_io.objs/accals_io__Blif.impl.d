lib/io/blif.ml: Accals_network Array Buffer Gate Hashtbl List Network Printf String Structure
