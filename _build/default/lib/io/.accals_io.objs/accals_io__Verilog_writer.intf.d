lib/io/verilog_writer.mli: Accals_network Network
