lib/io/dot.mli: Accals_network Network
