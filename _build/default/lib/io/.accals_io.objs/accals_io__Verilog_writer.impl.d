lib/io/verilog_writer.ml: Accals_network Array Buffer Gate Network Printf String Structure
