(** Structural Verilog netlist writer (assign-style, combinational only). *)

open Accals_network

val to_string : Network.t -> string

val write_file : Network.t -> string -> unit
