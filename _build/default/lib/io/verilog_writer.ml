open Accals_network

let sanitize nm =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    nm

let to_string t =
  let buf = Buffer.create 4096 in
  let live = Structure.live_set t in
  let node_name = Array.make (Network.num_nodes t) "" in
  Array.iteri
    (fun i id -> node_name.(id) <- sanitize (Network.input_names t).(i))
    (Network.inputs t);
  for id = 0 to Network.num_nodes t - 1 do
    if node_name.(id) = "" then node_name.(id) <- Printf.sprintf "n%d" id
  done;
  let in_names = Array.map sanitize (Network.input_names t) in
  let out_names = Array.map sanitize (Network.output_names t) in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" (sanitize (Network.name t)));
  let ports = Array.to_list in_names @ Array.to_list out_names in
  Buffer.add_string buf ("  " ^ String.concat ", " ports ^ "\n);\n");
  Array.iter (fun nm -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" nm)) in_names;
  Array.iter (fun nm -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" nm)) out_names;
  let order = Structure.topo_order t in
  Array.iter
    (fun id ->
      if live.(id) && not (Network.is_input t id) then
        Buffer.add_string buf (Printf.sprintf "  wire %s;\n" node_name.(id)))
    order;
  let expr id =
    let fis = Network.fanins t id in
    let f i = node_name.(fis.(i)) in
    let joined sep =
      String.concat sep (Array.to_list (Array.map (fun x -> node_name.(x)) fis))
    in
    match Network.op t id with
    | Gate.Const false -> "1'b0"
    | Gate.Const true -> "1'b1"
    | Gate.Input -> node_name.(id)
    | Gate.Buf -> f 0
    | Gate.Not -> "~" ^ f 0
    | Gate.And -> joined " & "
    | Gate.Or -> joined " | "
    | Gate.Xor -> joined " ^ "
    | Gate.Nand -> "~(" ^ joined " & " ^ ")"
    | Gate.Nor -> "~(" ^ joined " | " ^ ")"
    | Gate.Xnor -> "~(" ^ joined " ^ " ^ ")"
    | Gate.Mux -> Printf.sprintf "%s ? %s : %s" (f 0) (f 1) (f 2)
  in
  Array.iter
    (fun id ->
      if live.(id) && not (Network.is_input t id) then
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s;\n" node_name.(id) (expr id)))
    order;
  Array.iteri
    (fun i id ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" out_names.(i) node_name.(id)))
    (Network.outputs t);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  (try output_string oc (to_string t) with e -> close_out oc; raise e);
  close_out oc
