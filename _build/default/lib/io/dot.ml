open Accals_network

let to_string ?(highlight = []) t =
  let buf = Buffer.create 1024 in
  let live = Structure.live_set t in
  Buffer.add_string buf "digraph net {\n  rankdir=LR;\n";
  let hl = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace hl id ()) highlight;
  for id = 0 to Network.num_nodes t - 1 do
    if live.(id) then begin
      let label =
        if Network.is_input t id then
          Printf.sprintf "%s" (Network.input_names t).(
            (* position of id among inputs *)
            let rec find i = if (Network.inputs t).(i) = id then i else find (i + 1) in
            find 0)
        else Printf.sprintf "%d:%s" id (Gate.to_string (Network.op t id))
      in
      let extra = if Hashtbl.mem hl id then ", style=filled, fillcolor=orange" else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"%s];\n" id label extra);
      Array.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f id))
        (Network.fanins t id)
    end
  done;
  Array.iteri
    (fun i id ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [label=\"%s\", shape=box];\n  n%d -> o%d;\n" i
           (Network.output_names t).(i) id i))
    (Network.outputs t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight t path =
  let oc = open_out path in
  (try output_string oc (to_string ?highlight t) with e -> close_out oc; raise e);
  close_out oc
