(* Normal quantiles for the confidence levels used in practice; linear
   interpolation between entries. *)
let z_of confidence =
  let table =
    [ (0.80, 1.2816); (0.90, 1.6449); (0.95, 1.9600); (0.98, 2.3263);
      (0.99, 2.5758); (0.999, 3.2905) ]
  in
  let rec lookup = function
    | (c1, z1) :: ((c2, z2) :: _ as rest) ->
      if confidence <= c1 then z1
      else if confidence <= c2 then
        z1 +. ((z2 -. z1) *. (confidence -. c1) /. (c2 -. c1))
      else lookup rest
    | [ (_, z) ] -> z
    | [] -> 1.96
  in
  lookup table

let wilson_interval ~errors ~samples ~confidence =
  if samples <= 0 then invalid_arg "Confidence: no samples";
  if errors < 0 || errors > samples then invalid_arg "Confidence: bad error count";
  let z = z_of confidence in
  let n = float_of_int samples in
  let p = float_of_int errors /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (max 0.0 (center -. half), min 1.0 (center +. half))

let samples_for_resolution ~error_rate ~confidence =
  if error_rate <= 0.0 || error_rate >= 1.0 then
    invalid_arg "Confidence: error rate must be in (0,1)";
  (* (1-e)^n <= 1-c  =>  n >= log(1-c) / log(1-e) *)
  int_of_float (ceil (log (1.0 -. confidence) /. log (1.0 -. error_rate)))
