lib/analysis/confidence.ml:
