lib/analysis/exhaustive.ml: Accals_bitvec Accals_metrics Accals_network Array Network Sim Structure
