lib/analysis/exhaustive.mli: Accals_metrics Accals_network Network
