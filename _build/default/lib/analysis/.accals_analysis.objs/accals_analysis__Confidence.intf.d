lib/analysis/confidence.mli:
