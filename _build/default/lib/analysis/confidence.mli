(** Statistical confidence for sampled error-rate estimates.

    The synthesis loop measures ER on a finite sample; the Wilson score
    interval quantifies how far the true error rate can plausibly be from
    the estimate, which matters when certifying a circuit against a bound
    close to the sampling resolution. *)

val wilson_interval :
  errors:int -> samples:int -> confidence:float -> float * float
(** [(low, high)] interval for the true error probability. [confidence] is
    e.g. 0.95 or 0.99. *)

val samples_for_resolution : error_rate:float -> confidence:float -> int
(** Rough number of uniform samples needed before an error rate of the
    given magnitude is distinguishable from zero at the given confidence
    (coupon-style bound: P(no error seen) <= 1 - confidence). *)
