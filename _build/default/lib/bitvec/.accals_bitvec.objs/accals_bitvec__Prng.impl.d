lib/bitvec/prng.ml: Array Int64
