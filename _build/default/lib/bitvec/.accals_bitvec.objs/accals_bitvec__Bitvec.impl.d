lib/bitvec/bitvec.ml: Array Bytes Char Format Prng
