lib/bitvec/prng.mli:
