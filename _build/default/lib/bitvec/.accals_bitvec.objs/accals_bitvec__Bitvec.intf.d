lib/bitvec/bitvec.mli: Format Prng
