(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic components of the library (input sampling, random LAC
    selection, simulated annealing) draw from this generator so that every
    experiment is reproducible from its seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next_int64 : t -> int64
(** Next raw 64-bit state output. *)

val bits62 : t -> int
(** 62 uniformly random bits as a non-negative OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
