type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: fast, passes BigCrush, trivially seedable. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
              *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
