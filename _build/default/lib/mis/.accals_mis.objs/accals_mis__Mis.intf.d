lib/mis/mis.mli: Graph
