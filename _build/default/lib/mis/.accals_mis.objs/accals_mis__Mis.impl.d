lib/mis/mis.ml: Accals_bitvec Array Graph List
