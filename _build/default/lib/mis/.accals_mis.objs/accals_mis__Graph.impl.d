lib/mis/graph.ml: Array Hashtbl List
