lib/mis/graph.mli:
