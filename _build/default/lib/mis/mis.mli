(** Maximum independent set solver (KaMIS [16] substitute).

    Small graphs (≤ {!exact_limit} vertices after trivial reductions) are
    solved exactly by branch-and-bound; larger graphs get a greedy
    minimum-degree construction improved by (1,2)-swap local search in the
    style of the ARW iterated local search used inside KaMIS. The AccALS
    selection graphs have at most a few hundred vertices and are sparse, so
    the heuristic is near-optimal in practice. *)

val exact_limit : int

val solve : ?seed:int -> Graph.t -> int list
(** Independent set of maximal size; deterministic for a fixed seed. *)

val solve_exact : Graph.t -> int list
(** Exact maximum independent set via branch and bound; exponential, only
    use on small graphs. *)

val greedy : Graph.t -> int list
(** Minimum-degree greedy construction. *)
