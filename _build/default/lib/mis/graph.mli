(** Simple undirected graph on vertices [0 .. n-1]. *)

type t

val create : int -> t

val vertex_count : t -> int

val add_edge : t -> int -> int -> unit
(** Self-loops and duplicate edges are ignored. *)

val connected : t -> int -> int -> bool

val neighbors : t -> int -> int list

val degree : t -> int -> int

val edge_count : t -> int

val is_independent : t -> int list -> bool
(** True when no two listed vertices are adjacent. *)
