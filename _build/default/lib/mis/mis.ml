module Prng = Accals_bitvec.Prng

let exact_limit = 26

let greedy g =
  let n = Graph.vertex_count g in
  let removed = Array.make n false in
  let chosen = ref [] in
  let remaining = ref n in
  (* Repeatedly take a minimum-residual-degree vertex. *)
  let residual_degree v =
    List.length (List.filter (fun u -> not removed.(u)) (Graph.neighbors g v))
  in
  while !remaining > 0 do
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if not removed.(v) then begin
        let d = residual_degree v in
        if d < !best_deg then begin
          best := v;
          best_deg := d
        end
      end
    done;
    let v = !best in
    chosen := v :: !chosen;
    removed.(v) <- true;
    decr remaining;
    List.iter
      (fun u ->
        if not removed.(u) then begin
          removed.(u) <- true;
          decr remaining
        end)
      (Graph.neighbors g v)
  done;
  List.rev !chosen

(* Exact branch and bound on vertex lists. *)
let solve_exact g =
  let best = ref [] in
  let rec branch chosen candidates =
    match candidates with
    | [] -> if List.length chosen > List.length !best then best := chosen
    | v :: rest ->
      if List.length chosen + List.length candidates > List.length !best then begin
        (* Include v. *)
        let rest_excl = List.filter (fun u -> not (Graph.connected g u v)) rest in
        branch (v :: chosen) rest_excl;
        (* Exclude v. *)
        branch chosen rest
      end
  in
  let vertices = List.init (Graph.vertex_count g) (fun i -> i) in
  (* Order by increasing degree: good for pruning. *)
  let vertices =
    List.sort (fun a b -> compare (Graph.degree g a) (Graph.degree g b)) vertices
  in
  branch [] vertices;
  !best

(* (1,2)-swap local search: try to remove one chosen vertex and insert two
   of its currently-blocked neighbors. *)
let improve g rng chosen =
  let n = Graph.vertex_count g in
  let in_set = Array.make n false in
  List.iter (fun v -> in_set.(v) <- true) chosen;
  (* blockers v = number of chosen neighbors *)
  let blockers = Array.make n 0 in
  for v = 0 to n - 1 do
    blockers.(v) <-
      List.length (List.filter (fun u -> in_set.(u)) (Graph.neighbors g v))
  done;
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 50 do
    improved := false;
    incr rounds;
    let order = Array.init n (fun i -> i) in
    Prng.shuffle rng order;
    Array.iter
      (fun x ->
        if in_set.(x) then begin
          (* Candidates blocked only by x. *)
          let free_if_removed =
            List.filter
              (fun u -> (not in_set.(u)) && blockers.(u) = 1)
              (Graph.neighbors g x)
          in
          (* Find two nonadjacent such vertices. *)
          let rec find_pair = function
            | [] -> None
            | a :: rest -> (
              match List.find_opt (fun b -> not (Graph.connected g a b)) rest with
              | Some b -> Some (a, b)
              | None -> find_pair rest)
          in
          match find_pair free_if_removed with
          | None -> ()
          | Some (a, b) ->
            (* Swap: remove x, add a and b. *)
            in_set.(x) <- false;
            List.iter (fun u -> blockers.(u) <- blockers.(u) - 1) (Graph.neighbors g x);
            in_set.(a) <- true;
            List.iter (fun u -> blockers.(u) <- blockers.(u) + 1) (Graph.neighbors g a);
            in_set.(b) <- true;
            List.iter (fun u -> blockers.(u) <- blockers.(u) + 1) (Graph.neighbors g b);
            improved := true
        end)
      order;
    (* Also absorb any now-free vertices. *)
    for v = 0 to n - 1 do
      if (not in_set.(v)) && blockers.(v) = 0 then begin
        in_set.(v) <- true;
        List.iter (fun u -> blockers.(u) <- blockers.(u) + 1) (Graph.neighbors g v);
        improved := true
      end
    done
  done;
  List.filter (fun v -> in_set.(v)) (List.init n (fun i -> i))

let solve ?(seed = 1) g =
  if Graph.vertex_count g <= exact_limit then solve_exact g
  else begin
    let rng = Prng.create seed in
    improve g rng (greedy g)
  end
