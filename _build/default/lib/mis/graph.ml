type t = {
  n : int;
  adj : (int, unit) Hashtbl.t array;
  mutable edges : int;
}

let create n = { n; adj = Array.init n (fun _ -> Hashtbl.create 4); edges = 0 }

let vertex_count t = t.n

let check t v = if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

let connected t a b =
  check t a;
  check t b;
  Hashtbl.mem t.adj.(a) b

let add_edge t a b =
  check t a;
  check t b;
  if a <> b && not (Hashtbl.mem t.adj.(a) b) then begin
    Hashtbl.add t.adj.(a) b ();
    Hashtbl.add t.adj.(b) a ();
    t.edges <- t.edges + 1
  end

let neighbors t v =
  check t v;
  Hashtbl.fold (fun u () acc -> u :: acc) t.adj.(v) []

let degree t v =
  check t v;
  Hashtbl.length t.adj.(v)

let edge_count t = t.edges

let is_independent t vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> not (connected t v u)) rest && go rest
  in
  go vs
