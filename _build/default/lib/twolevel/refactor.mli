(** Exact cut-rewriting optimization (ABC's "refactor" in miniature).

    For each node, compute the local function of its best small cut and
    replace the cone with a freshly minimized SOP when that strictly reduces
    area. Function-preserving; used as the last stage of the benchmark
    optimization pipeline. *)

open Accals_network

val run : ?cut_size:int -> ?cuts_per_node:int -> Network.t -> int
(** Rewrite in place; returns the number of nodes rewritten. Run
    {!Cleanup.sweep} afterwards to fold the freed logic. *)
