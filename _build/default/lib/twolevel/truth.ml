open Accals_network

type t = int

let max_vars = 6

let rows vars =
  if vars < 0 || vars > max_vars then invalid_arg "Truth: too many variables";
  1 lsl vars

let mask vars = (1 lsl rows vars) - 1

let const_ vars b = if b then mask vars else 0

(* Projection patterns: var 0 = 0b...1010, var 1 = 0b...1100, etc. *)
let var vars i =
  if i < 0 || i >= vars then invalid_arg "Truth.var";
  let m = mask vars in
  let stripe = ref 0 in
  for row = 0 to rows vars - 1 do
    if row lsr i land 1 = 1 then stripe := !stripe lor (1 lsl row)
  done;
  !stripe land m

let get t m = t lsr m land 1 = 1

let set t m b = if b then t lor (1 lsl m) else t land lnot (1 lsl m)

let lognot vars t = lnot t land mask vars

let ones vars t =
  let m = mask vars in
  let v = ref (t land m) in
  let count = ref 0 in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr count
  done;
  !count

let eval_op vars op fanins =
  let m = mask vars in
  let fold f init = Array.fold_left f init fanins in
  match op with
  | Gate.Const b -> const_ vars b
  | Gate.Input -> invalid_arg "Truth.eval_op: Input"
  | Gate.Buf -> fanins.(0)
  | Gate.Not -> lognot vars fanins.(0)
  | Gate.And -> fold ( land ) m
  | Gate.Nand -> lognot vars (fold ( land ) m)
  | Gate.Or -> fold ( lor ) 0
  | Gate.Nor -> lognot vars (fold ( lor ) 0)
  | Gate.Xor -> fold ( lxor ) 0 land m
  | Gate.Xnor -> lognot vars (fold ( lxor ) 0 land m)
  | Gate.Mux ->
    (fanins.(0) land fanins.(1)) lor (lognot vars fanins.(0) land fanins.(2))

let of_cone net ~leaves ~root =
  let vars = Array.length leaves in
  if vars > max_vars then invalid_arg "Truth.of_cone: too many leaves";
  let leaf_index = Hashtbl.create 8 in
  Array.iteri (fun i id -> Hashtbl.replace leaf_index id i) leaves;
  let memo = Hashtbl.create 32 in
  let rec compute id =
    match Hashtbl.find_opt leaf_index id with
    | Some i -> var vars i
    | None -> (
      match Hashtbl.find_opt memo id with
      | Some t -> t
      | None ->
        let op = Network.op net id in
        if op = Gate.Input then
          invalid_arg "Truth.of_cone: cone escapes the cut";
        let fanins = Array.map compute (Network.fanins net id) in
        let t = eval_op vars op fanins in
        Hashtbl.add memo id t;
        t)
  in
  compute root
