(** Two-level (SOP) minimization by the Quine-McCluskey procedure with a
    greedy prime-implicant cover. Exact prime generation; the cover is
    essential-primes-first then greedy, which is optimal or near-optimal at
    these sizes (<= 6 variables). *)

type cube = {
  mask : int;  (** care bits *)
  value : int;  (** polarity on care bits; don't-care bits are 0 *)
}

val cube_covers : cube -> int -> bool
(** Does the cube contain the minterm? *)

val cube_literals : cube -> int
(** Number of literals (care bits). *)

val cubes_truth : vars:int -> cube list -> Truth.t
(** ON-set of the SOP. *)

val minimize : vars:int -> on:Truth.t -> ?dc:Truth.t -> unit -> cube list
(** Minimal(ish) SOP cover of [on], free to use [dc] minterms. The result
    covers every [on] minterm, covers nothing outside [on] ∪ [dc], and
    contains only prime implicants. The empty function yields []. *)

val literal_cost : cube list -> int
(** Total literal count, the classic two-level cost measure. *)
