open Accals_network

let negated_literals cubes =
  (* Bitmask of variables used negated anywhere in the cover. *)
  List.fold_left (fun acc c -> acc lor (c.Qm.mask land lnot c.Qm.value)) 0 cubes

let estimated_area cubes =
  match cubes with
  | [] -> 0.0
  | _ ->
    let inverters =
      let v = ref (negated_literals cubes) and count = ref 0 in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr count
      done;
      !count
    in
    let and_area =
      List.fold_left
        (fun acc c ->
          let k = Qm.cube_literals c in
          if k >= 2 then acc +. Cost.gate_area Gate.And k else acc)
        0.0 cubes
    in
    let or_area =
      let n = List.length cubes in
      if n >= 2 then Cost.gate_area Gate.Or n else 0.0
    in
    (float_of_int inverters *. Cost.gate_area Gate.Not 1) +. and_area +. or_area

let build net ~leaves cubes =
  match cubes with
  | [] -> Network.add_node net (Gate.Const false) [||]
  | _ when List.exists (fun c -> c.Qm.mask = 0) cubes ->
    Network.add_node net (Gate.Const true) [||]
  | _ ->
    let vars = Array.length leaves in
    let inverted = Array.make vars (-1) in
    let literal i positive =
      if positive then leaves.(i)
      else begin
        if inverted.(i) < 0 then
          inverted.(i) <- Network.add_node net Gate.Not [| leaves.(i) |];
        inverted.(i)
      end
    in
    let product c =
      let lits = ref [] in
      for i = vars - 1 downto 0 do
        if c.Qm.mask lsr i land 1 = 1 then
          lits := literal i (c.Qm.value lsr i land 1 = 1) :: !lits
      done;
      match !lits with
      | [] -> assert false (* universal cube handled above *)
      | [ x ] -> x
      | xs -> Network.add_node net Gate.And (Array.of_list xs)
    in
    let products = List.map product cubes in
    (match products with
     | [ x ] -> x
     | xs -> Network.add_node net Gate.Or (Array.of_list xs))
