(** Truth tables over up to 6 variables, packed into one [int].

    Bit [m] of the table is the function value on minterm [m] (variable [i]
    contributes bit [i] of [m]). Used to compute the exact local function of
    a cut and to manipulate it during SOP rewriting. *)

type t = int
(** Only the low [2^vars] bits are meaningful; all operations take the
    variable count explicitly and keep padding bits zero. *)

val max_vars : int
(** 6: 64 minterm bits fit the OCaml int. *)

val rows : int -> int
(** [rows vars] = [2^vars]. *)

val mask : int -> t
(** All-ones table for [vars] variables. *)

val const_ : int -> bool -> t

val var : int -> int -> t
(** [var vars i] is the projection on variable [i]. *)

val get : t -> int -> bool
(** Value on a minterm. *)

val set : t -> int -> bool -> t

val lognot : int -> t -> t

val ones : int -> t -> int
(** Number of ON-set minterms. *)

val eval_op : int -> Accals_network.Gate.op -> t array -> t
(** Apply a gate operator to fanin truth tables. *)

val of_cone :
  Accals_network.Network.t -> leaves:int array -> root:int -> t
(** Exact local function of [root] in terms of [leaves]: every path from
    [root] must reach a leaf or a constant; raises [Invalid_argument] when
    the cone escapes the leaves (i.e. the leaves are not a cut) or when
    there are more than {!max_vars} leaves. *)
