open Accals_network

let merge_leaves ~k a b =
  (* Union of two sorted arrays, or None if the union exceeds k. *)
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min (la + lb) (k + 1)) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else if i = la || b.(j) < a.(i) then begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
    else begin
      out.(n) <- a.(i);
      go (i + 1) (j + 1) (n + 1)
    end
  in
  if la > k || lb > k then None else go 0 0 0

let subsumes a b =
  (* a subsumes b when a ⊆ b (a is the better cut). Arrays sorted. *)
  let la = Array.length a and lb = Array.length b in
  la <= lb
  && begin
    let rec go i j =
      if i = la then true
      else if j = lb then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0
  end

let enumerate net ~order ~k ~per_node =
  let n = Network.num_nodes net in
  let cuts = Array.make n [] in
  (* Internal sets include the trivial cut so fanout merging works; the
     reported lists drop it. *)
  let internal = Array.make n [] in
  Array.iter
    (fun id ->
      let trivial = [| id |] in
      let merged =
        if Network.is_input net id then []
        else begin
          let fis = Network.fanins net id in
          if Array.length fis = 0 then []
          else begin
            let acc = ref (List.map (fun c -> c) internal.(fis.(0))) in
            for i = 1 to Array.length fis - 1 do
              let next = ref [] in
              List.iter
                (fun a ->
                  List.iter
                    (fun b ->
                      match merge_leaves ~k a b with
                      | Some u -> next := u :: !next
                      | None -> ())
                    internal.(fis.(i)))
                !acc;
              acc := !next
            done;
            !acc
          end
        end
      in
      (* Dedup, remove subsumed, keep the smallest. *)
      let unique = List.sort_uniq compare merged in
      let filtered =
        List.filter
          (fun c ->
            not
              (List.exists (fun c' -> c' <> c && subsumes c' c) unique))
          unique
      in
      let sorted =
        List.sort
          (fun a b -> compare (Array.length a) (Array.length b))
          filtered
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let kept = take per_node sorted in
      cuts.(id) <- kept;
      internal.(id) <- trivial :: kept)
    order;
  cuts

let is_cut net ~root ~leaves =
  let leaf = Hashtbl.create 8 in
  Array.iter (fun id -> Hashtbl.replace leaf id ()) leaves;
  let seen = Hashtbl.create 32 in
  let ok = ref true in
  let rec walk id =
    if (not (Hashtbl.mem leaf id)) && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Network.op net id with
      | Gate.Input -> ok := false
      | Gate.Const _ -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Mux ->
        Array.iter walk (Network.fanins net id)
    end
  in
  walk root;
  !ok
