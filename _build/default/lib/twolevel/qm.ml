type cube = { mask : int; value : int }

let cube_covers c m = m land c.mask = c.value

let cube_literals c =
  let v = ref c.mask and count = ref 0 in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr count
  done;
  !count

let cubes_truth ~vars cubes =
  let t = ref 0 in
  for m = 0 to Truth.rows vars - 1 do
    if List.exists (fun c -> cube_covers c m) cubes then t := Truth.set !t m true
  done;
  !t

(* Prime implicant generation: start from the minterms of on ∪ dc and merge
   cubes differing in exactly one care bit until fixpoint; cubes never
   merged at any stage are prime. *)
let primes ~vars ~care =
  let full_mask = (1 lsl vars) - 1 in
  let current = Hashtbl.create 64 in
  for m = 0 to Truth.rows vars - 1 do
    if Truth.get care m then
      Hashtbl.replace current { mask = full_mask; value = m } false
  done;
  let result = ref [] in
  let continue_ = ref (Hashtbl.length current > 0) in
  let generation = ref current in
  while !continue_ do
    let next = Hashtbl.create 64 in
    let cubes = Hashtbl.fold (fun c _ acc -> c :: acc) !generation [] in
    let merged = Hashtbl.create 64 in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if j > i && a.mask = b.mask then begin
              let diff = a.value lxor b.value in
              (* exactly one differing care bit *)
              if diff <> 0 && diff land (diff - 1) = 0 then begin
                let c = { mask = a.mask land lnot diff; value = a.value land lnot diff } in
                Hashtbl.replace next c false;
                Hashtbl.replace merged a ();
                Hashtbl.replace merged b ()
              end
            end)
          cubes)
      cubes;
    List.iter
      (fun c -> if not (Hashtbl.mem merged c) then result := c :: !result)
      cubes;
    generation := next;
    continue_ := Hashtbl.length next > 0
  done;
  List.sort_uniq compare !result

let minimize ~vars ~on ?(dc = 0) () =
  let on = on land Truth.mask vars in
  let dc = dc land Truth.mask vars land lnot on in
  if on = 0 then []
  else begin
    let care = on lor dc in
    let prime_list = primes ~vars ~care in
    (* Cover the ON minterms (DC minterms need not be covered). *)
    let required = ref [] in
    for m = Truth.rows vars - 1 downto 0 do
      if Truth.get on m then required := m :: !required
    done;
    let chosen = ref [] in
    let uncovered = ref !required in
    let covers_of c = List.filter (cube_covers c) !required in
    (* Essential primes first. *)
    List.iter
      (fun m ->
        match List.filter (fun c -> cube_covers c m) prime_list with
        | [ only ] when not (List.mem only !chosen) -> chosen := only :: !chosen
        | _ -> ())
      !required;
    let update_uncovered () =
      uncovered :=
        List.filter
          (fun m -> not (List.exists (fun c -> cube_covers c m) !chosen))
          !required
    in
    update_uncovered ();
    (* Greedy: pick the prime covering the most uncovered minterms; ties by
       fewer literals. *)
    while !uncovered <> [] do
      let best = ref None in
      List.iter
        (fun c ->
          if not (List.mem c !chosen) then begin
            let gain =
              List.length (List.filter (fun m -> List.mem m !uncovered) (covers_of c))
            in
            if gain > 0 then
              match !best with
              | Some (g, bc)
                when g > gain || (g = gain && cube_literals bc <= cube_literals c) ->
                ()
              | Some _ | None -> best := Some (gain, c)
          end)
        prime_list;
      match !best with
      | None -> uncovered := [] (* unreachable: primes cover all of on *)
      | Some (_, c) ->
        chosen := c :: !chosen;
        update_uncovered ()
    done;
    (* Drop redundant chosen cubes (an essential pass can overshoot). *)
    let rec prune kept = function
      | [] -> kept
      | c :: rest ->
        let others = kept @ rest in
        let still_covered =
          List.for_all
            (fun m ->
              (not (cube_covers c m))
              || List.exists (fun c' -> cube_covers c' m) others)
            !required
        in
        if still_covered then prune kept rest else prune (c :: kept) rest
    in
    prune [] !chosen
  end

let literal_cost cubes = List.fold_left (fun acc c -> acc + cube_literals c) 0 cubes
