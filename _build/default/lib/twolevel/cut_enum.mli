(** K-feasible cut enumeration (bottom-up merge, as in FPGA mapping).

    A cut of node [n] is a set of nodes ("leaves") such that every path from
    a primary input to [n] passes through a leaf; the node's local function
    in terms of its leaves is what SOP rewriting minimizes. *)

open Accals_network

val enumerate :
  Network.t -> order:int array -> k:int -> per_node:int -> int array list array
(** [enumerate net ~order ~k ~per_node] returns, per node id, the list of
    cuts (sorted leaf arrays, each of size <= k, smallest cuts first,
    at most [per_node] kept, the trivial cut {n} excluded). [order] must be
    a topological order covering the nodes of interest. *)

val is_cut : Network.t -> root:int -> leaves:int array -> bool
(** Check the cut property by walking the cone (test helper). *)
