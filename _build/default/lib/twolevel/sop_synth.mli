(** Construct gate-level logic from an SOP cover. *)

open Accals_network

val estimated_area : Qm.cube list -> float
(** Area of the gates {!build} would create (inverters shared per leaf). *)

val build : Network.t -> leaves:int array -> Qm.cube list -> int
(** Add the gates computing the SOP of [cubes] over [leaves] and return the
    root node id. The empty cover gives a constant-0 node; a cover
    containing the universal cube gives constant 1. *)
