lib/twolevel/sop_synth.mli: Accals_network Network Qm
