lib/twolevel/qm.mli: Truth
