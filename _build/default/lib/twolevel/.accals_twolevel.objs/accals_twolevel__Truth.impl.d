lib/twolevel/truth.ml: Accals_network Array Gate Hashtbl Network
