lib/twolevel/refactor.mli: Accals_network Network
