lib/twolevel/cut_enum.mli: Accals_network Network
