lib/twolevel/truth.mli: Accals_network
