lib/twolevel/refactor.ml: Accals_network Array Cost Cut_enum Gate Hashtbl List Network Qm Sop_synth Structure Truth
