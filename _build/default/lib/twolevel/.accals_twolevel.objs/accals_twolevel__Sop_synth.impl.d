lib/twolevel/sop_synth.ml: Accals_network Array Cost Gate List Network Qm
