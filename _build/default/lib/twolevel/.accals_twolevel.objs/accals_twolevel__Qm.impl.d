lib/twolevel/qm.ml: Hashtbl List Truth
