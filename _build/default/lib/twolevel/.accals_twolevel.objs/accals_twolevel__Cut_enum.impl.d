lib/twolevel/cut_enum.ml: Accals_network Array Gate Hashtbl List Network
