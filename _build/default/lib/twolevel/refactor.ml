open Accals_network

(* Area of the MFFC a rewrite would free, with the cut leaves kept. *)
let freed_area net ~mffc target leaves =
  let in_mffc = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_mffc id ()) mffc;
  let kept = Hashtbl.create 8 in
  let rec keep id =
    if id <> target && Hashtbl.mem in_mffc id && not (Hashtbl.mem kept id)
    then begin
      Hashtbl.replace kept id ();
      Array.iter keep (Network.fanins net id)
    end
  in
  Array.iter keep leaves;
  Cost.area_of_nodes net
    (List.filter (fun id -> not (Hashtbl.mem kept id)) mffc)

(* Two phases so every analysis is computed on a frozen network: first
   collect profitable rewrites, then apply a non-overlapping subset (MFFCs
   pairwise disjoint, no leaf inside an applied MFFC). Exact SOP rewrites
   preserve every node function, so the collected truths stay valid. *)
let run ?(cut_size = 4) ?(cuts_per_node = 4) net =
  let order = Structure.topo_order net in
  let cuts = Cut_enum.enumerate net ~order ~k:cut_size ~per_node:cuts_per_node in
  let live = Structure.live_set net in
  let fanout_counts = Structure.fanout_counts net ~live in
  let proposals = ref [] in
  Array.iter
    (fun target ->
      if live.(target) && not (Network.is_input net target) then begin
        let mffc = Structure.mffc net ~fanout_counts ~live target in
        let best = ref None in
        List.iter
          (fun leaves ->
            if Array.length leaves >= 2 && Array.length leaves <= Truth.max_vars
            then
              match Truth.of_cone net ~leaves ~root:target with
              | exception Invalid_argument _ -> ()
              | truth ->
                let cubes = Qm.minimize ~vars:(Array.length leaves) ~on:truth () in
                let gain =
                  freed_area net ~mffc target leaves
                  -. Sop_synth.estimated_area cubes
                in
                if gain > 0.0 then
                  match !best with
                  | Some (g, _, _) when g >= gain -> ()
                  | Some _ | None -> best := Some (gain, leaves, cubes))
          cuts.(target);
        match !best with
        | None -> ()
        | Some (gain, leaves, cubes) ->
          proposals := (gain, target, mffc, leaves, cubes) :: !proposals
      end)
    order;
  let ordered =
    List.sort (fun (g1, _, _, _, _) (g2, _, _, _, _) -> compare g2 g1) !proposals
  in
  let claimed = Array.make (Network.num_nodes net) false in
  let rewritten = ref 0 in
  List.iter
    (fun (_, target, mffc, leaves, cubes) ->
      let clash =
        List.exists (fun id -> claimed.(id)) mffc
        || Array.exists (fun id -> claimed.(id)) leaves
      in
      if not clash then begin
        List.iter (fun id -> claimed.(id) <- true) mffc;
        let root = Sop_synth.build net ~leaves cubes in
        Network.replace ~check_cycle:false net target Gate.Buf [| root |];
        incr rewritten
      end)
    ordered;
  !rewritten
