open Accals_lac

let r_top_value ~r_ref ~r_min ~e ~e_b ~total =
  let scale = if e_b > 0.0 then (e_b -. e) /. e_b else 0.0 in
  let raw = int_of_float (scale *. float_of_int (max r_ref r_min)) in
  max 1 (min raw total)

let obtain ~r_ref ~e ~e_b lacs =
  match lacs with
  | [] -> []
  | first :: _ ->
    let min_delta = first.Lac.delta_error in
    let r_min =
      List.length
        (List.filter (fun l -> l.Lac.delta_error <= min_delta +. 1e-12) lacs)
    in
    let total = List.length lacs in
    let r_top = r_top_value ~r_ref ~r_min ~e ~e_b ~total in
    List.filteri (fun i _ -> i < r_top) lacs
