open Accals_network
module Metric = Accals_metrics.Metric

let sweep ?config net ~metric ~bounds =
  let config = match config with Some c -> c | None -> Config.for_network net in
  let patterns =
    Sim.for_network ~seed:config.Config.seed ~count:config.Config.samples
      ~exhaustive_limit:config.Config.exhaustive_limit net
  in
  List.map
    (fun bound ->
      (bound, Engine.run ~config ~patterns net ~metric ~error_bound:bound))
    bounds

let frontier points =
  let sorted =
    List.sort
      (fun (e1, c1) (e2, c2) ->
        match compare e1 e2 with 0 -> compare c1 c2 | c -> c)
      points
  in
  let rec keep best = function
    | [] -> []
    | (e, c) :: rest ->
      if c < best then (e, c) :: keep c rest else keep best rest
  in
  keep infinity sorted
