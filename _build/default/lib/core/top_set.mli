(** ObtainTopSet (Section II-B, Eq. (2)).

    Given the candidate LACs scored by the estimator (ascending ΔE), keeps
    the top [r_top] where

    r_top = ((e_b - e) / e_b) * max(r_ref, r_min),

    r_min being the number of candidates sharing the minimum error increase,
    clamped to [1, |L_cand|]. *)

open Accals_lac

val obtain : r_ref:int -> e:float -> e_b:float -> Lac.t list -> Lac.t list
(** Input must be sorted by ascending [delta_error]. *)

val r_top_value : r_ref:int -> r_min:int -> e:float -> e_b:float -> total:int -> int
(** The raw Eq. (2) computation with clamping, exposed for tests. *)
