open Accals_network
open Accals_lac
module Graph = Accals_mis.Graph
module Bitvec = Accals_bitvec.Bitvec

let pair_index (ctx : Round_ctx.t) ~tfo_j ~tfo_i n_j n_i =
  (* n_j is topologically before n_i. *)
  if Bitvec.get tfo_j n_i then begin
    match
      Structure.shortest_path_bounded ctx.net ~fanouts:ctx.fanouts ~src:n_j
        ~dst:n_i ~limit:(Network.num_nodes ctx.net)
    with
    | Some d when d > 0 -> 1.0 /. float_of_int d
    | Some _ | None -> 1.0
  end
  else begin
    let inter = Bitvec.popcount (Bitvec.logand tfo_j tfo_i) in
    let fi = Bitvec.popcount tfo_i in
    if fi = 0 then 0.0 else float_of_int inter /. float_of_int fi
  end

let orient (ctx : Round_ctx.t) a b =
  if ctx.topo_pos.(a) <= ctx.topo_pos.(b) then (a, b) else (b, a)

let index (ctx : Round_ctx.t) a b =
  let n_j, n_i = orient ctx a b in
  let tfo_j = Structure.tfo_set ctx.net ~fanouts:ctx.fanouts n_j in
  let tfo_i = Structure.tfo_set ctx.net ~fanouts:ctx.fanouts n_i in
  pair_index ctx ~tfo_j ~tfo_i n_j n_i

let build_graph (ctx : Round_ctx.t) ~targets ~t_b =
  let n = Array.length targets in
  let g = Graph.create n in
  let tfos =
    Array.map (fun id -> Structure.tfo_set ctx.net ~fanouts:ctx.fanouts id) targets
  in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let j, i =
        if ctx.topo_pos.(targets.(a)) <= ctx.topo_pos.(targets.(b)) then (a, b)
        else (b, a)
      in
      let p =
        pair_index ctx ~tfo_j:tfos.(j) ~tfo_i:tfos.(i) targets.(j) targets.(i)
      in
      if p > t_b then Graph.add_edge g a b
    done
  done;
  g
