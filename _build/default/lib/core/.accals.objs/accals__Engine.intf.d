lib/core/engine.mli: Accals_bitvec Accals_metrics Accals_network Bitvec Config Network Sim Trace
