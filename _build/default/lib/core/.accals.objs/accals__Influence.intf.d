lib/core/influence.mli: Accals_lac Accals_mis Round_ctx
