lib/core/config.ml: Accals_lac Accals_network Candidate_gen
