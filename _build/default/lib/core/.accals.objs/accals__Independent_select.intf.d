lib/core/independent_select.mli: Accals_bitvec Accals_lac Config Lac Round_ctx
