lib/core/pareto.ml: Accals_metrics Accals_network Config Engine List Sim
