lib/core/trace.ml: Buffer List Printf
