lib/core/top_set.mli: Accals_lac Lac
