lib/core/influence.ml: Accals_bitvec Accals_lac Accals_mis Accals_network Array Network Round_ctx Structure
