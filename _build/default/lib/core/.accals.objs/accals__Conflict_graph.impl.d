lib/core/conflict_graph.ml: Accals_lac Accals_mis Array Lac List
