lib/core/conflict_graph.mli: Accals_lac Accals_mis Lac
