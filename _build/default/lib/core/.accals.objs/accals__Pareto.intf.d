lib/core/pareto.mli: Accals_metrics Accals_network Config Engine Network
