lib/core/trace.mli:
