lib/core/config.mli: Accals_lac Accals_network Candidate_gen
