lib/core/top_set.ml: Accals_lac Lac List
