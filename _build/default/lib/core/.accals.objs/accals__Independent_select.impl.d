lib/core/independent_select.ml: Accals_bitvec Accals_lac Accals_mis Array Config Influence Lac List
