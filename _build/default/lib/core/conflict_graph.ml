open Accals_lac
module Graph = Accals_mis.Graph

let build lacs =
  let arr = Array.of_list lacs in
  let n = Array.length arr in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Lac.conflicts arr.(i) arr.(j) then Graph.add_edge g i j
    done
  done;
  g

let find_and_solve lacs =
  let arr = Array.of_list lacs in
  let n = Array.length arr in
  let g = build lacs in
  (* Ascending weight = ascending ΔE; stable on ties. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare arr.(a).Lac.delta_error arr.(b).Lac.delta_error with
      | 0 -> compare a b
      | c -> c)
    order;
  let selected = Array.make n false in
  Array.iter
    (fun i ->
      let clash =
        List.exists (fun j -> selected.(j)) (Graph.neighbors g i)
      in
      if not clash then selected.(i) <- true)
    order;
  let l_sol = ref [] and n_sol = ref [] in
  for i = n - 1 downto 0 do
    if selected.(i) then begin
      l_sol := arr.(i) :: !l_sol;
      n_sol := arr.(i).Lac.target :: !n_sol
    end
  done;
  (!l_sol, !n_sol)
