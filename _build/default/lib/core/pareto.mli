(** Design-space exploration: sweep error bounds and collect the
    quality/error trade-off curve (the paper's Fig. 7 methodology as a
    library function). *)

open Accals_network
module Metric := Accals_metrics.Metric

val sweep :
  ?config:Config.t ->
  Network.t ->
  metric:Metric.kind ->
  bounds:float list ->
  (float * Engine.report) list
(** One synthesis per bound, sharing the pattern set so results are
    comparable; returned in the input order as (bound, report). *)

val frontier : (float * float) list -> (float * float) list
(** Non-dominated subset of (error, cost) points, sorted by error
    ascending: every kept point has strictly lower cost than all points
    with smaller error. *)
