(** FindSolveLACConf (Section II-C).

    Builds the LAC conflict graph (Definition 1: nodes are the LACs of
    L_top, weighted by ΔE; edges join Type-1 and Type-2 conflicts) and
    extracts a conflict-free subset by visiting nodes in ascending weight
    order, keeping each node that conflicts with nothing already kept. *)

open Accals_lac
module Graph := Accals_mis.Graph

val build : Lac.t list -> Graph.t
(** Conflict graph; vertex [i] is the [i]-th LAC of the input list. *)

val find_and_solve : Lac.t list -> Lac.t list * int list
(** [(l_sol, n_sol)]: the conflict-free LAC set and its target-node set.
    The result preserves ascending-ΔE order; every target in [n_sol] is
    unique. *)
