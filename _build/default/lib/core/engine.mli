(** The AccALS synthesis engine (Algorithm 1 with the Section II-E
    improvement techniques). *)

open Accals_network
open Accals_bitvec
module Metric := Accals_metrics.Metric

type report = {
  original : Network.t;
  approximate : Network.t;  (** compacted final circuit, error <= bound *)
  error : float;  (** exact-on-samples error of [approximate] *)
  metric : Metric.kind;
  error_bound : float;
  rounds : Trace.round list;  (** chronological *)
  runtime_seconds : float;
  exact_evaluations : int;  (** estimator cone resimulations *)
  area_ratio : float;
  delay_ratio : float;
  adp_ratio : float;
}

val run :
  ?config:Config.t ->
  ?patterns:Sim.patterns ->
  Network.t ->
  metric:Metric.kind ->
  error_bound:float ->
  report
(** Synthesize an approximate version of the network whose [metric] error
    (measured on the shared pattern set against the original) does not
    exceed [error_bound]. When [config] is omitted, the paper's
    size-bucketed parameters are chosen from the circuit's AIG node count.
    When [patterns] is omitted, they are derived from [config]
    (exhaustive below the input-count limit, seeded-random otherwise). *)

val golden_signatures :
  ?config:Config.t -> ?patterns:Sim.patterns -> Network.t -> Bitvec.t array
(** The golden output signatures [run] scores against, for external
    verification of a report. *)
