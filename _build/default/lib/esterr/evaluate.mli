(** Whole-circuit exact-on-samples evaluation helpers. *)

open Accals_network
open Accals_bitvec
module Metric := Accals_metrics.Metric

val output_signatures : Network.t -> Sim.patterns -> Bitvec.t array
(** Simulate the network and return its primary-output signatures. *)

val actual_error :
  Network.t -> Sim.patterns -> golden:Bitvec.t array -> Metric.kind -> float
(** Exact error of the network against golden outputs on the pattern set
    (the paper's "accurate error" in Algorithm 1, lines 8-9). *)
