open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec

(* Mask of patterns where the output of [id] flips if fanin [which] flips,
   all other fanins held at their simulated values. *)
let edge_sensitivity net sigs id which ~dst =
  let fis = Network.fanins net id in
  match Network.op net id with
  | Gate.Input | Gate.Const _ -> Bitvec.fill dst false
  | Gate.Buf | Gate.Not -> Bitvec.fill dst true
  | Gate.Xor | Gate.Xnor -> Bitvec.fill dst true
  | Gate.And | Gate.Nand ->
    Bitvec.fill dst true;
    Array.iteri
      (fun i f -> if i <> which then Bitvec.logand_into dst sigs.(f) ~dst)
      fis
  | Gate.Or | Gate.Nor ->
    Bitvec.fill dst true;
    Array.iteri
      (fun i f ->
        if i <> which then begin
          (* dst &= ~sig(f) without allocating: use De Morgan on masks. *)
          let tmp = Bitvec.lognot sigs.(f) in
          Bitvec.logand_into dst tmp ~dst
        end)
      fis
  | Gate.Mux ->
    (match which with
     | 0 -> Bitvec.logxor_into sigs.(fis.(1)) sigs.(fis.(2)) ~dst
     | 1 -> Bitvec.blit ~src:sigs.(fis.(0)) ~dst
     | _ -> Bitvec.lognot_into sigs.(fis.(0)) ~dst)

let masks (ctx : Round_ctx.t) =
  let net = ctx.net in
  let n = Network.num_nodes net in
  let samples = ctx.patterns.Sim.count in
  let dummy = Bitvec.create 0 in
  let crit = Array.make n dummy in
  Array.iter (fun id -> crit.(id) <- Bitvec.create samples) ctx.order;
  Array.iter
    (fun id -> if Bitvec.length crit.(id) > 0 then Bitvec.fill crit.(id) true)
    (Network.outputs net);
  let sens = Bitvec.create samples in
  let contribution = Bitvec.create samples in
  (* Reverse topological sweep: push criticality from fanouts to fanins. *)
  for i = Array.length ctx.order - 1 downto 0 do
    let id = ctx.order.(i) in
    let fis = Network.fanins net id in
    Array.iteri
      (fun which f ->
        if Bitvec.length crit.(f) > 0 then begin
          edge_sensitivity net ctx.sigs id which ~dst:sens;
          Bitvec.logand_into sens crit.(id) ~dst:contribution;
          Bitvec.logor_into crit.(f) contribution ~dst:crit.(f)
        end)
      fis
  done;
  crit
