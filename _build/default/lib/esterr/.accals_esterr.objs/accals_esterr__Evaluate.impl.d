lib/esterr/evaluate.ml: Accals_metrics Accals_network Array Network Sim Structure
