lib/esterr/evaluate.mli: Accals_bitvec Accals_metrics Accals_network Bitvec Network Sim
