lib/esterr/estimator.mli: Accals_bitvec Accals_lac Accals_metrics Bitvec Lac Round_ctx
