lib/esterr/estimator.ml: Accals_bitvec Accals_lac Accals_metrics Accals_network Accals_twolevel Array Criticality Gate Hashtbl Lac List Network Round_ctx Sim Structure
