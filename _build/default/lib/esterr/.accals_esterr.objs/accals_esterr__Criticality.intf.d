lib/esterr/criticality.mli: Accals_bitvec Accals_lac Bitvec Round_ctx
