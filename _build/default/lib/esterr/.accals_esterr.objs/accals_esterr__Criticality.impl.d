lib/esterr/criticality.ml: Accals_bitvec Accals_lac Accals_network Array Gate Network Round_ctx Sim
