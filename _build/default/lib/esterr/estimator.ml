open Accals_network
open Accals_lac
module Bitvec = Accals_bitvec.Bitvec
module Metric = Accals_metrics.Metric

type t = {
  ctx : Round_ctx.t;
  golden : Bitvec.t array;
  prepared : Metric.prepared;
  metric : Metric.kind;
  base_error : float;
  crit : Bitvec.t array;
  err_mask : Bitvec.t;  (* samples where the current circuit is wrong *)
  cone_cache : (int, int array) Hashtbl.t;
  (* resimulation scratch *)
  overlay : Bitvec.t array;
  have : bool array;
  mutable pool : Bitvec.t list;
  scratch : Bitvec.t;
  mutable evaluations : int;
}

let samples t = t.ctx.Round_ctx.patterns.Sim.count

let compute_err_mask ctx golden =
  let out = Round_ctx.output_sigs ctx in
  let n = ctx.Round_ctx.patterns.Sim.count in
  let err = Bitvec.create n in
  let tmp = Bitvec.create n in
  Array.iteri
    (fun i g ->
      Bitvec.logxor_into g out.(i) ~dst:tmp;
      Bitvec.logor_into err tmp ~dst:err)
    golden;
  err

let create ctx ~golden ~metric =
  let approx = Round_ctx.output_sigs ctx in
  let base_error = Metric.measure metric ~golden ~approx in
  let n = Network.num_nodes ctx.Round_ctx.net in
  let dummy = Bitvec.create 0 in
  {
    ctx;
    golden;
    prepared = Metric.prepare metric ~golden;
    metric;
    base_error;
    crit = Criticality.masks ctx;
    err_mask = compute_err_mask ctx golden;
    cone_cache = Hashtbl.create 64;
    overlay = Array.make n dummy;
    have = Array.make n false;
    pool = [];
    scratch = Bitvec.create ctx.Round_ctx.patterns.Sim.count;
    evaluations = 0;
  }

let base_error t = t.base_error

let take_buf t =
  match t.pool with
  | b :: rest ->
    t.pool <- rest;
    b
  | [] -> Bitvec.create (samples t)

let give_buf t b = t.pool <- b :: t.pool

let candidate_signature t lac =
  let sigs = t.ctx.Round_ctx.sigs in
  let dst = take_buf t in
  (match lac.Lac.kind with
   | Lac.Const0 -> Bitvec.fill dst false
   | Lac.Const1 -> Bitvec.fill dst true
   | Lac.Wire v -> Bitvec.blit ~src:sigs.(v) ~dst
   | Lac.Inv_wire v -> Bitvec.lognot_into sigs.(v) ~dst
   | Lac.Gate2 (op, a, b) ->
     (match op with
      | Gate.And -> Bitvec.logand_into sigs.(a) sigs.(b) ~dst
      | Gate.Or -> Bitvec.logor_into sigs.(a) sigs.(b) ~dst
      | Gate.Xor -> Bitvec.logxor_into sigs.(a) sigs.(b) ~dst
      | Gate.Nand ->
        Bitvec.logand_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Nor ->
        Bitvec.logor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Xnor ->
        Bitvec.logxor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.lognot_into dst ~dst
      | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux ->
        invalid_arg "Estimator: unsupported Gate2 op")
   | Lac.Gate3 (op, a, b, c) ->
     (match op with
      | Gate.And ->
        Bitvec.logand_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logand_into dst sigs.(c) ~dst
      | Gate.Or ->
        Bitvec.logor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logor_into dst sigs.(c) ~dst
      | Gate.Xor ->
        Bitvec.logxor_into sigs.(a) sigs.(b) ~dst;
        Bitvec.logxor_into dst sigs.(c) ~dst
      | Gate.Mux -> Bitvec.mux_into ~sel:sigs.(a) sigs.(b) sigs.(c) ~dst
      | Gate.Nand | Gate.Nor | Gate.Xnor | Gate.Const _ | Gate.Input
      | Gate.Buf | Gate.Not ->
        invalid_arg "Estimator: unsupported Gate3 op")
   | Lac.Sop { leaves; cubes } ->
     let product = take_buf t in
     let negated = take_buf t in
     Bitvec.fill dst false;
     List.iter
       (fun cube ->
         Bitvec.fill product true;
         Array.iteri
           (fun i leaf ->
             if cube.Accals_twolevel.Qm.mask lsr i land 1 = 1 then
               if cube.Accals_twolevel.Qm.value lsr i land 1 = 1 then
                 Bitvec.logand_into product sigs.(leaf) ~dst:product
               else begin
                 Bitvec.lognot_into sigs.(leaf) ~dst:negated;
                 Bitvec.logand_into product negated ~dst:product
               end)
           leaves;
         Bitvec.logor_into dst product ~dst)
       cubes;
     give_buf t product;
     give_buf t negated);
  dst

let rank_score t lac =
  let target = lac.Lac.target in
  let cand = candidate_signature t lac in
  Bitvec.logxor_into cand t.ctx.Round_ctx.sigs.(target) ~dst:t.scratch;
  Bitvec.logand_into t.scratch t.crit.(target) ~dst:t.scratch;
  give_buf t cand;
  (* Potential fresh errors: observable changes on currently-correct
     samples. Changes landing on already-wrong samples are free (they may
     even fix the error), so they do not count against the LAC. *)
  let err_free = Bitvec.lognot t.err_mask in
  Bitvec.logand_into t.scratch err_free ~dst:t.scratch;
  float_of_int (Bitvec.popcount t.scratch) /. float_of_int (samples t)

let cone t target =
  match Hashtbl.find_opt t.cone_cache target with
  | Some c -> c
  | None ->
    let c =
      Structure.tfo_list t.ctx.Round_ctx.net ~fanouts:t.ctx.Round_ctx.fanouts
        ~topo_pos:t.ctx.Round_ctx.topo_pos target
    in
    Hashtbl.add t.cone_cache target c;
    c

let exact_delta t lac =
  let ctx = t.ctx in
  let net = ctx.Round_ctx.net in
  let sigs = ctx.Round_ctx.sigs in
  let target = lac.Lac.target in
  let cand = candidate_signature t lac in
  if Bitvec.equal cand sigs.(target) then begin
    give_buf t cand;
    0.0
  end
  else begin
    t.evaluations <- t.evaluations + 1;
    let touched = ref [ target ] in
    t.overlay.(target) <- cand;
    t.have.(target) <- true;
    let lookup id = if t.have.(id) then t.overlay.(id) else sigs.(id) in
    Array.iter
      (fun id ->
        let fis = Network.fanins net id in
        let dirty = Array.exists (fun f -> t.have.(f)) fis in
        if dirty then begin
          let dst = take_buf t in
          Sim.eval_node_into net ~lookup id ~dst;
          if Bitvec.equal dst sigs.(id) then give_buf t dst
          else begin
            t.overlay.(id) <- dst;
            t.have.(id) <- true;
            touched := id :: !touched
          end
        end)
      (cone t target);
    let approx = Array.map lookup (Network.outputs net) in
    let e_new = Metric.measure_prepared t.prepared ~approx in
    List.iter
      (fun id ->
        give_buf t t.overlay.(id);
        t.have.(id) <- false)
      !touched;
    e_new -. t.base_error
  end

type mode = Exact | Approximate

let score ?(mode = Exact) t ~shortlist lacs =
  let ranked =
    List.map (fun lac -> (rank_score t lac, lac)) lacs
    |> List.sort (fun (ra, la) (rb, lb) ->
           match compare ra rb with
           | 0 -> compare lb.Lac.area_gain la.Lac.area_gain
           | c -> c)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, lac) :: rest -> lac :: take (n - 1) rest
  in
  let chosen = take shortlist ranked in
  let evaluate =
    match mode with Exact -> exact_delta t | Approximate -> rank_score t
  in
  let scored = List.map (fun lac -> Lac.with_delta lac (evaluate lac)) chosen in
  List.sort
    (fun a b ->
      match compare a.Lac.delta_error b.Lac.delta_error with
      | 0 -> compare b.Lac.area_gain a.Lac.area_gain
      | c -> c)
    scored

let evaluations t = t.evaluations
