lib/aig/aig.mli: Accals_network
