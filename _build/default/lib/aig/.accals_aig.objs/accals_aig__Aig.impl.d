lib/aig/aig.ml: Accals_network Array Gate Hashtbl Network Structure
