(* Follow Buf chains to the real driver. *)
let rec resolve t id =
  match Network.op t id with
  | Gate.Buf -> resolve t (Network.fanins t id).(0)
  | _ -> id

let const_of t id =
  match Network.op t id with Gate.Const b -> Some b | _ -> None

(* Simplified definition for an And/Or-family gate: drop absorbing/identity
   constants, deduplicate fanins, detect complementary pairs. [absorbing] is
   the fanin value that forces the output (false for And, true for Or);
   [invert] tells whether the gate complements (Nand/Nor). *)
let simplify_and_or t id fanins ~absorbing ~invert =
  let keep = ref [] in
  let forced = ref false in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun f ->
      match const_of t f with
      | Some b -> if b = absorbing then forced := true
      | None -> if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          keep := f :: !keep
        end)
    fanins;
  (* Complementary pair: x and Not x together force the absorbing value. *)
  let complement_present =
    List.exists
      (fun f ->
        match Network.op t f with
        | Gate.Not -> Hashtbl.mem seen (Network.fanins t f).(0)
        | Gate.Const _ | Gate.Input | Gate.Buf | Gate.And | Gate.Or
        | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux -> false)
      !keep
  in
  if !forced || complement_present then
    Network.replace ~check_cycle:false t id (Gate.Const (absorbing <> invert)) [||]
  else
    match !keep with
    | [] ->
      (* All fanins were the identity constant. *)
      Network.replace ~check_cycle:false t id (Gate.Const (absorbing = invert)) [||]
    | [ f ] ->
      Network.replace ~check_cycle:false t id (if invert then Gate.Not else Gate.Buf) [| f |]
    | fs ->
      let op = if invert then (if absorbing then Gate.Nor else Gate.Nand)
               else if absorbing then Gate.Or
               else Gate.And
      in
      Network.replace ~check_cycle:false t id op (Array.of_list (List.rev fs))

let simplify_xor t id fanins ~invert =
  (* Count parity of each non-constant fanin; constants fold into the flip. *)
  let flip = ref invert in
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun f ->
      match const_of t f with
      | Some b -> if b then flip := not !flip
      | None ->
        let c = try Hashtbl.find counts f with Not_found -> 0 in
        Hashtbl.replace counts f (c + 1))
    fanins;
  let keep =
    Hashtbl.fold (fun f c acc -> if c mod 2 = 1 then f :: acc else acc) counts []
  in
  match keep with
  | [] -> Network.replace ~check_cycle:false t id (Gate.Const !flip) [||]
  | [ f ] ->
    Network.replace ~check_cycle:false t id (if !flip then Gate.Not else Gate.Buf) [| f |]
  | fs ->
    let op = if !flip then Gate.Xnor else Gate.Xor in
    Network.replace ~check_cycle:false t id op (Array.of_list (List.sort compare fs))

let simplify_node t id =
  let fanins = Array.map (resolve t) (Network.fanins t id) in
  match Network.op t id with
  | Gate.Input | Gate.Const _ -> ()
  | Gate.Buf ->
    Network.replace ~check_cycle:false t id Gate.Buf fanins
  | Gate.Not -> begin
    match const_of t fanins.(0) with
    | Some b -> Network.replace ~check_cycle:false t id (Gate.Const (not b)) [||]
    | None ->
      (* Not (Not x) = x *)
      (match Network.op t fanins.(0) with
       | Gate.Not ->
         Network.replace ~check_cycle:false t id Gate.Buf
           [| (Network.fanins t fanins.(0)).(0) |]
       | Gate.Const _ | Gate.Input | Gate.Buf | Gate.And | Gate.Or
       | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux ->
         Network.replace ~check_cycle:false t id Gate.Not fanins)
  end
  | Gate.And -> simplify_and_or t id fanins ~absorbing:false ~invert:false
  | Gate.Nand -> simplify_and_or t id fanins ~absorbing:false ~invert:true
  | Gate.Or -> simplify_and_or t id fanins ~absorbing:true ~invert:false
  | Gate.Nor -> simplify_and_or t id fanins ~absorbing:true ~invert:true
  | Gate.Xor -> simplify_xor t id fanins ~invert:false
  | Gate.Xnor -> simplify_xor t id fanins ~invert:true
  | Gate.Mux -> begin
    let sel = fanins.(0) and a = fanins.(1) and b = fanins.(2) in
    match const_of t sel, const_of t a, const_of t b with
    | Some true, _, _ -> Network.replace ~check_cycle:false t id Gate.Buf [| a |]
    | Some false, _, _ -> Network.replace ~check_cycle:false t id Gate.Buf [| b |]
    | None, Some true, Some false -> Network.replace ~check_cycle:false t id Gate.Buf [| sel |]
    | None, Some false, Some true -> Network.replace ~check_cycle:false t id Gate.Not [| sel |]
    | None, Some va, Some vb when va = vb ->
      Network.replace ~check_cycle:false t id (Gate.Const va) [||]
    | None, Some true, None -> Network.replace ~check_cycle:false t id Gate.Or [| sel; b |]
    | None, Some false, None ->
      (* ~sel AND b: build via Nor (sel, ~b)? Keep simple: Mux stays. *)
      if a = b then Network.replace ~check_cycle:false t id Gate.Buf [| a |]
      else Network.replace ~check_cycle:false t id Gate.Mux [| sel; a; b |]
    | None, None, Some false -> Network.replace ~check_cycle:false t id Gate.And [| sel; a |]
    | None, None, Some true | None, None, None | None, Some _, Some _ ->
      if a = b then Network.replace ~check_cycle:false t id Gate.Buf [| a |]
      else Network.replace ~check_cycle:false t id Gate.Mux [| sel; a; b |]
  end

let sweep t =
  let order = Structure.topo_order ~live_only:true t in
  Array.iter (fun id -> simplify_node t id) order;
  let outputs =
    Array.map2
      (fun nm id -> (nm, resolve t id))
      (Network.output_names t) (Network.outputs t)
  in
  Network.set_outputs t outputs

let strash t =
  let table : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let key id =
    let fanins = Array.map (resolve t) (Network.fanins t id) in
    let op = Network.op t id in
    (match op with
     | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
       Array.sort compare fanins
     | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux -> ());
    Gate.to_string op ^ ":"
    ^ String.concat "," (Array.to_list (Array.map string_of_int fanins))
  in
  let order = Structure.topo_order ~live_only:true t in
  Array.iter
    (fun id ->
      if not (Network.is_input t id) then begin
        (* Rewire through any buffers created by earlier merges. *)
        let fanins = Array.map (resolve t) (Network.fanins t id) in
        Network.replace ~check_cycle:false t id (Network.op t id) fanins;
        let k = key id in
        match Hashtbl.find_opt table k with
        | Some rep when rep <> id ->
          Network.replace ~check_cycle:false t id Gate.Buf [| rep |]
        | Some _ -> ()
        | None -> Hashtbl.add table k id
      end)
    order;
  let outputs =
    Array.map2
      (fun nm id -> (nm, resolve t id))
      (Network.output_names t) (Network.outputs t)
  in
  Network.set_outputs t outputs

let compact t =
  let fresh = Network.create ~name:(Network.name t) () in
  let n = Network.num_nodes t in
  let live = Structure.live_set t in
  let remap = Array.make n (-1) in
  (* Keep every PI (even logically dead ones) so the interface is stable. *)
  Array.iteri
    (fun i id -> remap.(id) <- Network.add_input fresh (Network.input_names t).(i))
    (Network.inputs t);
  let order = Structure.topo_order ~live_only:false t in
  Array.iter
    (fun id ->
      if live.(id) && remap.(id) = -1 then
        remap.(id) <-
          Network.add_node fresh (Network.op t id)
            (Array.map (fun f -> remap.(f)) (Network.fanins t id)))
    order;
  Network.set_outputs fresh
    (Array.map2
       (fun nm id -> (nm, remap.(id)))
       (Network.output_names t) (Network.outputs t));
  fresh
