lib/network/sim.ml: Accals_bitvec Array Gate Network
