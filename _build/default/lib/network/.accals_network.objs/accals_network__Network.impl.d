lib/network/network.ml: Array Gate Printf
