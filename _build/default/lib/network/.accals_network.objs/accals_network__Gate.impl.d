lib/network/gate.ml: Array
