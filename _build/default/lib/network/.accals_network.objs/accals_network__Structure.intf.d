lib/network/structure.mli: Accals_bitvec Network
