lib/network/network.mli: Gate
