lib/network/cleanup.ml: Array Gate Hashtbl List Network String Structure
