lib/network/cleanup.mli: Network
