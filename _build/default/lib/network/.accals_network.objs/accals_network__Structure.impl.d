lib/network/structure.ml: Accals_bitvec Array Hashtbl List Network Queue
