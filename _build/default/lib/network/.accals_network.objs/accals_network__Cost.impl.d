lib/network/cost.ml: Array Gate List Network Structure
