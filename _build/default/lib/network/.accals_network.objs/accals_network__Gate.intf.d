lib/network/gate.mli:
