lib/network/sim.mli: Accals_bitvec Network
