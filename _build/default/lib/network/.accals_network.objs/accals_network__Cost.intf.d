lib/network/cost.mli: Gate Network
