type t = {
  mutable name : string;
  mutable ops : Gate.op array;
  mutable fanin_arrays : int array array;
  mutable used : int;
  mutable input_ids : int array;
  mutable input_name_list : string array;
  mutable output_ids : int array;
  mutable output_name_array : string array;
}

exception Cycle of int

let create ?(name = "net") () =
  {
    name;
    ops = Array.make 64 (Gate.Const false);
    fanin_arrays = Array.make 64 [||];
    used = 0;
    input_ids = [||];
    input_name_list = [||];
    output_ids = [||];
    output_name_array = [||];
  }

let name t = t.name
let set_name t s = t.name <- s

let grow t =
  let cap = Array.length t.ops in
  if t.used = cap then begin
    let ops = Array.make (2 * cap) (Gate.Const false) in
    let fis = Array.make (2 * cap) [||] in
    Array.blit t.ops 0 ops 0 cap;
    Array.blit t.fanin_arrays 0 fis 0 cap;
    t.ops <- ops;
    t.fanin_arrays <- fis
  end

let alloc t op fanins =
  grow t;
  let id = t.used in
  t.ops.(id) <- op;
  t.fanin_arrays.(id) <- fanins;
  t.used <- t.used + 1;
  id

let add_input t nm =
  let id = alloc t Gate.Input [||] in
  t.input_ids <- Array.append t.input_ids [| id |];
  t.input_name_list <- Array.append t.input_name_list [| nm |];
  id

let check_def t op fanins =
  if not (Gate.arity_ok op (Array.length fanins)) then
    invalid_arg "Network: arity violation";
  Array.iter
    (fun f ->
      if f < 0 || f >= t.used then invalid_arg "Network: unknown fanin id")
    fanins

let add_node t op fanins =
  if op = Gate.Input then invalid_arg "Network.add_node: use add_input";
  check_def t op fanins;
  alloc t op fanins

let set_outputs t pairs =
  Array.iter
    (fun (_, id) ->
      if id < 0 || id >= t.used then invalid_arg "Network: unknown output id")
    pairs;
  t.output_ids <- Array.map snd pairs;
  t.output_name_array <- Array.map fst pairs

let num_nodes t = t.used
let op t id = t.ops.(id)
let fanins t id = t.fanin_arrays.(id)
let inputs t = t.input_ids
let outputs t = t.output_ids
let output_names t = t.output_name_array
let input_names t = t.input_name_list
let is_input t id = t.ops.(id) = Gate.Input

(* Is [src] in the transitive fanin of [dst]? Iterative DFS over fanins. *)
let reaches t ~src ~dst =
  if src = dst then true
  else begin
    let seen = Array.make t.used false in
    let stack = ref [ dst ] in
    let found = ref false in
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        if not seen.(id) then begin
          seen.(id) <- true;
          let fis = t.fanin_arrays.(id) in
          for i = 0 to Array.length fis - 1 do
            let f = fis.(i) in
            if f = src then found := true else if not seen.(f) then stack := f :: !stack
          done
        end
    done;
    !found
  end

let replace ?(check_cycle = true) t id op fanins =
  if id < 0 || id >= t.used then invalid_arg "Network.replace: unknown id";
  if t.ops.(id) = Gate.Input then invalid_arg "Network.replace: primary input";
  if op = Gate.Input then invalid_arg "Network.replace: cannot become input";
  check_def t op fanins;
  if check_cycle then
    Array.iter
      (fun f -> if f = id || reaches t ~src:id ~dst:f then raise (Cycle id))
      fanins;
  t.ops.(id) <- op;
  t.fanin_arrays.(id) <- fanins

let eval t input_values =
  if Array.length input_values <> Array.length t.input_ids then
    invalid_arg "Network.eval: wrong input count";
  let value = Array.make t.used false in
  let computed = Array.make t.used false in
  Array.iteri
    (fun i id ->
      value.(id) <- input_values.(i);
      computed.(id) <- true)
    t.input_ids;
  (* Evaluate on demand with an explicit stack (the network can be deep). *)
  let rec force id =
    if not computed.(id) then begin
      let fis = t.fanin_arrays.(id) in
      Array.iter force fis;
      let vs = Array.map (fun f -> value.(f)) fis in
      value.(id) <- Gate.eval t.ops.(id) vs;
      computed.(id) <- true
    end
  in
  Array.map
    (fun id ->
      force id;
      value.(id))
    t.output_ids

let copy t =
  {
    name = t.name;
    ops = Array.copy t.ops;
    fanin_arrays = Array.map Array.copy (Array.sub t.fanin_arrays 0 (Array.length t.fanin_arrays));
    used = t.used;
    input_ids = Array.copy t.input_ids;
    input_name_list = Array.copy t.input_name_list;
    output_ids = Array.copy t.output_ids;
    output_name_array = Array.copy t.output_name_array;
  }

let validate t =
  for id = 0 to t.used - 1 do
    let fis = t.fanin_arrays.(id) in
    if not (Gate.arity_ok t.ops.(id) (Array.length fis)) then
      failwith (Printf.sprintf "node %d: arity violation" id);
    Array.iter
      (fun f ->
        if f < 0 || f >= t.used then
          failwith (Printf.sprintf "node %d: fanin %d out of range" id f))
      fis
  done;
  (* Acyclicity via DFS coloring. *)
  let color = Array.make t.used 0 in
  let rec visit id =
    if color.(id) = 1 then failwith (Printf.sprintf "cycle through node %d" id);
    if color.(id) = 0 then begin
      color.(id) <- 1;
      Array.iter visit t.fanin_arrays.(id);
      color.(id) <- 2
    end
  in
  for id = 0 to t.used - 1 do
    visit id
  done;
  Array.iter
    (fun id ->
      if id < 0 || id >= t.used then failwith "output id out of range")
    t.output_ids
