(** Normalized area/delay cost model.

    Stand-in for technology mapping with the MCNC library in the paper: every
    gate has an area and a delay normalized to the INV_X1 inverter. N-ary
    gates are costed as balanced trees of 2-input gates. The paper reports
    area/delay/ADP *ratios* between approximate and original circuits, which
    this consistent model preserves. *)

val gate_area : Gate.op -> int -> float
(** [gate_area op k] is the area of a gate with operator [op] and [k]
    fanins. Inputs, constants and buffers are free. *)

val gate_delay : Gate.op -> int -> float
(** Pin-to-pin delay under the same normalization. *)

val area : Network.t -> float
(** Total area of live gates. *)

val delay : Network.t -> float
(** Critical-path delay over live gates. *)

val area_of_nodes : Network.t -> int list -> float
(** Sum of gate areas of an explicit node set (e.g. an MFFC). *)

val adp : Network.t -> float
(** Area-delay product. *)

val aig_node_count : Network.t -> int
(** Estimated size of the network's AND-inverter-graph representation
    (2-input AND nodes after decomposition; inverters are edge attributes
    and cost nothing). Used to pick the paper's size-dependent parameters
    and to report Table I's "#Nd" column. *)
