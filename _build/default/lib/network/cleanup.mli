(** Network simplification after LAC application.

    {!sweep} simplifies in place without renumbering: it resolves buffer
    chains, propagates constants, removes duplicate/complementary fanins and
    rewires the primary outputs. Node ids stay stable so LAC bookkeeping
    survives. Nodes that become unreachable are left allocated; the live-set
    analysis and the cost model ignore them.

    {!compact} rebuilds a dense equivalent network for export. *)

val sweep : Network.t -> unit
(** Simplify in place. Preserves the Boolean function of every primary
    output. *)

val strash : Network.t -> unit
(** Structural hashing: merge gates with identical operator and fanins
    (commutative operators compare fanins as multisets). Duplicates become
    buffers to the surviving representative; run {!sweep} afterwards to
    resolve them. Increases logic sharing the way ABC's [strash] does. *)

val compact : Network.t -> Network.t
(** Fresh network containing only live nodes, densely renumbered, same PI/PO
    names and functions. *)
