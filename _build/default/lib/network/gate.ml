type op =
  | Const of bool
  | Input
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux

let arity_ok op k =
  match op with
  | Const _ | Input -> k = 0
  | Buf | Not -> k = 1
  | Mux -> k = 3
  | And | Or | Nand | Nor | Xor | Xnor -> k >= 2

let eval op vs =
  if not (arity_ok op (Array.length vs)) then
    invalid_arg "Gate.eval: arity violation";
  let all_true () = Array.for_all (fun v -> v) vs in
  let any_true () = Array.exists (fun v -> v) vs in
  let parity () = Array.fold_left (fun acc v -> acc <> v) false vs in
  match op with
  | Const b -> b
  | Input -> invalid_arg "Gate.eval: Input has no local function"
  | Buf -> vs.(0)
  | Not -> not vs.(0)
  | And -> all_true ()
  | Nand -> not (all_true ())
  | Or -> any_true ()
  | Nor -> not (any_true ())
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Mux -> if vs.(0) then vs.(1) else vs.(2)

let to_string = function
  | Const false -> "const0"
  | Const true -> "const1"
  | Input -> "input"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Mux -> "mux"

let equal (a : op) (b : op) = a = b
