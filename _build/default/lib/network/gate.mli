(** Gate operators for the Boolean network.

    [And]/[Or]/[Nand]/[Nor]/[Xor]/[Xnor] are n-ary (arity >= 2); [Xor] and
    [Xnor] compute parity. [Mux] takes fanins [sel; a; b] and returns [a]
    when [sel] is true, else [b]. [Buf] is a zero-cost alias used when a LAC
    replaces a node by an existing signal. *)

type op =
  | Const of bool
  | Input
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux

val arity_ok : op -> int -> bool
(** [arity_ok op k] is true when a gate with operator [op] may have [k]
    fanins. *)

val eval : op -> bool array -> bool
(** Evaluate the operator on concrete fanin values. Raises
    [Invalid_argument] on an arity violation or on [Input]. *)

val to_string : op -> string

val equal : op -> op -> bool
