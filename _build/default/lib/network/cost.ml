(* Areas/delays normalized to an inverter, loosely following the MCNC
   library's relative gate sizes. *)
let base = function
  | Gate.Const _ | Gate.Input | Gate.Buf -> (0.0, 0.0)
  | Gate.Not -> (1.0, 1.0)
  | Gate.Nand -> (2.0, 1.0)
  | Gate.Nor -> (2.0, 1.4)
  | Gate.And -> (3.0, 1.9)
  | Gate.Or -> (3.0, 2.4)
  | Gate.Xor -> (5.0, 1.9)
  | Gate.Xnor -> (5.0, 2.1)
  | Gate.Mux -> (6.0, 2.4)

let ceil_log2 k =
  let rec go acc v = if v >= k then acc else go (acc + 1) (v * 2) in
  go 0 1

let gate_area op k =
  let a, _ = base op in
  match op with
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
    a *. float_of_int (max 1 (k - 1))
  | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux -> a

let gate_delay op k =
  let _, d = base op in
  match op with
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
    d *. float_of_int (max 1 (ceil_log2 (max 2 k)))
  | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not | Gate.Mux -> d

let area t =
  let live = Structure.live_set t in
  let total = ref 0.0 in
  for id = 0 to Network.num_nodes t - 1 do
    if live.(id) then
      total :=
        !total +. gate_area (Network.op t id) (Array.length (Network.fanins t id))
  done;
  !total

let delay t =
  let order = Structure.topo_order t in
  let arrival = Array.make (Network.num_nodes t) 0.0 in
  Array.iter
    (fun id ->
      let fis = Network.fanins t id in
      let worst = Array.fold_left (fun acc f -> max acc arrival.(f)) 0.0 fis in
      arrival.(id) <-
        worst +. gate_delay (Network.op t id) (Array.length fis))
    order;
  Array.fold_left (fun acc id -> max acc arrival.(id)) 0.0 (Network.outputs t)

let area_of_nodes t ids =
  List.fold_left
    (fun acc id ->
      acc +. gate_area (Network.op t id) (Array.length (Network.fanins t id)))
    0.0 ids

let adp t = area t *. delay t

(* AND-node count of the gate's AIG decomposition. *)
let aig_nodes_of_gate op k =
  match op with
  | Gate.Const _ | Gate.Input | Gate.Buf | Gate.Not -> 0
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> max 0 (k - 1)
  | Gate.Xor | Gate.Xnor -> 3 * max 0 (k - 1)
  | Gate.Mux -> 3

let aig_node_count t =
  let live = Structure.live_set t in
  let total = ref 0 in
  for id = 0 to Network.num_nodes t - 1 do
    if live.(id) then
      total :=
        !total
        + aig_nodes_of_gate (Network.op t id) (Array.length (Network.fanins t id))
  done;
  !total
