lib/baselines/amosa.ml: Accals Accals_bitvec Accals_esterr Accals_lac Accals_metrics Accals_network Array Candidate_gen Cleanup Cost Lac List Network Round_ctx Sim Unix
