lib/baselines/amosa.mli: Accals Accals_metrics Accals_network Network Sim
