lib/baselines/seals.ml: Accals Accals_esterr Accals_lac Accals_metrics Accals_network Candidate_gen Cleanup Cost Lac List Network Round_ctx Sim Unix
