lib/baselines/seals.mli: Accals Accals_metrics Accals_network Network Sim
