open Accals_network
module B = Builder

(* Classic restoring long division, unrolled: process dividend bits from the
   most significant down, shifting them into a partial remainder that is
   compared against the divisor. Remainder register is divisor_width+1 bits
   to hold the shifted-in bit before subtraction. *)
let restoring ~dividend_width ~divisor_width =
  let t =
    Network.create
      ~name:(Printf.sprintf "div%d_%d" dividend_width divisor_width) ()
  in
  let n = B.bus t "n" dividend_width in
  let d = B.bus t "d" divisor_width in
  let zero = B.const_ t false in
  let rem = ref (Array.make divisor_width zero) in
  let quotient = Array.make dividend_width zero in
  let d_ext = Array.append d [| zero |] in
  for i = dividend_width - 1 downto 0 do
    (* shifted = (rem << 1) | n_i, one bit wider than rem *)
    let shifted = Array.append [| n.(i) |] !rem in
    let diff, no_borrow = B.ripple_sub t shifted d_ext in
    quotient.(i) <- no_borrow;
    (* keep diff when it fits, else restore shifted; drop the top bit. *)
    let next = B.mux_bus t ~sel:no_borrow diff shifted in
    rem := Array.sub next 0 divisor_width
  done;
  let outs =
    Array.append (B.set_output_bus t "q" quotient) (B.set_output_bus t "r" !rem)
  in
  Network.set_outputs t outs;
  t
