open Accals_network
module B = Builder

let partial_products t a b =
  let wa = Array.length a and wb = Array.length b in
  Array.init wa (fun i -> Array.init wb (fun j -> B.and2 t a.(i) b.(j)))

let finish t prod =
  Network.set_outputs t (B.set_output_bus t "p" prod);
  t

(* Row-by-row carry-save accumulation. *)
let array_core t a b =
  let wa = Array.length a and wb = Array.length b in
  let pp = partial_products t a b in
  let width = wa + wb in
  let zero = B.const_ t false in
  (* Accumulate row j of partial products, shifted by j, into a running sum. *)
  let sum = ref (Array.make width zero) in
  for j = 0 to wb - 1 do
    let row = Array.make width zero in
    for i = 0 to wa - 1 do
      row.(i + j) <- pp.(i).(j)
    done;
    if j = 0 then sum := row
    else begin
      let s, _carry = B.ripple_add t !sum row ~cin:zero in
      sum := s
    end
  done;
  !sum

let array_multiplier ~width =
  let t = Network.create ~name:(Printf.sprintf "mtp%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  finish t (array_core t a b)

(* Wallace reduction: per-column dot counts reduced with full/half adders
   until every column has at most two bits, then one ripple addition. *)
let wallace_core t a b =
  let wa = Array.length a and wb = Array.length b in
  let width = wa + wb in
  let pp = partial_products t a b in
  let columns = Array.make width [] in
  for i = 0 to wa - 1 do
    for j = 0 to wb - 1 do
      columns.(i + j) <- pp.(i).(j) :: columns.(i + j)
    done
  done;
  let reduced = ref false in
  while not !reduced do
    reduced := true;
    let next = Array.make width [] in
    for c = 0 to width - 1 do
      let rec chew = function
        | x :: y :: z :: rest ->
          let s, carry = B.full_adder t x y z in
          next.(c) <- s :: next.(c);
          if c + 1 < width then next.(c + 1) <- carry :: next.(c + 1);
          reduced := false;
          chew rest
        | [ x; y ] when List.length columns.(c) > 2 ->
          let s, carry = B.half_adder t x y in
          next.(c) <- s :: next.(c);
          if c + 1 < width then next.(c + 1) <- carry :: next.(c + 1)
        | rest -> next.(c) <- rest @ next.(c)
      in
      chew columns.(c)
    done;
    Array.blit next 0 columns 0 width
  done;
  let zero = B.const_ t false in
  let pick n col = match col with
    | [] -> zero
    | x :: rest -> if n = 0 then x else (match rest with [] -> zero | y :: _ -> y)
  in
  let row0 = Array.init width (fun c -> pick 0 columns.(c)) in
  let row1 = Array.init width (fun c -> pick 1 columns.(c)) in
  let sums, _ = B.ripple_add t row0 row1 ~cin:zero in
  sums

let wallace ~width =
  let t = Network.create ~name:(Printf.sprintf "wal%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  finish t (wallace_core t a b)

(* Dadda reduction: bring every column height down to the largest member of
   the 2,3,4,6,9,13,... sequence below the current maximum, stage by stage,
   using as few counters as possible. *)
let dadda ~width =
  let t = Network.create ~name:(Printf.sprintf "dadda%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  let pp = partial_products t a b in
  let total = 2 * width in
  let columns = Array.make total [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      columns.(i + j) <- pp.(i).(j) :: columns.(i + j)
    done
  done;
  let height () = Array.fold_left (fun acc col -> max acc (List.length col)) 0 columns in
  let stage_below h =
    let rec go d = if d * 3 / 2 >= h then d else go (d * 3 / 2) in
    if h <= 2 then 2 else go 2
  in
  while height () > 2 do
    let limit = stage_below (height ()) in
    for c = 0 to total - 1 do
      (* Reduce column c until it fits the limit, counting carries that
         earlier columns have already pushed into it. *)
      let rec reduce col =
        let extra = List.length col - limit in
        if extra >= 2 then begin
          match col with
          | x :: y :: z :: rest ->
            let s, carry = B.full_adder t x y z in
            if c + 1 < total then columns.(c + 1) <- carry :: columns.(c + 1);
            reduce (s :: rest)
          | _ -> col
        end
        else if extra = 1 then begin
          match col with
          | x :: y :: rest ->
            let s, carry = B.half_adder t x y in
            if c + 1 < total then columns.(c + 1) <- carry :: columns.(c + 1);
            reduce (s :: rest)
          | _ -> col
        end
        else col
      in
      columns.(c) <- reduce columns.(c)
    done
  done;
  let zero = B.const_ t false in
  let pick n col = match col with
    | [] -> zero
    | x :: rest -> if n = 0 then x else (match rest with [] -> zero | y :: _ -> y)
  in
  let row0 = Array.init total (fun c -> pick 0 columns.(c)) in
  let row1 = Array.init total (fun c -> pick 1 columns.(c)) in
  let sums, _ = B.ripple_add t row0 row1 ~cin:zero in
  finish t sums

let square ~width =
  let t = Network.create ~name:(Printf.sprintf "square%d" width) () in
  let a = B.bus t "a" width in
  finish t (array_core t a a)
