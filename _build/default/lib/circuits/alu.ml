open Accals_network
module B = Builder

let make ?(rich = false) ?(ops = 8) ~width ~name () =
  if ops <> 4 && ops <> 8 then invalid_arg "Alu.make: ops must be 4 or 8";
  let t = Network.create ~name () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  let sel_bits = if ops = 4 then 2 else 3 in
  let sel = B.bus t "op" sel_bits in
  let and_bus = Array.init width (fun i -> B.and2 t a.(i) b.(i)) in
  let or_bus = Array.init width (fun i -> B.or2 t a.(i) b.(i)) in
  let xor_bus = Array.init width (fun i -> B.xor2 t a.(i) b.(i)) in
  let nor_bus = Array.init width (fun i -> B.nor2 t a.(i) b.(i)) in
  let zero = B.const_ t false in
  let add_bus, add_carry = B.ripple_add t a b ~cin:zero in
  let sub_bus, no_borrow = B.ripple_sub t a b in
  (* Signed less-than: sign(a) & ~sign(b)  |  (sign equal & sign(diff)). *)
  let sa = a.(width - 1) and sb = b.(width - 1) in
  let slt =
    B.or2 t
      (B.and2 t sa (B.not_ t sb))
      (B.and2 t (B.xnor2 t sa sb) sub_bus.(width - 1))
  in
  let slt_bus = Array.init width (fun i -> if i = 0 then slt else zero) in
  let result =
    if ops = 4 then begin
      (* 00:and 01:or 10:add 11:sub *)
      let lo = B.mux_bus t ~sel:sel.(0) or_bus and_bus in
      let hi = B.mux_bus t ~sel:sel.(0) sub_bus add_bus in
      B.mux_bus t ~sel:sel.(1) hi lo
    end
    else begin
      (* 000:and 001:or 010:xor 011:nor 100:add 101:sub 110:slt 111:passb *)
      let m00 = B.mux_bus t ~sel:sel.(0) or_bus and_bus in
      let m01 = B.mux_bus t ~sel:sel.(0) nor_bus xor_bus in
      let m10 = B.mux_bus t ~sel:sel.(0) sub_bus add_bus in
      let m11 = B.mux_bus t ~sel:sel.(0) b slt_bus in
      let lo = B.mux_bus t ~sel:sel.(1) m01 m00 in
      let hi = B.mux_bus t ~sel:sel.(1) m11 m10 in
      B.mux_bus t ~sel:sel.(2) hi lo
    end
  in
  let result =
    if rich then begin
      (* Left barrel shift of the result by the low log2(width) bits of b. *)
      let shift_bits =
        let rec log2 acc v = if v >= width then acc else log2 (acc + 1) (v * 2) in
        log2 0 1
      in
      let shifted = ref result in
      for s = 0 to shift_bits - 1 do
        let amount = 1 lsl s in
        let moved =
          Array.init width (fun i ->
              if i < amount then zero else !shifted.(i - amount))
        in
        shifted := B.mux_bus t ~sel:b.(s) moved !shifted
      done;
      B.mux_bus t ~sel:(B.and2 t sel.(sel_bits - 1) a.(0)) !shifted result
    end
    else result
  in
  let zero_flag = B.zero_detect t result in
  let base = Array.append (B.set_output_bus t "r" result) [| ("zero", zero_flag) |] in
  let outs =
    if rich then begin
      let overflow =
        (* Signed overflow of the add path. *)
        B.and2 t (B.xnor2 t sa sb) (B.xor2 t sa add_bus.(width - 1))
      in
      let parity = B.xorn t result in
      Array.append base
        [| ("carry", B.or2 t add_carry (B.not_ t no_borrow));
           ("overflow", overflow);
           ("parity", parity) |]
    end
    else base
  in
  Network.set_outputs t outs;
  t
