(** Seeded pseudo-random multi-level logic (stand-in for the LGSynt91
    control-dominated benchmarks apex6 / frg2 / term1). *)

open Accals_network

val make :
  name:string -> inputs:int -> outputs:int -> gates:int -> seed:int -> Network.t
(** Random DAG with locality-biased fanin selection so depth grows with
    size, every input used, and the requested number of outputs drawn from
    the deepest signals. Deterministic in [seed]. *)

val pla :
  name:string -> inputs:int -> outputs:int -> terms:int -> seed:int -> Network.t
(** Random two-level (PLA-style) logic: shared random product terms ORed
    into each output. Deterministic in [seed]. *)
