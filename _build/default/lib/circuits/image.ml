open Accals_network
module B = Builder

let zero_extend t bus width =
  let zero = B.const_ t false in
  Array.init width (fun i -> if i < Array.length bus then bus.(i) else zero)

let shift_left t bus k width =
  let zero = B.const_ t false in
  Array.init width (fun i -> if i < k then zero else if i - k < Array.length bus then bus.(i - k) else zero)

(* a + b at the given width (carries beyond the width are kept by sizing
   the width generously at the call sites). *)
let add t a b width =
  let zero = B.const_ t false in
  let sums, _ = B.ripple_add t (zero_extend t a width) (zero_extend t b width) ~cin:zero in
  sums

(* |a - b| for unsigned buses of equal width. *)
let abs_diff t a b =
  let diff, a_ge_b = B.ripple_sub t a b in
  let rdiff, _ = B.ripple_sub t b a in
  B.mux_bus t ~sel:a_ge_b diff rdiff

let sobel_magnitude ~pixel_bits =
  let t = Network.create ~name:(Printf.sprintf "sobel%d" pixel_bits) () in
  let px r c = B.bus t (Printf.sprintf "p%d%d" r c) pixel_bits in
  let p = Array.init 3 (fun r -> Array.init 3 (fun c -> px r c)) in
  (* Weighted sums fit in pixel_bits + 2. *)
  let w = pixel_bits + 2 in
  let side a b2 c =
    (* a + 2*b + c *)
    let doubled = shift_left t b2 1 w in
    add t (add t a doubled w) c w
  in
  let gx_pos = side p.(0).(2) p.(1).(2) p.(2).(2) in
  let gx_neg = side p.(0).(0) p.(1).(0) p.(2).(0) in
  let gy_pos = side p.(2).(0) p.(2).(1) p.(2).(2) in
  let gy_neg = side p.(0).(0) p.(0).(1) p.(0).(2) in
  let gx = abs_diff t gx_pos gx_neg in
  let gy = abs_diff t gy_pos gy_neg in
  let m = add t gx gy (pixel_bits + 3) in
  Network.set_outputs t (B.set_output_bus t "m" m);
  t

let rgb_to_gray ~pixel_bits =
  let t = Network.create ~name:(Printf.sprintf "gray%d" pixel_bits) () in
  let r = B.bus t "r" pixel_bits in
  let g = B.bus t "g" pixel_bits in
  let b = B.bus t "b" pixel_bits in
  let w = pixel_bits + 2 in
  let total = add t (add t r (shift_left t g 1 w) w) b w in
  (* divide by 4: drop the two low bits *)
  let y = Array.sub total 2 pixel_bits in
  Network.set_outputs t (B.set_output_bus t "y" y);
  t
