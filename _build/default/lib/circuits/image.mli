(** Image-processing datapath generators — the paper's motivating
    error-tolerant application domain. *)

open Accals_network

val sobel_magnitude : pixel_bits:int -> Network.t
(** Sobel gradient magnitude over a 3x3 pixel window (inputs p00..p22, each
    [pixel_bits] wide, row-major): |Gx| + |Gy| with
    Gx = (p02+2*p12+p22) - (p00+2*p10+p20) and
    Gy = (p20+2*p21+p22) - (p00+2*p01+p02).
    Outputs m0.. ([pixel_bits+3] bits). *)

val rgb_to_gray : pixel_bits:int -> Network.t
(** Luma approximation y = (r + 2*g + b) / 4 (shift-add BT.601 surrogate).
    Inputs r0.., g0.., b0..; outputs y0.. ([pixel_bits] bits). *)
