(** Combinational restoring array divider (EPFL 'div' stand-in).

    Unsigned division: dividend n0..n{nw-1} by divisor d0..d{dw-1}.
    Outputs quotient q0..q{nw-1} and remainder r0..r{dw-1}. Division by
    zero yields an all-ones quotient (standard restoring-array behavior is
    unspecified; we pick a total function for testability: q = all ones,
    r = dividend's low bits folded through the array). *)

open Accals_network

val restoring : dividend_width:int -> divisor_width:int -> Network.t
