open Accals_network
module B = Builder

let output_width_for coefficients width =
  let worst =
    List.fold_left (fun acc c -> acc + (c * ((1 lsl width) - 1))) 0 coefficients
  in
  let rec bits acc v = if v = 0 then max acc 1 else bits (acc + 1) (v lsr 1) in
  bits 0 worst

let fir_filter ~coefficients ~width =
  if coefficients = [] then invalid_arg "fir_filter: no coefficients";
  List.iter (fun c -> if c < 0 then invalid_arg "fir_filter: negative coefficient")
    coefficients;
  let taps = List.length coefficients in
  let t = Network.create ~name:(Printf.sprintf "fir%d" taps) () in
  let xs = Array.init taps (fun i -> B.bus t (Printf.sprintf "x%d" i) width) in
  let out_width = output_width_for coefficients width in
  let zero = B.const_ t false in
  let extend bus =
    Array.init out_width (fun i -> if i < Array.length bus then bus.(i) else zero)
  in
  let shifted bus k =
    Array.init out_width (fun i ->
        if i < k then zero
        else if i - k < Array.length bus then bus.(i - k)
        else zero)
  in
  (* c * x as a sum of shifted copies, one per set bit of c. *)
  let scaled c x =
    let terms = ref [] in
    let bit = ref 0 in
    let v = ref c in
    while !v <> 0 do
      if !v land 1 = 1 then terms := shifted x !bit :: !terms;
      incr bit;
      v := !v lsr 1
    done;
    !terms
  in
  let all_terms =
    List.concat (List.mapi (fun i c -> scaled c xs.(i)) coefficients)
  in
  let acc =
    match all_terms with
    | [] -> extend [||]
    | first :: rest ->
      List.fold_left
        (fun acc term ->
          let sums, _ = B.ripple_add t acc term ~cin:zero in
          sums)
        first rest
  in
  Network.set_outputs t (B.set_output_bus t "y" acc);
  t

let float_adder ~exp_bits ~mantissa_bits =
  if exp_bits < 2 || mantissa_bits < 2 then invalid_arg "float_adder: too small";
  let t = Network.create ~name:(Printf.sprintf "fadd%dm%d" exp_bits mantissa_bits) () in
  let ae = B.bus t "ae" exp_bits in
  let am = B.bus t "am" mantissa_bits in
  let be = B.bus t "be" exp_bits in
  let bm = B.bus t "bm" mantissa_bits in
  let zero = B.const_ t false in
  let one = B.const_ t true in
  let is_zero_op e m = B.and2 t (B.zero_detect t e) (B.zero_detect t m) in
  let a_zero = is_zero_op ae am in
  let b_zero = is_zero_op be bm in
  (* Exponent comparison: a >= b when a - b has no borrow. *)
  let ediff_ab, a_ge_b = B.ripple_sub t ae be in
  let ediff_ba, _ = B.ripple_sub t be ae in
  let big_e = B.mux_bus t ~sel:a_ge_b ae be in
  let diff = B.mux_bus t ~sel:a_ge_b ediff_ab ediff_ba in
  (* Significands with the implicit leading one. *)
  let sig_of m = Array.append m [| one |] in
  let big_m = B.mux_bus t ~sel:a_ge_b (sig_of am) (sig_of bm) in
  let small_m = B.mux_bus t ~sel:a_ge_b (sig_of bm) (sig_of am) in
  (* Align: right shift small_m by diff (truncating); amounts beyond the
     significand width flush to zero. *)
  let sig_width = mantissa_bits + 1 in
  let shift_ctl_bits =
    let rec go acc v = if v >= sig_width + 1 then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  let aligned = ref small_m in
  for b = 0 to min (exp_bits - 1) (shift_ctl_bits - 1) do
    let amount = 1 lsl b in
    let moved =
      Array.init sig_width (fun i ->
          if i + amount < sig_width then !aligned.(i + amount) else zero)
    in
    aligned := B.mux_bus t ~sel:diff.(b) moved !aligned
  done;
  (* Any high diff bit set -> shifted out entirely. *)
  let flush =
    if exp_bits > shift_ctl_bits then begin
      let high = Array.sub diff shift_ctl_bits (exp_bits - shift_ctl_bits) in
      B.orn t high
    end
    else begin
      (* diff >= sig_width+? handled partially by the barrel; compare. *)
      zero
    end
  in
  let aligned =
    Array.map (fun bit -> B.and2 t bit (B.not_ t flush)) !aligned
  in
  (* Add significands: sig_width + 1 bits. *)
  let sums, carry = B.ripple_add t big_m aligned ~cin:zero in
  (* Normalize: on carry, shift right one and bump the exponent. *)
  let norm_m =
    Array.init mantissa_bits (fun i ->
        (* result mantissa drops the implicit bit: bits [0..m-1] of the
           normalized significand *)
        B.mux t ~sel:carry sums.(i + 1) sums.(i))
  in
  let e_plus_1, e_carry = B.ripple_add t big_e
      (Array.init exp_bits (fun i -> if i = 0 then one else zero)) ~cin:zero in
  let exp_overflow = B.and2 t carry e_carry in
  let norm_e = B.mux_bus t ~sel:carry e_plus_1 big_e in
  (* Saturate on exponent overflow. *)
  let sat_e = Array.map (fun e -> B.or2 t e exp_overflow) norm_e in
  let sat_m = Array.map (fun m -> B.or2 t m exp_overflow) norm_m in
  (* Zero-operand bypasses. *)
  let result_e = B.mux_bus t ~sel:a_zero be (B.mux_bus t ~sel:b_zero ae sat_e) in
  let result_m = B.mux_bus t ~sel:a_zero bm (B.mux_bus t ~sel:b_zero am sat_m) in
  Network.set_outputs t
    (Array.append (B.set_output_bus t "e" result_e) (B.set_output_bus t "m" result_m));
  t
