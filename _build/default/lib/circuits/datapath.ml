open Accals_network
module B = Builder

let barrel_shifter ~width =
  if width land (width - 1) <> 0 then
    invalid_arg "barrel_shifter: width must be a power of two";
  let shift_bits =
    let rec go acc v = if v >= width then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  let t = Network.create ~name:(Printf.sprintf "bshift%d" width) () in
  let a = B.bus t "a" width in
  let s = B.bus t "s" shift_bits in
  let zero = B.const_ t false in
  let value = ref a in
  for b = 0 to shift_bits - 1 do
    let amount = 1 lsl b in
    let moved =
      Array.init width (fun i ->
          if i + amount < width then !value.(i + amount) else zero)
    in
    value := B.mux_bus t ~sel:s.(b) moved !value
  done;
  Network.set_outputs t (B.set_output_bus t "y" !value);
  t

let priority_encoder ~width =
  let t = Network.create ~name:(Printf.sprintf "prienc%d" width) () in
  let x = B.bus t "x" width in
  let exp_bits =
    let rec go acc v = if v >= width then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  (* One-hot leading-one detection from the MSB down. *)
  let above = ref (B.const_ t false) in
  let lead = Array.make width 0 in
  for i = width - 1 downto 0 do
    lead.(i) <- B.and2 t x.(i) (B.not_ t !above);
    above := B.or2 t !above x.(i)
  done;
  let encoded =
    Array.init (max 1 exp_bits) (fun b ->
        let members = ref [] in
        for i = 0 to width - 1 do
          if i lsr b land 1 = 1 then members := lead.(i) :: !members
        done;
        match !members with
        | [] -> B.const_ t false
        | ms -> B.orn t (Array.of_list ms))
  in
  Network.set_outputs t
    (Array.append (B.set_output_bus t "e" encoded) [| ("valid", !above) |]);
  t

let comparator ~width =
  let t = Network.create ~name:(Printf.sprintf "cmp%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  (* Ripple from the MSB: track equality so far. *)
  let eq = ref (B.const_ t true) in
  let lt = ref (B.const_ t false) in
  let gt = ref (B.const_ t false) in
  for i = width - 1 downto 0 do
    let bit_eq = B.xnor2 t a.(i) b.(i) in
    let a_gt = B.and2 t a.(i) (B.not_ t b.(i)) in
    let a_lt = B.and2 t b.(i) (B.not_ t a.(i)) in
    gt := B.or2 t !gt (B.and2 t !eq a_gt);
    lt := B.or2 t !lt (B.and2 t !eq a_lt);
    eq := B.and2 t !eq bit_eq
  done;
  Network.set_outputs t [| ("eq", !eq); ("lt", !lt); ("gt", !gt) |];
  t

let popcount ~width =
  let t = Network.create ~name:(Printf.sprintf "popcnt%d" width) () in
  let x = B.bus t "x" width in
  let out_bits =
    let rec go acc v = if v > width then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  (* Carry-save reduction: a list of columns of bits by weight. *)
  let columns = Array.make out_bits [] in
  Array.iter (fun bit -> columns.(0) <- bit :: columns.(0)) x;
  (* Total count <= width < 2^out_bits, so no carry ever leaves the top
     column. *)
  let more = ref true in
  while !more do
    more := false;
    let next = Array.make out_bits [] in
    for c = 0 to out_bits - 1 do
      let rec chew = function
        | p :: q :: r :: rest ->
          let s, carry = B.full_adder t p q r in
          next.(c) <- s :: next.(c);
          if c + 1 < out_bits then next.(c + 1) <- carry :: next.(c + 1);
          more := true;
          chew rest
        | rest -> next.(c) <- rest @ next.(c)
      in
      chew columns.(c)
    done;
    Array.blit next 0 columns 0 out_bits
  done;
  (* Now each column has <= 2 bits: finish with a ripple addition. *)
  let zero = B.const_ t false in
  let pick n col = match col with
    | [] -> zero
    | u :: rest -> if n = 0 then u else (match rest with [] -> zero | v :: _ -> v)
  in
  let row0 = Array.init out_bits (fun c -> pick 0 columns.(c)) in
  let row1 = Array.init out_bits (fun c -> pick 1 columns.(c)) in
  let sums, _ = B.ripple_add t row0 row1 ~cin:zero in
  Network.set_outputs t (B.set_output_bus t "c" sums);
  t

let multiply_accumulate ~width =
  let t = Network.create ~name:(Printf.sprintf "mac%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  let c = B.bus t "c" (2 * width) in
  let product = Multipliers.wallace_core t a b in
  let zero = B.const_ t false in
  let sums, carry = B.ripple_add t product c ~cin:zero in
  Network.set_outputs t
    (Array.append (B.set_output_bus t "p" sums) [| (Printf.sprintf "p%d" (2 * width), carry) |]);
  t

let gray_encoder ~width =
  let t = Network.create ~name:(Printf.sprintf "gray_enc%d" width) () in
  let b = B.bus t "b" width in
  let g =
    Array.init width (fun i ->
        if i = width - 1 then B.buf t b.(i) else B.xor2 t b.(i) b.(i + 1))
  in
  Network.set_outputs t (B.set_output_bus t "g" g);
  t

let gray_decoder ~width =
  let t = Network.create ~name:(Printf.sprintf "gray_dec%d" width) () in
  let g = B.bus t "g" width in
  let b = Array.make width 0 in
  b.(width - 1) <- B.buf t g.(width - 1);
  for i = width - 2 downto 0 do
    b.(i) <- B.xor2 t g.(i) b.(i + 1)
  done;
  Network.set_outputs t (B.set_output_bus t "b" b);
  t

let saturating_adder ~width =
  let t = Network.create ~name:(Printf.sprintf "satadd%d" width) () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  let zero = B.const_ t false in
  let sums, carry = B.ripple_add t a b ~cin:zero in
  let one = B.const_ t true in
  let clamped = Array.map (fun s -> B.mux t ~sel:carry one s) sums in
  Network.set_outputs t (B.set_output_bus t "s" clamped);
  t
