open Accals_network

let bus t name width =
  Array.init width (fun i -> Network.add_input t (Printf.sprintf "%s%d" name i))

let const_ t b = Network.add_node t (Gate.Const b) [||]
let not_ t a = Network.add_node t Gate.Not [| a |]
let buf t a = Network.add_node t Gate.Buf [| a |]
let and2 t a b = Network.add_node t Gate.And [| a; b |]
let or2 t a b = Network.add_node t Gate.Or [| a; b |]
let xor2 t a b = Network.add_node t Gate.Xor [| a; b |]
let nand2 t a b = Network.add_node t Gate.Nand [| a; b |]
let nor2 t a b = Network.add_node t Gate.Nor [| a; b |]
let xnor2 t a b = Network.add_node t Gate.Xnor [| a; b |]
let mux t ~sel a b = Network.add_node t Gate.Mux [| sel; a; b |]

let rec tree f t = function
  | [||] -> invalid_arg "Builder: empty tree"
  | [| x |] -> x
  | xs ->
    let half = Array.length xs / 2 in
    let left = tree f t (Array.sub xs 0 half) in
    let right = tree f t (Array.sub xs half (Array.length xs - half)) in
    f t left right

let andn t xs = tree and2 t xs
let orn t xs = tree or2 t xs
let xorn t xs = tree xor2 t xs

let maj3 t a b c = orn t [| and2 t a b; and2 t a c; and2 t b c |]

let half_adder t a b = (xor2 t a b, and2 t a b)

let full_adder t a b c =
  let ab = xor2 t a b in
  let sum = xor2 t ab c in
  let carry = or2 t (and2 t a b) (and2 t ab c) in
  (sum, carry)

let ripple_add t a b ~cin =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Builder.ripple_add: width mismatch";
  let sums = Array.make width 0 in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = full_adder t a.(i) b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let ripple_sub t a b =
  let nb = Array.map (not_ t) b in
  let one = const_ t true in
  let diff, carry = ripple_add t a nb ~cin:one in
  (diff, carry)

let mux_bus t ~sel a b =
  if Array.length a <> Array.length b then invalid_arg "Builder.mux_bus";
  Array.init (Array.length a) (fun i -> mux t ~sel a.(i) b.(i))

let zero_detect t xs = not_ t (orn t xs)

let set_output_bus _t name ids =
  Array.mapi (fun i id -> (Printf.sprintf "%s%d" name i, id)) ids
