(** Convenience combinators for constructing networks.

    All functions take the network first; ids returned by one call feed the
    next. Multi-bit values are [int array]s with the least-significant bit at
    index 0. *)

open Accals_network

val bus : Network.t -> string -> int -> int array
(** [bus t "a" 4] adds inputs a0..a3 and returns their ids, LSB first. *)

val const_ : Network.t -> bool -> int
val not_ : Network.t -> int -> int
val buf : Network.t -> int -> int
val and2 : Network.t -> int -> int -> int
val or2 : Network.t -> int -> int -> int
val xor2 : Network.t -> int -> int -> int
val nand2 : Network.t -> int -> int -> int
val nor2 : Network.t -> int -> int -> int
val xnor2 : Network.t -> int -> int -> int
val mux : Network.t -> sel:int -> int -> int -> int
(** [mux t ~sel a b] is [a] when [sel] else [b]. *)

val andn : Network.t -> int array -> int
val orn : Network.t -> int array -> int
val xorn : Network.t -> int array -> int
(** Balanced trees of 2-input gates; singleton arrays return the signal. *)

val maj3 : Network.t -> int -> int -> int -> int
(** Majority of three, built from 2-input gates (carry function). *)

val half_adder : Network.t -> int -> int -> int * int
(** (sum, carry) *)

val full_adder : Network.t -> int -> int -> int -> int * int
(** (sum, carry) *)

val ripple_add : Network.t -> int array -> int array -> cin:int -> int array * int
(** Width-matched ripple-carry addition; returns (sums, carry out). *)

val ripple_sub : Network.t -> int array -> int array -> int array * int
(** [a - b] two's complement; returns (difference, borrow-free flag): the
    second component is 1 when [a >= b]. *)

val mux_bus : Network.t -> sel:int -> int array -> int array -> int array
(** Bitwise 2:1 select between equal-width buses. *)

val zero_detect : Network.t -> int array -> int
(** 1 when all bits are 0. *)

val set_output_bus : Network.t -> string -> int array -> (string * int) array
(** Name a bus for [Network.set_outputs]: ["s"] gives s0, s1, ... *)
