(** Adder generators (the paper's rca32 / cla32 / ksa32 benchmarks).

    All adders take buses a and b (LSB first) plus a carry-in input and
    expose sum bits s0..s{w-1} and carry-out [cout]. *)

open Accals_network

val ripple_carry : width:int -> Network.t

val carry_lookahead : width:int -> Network.t
(** 4-bit lookahead groups, groups connected in ripple fashion. *)

val kogge_stone : width:int -> Network.t
(** Parallel-prefix adder. *)

val carry_select : ?block:int -> width:int -> unit -> Network.t
(** Carry-select adder: each block computes both carry hypotheses and muxes
    on the incoming carry (default block size 4). *)

val carry_skip : ?block:int -> width:int -> unit -> Network.t
(** Carry-skip adder: ripple blocks with a propagate bypass mux. *)
