(** Hamming SEC/DED encoder-decoder (stand-in for ISCAS c1908, which is a
    16-bit SEC/DED error-correcting circuit). *)

open Accals_network

val secded_decoder : data_bits:int -> Network.t
(** Inputs: received data bits d0.. and check bits c0.. plus overall parity
    [pall]; outputs: corrected data, [single_err], [double_err]. *)

val check_bit_count : int -> int
(** Number of Hamming check bits needed for the given data width. *)
