open Accals_network
module B = Builder

let sqrt_restoring ~width =
  if width mod 2 <> 0 then invalid_arg "sqrt_restoring: width must be even";
  let t = Network.create ~name:(Printf.sprintf "sqrt%d" width) () in
  let x = B.bus t "x" width in
  let result_width = width / 2 in
  let w = width + 2 in
  let zero = B.const_ t false in
  let one = B.const_ t true in
  let pad bus = Array.append bus (Array.make (w - Array.length bus) zero) in
  let rem = ref (pad [||]) in
  let root = ref (pad [||]) in
  for i = result_width - 1 downto 0 do
    (* rem = (rem << 2) | x[2i+1..2i] *)
    let shifted = pad (Array.append [| x.(2 * i); x.(2 * i + 1) |] (Array.sub !rem 0 (w - 2))) in
    (* trial = (root << 2) | 1 *)
    let trial = pad (Array.append [| one; zero |] (Array.sub !root 0 (w - 2))) in
    let diff, no_borrow = B.ripple_sub t shifted trial in
    rem := B.mux_bus t ~sel:no_borrow diff shifted;
    (* root = (root << 1) | no_borrow *)
    root := pad (Array.append [| no_borrow |] (Array.sub !root 0 (w - 1)))
  done;
  let outs =
    Array.append
      (B.set_output_bus t "r" (Array.sub !root 0 result_width))
      (B.set_output_bus t "m" (Array.sub !rem 0 (result_width + 1)))
  in
  Network.set_outputs t outs;
  t

let log2 ~width ~fraction_bits =
  if width land (width - 1) <> 0 then invalid_arg "log2: width must be a power of two";
  let exp_bits =
    let rec go acc v = if v >= width then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  if fraction_bits >= width then invalid_arg "log2: too many fraction bits";
  let t = Network.create ~name:(Printf.sprintf "log2_%d" width) () in
  let x = B.bus t "x" width in
  (* One-hot leading-one detect from the MSB down. *)
  let any_above = Array.make width 0 in
  let acc = ref (B.const_ t false) in
  for i = width - 1 downto 0 do
    any_above.(i) <- !acc;
    acc := B.or2 t !acc x.(i)
  done;
  let valid = !acc in
  let lead = Array.init width (fun i -> B.and2 t x.(i) (B.not_ t any_above.(i))) in
  (* Exponent bits: OR of the one-hot lines whose index has that bit set. *)
  let exponent =
    Array.init exp_bits (fun b ->
        let members = ref [] in
        for i = 0 to width - 1 do
          if i lsr b land 1 = 1 then members := lead.(i) :: !members
        done;
        match !members with [] -> B.const_ t false | ms -> B.orn t (Array.of_list ms))
  in
  (* Normalize: shift left by (width-1 - e); for power-of-two widths the
     shift-amount bits are the complements of the exponent bits. *)
  let shifted = ref x in
  for b = 0 to exp_bits - 1 do
    let amount = 1 lsl b in
    let moved =
      Array.init width (fun i ->
          if i < amount then B.const_ t false else !shifted.(i - amount))
    in
    let ctrl = B.not_ t exponent.(b) in
    shifted := B.mux_bus t ~sel:ctrl moved !shifted
  done;
  (* Fraction = bits just below the (now top) leading one. *)
  let fraction =
    Array.init fraction_bits (fun k -> !shifted.(width - 2 - (fraction_bits - 1 - k)))
  in
  let outs =
    Array.concat
      [ B.set_output_bus t "e" exponent;
        B.set_output_bus t "f" fraction;
        [| ("valid", valid) |] ]
  in
  Network.set_outputs t outs;
  t

let sin_parabola ~width =
  if width < 2 then invalid_arg "sin_parabola: width too small";
  let t = Network.create ~name:(Printf.sprintf "sin%d" width) () in
  let x = B.bus t "x" width in
  let complement = Array.map (fun b -> B.not_ t b) x in
  let product = Multipliers.wallace_core t x complement in
  (* y = 4 * x * (1-x): take 2w-bit product bits [w-2 .. 2w-3]. *)
  let y = Array.init width (fun k -> product.(width - 2 + k)) in
  Network.set_outputs t (B.set_output_bus t "y" y);
  t
