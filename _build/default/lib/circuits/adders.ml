open Accals_network
module B = Builder

let interface ~name ~width =
  let t = Network.create ~name () in
  let a = B.bus t "a" width in
  let b = B.bus t "b" width in
  let cin = Network.add_input t "cin" in
  (t, a, b, cin)

let finish t sums cout =
  let outs = Array.append (B.set_output_bus t "s" sums) [| ("cout", cout) |] in
  Network.set_outputs t outs;
  t

let ripple_carry ~width =
  let t, a, b, cin = interface ~name:(Printf.sprintf "rca%d" width) ~width in
  let sums, cout = B.ripple_add t a b ~cin in
  finish t sums cout

let carry_lookahead ~width =
  let t, a, b, cin = interface ~name:(Printf.sprintf "cla%d" width) ~width in
  let p = Array.init width (fun i -> B.xor2 t a.(i) b.(i)) in
  let g = Array.init width (fun i -> B.and2 t a.(i) b.(i)) in
  let sums = Array.make width 0 in
  let group = 4 in
  let carry_in = ref cin in
  let i = ref 0 in
  while !i < width do
    let k = min group (width - !i) in
    (* Carries within the group by two-level lookahead:
       c_{j+1} = g_j + p_j g_{j-1} + ... + p_j..p_lo c_in *)
    let carries = Array.make (k + 1) !carry_in in
    for j = 0 to k - 1 do
      let terms = ref [] in
      for m = 0 to j do
        (* product p_{i+j} ... p_{i+m+1} g_{i+m} *)
        let lits = ref [ g.(!i + m) ] in
        for q = m + 1 to j do
          lits := p.(!i + q) :: !lits
        done;
        terms := B.andn t (Array.of_list !lits) :: !terms
      done;
      let prop_all =
        let lits = Array.init (j + 1) (fun q -> p.(!i + q)) in
        B.and2 t (B.andn t lits) !carry_in
      in
      carries.(j + 1) <- B.orn t (Array.of_list (prop_all :: !terms))
    done;
    for j = 0 to k - 1 do
      sums.(!i + j) <- B.xor2 t p.(!i + j) carries.(j)
    done;
    carry_in := carries.(k);
    i := !i + k
  done;
  finish t sums !carry_in

let carry_select ?(block = 4) ~width () =
  let t, a, b, cin = interface ~name:(Printf.sprintf "csel%d" width) ~width in
  let sums = Array.make width 0 in
  let carry = ref cin in
  let i = ref 0 in
  while !i < width do
    let k = min block (width - !i) in
    let sub arr = Array.sub arr !i k in
    let zero = B.const_ t false and one = B.const_ t true in
    let s0, c0 = B.ripple_add t (sub a) (sub b) ~cin:zero in
    let s1, c1 = B.ripple_add t (sub a) (sub b) ~cin:one in
    let chosen = B.mux_bus t ~sel:!carry s1 s0 in
    Array.blit chosen 0 sums !i k;
    carry := B.mux t ~sel:!carry c1 c0;
    i := !i + k
  done;
  finish t sums !carry

let carry_skip ?(block = 4) ~width () =
  let t, a, b, cin = interface ~name:(Printf.sprintf "cskip%d" width) ~width in
  let sums = Array.make width 0 in
  let carry = ref cin in
  let i = ref 0 in
  while !i < width do
    let k = min block (width - !i) in
    let s, ripple_cout = B.ripple_add t (Array.sub a !i k) (Array.sub b !i k) ~cin:!carry in
    Array.blit s 0 sums !i k;
    let propagate =
      B.andn t (Array.init k (fun j -> B.xor2 t a.(!i + j) b.(!i + j)))
    in
    carry := B.mux t ~sel:propagate !carry ripple_cout;
    i := !i + k
  done;
  finish t sums !carry

let kogge_stone ~width =
  let t, a, b, cin = interface ~name:(Printf.sprintf "ksa%d" width) ~width in
  let p0 = Array.init width (fun i -> B.xor2 t a.(i) b.(i)) in
  let g0 = Array.init width (fun i -> B.and2 t a.(i) b.(i)) in
  (* Fold cin into bit 0: g'_0 = g_0 + p_0 cin. *)
  let g = Array.copy g0 in
  let p = Array.copy p0 in
  g.(0) <- B.or2 t g0.(0) (B.and2 t p0.(0) cin);
  let gg = ref g and pp = ref p in
  let dist = ref 1 in
  while !dist < width do
    let g' = Array.copy !gg and p' = Array.copy !pp in
    for i = width - 1 downto !dist do
      g'.(i) <- B.or2 t !gg.(i) (B.and2 t !pp.(i) !gg.(i - !dist));
      p'.(i) <- B.and2 t !pp.(i) !pp.(i - !dist)
    done;
    gg := g';
    pp := p';
    dist := !dist * 2
  done;
  (* carry into bit i is prefix generate of bit i-1; carry into bit 0 = cin. *)
  let sums =
    Array.init width (fun i ->
        if i = 0 then B.xor2 t p0.(0) cin else B.xor2 t p0.(i) !gg.(i - 1))
  in
  finish t sums !gg.(width - 1)
