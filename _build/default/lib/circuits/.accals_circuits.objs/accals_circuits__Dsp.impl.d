lib/circuits/dsp.ml: Accals_network Array Builder List Network Printf
