lib/circuits/builder.mli: Accals_network Network
