lib/circuits/divider.mli: Accals_network Network
