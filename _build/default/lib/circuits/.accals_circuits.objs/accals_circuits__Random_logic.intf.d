lib/circuits/random_logic.mli: Accals_network Network
