lib/circuits/random_logic.ml: Accals_bitvec Accals_network Array Builder Gate List Network Sim Structure
