lib/circuits/builder.ml: Accals_network Array Gate Network Printf
