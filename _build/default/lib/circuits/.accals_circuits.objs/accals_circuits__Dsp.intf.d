lib/circuits/dsp.mli: Accals_network Network
