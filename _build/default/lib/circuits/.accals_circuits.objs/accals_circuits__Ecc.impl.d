lib/circuits/ecc.ml: Accals_network Array Builder List Network Printf
