lib/circuits/adders.mli: Accals_network Network
