lib/circuits/alu.ml: Accals_network Array Builder Network
