lib/circuits/image.mli: Accals_network Network
