lib/circuits/multipliers.mli: Accals_network Network
