lib/circuits/datapath.mli: Accals_network Network
