lib/circuits/datapath.ml: Accals_network Array Builder Multipliers Network Printf
