lib/circuits/bench_suite.ml: Accals_network Accals_twolevel Adders Alu Cleanup Datapath Divider Dsp Ecc Image List Multipliers Network Random_logic Unary_fns
