lib/circuits/divider.ml: Accals_network Array Builder Network Printf
