lib/circuits/adders.ml: Accals_network Array Builder Network Printf
