lib/circuits/unary_fns.mli: Accals_network Network
