lib/circuits/multipliers.ml: Accals_network Array Builder List Network Printf
