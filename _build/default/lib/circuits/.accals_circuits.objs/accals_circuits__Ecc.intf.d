lib/circuits/ecc.mli: Accals_network Network
