lib/circuits/alu.mli: Accals_network Network
