lib/circuits/bench_suite.mli: Accals_network Network
