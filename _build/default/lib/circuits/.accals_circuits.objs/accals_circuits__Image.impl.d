lib/circuits/image.ml: Accals_network Array Builder Network Printf
