lib/circuits/unary_fns.ml: Accals_network Array Builder Multipliers Network Printf
