(** Unary arithmetic function generators: sqrt, log2, sin (EPFL stand-ins). *)

open Accals_network

val sqrt_restoring : width:int -> Network.t
(** Integer square root of a [width]-bit input ([width] must be even);
    outputs [width/2] root bits r0.. and the remainder bits m0... *)

val log2 : width:int -> fraction_bits:int -> Network.t
(** Piecewise-linear base-2 logarithm of a [width]-bit input ([width] must
    be a power of two): outputs the exponent e0.. (floor log2), the
    [fraction_bits] bits after the leading one (linear mantissa
    approximation), and [valid] (input nonzero). *)

val sin_parabola : width:int -> Network.t
(** Parabolic sine approximation y = 4 x (1 - x) on a [width]-bit fixed-point
    input in [0,1); outputs y0..y{width-1}. The "1 - x" term uses the
    one's-complement approximation, as in low-power DSP practice. *)
