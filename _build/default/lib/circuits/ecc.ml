open Accals_network
module B = Builder

let check_bit_count data_bits =
  let rec go r = if 1 lsl r >= data_bits + r + 1 then r else go (r + 1) in
  go 1

(* Position map: codeword positions 1.. are check bits at powers of two,
   data bits elsewhere (standard Hamming layout). *)
let layout data_bits =
  let r = check_bit_count data_bits in
  let total = data_bits + r in
  let positions = Array.make (total + 1) (`Unused) in
  let d = ref 0 in
  for pos = 1 to total do
    let is_pow2 = pos land (pos - 1) = 0 in
    if is_pow2 then positions.(pos) <- `Check
    else begin
      positions.(pos) <- `Data !d;
      incr d
    end
  done;
  (r, total, positions)

let secded_decoder ~data_bits =
  let r, total, positions = layout data_bits in
  let t = Network.create ~name:(Printf.sprintf "secded%d" data_bits) () in
  let data = B.bus t "d" data_bits in
  let checks = B.bus t "c" r in
  let pall = Network.add_input t "pall" in
  (* Value at each codeword position. *)
  let at_pos =
    Array.init (total + 1) (fun pos ->
        if pos = 0 then None
        else
          match positions.(pos) with
          | `Check ->
            let rec index_of p i = if 1 lsl i = p then i else index_of p (i + 1) in
            Some checks.(index_of pos 0)
          | `Data d -> Some data.(d)
          | `Unused -> None)
  in
  (* Syndrome bit i = XOR of all positions with bit i set (checks included). *)
  let syndrome =
    Array.init r (fun i ->
        let members = ref [] in
        for pos = 1 to total do
          if pos lsr i land 1 = 1 then
            match at_pos.(pos) with Some id -> members := id :: !members | None -> ()
        done;
        B.xorn t (Array.of_list !members))
  in
  (* Overall parity across the whole received word plus pall. *)
  let everything =
    Array.of_list
      (pall :: List.filter_map (fun x -> x) (Array.to_list at_pos))
  in
  let overall = B.xorn t everything in
  let syndrome_nonzero = B.orn t syndrome in
  (* single error: overall parity wrong; double: syndrome != 0 but parity ok *)
  let single_err = B.buf t overall in
  let double_err = B.and2 t syndrome_nonzero (B.not_ t overall) in
  (* Correct data bit d when the syndrome equals its position. *)
  let corrected =
    Array.init data_bits (fun d ->
        (* find position of data bit d *)
        let pos = ref 0 in
        for p = 1 to total do
          match positions.(p) with `Data d' when d' = d -> pos := p | _ -> ()
        done;
        let match_bits =
          Array.init r (fun i ->
              if !pos lsr i land 1 = 1 then syndrome.(i) else B.not_ t syndrome.(i))
        in
        let here = B.and2 t (B.andn t match_bits) single_err in
        B.xor2 t data.(d) here)
  in
  let outs =
    Array.append
      (B.set_output_bus t "q" corrected)
      [| ("single_err", single_err); ("double_err", double_err) |]
  in
  Network.set_outputs t outs;
  t
