(** Parameterizable ALU generators.

    Stand-ins for the ALU-class benchmarks: alu2/alu4 (LGSynt91) and
    c880/c3540 (ISCAS-85, both reverse-engineered as ALUs). The 8 base
    operations are AND, OR, XOR, NOR, ADD, SUB, set-less-than and pass-B;
    [rich] adds a left barrel shifter, a parity output and carry/overflow
    flags, growing the circuit towards c3540 scale. *)

open Accals_network

val make : ?rich:bool -> ?ops:int -> width:int -> name:string -> unit -> Network.t
(** [ops] restricts the operation count to 4 or 8 (default 8). Outputs:
    r0..r{w-1} plus flag [zero] (and [carry], [overflow], [parity] when
    [rich]). *)
