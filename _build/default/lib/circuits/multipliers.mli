(** Unsigned multiplier generators (the paper's mtp8 / wal8 benchmarks).

    Inputs a0..a{w-1}, b0..b{w-1}; outputs p0..p{2w-1}. *)

open Accals_network

val array_multiplier : width:int -> Network.t
(** Carry-save array multiplier (mtp8 at width 8). *)

val wallace : width:int -> Network.t
(** Wallace-tree multiplier with a ripple-carry final stage (wal8 at
    width 8). *)

val dadda : width:int -> Network.t
(** Dadda multiplier: column heights reduced along the 2,3,4,6,9,13,...
    schedule with the minimum number of counters. *)

val square : width:int -> Network.t
(** Squarer p = a * a (the EPFL 'square' stand-in). *)

val wallace_core : Network.t -> int array -> int array -> int array
(** Wallace-tree product of two existing buses inside a network under
    construction; returns the product bus (width = sum of input widths).
    Exposed for composite datapaths (e.g. the sine approximation). *)
