(** DSP-flavored generators: FIR filtering and a small floating-point adder
    — the error-tolerant workloads approximate computing targets. *)

open Accals_network

val fir_filter : coefficients:int list -> width:int -> Network.t
(** Constant-coefficient FIR dot product y = sum_i c_i * x_i over unsigned
    [width]-bit samples x0.., built from shift-and-add multipliers.
    Coefficients must be non-negative. Output width covers the worst-case
    sum exactly. *)

val float_adder : exp_bits:int -> mantissa_bits:int -> Network.t
(** Unsigned floating-point adder (educational format: no sign, no
    subnormals except zero, no infinities): value = 1.M * 2^E, zero encoded
    as E = 0, M = 0. Truncating alignment and normalization, exponent
    saturation on overflow. Inputs ae0.., am0.., be0.., bm0..; outputs
    e0.., m0... *)
