(** Assorted datapath generators: useful approximate-computing workloads
    beyond the paper's benchmark set, and realistic substrates for library
    users' experiments. All buses are LSB first. *)

open Accals_network

val barrel_shifter : width:int -> Network.t
(** Logical right shift: inputs a0.. and shift amount s0..
    ([width] must be a power of two); outputs y0... *)

val priority_encoder : width:int -> Network.t
(** Index of the most significant set input bit (e0..) plus [valid]. *)

val comparator : width:int -> Network.t
(** Unsigned comparison of a and b: outputs [eq], [lt], [gt]. *)

val popcount : width:int -> Network.t
(** Population count of the input bus via a full-adder tree; outputs c0... *)

val multiply_accumulate : width:int -> Network.t
(** p = a * b + c with c of width [2*width]; outputs p0..p{2w}. *)

val gray_encoder : width:int -> Network.t
(** Binary to Gray code; outputs g0... *)

val gray_decoder : width:int -> Network.t
(** Gray code to binary; outputs b0... *)

val saturating_adder : width:int -> Network.t
(** Unsigned addition clamped to the maximum representable value;
    outputs s0..s{w-1}. *)
