module Bitvec = Accals_bitvec.Bitvec

type kind = Error_rate | Nmed | Mred | Med | Wce

let kind_to_string = function
  | Error_rate -> "ER"
  | Nmed -> "NMED"
  | Mred -> "MRED"
  | Med -> "MED"
  | Wce -> "WCE"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "ER" -> Some Error_rate
  | "NMED" -> Some Nmed
  | "MRED" -> Some Mred
  | "MED" -> Some Med
  | "WCE" -> Some Wce
  | _ -> None

let check golden approx =
  if Array.length golden <> Array.length approx then
    invalid_arg "Metric: output count mismatch";
  if Array.length golden = 0 then invalid_arg "Metric: no outputs";
  let samples = Bitvec.length golden.(0) in
  Array.iter
    (fun bv -> if Bitvec.length bv <> samples then invalid_arg "Metric: length mismatch")
    golden;
  Array.iter
    (fun bv -> if Bitvec.length bv <> samples then invalid_arg "Metric: length mismatch")
    approx;
  samples

let error_rate ~golden ~approx =
  let samples = check golden approx in
  if samples = 0 then 0.0
  else begin
    let diff = Bitvec.create samples in
    let scratch = Bitvec.create samples in
    Array.iteri
      (fun i g ->
        Bitvec.logxor_into g approx.(i) ~dst:scratch;
        Bitvec.logor_into diff scratch ~dst:diff)
      golden;
    float_of_int (Bitvec.popcount diff) /. float_of_int samples
  end

let output_value sigs ~pattern =
  let v = ref 0 in
  for i = Array.length sigs - 1 downto 0 do
    v := (!v lsl 1) lor (if Bitvec.get sigs.(i) pattern then 1 else 0)
  done;
  !v

let fold_distances golden approx f init =
  let samples = check golden approx in
  let m = Array.length golden in
  if m > 60 then invalid_arg "Metric: more than 60 outputs";
  let acc = ref init in
  for p = 0 to samples - 1 do
    let g = output_value golden ~pattern:p in
    let a = output_value approx ~pattern:p in
    acc := f !acc ~golden_value:g ~distance:(abs (a - g))
  done;
  !acc

let med ~golden ~approx =
  let samples = check golden approx in
  if samples = 0 then 0.0
  else
    let total =
      fold_distances golden approx
        (fun acc ~golden_value:_ ~distance -> acc +. float_of_int distance)
        0.0
    in
    total /. float_of_int samples

let nmed ~golden ~approx =
  let m = Array.length golden in
  let max_value = float_of_int ((1 lsl m) - 1) in
  med ~golden ~approx /. max_value

let mred ~golden ~approx =
  let samples = check golden approx in
  if samples = 0 then 0.0
  else
    let total =
      fold_distances golden approx
        (fun acc ~golden_value ~distance ->
          acc +. (float_of_int distance /. float_of_int (max 1 golden_value)))
        0.0
    in
    total /. float_of_int samples

let worst_case_error ~golden ~approx =
  fold_distances golden approx
    (fun acc ~golden_value:_ ~distance -> max acc (float_of_int distance))
    0.0

let measure kind ~golden ~approx =
  match kind with
  | Error_rate -> error_rate ~golden ~approx
  | Nmed -> nmed ~golden ~approx
  | Mred -> mred ~golden ~approx
  | Med -> med ~golden ~approx
  | Wce -> worst_case_error ~golden ~approx

type prepared = {
  p_kind : kind;
  p_golden : Bitvec.t array;
  p_values : int array;  (* golden per-sample values (distance metrics) *)
  p_max_value : float;
}

let prepare kind ~golden =
  let samples = if Array.length golden = 0 then 0 else Bitvec.length golden.(0) in
  let values =
    match kind with
    | Error_rate -> [||]
    | Nmed | Mred | Med | Wce ->
      if Array.length golden > 60 then invalid_arg "Metric.prepare: > 60 outputs";
      Array.init samples (fun p -> output_value golden ~pattern:p)
  in
  let m = Array.length golden in
  {
    p_kind = kind;
    p_golden = golden;
    p_values = values;
    p_max_value = float_of_int ((1 lsl min m 60) - 1);
  }

let measure_prepared prep ~approx =
  match prep.p_kind with
  | Error_rate -> error_rate ~golden:prep.p_golden ~approx
  | Nmed | Mred | Med | Wce ->
    let samples = check prep.p_golden approx in
    if samples = 0 then 0.0
    else begin
      let total = ref 0.0 in
      for p = 0 to samples - 1 do
        let g = prep.p_values.(p) in
        let a = output_value approx ~pattern:p in
        let distance = abs (a - g) in
        match prep.p_kind with
        | Nmed | Med -> total := !total +. float_of_int distance
        | Mred ->
          total := !total +. (float_of_int distance /. float_of_int (max 1 g))
        | Wce -> total := max !total (float_of_int distance)
        | Error_rate -> assert false
      done;
      match prep.p_kind with
      | Nmed -> !total /. float_of_int samples /. prep.p_max_value
      | Med | Mred -> !total /. float_of_int samples
      | Wce -> !total
      | Error_rate -> assert false
    end
