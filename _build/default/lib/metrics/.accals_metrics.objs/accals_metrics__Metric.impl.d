lib/metrics/metric.ml: Accals_bitvec Array String
