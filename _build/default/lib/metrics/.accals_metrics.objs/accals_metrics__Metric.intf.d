lib/metrics/metric.mli: Accals_bitvec Bitvec
