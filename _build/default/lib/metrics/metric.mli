(** Statistical error metrics between a golden and an approximate circuit.

    All metrics are computed over a common set of simulation patterns (the
    paper samples uniformly distributed inputs). Outputs are interpreted as
    an unsigned binary number, least-significant output first, for the
    distance metrics.

    - ER: probability that any output bit differs.
    - NMED: mean error distance normalized by the maximum output value.
    - MRED: mean of |ED| / max(1, golden value).
    - MED and WCE are provided as extras for library users. *)

open Accals_bitvec

type kind =
  | Error_rate
  | Nmed
  | Mred
  | Med  (** unnormalized mean error distance *)
  | Wce  (** worst observed error distance on the sample set *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val error_rate : golden:Bitvec.t array -> approx:Bitvec.t array -> float

val med : golden:Bitvec.t array -> approx:Bitvec.t array -> float
(** Mean error distance (unnormalized). *)

val nmed : golden:Bitvec.t array -> approx:Bitvec.t array -> float

val mred : golden:Bitvec.t array -> approx:Bitvec.t array -> float

val worst_case_error : golden:Bitvec.t array -> approx:Bitvec.t array -> float
(** Maximum observed error distance over the sample set. *)

val measure : kind -> golden:Bitvec.t array -> approx:Bitvec.t array -> float
(** Dispatch on [kind]. The two signature arrays must have equal lengths
    (same output count) and equal per-signature bit lengths (same pattern
    count). Output count must be at most 60 for the distance metrics. *)

val output_value : Bitvec.t array -> pattern:int -> int
(** Unsigned integer value of the outputs on one pattern (output 0 is the
    least significant bit). *)

(** {1 Prepared measurement}

    When one golden circuit is compared against many approximate candidates
    (the estimator's inner loop), preprocessing the golden signatures once
    amortizes the per-sample value extraction. *)

type prepared

val prepare : kind -> golden:Bitvec.t array -> prepared

val measure_prepared : prepared -> approx:Bitvec.t array -> float
(** Same value as {!measure} with the prepared kind and golden outputs. *)
