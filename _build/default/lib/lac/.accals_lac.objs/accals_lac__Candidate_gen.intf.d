lib/lac/candidate_gen.mli: Lac Round_ctx
