lib/lac/candidate_gen.ml: Accals_bitvec Accals_network Accals_twolevel Array Cost Gate Hashtbl Lac List Network Queue Round_ctx Sim Structure
