lib/lac/round_ctx.ml: Accals_bitvec Accals_network Array Network Sim Structure
