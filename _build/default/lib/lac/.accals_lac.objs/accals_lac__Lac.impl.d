lib/lac/lac.ml: Accals_network Accals_twolevel Array Gate List Network Printf String
