lib/lac/lac.mli: Accals_network Accals_twolevel Gate Network
