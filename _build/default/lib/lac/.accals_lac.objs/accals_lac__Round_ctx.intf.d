lib/lac/round_ctx.mli: Accals_bitvec Accals_network Bitvec Network Sim
