open Accals_network

type t = {
  net : Network.t;
  live : bool array;
  order : int array;
  topo_pos : int array;
  fanouts : int array array;
  fanout_counts : int array;
  sigs : Accals_bitvec.Bitvec.t array;
  patterns : Sim.patterns;
}

let create net patterns =
  let live = Structure.live_set net in
  let order = Structure.topo_order net in
  let topo_pos = Array.make (Network.num_nodes net) (-1) in
  Array.iteri (fun i id -> topo_pos.(id) <- i) order;
  let fanouts = Structure.fanouts net in
  let fanout_counts = Structure.fanout_counts net ~live in
  let sigs = Sim.run net patterns ~order in
  { net; live; order; topo_pos; fanouts; fanout_counts; sigs; patterns }

let output_sigs t = Array.map (fun id -> t.sigs.(id)) (Network.outputs t.net)
