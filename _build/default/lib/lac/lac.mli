(** Local approximate changes (LACs).

    A LAC [L(S_n, n)] replaces the function of a target node (TN) [n] by a
    new function over existing substitute nodes (SNs). Supported kinds cover
    the literature's workhorses: constant replacement, SASIMI-style
    wire/inverted-wire substitution [7], and ALSRAC-style resubstitution
    with a fresh 2-input gate over existing signals [9]. *)

open Accals_network

type kind =
  | Const0
  | Const1
  | Wire of int  (** replace by an existing signal *)
  | Inv_wire of int  (** replace by the negation of an existing signal *)
  | Gate2 of Gate.op * int * int  (** replace by [op] of two existing signals *)
  | Gate3 of Gate.op * int * int * int
      (** 3-input resubstitution; for [Mux] the first signal is the select *)
  | Sop of sop
      (** cut rewriting: replace the target by a fresh two-level cover over
          the cut leaves (the approximate-cut LAC family of [15]) *)

and sop = { leaves : int array; cubes : Accals_twolevel.Qm.cube list }

type t = {
  target : int;  (** the TN *)
  kind : kind;
  area_gain : float;  (** area expected to be freed when applied *)
  delta_error : float;  (** estimated error increase ΔE; [nan] until scored *)
}

val make : target:int -> kind -> area_gain:float -> t
(** A fresh, unscored LAC ([delta_error = nan]). *)

val with_delta : t -> float -> t

val substitute_nodes : t -> int list
(** The SNS of the LAC (empty for constants). *)

val new_definition : t -> Gate.op * int array
(** Operator and fanins that {!apply} installs at the target. Raises
    [Invalid_argument] for [Sop] kinds, whose replacement is a multi-gate
    structure — use {!apply}. *)

val conflicts : t -> t -> bool
(** Type-1 (same TN) or Type-2 (an SN of one is the TN of the other)
    conflict, per Section II-C of the paper. *)

val apply : Network.t -> t -> unit
(** Install the LAC's new definition at its target. Raises {!Network.Cycle}
    when the substitution would close a combinational cycle. *)

val apply_many : Network.t -> t list -> t list * t list
(** Apply a conflict-free LAC list in the given order with an incremental
    acyclicity guard; returns (applied, skipped). Chained substitutions can
    close cycles that the two pairwise conflict types cannot see (see
    DESIGN.md); such LACs are skipped, never partially applied. *)

val describe : t -> string
(** Human-readable form, e.g. ["L({12,17}, 40) or2 gain=3.0 dE=0.0123"]. *)
