open Accals_network

type kind =
  | Const0
  | Const1
  | Wire of int
  | Inv_wire of int
  | Gate2 of Gate.op * int * int
  | Gate3 of Gate.op * int * int * int
  | Sop of sop

and sop = { leaves : int array; cubes : Accals_twolevel.Qm.cube list }

type t = { target : int; kind : kind; area_gain : float; delta_error : float }

let make ~target kind ~area_gain = { target; kind; area_gain; delta_error = nan }

let with_delta t delta_error = { t with delta_error }

let substitute_nodes t =
  match t.kind with
  | Const0 | Const1 -> []
  | Wire v | Inv_wire v -> [ v ]
  | Gate2 (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Gate3 (_, a, b, c) -> List.sort_uniq compare [ a; b; c ]
  | Sop { leaves; _ } -> Array.to_list leaves

let new_definition t =
  match t.kind with
  | Const0 -> (Gate.Const false, [||])
  | Const1 -> (Gate.Const true, [||])
  | Wire v -> (Gate.Buf, [| v |])
  | Inv_wire v -> (Gate.Not, [| v |])
  | Gate2 (op, a, b) -> (op, [| a; b |])
  | Gate3 (op, a, b, c) -> (op, [| a; b; c |])
  | Sop _ -> invalid_arg "Lac.new_definition: Sop is a multi-gate replacement"

let conflicts a b =
  a.target = b.target
  || List.mem b.target (substitute_nodes a)
  || List.mem a.target (substitute_nodes b)

let apply net t =
  match t.kind with
  | Sop { leaves; cubes } ->
    (* Guard against cycles before materializing any gates: the new cone
       depends exactly on the leaves. *)
    Array.iter
      (fun leaf ->
        if leaf = t.target || Network.reaches net ~src:t.target ~dst:leaf then
          raise (Network.Cycle t.target))
      leaves;
    let root = Accals_twolevel.Sop_synth.build net ~leaves cubes in
    Network.replace ~check_cycle:false net t.target Gate.Buf [| root |]
  | Const0 | Const1 | Wire _ | Inv_wire _ | Gate2 _ | Gate3 _ ->
    let op, fanins = new_definition t in
    Network.replace net t.target op fanins

let apply_many net lacs =
  let applied = ref [] and skipped = ref [] in
  List.iter
    (fun lac ->
      match apply net lac with
      | () -> applied := lac :: !applied
      | exception Network.Cycle _ -> skipped := lac :: !skipped)
    lacs;
  (List.rev !applied, List.rev !skipped)

let kind_string = function
  | Const0 -> "const0"
  | Const1 -> "const1"
  | Wire _ -> "wire"
  | Inv_wire _ -> "inv-wire"
  | Gate2 (op, _, _) -> Gate.to_string op ^ "2"
  | Gate3 (op, _, _, _) -> Gate.to_string op ^ "3"
  | Sop { cubes; _ } -> Printf.sprintf "sop[%d cubes]" (List.length cubes)

let describe t =
  let sns = substitute_nodes t in
  Printf.sprintf "L({%s}, %d) %s gain=%.1f dE=%g"
    (String.concat "," (List.map string_of_int sns))
    t.target (kind_string t.kind) t.area_gain t.delta_error
