examples/custom_netlist.mli:
