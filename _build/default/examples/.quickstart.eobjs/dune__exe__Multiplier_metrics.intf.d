examples/multiplier_metrics.mli:
