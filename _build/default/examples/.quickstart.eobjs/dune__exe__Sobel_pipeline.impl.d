examples/sobel_pipeline.ml: Accals Accals_bitvec Accals_circuits Accals_metrics Accals_network Array Cost Hashtbl Network Printf
