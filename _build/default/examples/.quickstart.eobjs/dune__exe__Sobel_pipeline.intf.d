examples/sobel_pipeline.mli:
