examples/multiplier_metrics.ml: Accals Accals_circuits Accals_metrics Accals_network List Printf
