examples/quickstart.ml: Accals Accals_circuits Accals_io Accals_metrics Accals_network Cost Printf
