examples/quickstart.mli:
