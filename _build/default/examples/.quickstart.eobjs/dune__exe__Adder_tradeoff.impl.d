examples/adder_tradeoff.ml: Accals Accals_circuits Accals_metrics Adders List Printf
