examples/custom_netlist.ml: Accals Accals_esterr Accals_io Accals_metrics Accals_network Array Cost Network Printf Sim
