(* Scenario: a neural-network accelerator multiplier is error-tolerant, but
   the right tolerance metric depends on how the product is consumed.
   Approximate an 8-bit multiplier under all three statistical metrics and
   compare what each one buys, including the engine's L_indp statistics
   (the paper's Fig. 4 quantity).

   Run with: dune exec examples/multiplier_metrics.exe *)

module Engine = Accals.Engine
module Trace = Accals.Trace
module Metric = Accals_metrics.Metric

let cases =
  [
    (Metric.Error_rate, 0.05, "5%");
    (Metric.Nmed, 0.0019531, "0.195%");
    (Metric.Mred, 0.0019531, "0.195%");
  ]

let () =
  let net = Accals_circuits.Multipliers.array_multiplier ~width:8 in
  Printf.printf "8x8 array multiplier, area %.1f\n\n" (Accals_network.Cost.area net);
  Printf.printf "%-6s %8s %12s %12s %12s %8s\n" "metric" "bound" "area ratio"
    "measured" "L_indp ratio" "rounds";
  List.iter
    (fun (metric, bound, label) ->
      let report = Engine.run net ~metric ~error_bound:bound in
      Printf.printf "%-6s %8s %12.3f %12.5f %12.2f %8d\n"
        (Metric.kind_to_string metric)
        label report.Engine.area_ratio report.Engine.error
        (Trace.indp_ratio report.Engine.rounds)
        (List.length report.Engine.rounds))
    cases
