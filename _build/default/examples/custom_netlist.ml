(* Scenario: bring your own netlist. Parse a BLIF design, approximate it
   under an error-rate budget, verify the result against the original with
   independent simulation, and emit Verilog for downstream tools.

   Run with: dune exec examples/custom_netlist.exe *)

open Accals_network
module Engine = Accals.Engine
module Metric = Accals_metrics.Metric
module Blif = Accals_io.Blif

(* A 4-bit saturating increment-and-compare block, as a BLIF document. *)
let design = {|
.model satinc
.inputs x0 x1 x2 x3 limit0 limit1 limit2 limit3
.outputs y0 y1 y2 y3 over
# increment x
.names x0 y0
0 1
.names x0 x1 c1a
11 1
.names x0 x1 y1
10 1
01 1
.names c1a x2 y2
10 1
01 1
.names c1a x2 c2a
11 1
.names c2a x3 y3
10 1
01 1
# compare incremented value against limit (greater-than, bitwise ripple)
.names y3 limit3 g3
10 1
.names y3 limit3 e3
11 1
00 1
.names y2 limit2 g2
10 1
.names y2 limit2 e2
11 1
00 1
.names y1 limit1 g1
10 1
.names y1 limit1 e1
11 1
00 1
.names y0 limit0 g0
10 1
.names g3 over3
1 1
.names e3 g2 over2
11 1
.names e3 e2 g1 over1
111 1
.names e3 e2 e1 g0 over0
1111 1
.names over3 over2 over1 over0 over
1--- 1
-1-- 1
--1- 1
---1 1
.end
|}

let () =
  let original = Blif.parse_string design in
  Printf.printf "parsed '%s': %d inputs, %d outputs, area %.1f\n"
    (Network.name original)
    (Array.length (Network.inputs original))
    (Array.length (Network.outputs original))
    (Cost.area original);
  let report = Engine.run original ~metric:Metric.Error_rate ~error_bound:0.03 in
  let approx = report.Engine.approximate in
  Printf.printf "approximated: area ratio %.3f, ER %.4f <= 0.03\n"
    report.Engine.area_ratio report.Engine.error;
  (* Independent check: re-simulate both and measure the error rate. *)
  let patterns = Sim.exhaustive 8 in
  let golden = Accals_esterr.Evaluate.output_signatures original patterns in
  let er =
    Accals_esterr.Evaluate.actual_error approx patterns ~golden Metric.Error_rate
  in
  Printf.printf "independent exhaustive check: ER = %.4f\n" er;
  assert (er <= 0.03);
  Accals_io.Verilog_writer.write_file approx "custom_netlist_approx.v";
  Printf.printf "wrote custom_netlist_approx.v\n"
