(* Quickstart: approximate a 16-bit adder under an NMED bound (mean error
   distance of at most ~0.2% of the output range) and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Accals_network
module Engine = Accals.Engine
module Trace = Accals.Trace
module Metric = Accals_metrics.Metric

let () =
  (* 1. Get a circuit: generated here; Accals_io.Blif.parse_file works too. *)
  let adder = Accals_circuits.Adders.ripple_carry ~width:16 in
  Printf.printf "original: area %.1f, delay %.1f, %d AIG nodes\n"
    (Cost.area adder) (Cost.delay adder) (Cost.aig_node_count adder);

  (* 2. Run AccALS: NMED bound 0.195%, paper-default parameters. *)
  let report =
    Engine.run adder ~metric:Metric.Nmed ~error_bound:0.0019531
  in

  (* 3. Inspect the result. *)
  let approx = report.Engine.approximate in
  Printf.printf "approximate: area %.1f (ratio %.3f), delay %.1f (ratio %.3f)\n"
    (Cost.area approx) report.Engine.area_ratio (Cost.delay approx)
    report.Engine.delay_ratio;
  Printf.printf "NMED: %.6f (bound 0.0019531)\n" report.Engine.error;
  Printf.printf "synthesis: %s in %.2fs (%d exact ΔE evaluations)\n"
    (Trace.summary report.Engine.rounds)
    report.Engine.runtime_seconds report.Engine.exact_evaluations;

  (* 4. The result is an ordinary network: export it. *)
  Accals_io.Blif.write_file approx "quickstart_approx.blif";
  Printf.printf "wrote quickstart_approx.blif\n"
