(* Scenario: an image-processing datapath tolerates adder noise; sweep the
   error-rate budget and chart the area saved for three adder
   architectures.

   Run with: dune exec examples/adder_tradeoff.exe *)

open Accals_circuits
module Engine = Accals.Engine
module Metric = Accals_metrics.Metric

let thresholds = [ 0.001; 0.005; 0.02; 0.05 ]

let adders =
  [
    ("rca16", Adders.ripple_carry ~width:16);
    ("cla16", Adders.carry_lookahead ~width:16);
    ("ksa16", Adders.kogge_stone ~width:16);
  ]

let () =
  Printf.printf "%-8s %10s %12s %12s %10s\n" "adder" "ER bound" "area ratio"
    "delay ratio" "rounds";
  List.iter
    (fun (name, net) ->
      List.iter
        (fun bound ->
          let report = Engine.run net ~metric:Metric.Error_rate ~error_bound:bound in
          Printf.printf "%-8s %9.3f%% %12.3f %12.3f %10d\n" name (100.0 *. bound)
            report.Engine.area_ratio report.Engine.delay_ratio
            (List.length report.Engine.rounds))
        thresholds)
    adders
