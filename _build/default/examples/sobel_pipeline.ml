(* Scenario: an edge-detection accelerator. The Sobel gradient-magnitude
   datapath is error-tolerant — small magnitude errors barely move the edge
   map — so we approximate it under an MED budget and measure the mean
   pixel deviation on a synthetic test image.

   Run with: dune exec examples/sobel_pipeline.exe *)

open Accals_network
module Engine = Accals.Engine
module Metric = Accals_metrics.Metric
module Prng = Accals_bitvec.Prng

let pixel_bits = 6
let pixel_max = (1 lsl pixel_bits) - 1

(* Reference software Sobel for one window. *)
let sobel_reference p =
  let gx =
    p.(0).(2) + (2 * p.(1).(2)) + p.(2).(2)
    - (p.(0).(0) + (2 * p.(1).(0)) + p.(2).(0))
  in
  let gy =
    p.(2).(0) + (2 * p.(2).(1)) + p.(2).(2)
    - (p.(0).(0) + (2 * p.(0).(1)) + p.(0).(2))
  in
  abs gx + abs gy

(* Evaluate the circuit on one window. *)
let sobel_circuit net p =
  let env = Hashtbl.create 64 in
  for r = 0 to 2 do
    for c = 0 to 2 do
      for i = 0 to pixel_bits - 1 do
        Hashtbl.replace env
          (Printf.sprintf "p%d%d%d" r c i)
          (p.(r).(c) lsr i land 1 = 1)
      done
    done
  done;
  let values =
    Array.map
      (fun nm -> try Hashtbl.find env nm with Not_found -> false)
      (Network.input_names net)
  in
  let outs = Network.eval net values in
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) outs;
  !v

let random_window rng =
  Array.init 3 (fun _ -> Array.init 3 (fun _ -> Prng.int rng (pixel_max + 1)))

let () =
  let net = Accals_circuits.Image.sobel_magnitude ~pixel_bits in
  Printf.printf "sobel datapath: %d inputs, area %.1f, delay %.1f\n"
    (Array.length (Network.inputs net))
    (Cost.area net) (Cost.delay net);
  (* Sanity: circuit matches the software reference. *)
  let rng = Prng.create 2024 in
  for _ = 1 to 200 do
    let w = random_window rng in
    assert (sobel_circuit net w = sobel_reference w)
  done;
  (* Approximate under a mean-error-distance budget of 2 gray levels. *)
  let report = Engine.run net ~metric:Metric.Med ~error_bound:2.0 in
  let approx = report.Engine.approximate in
  Printf.printf "approximated: area ratio %.3f, delay ratio %.3f, MED %.3f\n"
    report.Engine.area_ratio report.Engine.delay_ratio report.Engine.error;
  (* Application-level check: mean pixel deviation over random windows. *)
  let total = ref 0 and worst = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let w = random_window rng in
    let d = abs (sobel_circuit approx w - sobel_reference w) in
    total := !total + d;
    worst := max !worst d
  done;
  Printf.printf
    "application check over %d random windows: mean deviation %.2f gray \
     levels, worst %d\n"
    trials
    (float_of_int !total /. float_of_int trials)
    !worst
